"""Tests for repro.rng seed plumbing."""

import numpy as np
import pytest

from repro.rng import derive_seed, ensure_rng, rng_stream, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(7).integers(0, 1_000_000, size=5)
        b = ensure_rng(7).integers(0, 1_000_000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(42)
        assert isinstance(ensure_rng(seq), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_is_allowed(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(0, 2)
        a = children[0].normal(size=100)
        b = children[1].normal(size=100)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.5

    def test_reproducible_from_same_seed(self):
        a = spawn_rngs(3, 2)[1].normal(size=4)
        b = spawn_rngs(3, 2)[1].normal(size=4)
        np.testing.assert_array_equal(a, b)

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(1)
        children = spawn_rngs(gen, 3)
        assert len(children) == 3


class TestRngStream:
    def test_yields_generators(self):
        stream = rng_stream(0)
        first = next(stream)
        second = next(stream)
        assert isinstance(first, np.random.Generator)
        assert first is not second

    def test_stream_children_differ(self):
        stream = rng_stream(0)
        a = next(stream).normal(size=50)
        b = next(stream).normal(size=50)
        assert not np.allclose(a, b)


class TestDeriveSeed:
    def test_range(self):
        seed = derive_seed(np.random.default_rng(0))
        assert 0 <= seed < 2**63

    def test_advances_parent(self):
        gen = np.random.default_rng(0)
        first = derive_seed(gen)
        second = derive_seed(gen)
        assert first != second
