"""Golden-run regression tests: fresh runs vs committed baseline records.

``benchmarks/baselines/`` pins fig05 and the truncation-threshold
ablation as structured run records.  A fresh in-process run of either
bench must diff clean against its baseline — zero value drift, equal
fingerprints, equal ``run_id`` — which is the machine-checkable version
of "the committed tables still reproduce".  Deliberate perturbations
must flip the verdict to the right exit code: 1 for value drift, 2 for
provenance drift (fingerprint, seed, trial count, grid shape).
"""

from pathlib import Path

import pytest

from repro.experiments import bench, bench_recorder
from repro.results import (
    RunRecord,
    compute_config_digest,
    compute_run_id,
    diff_records,
    load_record,
)

BASELINES = Path(__file__).resolve().parents[1] / "benchmarks" / "baselines"


def fresh_record(name):
    """Run the named catalog bench at laptop scale; return its record."""
    definition = bench(name)
    recorder = bench_recorder(definition)
    for panel in definition.panels:
        panel.run(recorder=recorder)
    return recorder.finalize()


def restamped(payload):
    """Load a deliberately edited payload after re-stamping its digests."""
    payload["config_digest"] = compute_config_digest(payload)
    payload["run_id"] = compute_run_id(payload)
    return RunRecord.from_dict(payload)


@pytest.fixture(scope="module")
def ablation_fresh():
    """One fresh ablation run, shared by every test in the module."""
    return fresh_record("ablation_truncation_threshold")


@pytest.fixture(scope="module")
def ablation_baseline():
    """The committed baseline record for the ablation."""
    return load_record(BASELINES / "ablation_truncation_threshold.json")


class TestGoldenRuns:
    def test_fig05_matches_committed_baseline(self):
        fresh = fresh_record("fig05_lasso_lognormal")
        baseline = load_record(BASELINES / "fig05_lasso_lognormal.json")
        diff = diff_records(fresh, baseline)
        assert diff.exit_code == 0, diff.format_summary()
        assert diff.identical and not diff.value_drift
        assert fresh.run_id == baseline.run_id
        assert [p.point_fingerprint for p in fresh.panels] == \
               [p.point_fingerprint for p in baseline.panels]

    def test_ablation_matches_committed_baseline(self, ablation_fresh,
                                                 ablation_baseline):
        diff = diff_records(ablation_fresh, ablation_baseline)
        assert diff.exit_code == 0, diff.format_summary()
        assert ablation_fresh.run_id == ablation_baseline.run_id

    def test_baseline_tables_match_committed_text(self, ablation_baseline):
        committed = (BASELINES.parent / "results" /
                     "ablation_threshold.txt").read_text()
        assert ablation_baseline.format_tables() == committed


class TestPerturbations:
    def test_value_perturbation_exits_one(self, ablation_fresh,
                                          ablation_baseline):
        payload = ablation_fresh.to_dict()
        payload["panels"][0]["cells"][2]["stats"]["mean"] += 1e-9
        diff = diff_records(restamped(payload), ablation_baseline)
        assert diff.exit_code == 1
        assert diff.value_drift and not diff.provenance_drift
        (entry,) = [e for e in diff.entries if e.severity == "value"]
        assert entry.field == "stats.mean"

    def test_fingerprint_perturbation_exits_two(self, ablation_fresh,
                                                ablation_baseline):
        payload = ablation_fresh.to_dict()
        payload["panels"][0]["point_fingerprint"] = "deadbeef"
        diff = diff_records(restamped(payload), ablation_baseline)
        assert diff.exit_code == 2
        assert diff.provenance_drift
        assert any(e.field == "point_fingerprint" for e in diff.entries)

    def test_seed_perturbation_exits_two(self, ablation_fresh,
                                         ablation_baseline):
        payload = ablation_fresh.to_dict()
        payload["panels"][0]["seed"] += 1
        diff = diff_records(restamped(payload), ablation_baseline)
        assert diff.exit_code == 2
        assert any(e.field == "seed" for e in diff.entries)

    def test_trial_count_perturbation_exits_two(self, ablation_fresh,
                                                ablation_baseline):
        payload = ablation_fresh.to_dict()
        payload["panels"][0]["n_trials"] += 1
        for cell in payload["panels"][0]["cells"]:
            cell["stats"]["n_trials"] += 1
        diff = diff_records(restamped(payload), ablation_baseline)
        assert diff.exit_code == 2
        assert any(e.field == "n_trials" and e.severity == "provenance"
                   for e in diff.entries)

    def test_grid_shape_perturbation_exits_two_without_cell_compare(
            self, ablation_fresh, ablation_baseline):
        payload = ablation_fresh.to_dict()
        dropped = payload["panels"][0]["sweep_values"].pop()
        payload["panels"][0]["cells"] = [
            cell for cell in payload["panels"][0]["cells"]
            if cell["sweep_value"] != dropped]
        diff = diff_records(restamped(payload), ablation_baseline)
        assert diff.exit_code == 2
        assert any(e.field == "sweep_values" for e in diff.entries)
        # Grids differ, so cells do not correspond: no spurious value
        # drift may be reported on top of the shape mismatch.
        assert not diff.value_drift

    def test_provenance_dominates_value_drift(self, ablation_fresh,
                                              ablation_baseline):
        payload = ablation_fresh.to_dict()
        payload["panels"][0]["point_fingerprint"] = "deadbeef"
        payload["panels"][0]["cells"][0]["stats"]["mean"] += 1.0
        diff = diff_records(restamped(payload), ablation_baseline)
        assert diff.exit_code == 2  # incompatible wins over drifted values
        # A changed fingerprint is *expected* to move every value, so
        # the cells are not compared at all: no wall of value-drift
        # entries under the one provenance line that explains them.
        assert not diff.value_drift
        assert not any(e.severity == "value" for e in diff.entries)

    def test_executor_difference_is_a_note_not_drift(self, ablation_fresh,
                                                     ablation_baseline):
        payload = ablation_fresh.to_dict()
        payload["executor"] = "thread"
        diff = diff_records(RunRecord.from_dict(payload), ablation_baseline)
        assert diff.exit_code == 0
        assert any(e.severity == "note" and e.field == "executor"
                   for e in diff.entries)

    def test_bench_name_mismatch_is_provenance_drift(self, ablation_baseline):
        other = load_record(BASELINES / "fig05_lasso_lognormal.json")
        diff = diff_records(other, ablation_baseline)
        assert diff.exit_code == 2
        assert any(e.location == "run" and e.field == "name"
                   for e in diff.entries)
