"""Tests for the trial-batched fast paths and their bit-identity contract.

Three layers of guarantees:

* **dispatch** — ``TrialJob.execute`` routes whole cells through
  ``batch_point`` when a scenario declares one, on every executor;
  ``REPRO_BATCH_TRIALS=0`` forces the scalar loop; a wrong-length batch
  is rejected; scenarios without the method are untouched.
* **fingerprint neutrality** — declaring (or editing) a
  ``batch_method`` never moves a scenario's cache fingerprint, so
  opting in cannot invalidate warm cells or shift a ``run_id``.
* **bit-identity** — for every batched catalog family, the batched and
  scalar paths produce float-for-float identical trial statistics on
  small grids, and the vectorized satellites (column-wise estimators,
  finite-difference oracle, hypercube geometry) match the loops they
  replaced exactly.
"""

import math
import os
import time
from dataclasses import dataclass

import numpy as np
import pytest

from repro.estimators.baseline_means import (
    coordinatewise,
    empirical_mean,
    median_of_means,
    trimmed_mean,
)
from repro.evaluation import (
    Scenario,
    batch_method,
    build_jobs,
    point_fingerprint,
    run_grid,
)
from repro.experiments.panels import (
    CatoniVsClippingAblation,
    DistributionSpec,
    L1LinearPanel,
    L1PrivateVsNonprivatePanel,
    RobustRegressionExtension,
    ScaleParameterAblation,
    SplitVsComposedAblation,
    TruncationThresholdAblation,
    WeakMomentsExtension,
)
from repro.geometry import Hypercube, L1Ball, hypercube
from repro.losses import SquaredLoss
from repro.losses.base import finite_difference_gradient


@dataclass(frozen=True)
class _MarkerScenario(Scenario):
    """Scalar path returns 1.0; batched path returns 2.0 — which ran?"""

    def __call__(self, series, x, rng):
        rng.normal()
        return 1.0

    @batch_method
    def batch_point(self, series, x, rngs):
        """Consume the per-trial draw, return the batched marker."""
        for rng in rngs:
            rng.normal()
        return [2.0] * len(rngs)


@dataclass(frozen=True)
class _ScalarOnlyScenario(Scenario):
    """A scenario without a batched path — must use the plain loop."""

    def __call__(self, series, x, rng):
        return float(rng.normal())


@dataclass(frozen=True)
class _ShortBatchScenario(Scenario):
    """Batched path that drops a trial — the engine must reject it."""

    def __call__(self, series, x, rng):
        return float(rng.normal())

    @batch_method
    def batch_point(self, series, x, rngs):
        """Return one value too few."""
        return [float(rng.normal()) for rng in rngs[:-1]]


def _job(point, n_trials=3):
    """One TrialJob for a fixed tiny cell."""
    return build_jobs("n", [100], "d", [5], n_trials=n_trials, seed=0)[0]


class TestDispatch:
    def test_batch_path_taken_when_declared(self):
        assert _job(None).execute(_MarkerScenario()) == [2.0, 2.0, 2.0]

    def test_kill_switch_forces_scalar_loop(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_TRIALS", "0")
        assert _job(None).execute(_MarkerScenario()) == [1.0, 1.0, 1.0]

    def test_kill_switch_off_values_other_than_zero_still_batch(self,
                                                                monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_TRIALS", "1")
        assert _job(None).execute(_MarkerScenario()) == [2.0, 2.0, 2.0]

    def test_scalar_only_scenario_untouched(self, monkeypatch):
        values = _job(None).execute(_ScalarOnlyScenario())
        monkeypatch.setenv("REPRO_BATCH_TRIALS", "0")
        assert _job(None).execute(_ScalarOnlyScenario()) == values

    def test_wrong_length_batch_rejected(self):
        with pytest.raises(ValueError, match="returned 2 values"):
            _job(None).execute(_ShortBatchScenario())

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_dispatch_on_pool_executors(self, executor):
        result = run_grid(_MarkerScenario(), "n", [10, 20], "d", [5],
                          n_trials=2, seed=0, executor=executor,
                          max_workers=2)
        assert result.means(5).tolist() == [2.0, 2.0]

    def test_dispatch_on_process_executor(self):
        result = run_grid(_MarkerScenario(), "n", [10], "d", [5],
                          n_trials=2, seed=0, executor="process",
                          max_workers=2)
        assert result.means(5).tolist() == [2.0]

    def test_dispatch_on_fleet_executor(self):
        result = run_grid(_MarkerScenario(), "n", [10], "d", [5],
                          n_trials=2, seed=0, executor="fleet",
                          max_workers=2)
        assert result.means(5).tolist() == [2.0]


def _probe_class(with_batch: bool):
    """The same scenario class, with or without a batched path."""
    if with_batch:
        @dataclass(frozen=True)
        class Probe(Scenario):
            """Fingerprint probe."""

            slope: float = 1.0

            def __call__(self, series, x, rng):
                """Scalar path."""
                return self.slope * float(rng.normal())

            @batch_method
            def batch_point(self, series, x, rngs):
                """Batched path (helper below is also invisible)."""
                return _probe_helper(self.slope, rngs)
    else:
        @dataclass(frozen=True)
        class Probe(Scenario):
            """Fingerprint probe."""

            slope: float = 1.0

            def __call__(self, series, x, rng):
                """Scalar path."""
                return self.slope * float(rng.normal())
    return Probe


def _probe_helper(slope, rngs):
    """Module-level helper reachable only from a batch_method body."""
    return [slope * float(rng.normal()) for rng in rngs]


class TestFingerprintNeutrality:
    def test_batch_method_invisible_to_fingerprint(self):
        plain = _probe_class(with_batch=False)(slope=2.0)
        batched = _probe_class(with_batch=True)(slope=2.0)
        assert point_fingerprint(plain) == point_fingerprint(batched)

    def test_fields_still_fingerprinted(self):
        cls = _probe_class(with_batch=True)
        assert point_fingerprint(cls(slope=2.0)) != \
            point_fingerprint(cls(slope=3.0))

    def test_batch_method_binds_like_a_method(self):
        cls = _probe_class(with_batch=True)
        instance = cls(slope=2.0)
        rng = np.random.default_rng(0)
        expected = 2.0 * float(np.random.default_rng(0).normal())
        assert instance.batch_point(None, None, [rng]) == [expected]
        # Class access unwraps to the plain function.
        assert callable(cls.batch_point)


_FEATURES = DistributionSpec("lognormal", {"sigma": 0.6})
_NOISE = DistributionSpec("gaussian", {"scale": 0.1})
_T_NOISE = DistributionSpec("student_t", {"df": 3.0})


def _tiny_panels():
    """One small instance + grid per batched catalog family."""
    from repro.core import HeavyTailedDPFW, HeavyTailedPrivateLasso
    from repro.losses import SquaredLoss as _SL
    scale = HeavyTailedDPFW(_SL(), L1Ball(8), epsilon=1.0,
                            tau=5.0).resolve_schedule(400).scale
    threshold = HeavyTailedPrivateLasso(
        L1Ball(8), epsilon=1.0, delta=1e-5).resolve_schedule(400).threshold
    return [
        (L1LinearPanel(solver="dpfw", features=_FEATURES, noise=_NOISE,
                       sweep="epsilon", n_fixed=300),
         "epsilon", [0.5, 1.0], "d", [6]),
        (L1LinearPanel(solver="lasso", features=_FEATURES, noise=_NOISE,
                       sweep="n", eps_fixed=1.0),
         "n", [200, 400], "d", [6]),
        (L1PrivateVsNonprivatePanel(solver="lasso", features=_FEATURES,
                                    noise=_NOISE, d_fixed=6),
         "n", [300], "kind", ["private(eps=1)", "non-private"]),
        (CatoniVsClippingAblation(features=_FEATURES, noise=_NOISE, d=8,
                                  delta=1e-5),
         "n", [400], "method", ["catoni-dpfw", "clipped-dpfw"]),
        (ScaleParameterAblation(features=_FEATURES, noise=_NOISE, d=8,
                                n=400, theory_scale=scale),
         "s_multiplier", [0.2, 1.0], "metric", ["excess_risk"]),
        (TruncationThresholdAblation(features=_FEATURES, noise=_NOISE, d=8,
                                     n=400, theory_threshold=threshold),
         "K_multiplier", [0.3, 1.0], "metric", ["excess_risk"]),
        (SplitVsComposedAblation(features=_FEATURES, noise=_NOISE, d=8,
                                 delta=1e-5),
         "n", [400], "method",
         ["split (paper, eps-DP)", "composed ((eps,delta)-DP)"]),
        (RobustRegressionExtension(features=_FEATURES, noise=_T_NOISE, d=8,
                                   sweep="n", eps_fixed=1.0),
         "n", [400], "loss", ["biweight", "squared"]),
        (WeakMomentsExtension(
            features=DistributionSpec("pareto", {"tail_index": 1.45}),
            noise=_NOISE, d=6, moment_order=1.4),
         "n", [400], "estimator", ["truncated(v=0.4)", "catoni"]),
    ]


def _stats_tuple(result):
    """Every float the grid produced, in a comparable flat layout."""
    return [(series, [(s.mean, s.std, s.minimum, s.maximum)
                      for s in stats])
            for series, stats in sorted(result.series.items(),
                                        key=lambda kv: str(kv[0]))]


class TestPanelBitIdentity:
    @pytest.mark.parametrize(
        "point,sweep_name,sweep_values,series_name,series_values",
        _tiny_panels(),
        ids=lambda p: type(p).__name__ if isinstance(p, Scenario) else None)
    def test_batched_equals_scalar(self, monkeypatch, point, sweep_name,
                                   sweep_values, series_name, series_values):
        assert callable(getattr(point, "batch_point", None))
        batched = run_grid(point, sweep_name, sweep_values,
                           series_name, series_values, n_trials=2, seed=11)
        monkeypatch.setenv("REPRO_BATCH_TRIALS", "0")
        scalar = run_grid(point, sweep_name, sweep_values,
                          series_name, series_values, n_trials=2, seed=11)
        assert _stats_tuple(batched) == _stats_tuple(scalar)

    def test_batched_equals_scalar_on_thread_executor(self, monkeypatch):
        point, sweep_name, sweep_values, series_name, series_values = \
            _tiny_panels()[5]  # the truncation ablation (lasso family)
        batched = run_grid(point, sweep_name, sweep_values, series_name,
                           series_values, n_trials=2, seed=7,
                           executor="thread", max_workers=2)
        monkeypatch.setenv("REPRO_BATCH_TRIALS", "0")
        scalar = run_grid(point, sweep_name, sweep_values, series_name,
                          series_values, n_trials=2, seed=7)
        assert _stats_tuple(batched) == _stats_tuple(scalar)


class TestColumnwiseFastPaths:
    @pytest.mark.parametrize("shape", [(1, 1), (7, 3), (40, 11), (200, 5)])
    def test_empirical_mean_bit_identical(self, shape):
        x = np.random.default_rng(3).lognormal(size=shape)
        loop = np.array([empirical_mean(x[:, j]) for j in range(x.shape[1])])
        fast = coordinatewise(empirical_mean, x)
        assert np.array_equal(loop, fast)
        assert np.array_equal(np.signbit(loop), np.signbit(fast))

    @pytest.mark.parametrize("frac", [0.0, 0.1, 0.25, 0.49])
    def test_trimmed_mean_bit_identical(self, frac):
        x = np.random.default_rng(4).standard_t(df=3, size=(57, 9))
        loop = np.array([trimmed_mean(x[:, j], trim_fraction=frac)
                         for j in range(x.shape[1])])
        fast = coordinatewise(trimmed_mean, x, trim_fraction=frac)
        assert np.array_equal(loop, fast)

    def test_non_finite_falls_back_to_loop_errors(self):
        x = np.ones((4, 2))
        x[1, 1] = np.inf
        from repro._validation import ConfigurationError
        with pytest.raises(ConfigurationError):
            coordinatewise(empirical_mean, x)

    def test_bad_trim_fraction_error_unchanged(self):
        x = np.ones((6, 2))
        with pytest.raises(ValueError, match="trim_fraction must be < 0.5"):
            coordinatewise(trimmed_mean, x, trim_fraction=0.5)

    def test_empty_column_error_unchanged(self):
        with pytest.raises(ValueError, match="non-empty"):
            coordinatewise(empirical_mean, np.empty((0, 3)))

    def test_unregistered_estimator_uses_loop(self):
        x = np.random.default_rng(5).lognormal(size=(32, 4))
        loop = np.array([median_of_means(x[:, j], rng=0)
                         for j in range(x.shape[1])])
        assert np.array_equal(coordinatewise(median_of_means, x, rng=0), loop)


class TestFiniteDifference:
    def test_matches_per_coordinate_loop(self):
        rng = np.random.default_rng(6)
        X = rng.lognormal(size=(25, 4))
        y = rng.normal(size=25)
        w = rng.normal(size=4)
        loss = SquaredLoss()
        step = 1e-6
        old = np.zeros(4)
        for j in range(4):  # the loop the batched construction replaced
            bump = np.zeros(4)
            bump[j] = step
            old[j] = (loss.value(w + bump, X, y) -
                      loss.value(w - bump, X, y)) / (2 * step)
        assert np.array_equal(finite_difference_gradient(loss, w, X, y), old)


class TestHypercube:
    @pytest.mark.parametrize("d", [1, 2, 3, 5, 8])
    @pytest.mark.parametrize("radius", [1.0, 0.5, 2.7])
    def test_corners_bit_identical_to_comprehension(self, d, radius):
        old = np.array([[radius if (mask >> j) & 1 else -radius
                         for j in range(d)] for mask in range(2 ** d)])
        assert np.array_equal(hypercube(d, radius).vertices, old)

    def test_vertex_scores_matrix_free(self):
        cube = hypercube(7, 1.5)
        g = np.random.default_rng(8).normal(size=7)
        scores = cube.vertex_scores(g)
        assert cube._corner_cache is None  # never materialized
        dense = -cube.vertices @ g
        assert np.allclose(scores, dense)
        assert int(np.argmax(scores)) == int(np.argmax(dense))

    def test_vertex_matrix_free(self):
        cube = hypercube(6)
        for index in (0, 1, 37, 63):
            bits = [(index >> j) & 1 for j in range(6)]
            expected = np.array([1.0 if b else -1.0 for b in bits])
            assert np.array_equal(cube.vertex(index), expected)
        assert cube._corner_cache is None

    def test_vertex_index_out_of_range(self):
        with pytest.raises(IndexError):
            hypercube(3).vertex(8)

    def test_linear_minimizer_agrees_with_dense(self):
        cube = hypercube(5, 0.8)
        g = np.random.default_rng(9).normal(size=5)
        index, vertex = cube.linear_minimizer(g)
        dense = np.array([[0.8 if (m >> j) & 1 else -0.8 for j in range(5)]
                          for m in range(32)])
        assert index == int(np.argmin(dense @ g))
        assert np.array_equal(vertex, dense[index])

    def test_generic_operations_trigger_cache(self):
        cube = hypercube(3)
        assert cube.l1_diameter() == 6.0
        assert cube._corner_cache is not None
        assert cube.contains(np.zeros(3))

    def test_dimension_cap(self):
        with pytest.raises(ValueError, match="d <= 16"):
            Hypercube(17)

    def test_is_a_polytope(self):
        cube = hypercube(2)
        assert cube.dimension == 2
        assert cube.n_vertices == 4


@pytest.mark.perf
@pytest.mark.skipif(os.environ.get("REPRO_RUN_PERF") != "1",
                    reason="wall-clock assertion; set REPRO_RUN_PERF=1")
class TestBatchedSpeedup:
    def test_lasso_family_batching_is_faster(self, monkeypatch):
        """The batched truncation ablation beats the scalar loop cold.

        The committed trajectory shows ~2.5x; asserting a plain win
        leaves a wide margin for noisy CI hosts.
        """
        from repro.core import HeavyTailedPrivateLasso
        threshold = HeavyTailedPrivateLasso(
            L1Ball(40), epsilon=1.0,
            delta=1e-5).resolve_schedule(12_000).threshold
        point = TruncationThresholdAblation(
            features=_FEATURES, noise=_NOISE, d=40, n=12_000,
            theory_threshold=threshold)
        grid = dict(n_trials=5, seed=240)
        start = time.perf_counter()
        batched = run_grid(point, "K_multiplier", [0.3, 1.0, 3.0],
                           "metric", ["excess_risk"], **grid)
        batched_seconds = time.perf_counter() - start
        monkeypatch.setenv("REPRO_BATCH_TRIALS", "0")
        start = time.perf_counter()
        scalar = run_grid(point, "K_multiplier", [0.3, 1.0, 3.0],
                          "metric", ["excess_risk"], **grid)
        scalar_seconds = time.perf_counter() - start
        assert _stats_tuple(batched) == _stats_tuple(scalar)
        assert batched_seconds < scalar_seconds


def test_batched_values_survive_float_rounding():
    """math.floor-style artifacts: batch values come back as floats."""
    values = _job(None).execute(_MarkerScenario())
    assert all(isinstance(v, float) for v in values)
    assert math.isfinite(sum(values))
