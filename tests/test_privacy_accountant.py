"""Tests for the ledger-style privacy accountant."""

import pytest

from repro.exceptions import PrivacyBudgetError
from repro.privacy import PrivacyAccountant, PrivacyBudget


class TestAccountantBasics:
    def test_empty_total_is_none(self):
        assert PrivacyAccountant().total is None

    def test_spend_accumulates(self):
        acc = PrivacyAccountant()
        acc.spend(PrivacyBudget(0.5), "laplace")
        acc.spend(PrivacyBudget(0.25, 1e-6), "gaussian")
        assert acc.total_epsilon == pytest.approx(0.75)
        assert acc.total_delta == pytest.approx(1e-6)

    def test_entries_record_notes(self):
        acc = PrivacyAccountant()
        acc.spend(PrivacyBudget(1.0), "exponential", note="round 1")
        assert acc.entries[0].mechanism == "exponential"
        assert acc.entries[0].note == "round 1"

    def test_summary_mentions_entries(self):
        acc = PrivacyAccountant()
        acc.spend(PrivacyBudget(1.0), "laplace", note="test")
        text = acc.summary()
        assert "laplace" in text and "test" in text


class TestAccountantCap:
    def test_cap_blocks_overspend(self):
        acc = PrivacyAccountant(cap=PrivacyBudget(1.0))
        acc.spend(PrivacyBudget(0.6), "a")
        with pytest.raises(PrivacyBudgetError):
            acc.spend(PrivacyBudget(0.6), "b")

    def test_cap_blocks_delta_overspend(self):
        acc = PrivacyAccountant(cap=PrivacyBudget(10.0, 1e-6))
        with pytest.raises(PrivacyBudgetError):
            acc.spend(PrivacyBudget(0.1, 1e-5), "a")

    def test_failed_spend_leaves_ledger_unchanged(self):
        acc = PrivacyAccountant(cap=PrivacyBudget(1.0))
        acc.spend(PrivacyBudget(0.9), "a")
        with pytest.raises(PrivacyBudgetError):
            acc.spend(PrivacyBudget(0.9), "b")
        assert len(acc.entries) == 1
        assert acc.total_epsilon == pytest.approx(0.9)

    def test_exact_cap_is_allowed(self):
        acc = PrivacyAccountant(cap=PrivacyBudget(1.0))
        acc.spend(PrivacyBudget(0.5), "a")
        acc.spend(PrivacyBudget(0.5), "b")
        assert acc.total_epsilon == pytest.approx(1.0)

    def test_remaining(self):
        acc = PrivacyAccountant(cap=PrivacyBudget(1.0, 1e-5))
        acc.spend(PrivacyBudget(0.4, 1e-6), "a")
        rem = acc.remaining()
        assert rem.epsilon == pytest.approx(0.6)
        assert rem.delta == pytest.approx(9e-6)

    def test_remaining_without_cap(self):
        assert PrivacyAccountant().remaining() is None
