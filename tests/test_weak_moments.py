"""Tests for the weak-moment (truncated mean) extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimators import TruncatedMeanEstimator, optimal_truncation_threshold


class TestTruncatedMeanEstimator:
    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            TruncatedMeanEstimator(threshold=0.0)

    def test_estimates_bounded_data_exactly(self, rng):
        x = rng.uniform(-1, 1, size=5000)
        est = TruncatedMeanEstimator(threshold=2.0)
        assert est.estimate(x) == pytest.approx(float(np.mean(x)))

    def test_robust_to_outliers(self, rng):
        x = rng.normal(loc=1.0, size=3000)
        x[:3] = 1e12
        est = TruncatedMeanEstimator(threshold=5.0)
        assert est.estimate(x) == pytest.approx(1.0, abs=0.2)

    def test_influence_bounded(self, rng):
        est = TruncatedMeanEstimator(threshold=3.0)
        x = rng.standard_cauchy(size=1000) * 100
        assert np.all(np.abs(est.influence(x)) <= 3.0)

    def test_sensitivity_formula(self):
        est = TruncatedMeanEstimator(threshold=4.0)
        assert est.sensitivity(100) == pytest.approx(0.08)

    def test_sensitivity_realized(self, rng):
        est = TruncatedMeanEstimator(threshold=2.5)
        x = rng.normal(size=150)
        base = est.estimate(x)
        worst = 0.0
        for replacement in (1e9, -1e9):
            x2 = x.copy()
            x2[0] = replacement
            worst = max(worst, abs(est.estimate(x2) - base))
        assert worst <= est.sensitivity(150) + 1e-12

    def test_columns_match_scalar(self, rng):
        est = TruncatedMeanEstimator(threshold=1.5)
        X = rng.normal(size=(200, 3))
        np.testing.assert_allclose(
            est.estimate_columns(X),
            [est.estimate(X[:, j]) for j in range(3)])

    def test_shape_validation(self):
        est = TruncatedMeanEstimator(threshold=1.0)
        with pytest.raises(ValueError):
            est.estimate(np.ones((2, 2)))
        with pytest.raises(ValueError):
            est.estimate_columns(np.ones(4))

    def test_bias_bound_rate(self):
        est = TruncatedMeanEstimator(threshold=10.0)
        # moment_order = 1.5 -> v = 0.5 -> bias <= m / sqrt(10)
        assert est.bias_bound(1.5, 2.0) == pytest.approx(2.0 / 10.0**0.5)

    def test_bias_bound_rejects_bad_order(self):
        est = TruncatedMeanEstimator(threshold=1.0)
        with pytest.raises(ValueError):
            est.bias_bound(1.0, 1.0)
        with pytest.raises(ValueError):
            est.bias_bound(2.5, 1.0)

    def test_error_bound_holds_on_pareto(self, rng):
        """Pareto(1.5) has a finite 1.4-th moment; the bound should hold."""
        tail = 1.5
        order = 1.4
        n = 20_000
        x_ref = rng.pareto(tail, size=500_000) + 1.0
        truth = tail / (tail - 1.0)  # mean of Pareto with x_m=1
        m_v = float(np.mean(x_ref**order))
        failures = 0
        for _ in range(20):
            x = rng.pareto(tail, size=n) + 1.0
            est = TruncatedMeanEstimator(threshold=(n * m_v) ** (1 / order))
            bound = est.error_bound(n, order, m_v, 0.05)
            if abs(est.estimate(x) - truth) > bound:
                failures += 1
        assert failures <= 2

    @given(st.floats(min_value=0.1, max_value=100))
    @settings(max_examples=30)
    def test_estimate_bounded_by_threshold(self, threshold):
        est = TruncatedMeanEstimator(threshold=threshold)
        x = np.array([1e30, -1e30, 5.0])
        assert abs(est.estimate(x)) <= threshold


class TestOptimalThreshold:
    def test_balances_bias_and_noise(self):
        n, eps, order, m = 10_000, 1.0, 1.5, 2.0
        B = optimal_truncation_threshold(n, eps, order, m)
        v = order - 1.0
        bias = m / B**v
        noise = B / (n * eps)
        assert bias == pytest.approx(noise, rel=1e-9)

    def test_grows_with_n(self):
        assert (optimal_truncation_threshold(10**6, 1.0, 1.5)
                > optimal_truncation_threshold(10**3, 1.0, 1.5))

    def test_heavier_tail_means_smaller_threshold(self):
        # smaller v -> exponent 1/(1+v) larger -> bigger threshold; check
        # direction explicitly for the same budget.
        light = optimal_truncation_threshold(10_000, 1.0, 2.0)
        heavy = optimal_truncation_threshold(10_000, 1.0, 1.1)
        assert heavy > light

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            optimal_truncation_threshold(0, 1.0, 1.5)
        with pytest.raises(ValueError):
            optimal_truncation_threshold(100, 1.0, 3.0)


class TestDPFWWithTruncatedEstimator:
    def test_runs_and_accounts(self, rng):
        from repro import (
            DistributionSpec,
            HeavyTailedDPFW,
            L1Ball,
            SquaredLoss,
            l1_ball_truth,
            make_linear_data,
        )

        w_star = l1_ball_truth(8, rng)
        data = make_linear_data(2000, w_star,
                                DistributionSpec("lognormal", {"sigma": 0.6}),
                                DistributionSpec("gaussian", {"scale": 0.1}),
                                rng=rng)
        solver = HeavyTailedDPFW(SquaredLoss(), L1Ball(8), epsilon=1.0,
                                 tau=5.0, gradient_estimator="truncated",
                                 moment_order=1.5)
        result = solver.fit(data.features, data.labels, rng=rng)
        assert result.metadata["gradient_estimator"] == "truncated"
        assert result.advertised_budget.is_pure
        assert np.all(np.isfinite(result.w))

    def test_invalid_estimator_name(self):
        from repro import HeavyTailedDPFW, L1Ball, SquaredLoss

        with pytest.raises(ValueError):
            HeavyTailedDPFW(SquaredLoss(), L1Ball(4), epsilon=1.0,
                            gradient_estimator="bogus")

    def test_robust_to_outliers(self, rng):
        from repro import (
            DistributionSpec,
            HeavyTailedDPFW,
            L1Ball,
            SquaredLoss,
            l1_ball_truth,
            make_linear_data,
        )

        w_star = l1_ball_truth(6, rng)
        data = make_linear_data(3000, w_star,
                                DistributionSpec("lognormal", {"sigma": 0.6}),
                                DistributionSpec("gaussian", {"scale": 0.1}),
                                rng=rng)
        X, y = data.features.copy(), data.labels.copy()
        X[0], y[0] = 1e9, -1e9
        solver = HeavyTailedDPFW(SquaredLoss(), L1Ball(6), epsilon=2.0,
                                 tau=5.0, gradient_estimator="truncated")
        result = solver.fit(X, y, rng=rng)
        assert np.all(np.isfinite(result.w))
