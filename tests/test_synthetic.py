"""Tests for the Section 6.1 synthetic data generators."""

import numpy as np
import pytest

from repro.data import (
    DistributionSpec,
    l1_ball_truth,
    make_linear_data,
    make_logistic_data,
    sparse_truth,
)

GAUSS = DistributionSpec("gaussian", {"scale": 1.0})
NOISE = DistributionSpec("gaussian", {"scale": 0.1})


class TestTruthGenerators:
    def test_l1_ball_truth_feasible(self, rng):
        for _ in range(5):
            w = l1_ball_truth(20, rng)
            assert np.abs(w).sum() <= 1.0

    def test_l1_ball_truth_radius(self, rng):
        w = l1_ball_truth(10, rng, radius=3.0)
        assert np.abs(w).sum() <= 3.0

    def test_sparse_truth_sparsity(self, rng):
        w = sparse_truth(100, 7, rng)
        assert np.count_nonzero(w) == 7

    def test_sparse_truth_norm(self, rng):
        w = sparse_truth(50, 5, rng, norm_bound=0.5)
        assert np.linalg.norm(w) <= 0.5 + 1e-12

    def test_sparse_truth_rejects_oversparse(self, rng):
        with pytest.raises(ValueError):
            sparse_truth(5, 10, rng)

    def test_random_support(self, rng):
        supports = {tuple(np.nonzero(sparse_truth(30, 3, rng))[0])
                    for _ in range(10)}
        assert len(supports) > 1


class TestLinearData:
    def test_shapes(self, rng):
        w = l1_ball_truth(6, rng)
        data = make_linear_data(100, w, GAUSS, NOISE, rng=rng)
        assert data.features.shape == (100, 6)
        assert data.labels.shape == (100,)
        assert data.n_samples == 100 and data.dimension == 6

    def test_noiseless_labels_exact(self, rng):
        w = l1_ball_truth(4, rng)
        data = make_linear_data(50, w, GAUSS, None, rng=rng)
        np.testing.assert_allclose(data.labels, data.features @ w)

    def test_noise_is_centered(self, rng):
        w = np.zeros(3)
        data = make_linear_data(200_000, w, GAUSS,
                                DistributionSpec("lognormal", {"sigma": 0.5}),
                                rng=rng)
        assert abs(data.labels.mean()) < 0.02

    def test_uncentered_noise(self, rng):
        w = np.zeros(3)
        data = make_linear_data(100_000, w, GAUSS,
                                DistributionSpec("lognormal", {"sigma": 0.5}),
                                rng=rng, center_noise=False)
        assert data.labels.mean() == pytest.approx(np.exp(0.125), rel=0.05)

    def test_deterministic_given_seed(self):
        w = np.ones(3) / 3
        a = make_linear_data(20, w, GAUSS, NOISE, rng=np.random.default_rng(5))
        b = make_linear_data(20, w, GAUSS, NOISE, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.labels, b.labels)


class TestLogisticData:
    def test_labels_are_pm1(self, rng):
        w = l1_ball_truth(5, rng)
        data = make_logistic_data(200, w, GAUSS, NOISE, rng=rng)
        assert set(np.unique(data.labels)) <= {-1.0, 1.0}

    def test_labels_match_sign_rule_noiseless(self, rng):
        w = l1_ball_truth(5, rng)
        data = make_logistic_data(200, w, GAUSS, None, rng=rng)
        expected = np.where(data.features @ w > 0, 1.0, -1.0)
        np.testing.assert_array_equal(data.labels, expected)

    def test_signal_is_learnable(self, rng):
        """Labels should correlate with the planted direction."""
        w = np.zeros(4)
        w[0] = 1.0
        data = make_logistic_data(5000, w, GAUSS, None, rng=rng)
        agreement = np.mean(np.sign(data.features[:, 0]) == data.labels)
        assert agreement > 0.95


class TestSplit:
    def test_partition(self, rng):
        w = l1_ball_truth(4, rng)
        data = make_linear_data(100, w, GAUSS, NOISE, rng=rng)
        train, evaluation = data.split(0.7, rng=rng)
        assert train.n_samples == 70
        assert evaluation.n_samples == 30
        assert train.w_star is data.w_star

    def test_invalid_fraction(self, rng):
        w = l1_ball_truth(4, rng)
        data = make_linear_data(10, w, GAUSS, NOISE, rng=rng)
        with pytest.raises(ValueError):
            data.split(0.0)
        with pytest.raises(ValueError):
            data.split(1.0)

    def test_rows_are_disjoint(self, rng):
        w = np.zeros(2)
        data = make_linear_data(50, w, GAUSS, None, rng=rng)
        # tag rows by unique feature values to verify the partition
        train, evaluation = data.split(0.5, rng=rng)
        train_rows = {tuple(row) for row in train.features}
        eval_rows = {tuple(row) for row in evaluation.features}
        assert not (train_rows & eval_rows)
