"""Tests for the baseline solvers."""

import numpy as np
import pytest

from repro import L1Ball, SquaredLoss
from repro.baselines import (
    DPSGD,
    FrankWolfe,
    GradientDescent,
    IterativeHardThresholding,
    RegularDPFrankWolfe,
)
from repro.geometry import project_l1_ball
from repro.losses import LogisticLoss


class TestFrankWolfe:
    def test_converges_on_quadratic(self, small_linear_data):
        X, y, w_star = small_linear_data
        loss = SquaredLoss()
        fw = FrankWolfe(loss, L1Ball(X.shape[1]), n_iterations=200)
        w = fw.fit(X, y)
        assert loss.value(w, X, y) <= loss.value(w_star, X, y) + 0.01

    def test_history(self, small_linear_data):
        X, y, _ = small_linear_data
        fw = FrankWolfe(SquaredLoss(), L1Ball(X.shape[1]), n_iterations=10,
                        record_history=True)
        fw.fit(X, y)
        assert len(fw.iterates_) == 11
        assert fw.risks_[-1] <= fw.risks_[0]

    def test_stays_feasible(self, small_linear_data):
        X, y, _ = small_linear_data
        ball = L1Ball(X.shape[1])
        w = FrankWolfe(SquaredLoss(), ball, n_iterations=30).fit(X, y)
        assert ball.contains(w, tol=1e-9)

    def test_risk_monotone_along_path(self, small_linear_data):
        X, y, _ = small_linear_data
        fw = FrankWolfe(SquaredLoss(), L1Ball(X.shape[1]), n_iterations=50,
                        record_history=True)
        fw.fit(X, y)
        # FW is not strictly monotone, but the trend must be downward.
        assert fw.risks_[-1] < fw.risks_[0]


class TestGradientDescent:
    def test_solves_least_squares(self, small_linear_data):
        X, y, w_star = small_linear_data
        gd = GradientDescent(SquaredLoss(), learning_rate=0.2, n_iterations=500)
        w = gd.fit(X, y)
        np.testing.assert_allclose(w, np.linalg.lstsq(X, y, rcond=None)[0],
                                   atol=1e-3)

    def test_projection_respected(self, small_linear_data):
        X, y, _ = small_linear_data
        gd = GradientDescent(SquaredLoss(), learning_rate=0.2, n_iterations=100,
                             projection=lambda w: project_l1_ball(w, 0.25))
        w = gd.fit(X, y)
        assert np.abs(w).sum() <= 0.25 + 1e-9

    def test_early_stop(self, small_linear_data):
        X, y, _ = small_linear_data
        gd = GradientDescent(SquaredLoss(), learning_rate=0.2,
                             n_iterations=10_000, tol=1e-8,
                             record_history=True)
        gd.fit(X, y)
        assert len(gd.iterates_) < 10_000


class TestIHT:
    def test_recovers_sparse_signal(self, rng):
        n, d, s = 2000, 50, 4
        w_star = np.zeros(d)
        w_star[:s] = [0.5, -0.4, 0.3, 0.2]
        X = rng.normal(size=(n, d))
        y = X @ w_star + 0.01 * rng.normal(size=n)
        iht = IterativeHardThresholding(SquaredLoss(), sparsity=s,
                                        learning_rate=0.2, n_iterations=200)
        w = iht.fit(X, y)
        assert set(np.nonzero(w)[0]) == set(range(s))
        np.testing.assert_allclose(w[:s], w_star[:s], atol=0.05)

    def test_output_sparsity(self, rng):
        X = rng.normal(size=(100, 20))
        y = rng.normal(size=100)
        w = IterativeHardThresholding(SquaredLoss(), sparsity=3,
                                      learning_rate=0.1).fit(X, y)
        assert np.count_nonzero(w) <= 3

    def test_projection_radius(self, rng):
        X = rng.normal(size=(100, 10))
        y = 100 * rng.normal(size=100)
        iht = IterativeHardThresholding(SquaredLoss(), sparsity=3,
                                        learning_rate=0.1, project_radius=1.0)
        w = iht.fit(X, y)
        assert np.linalg.norm(w) <= 1.0 + 1e-9


class TestRegularDPFW:
    def test_budget_and_run(self, small_linear_data, rng):
        X, y, _ = small_linear_data
        solver = RegularDPFrankWolfe(SquaredLoss(), L1Ball(X.shape[1]),
                                     epsilon=1.0, delta=1e-5,
                                     lipschitz_bound=5.0, n_iterations=10)
        result = solver.fit(X, y, rng=rng)
        assert result.advertised_budget.delta == 1e-5
        assert np.all(np.isfinite(result.w))

    def test_clipping_bounds_influence(self, rng):
        """A gross outlier cannot move the clipped mean gradient much."""
        X = rng.normal(size=(500, 4))
        y = rng.normal(size=500)
        X2, y2 = X.copy(), y.copy()
        X2[0], y2[0] = 1e9, -1e9
        solver = RegularDPFrankWolfe(SquaredLoss(), L1Ball(4), epsilon=1e6,
                                     delta=1e-5, lipschitz_bound=1.0,
                                     n_iterations=5)
        a = solver.fit(X, y, rng=np.random.default_rng(0))
        b = solver.fit(X2, y2, rng=np.random.default_rng(0))
        # outputs may differ but must both be finite and feasible
        assert np.all(np.isfinite(a.w)) and np.all(np.isfinite(b.w))


class TestDPSGD:
    def test_runs_and_accounts(self, small_linear_data, rng):
        X, y, _ = small_linear_data
        solver = DPSGD(SquaredLoss(), epsilon=1.0, delta=1e-5, clip_norm=1.0,
                       learning_rate=0.05, n_iterations=20)
        result = solver.fit(X, y, rng=rng)
        assert result.privacy_spent.epsilon == pytest.approx(1.0)
        assert np.all(np.isfinite(result.w))

    def test_noise_multiplier_decreases_with_epsilon(self):
        lo = DPSGD(SquaredLoss(), epsilon=0.5, delta=1e-5).noise_multiplier()
        hi = DPSGD(SquaredLoss(), epsilon=4.0, delta=1e-5).noise_multiplier()
        assert hi < lo

    def test_projection(self, small_linear_data, rng):
        X, y, _ = small_linear_data
        solver = DPSGD(SquaredLoss(), epsilon=2.0, delta=1e-5,
                       learning_rate=0.05, n_iterations=10,
                       projection=lambda w: project_l1_ball(w, 1.0))
        result = solver.fit(X, y, rng=rng)
        assert np.abs(result.w).sum() <= 1.0 + 1e-9

    def test_minibatch(self, small_linear_data, rng):
        X, y, _ = small_linear_data
        solver = DPSGD(SquaredLoss(), epsilon=2.0, delta=1e-5, batch_size=32,
                       n_iterations=15)
        result = solver.fit(X, y, rng=rng)
        assert np.all(np.isfinite(result.w))

    def test_logistic(self, rng):
        X = rng.normal(size=(300, 5))
        y = rng.choice([-1.0, 1.0], size=300)
        solver = DPSGD(LogisticLoss(), epsilon=2.0, delta=1e-5, n_iterations=10)
        result = solver.fit(X, y, rng=rng)
        assert np.all(np.isfinite(result.w))
