"""The fleet executor: broker protocol, fault injection, run-id parity.

The tentpole guarantees under test: the work-queue executor is
bit-identical to the serial executor — including under injected worker
kills, dropped completions, suppressed heartbeats, and duplicated
deliveries — because jobs are digest-addressed and completion is
idempotent; a lease that misses its heartbeats is requeued with capped
exponential backoff; bounded retries end in a dead letter that the run
record surfaces and ``repro diff`` classifies as value drift (exit 1),
never as a corrupt record (exit 3).

Everything here runs on virtual time (:class:`repro.fleet.ManualClock`):
a "5 second" lease expires in microseconds of wall clock, on an exactly
reproducible tick.
"""

import json
from pathlib import Path

import pytest

from repro.evaluation import build_jobs, get_executor, run_grid
from repro.evaluation import ResultCache
from repro.evaluation.scenarios import point_fingerprint
from repro.fleet import (
    DEAD,
    DONE,
    LEASED,
    QUEUED,
    BackoffPolicy,
    FaultSchedule,
    FleetError,
    FleetExecutor,
    FleetOptions,
    FleetStats,
    InProcessBroker,
    ManualClock,
)
from repro.results import diff_records, load_record, save_record
from repro.service import ServiceCore

REPO_ROOT = Path(__file__).parent.parent
BASELINES = REPO_ROOT / "benchmarks" / "baselines"

#: One panel, five cells at laptop scale — cheap enough to compute live.
CHEAP_BENCH = "ablation_truncation_threshold"


def _fleet_point(series, x, rng):
    """A module-level grid point: deterministic given the job's rng."""
    return float(series) * float(x) + float(rng.normal())


#: The acceptance grid: 4 x-values x 2 series = 8 cells.
X_VALUES = [1, 2, 3, 4]
SERIES_VALUES = [10, 20]
N_TRIALS = 3
GRID_SEED = 11


def _grid_digests():
    """The 8 cell digests exactly as ``run_grid`` will derive them.

    ``run_grid`` folds the point's code fingerprint into every digest,
    so scripted fault coordinates must be built the same way or they
    silently target nothing.
    """
    jobs = build_jobs("x", X_VALUES, "series", SERIES_VALUES,
                      n_trials=N_TRIALS, seed=GRID_SEED,
                      code_token=point_fingerprint(_fleet_point))
    return [job.digest for job in jobs]


def _run(executor):
    """The acceptance grid through any executor."""
    return run_grid(_fleet_point, "x", X_VALUES, "series", SERIES_VALUES,
                    n_trials=N_TRIALS, seed=GRID_SEED, executor=executor)


class TestManualClock:
    def test_advance_moves_time_and_sleep_never_blocks(self):
        clock = ManualClock(start=5.0)
        assert clock.now() == 5.0
        assert clock.advance(2.5) == 7.5
        clock.sleep(60.0)  # a wall-clock minute, instantly
        assert clock.now() == 67.5

    def test_time_is_monotonic_by_contract(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-0.1)


class TestBackoffPolicy:
    def test_equal_policies_give_equal_schedules(self):
        """Jitter is seeded, never drawn from a global RNG."""
        a = BackoffPolicy(seed=3)
        b = BackoffPolicy(seed=3)
        assert a.schedule("cell", 8) == b.schedule("cell", 8)
        # A different seed (or key) moves the jitter.
        assert BackoffPolicy(seed=4).schedule("cell", 8) != a.schedule(
            "cell", 8)
        assert a.schedule("other", 8) != a.schedule("cell", 8)

    def test_monotone_nondecreasing_up_to_the_cap(self):
        policy = BackoffPolicy(base=0.5, factor=2.0, cap=30.0, jitter=0.1)
        for key in ("a", "b", "c"):
            delays = policy.schedule(key, 12)
            assert all(lo <= hi for lo, hi in zip(delays, delays[1:]))
            assert delays[0] >= policy.base
            # Saturates at exactly the cap and stays there.
            assert delays[-1] == policy.cap

    def test_jitter_only_fuzzes_upward_within_bound(self):
        policy = BackoffPolicy(base=1.0, factor=2.0, cap=1000.0, jitter=0.25)
        for attempt in range(6):
            raw = policy.base * policy.factor ** attempt
            delay = policy.delay("k", attempt)
            assert raw <= delay <= raw * 1.25

    def test_invalid_schedules_are_rejected_at_construction(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=0.0)
        with pytest.raises(ValueError):
            BackoffPolicy(base=2.0, cap=1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            # factor < 1 + jitter could rewind the schedule.
            BackoffPolicy(factor=1.05, jitter=0.1)
        with pytest.raises(ValueError):
            BackoffPolicy().delay("k", -1)


class TestFaultSchedule:
    def test_default_schedule_injects_nothing(self):
        quiet = FaultSchedule()
        assert not quiet.any_configured()
        assert not any(quiet.kill_worker(f"d{i}", a)
                       or quiet.drop_completion(f"d{i}", a)
                       or quiet.duplicate_delivery(f"d{i}", a)
                       or quiet.delay_heartbeat(f"d{i}", a)
                       for i in range(20) for a in range(3))

    def test_decisions_replay_bit_for_bit(self):
        a = FaultSchedule(seed=9, kill_rate=0.3, drop_rate=0.3,
                          duplicate_rate=0.3, delay_rate=0.3)
        b = FaultSchedule(seed=9, kill_rate=0.3, drop_rate=0.3,
                          duplicate_rate=0.3, delay_rate=0.3)
        events = [(f"digest{i}", attempt)
                  for i in range(50) for attempt in range(3)]
        assert ([a.kill_worker(d, t) for d, t in events]
                == [b.kill_worker(d, t) for d, t in events])
        assert ([a.drop_completion(d, t) for d, t in events]
                == [b.drop_completion(d, t) for d, t in events])
        # A nonzero rate actually fires somewhere.
        assert any(a.kill_worker(d, t) for d, t in events)

    def test_scripted_sets_force_exact_coordinates(self):
        plan = FaultSchedule(kill={("cell", 1)}, duplicate={"twin"},
                             poison={"cursed"})
        assert plan.any_configured()
        assert not plan.kill_worker("cell", 0)
        assert plan.kill_worker("cell", 1)
        # Duplicates fire on the first dispatch only.
        assert plan.duplicate_delivery("twin", 0)
        assert not plan.duplicate_delivery("twin", 1)
        # Poison kills every attempt: the dead-letter guarantee.
        assert all(plan.kill_worker("cursed", attempt)
                   for attempt in range(10))

    def test_rates_outside_unit_interval_are_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule(kill_rate=1.5)
        with pytest.raises(ValueError):
            FaultSchedule(delay_rate=-0.1)


class TestBrokerProtocol:
    def _broker(self, **kwargs):
        kwargs.setdefault("lease_timeout", 5.0)
        kwargs.setdefault("backoff", BackoffPolicy(base=1.0, jitter=0.0))
        return InProcessBroker(**kwargs)

    def test_enqueue_is_idempotent_per_key(self):
        broker = self._broker()
        assert broker.enqueue("a") is True
        assert broker.enqueue("a") is False
        assert broker.counters["enqueued"] == 1

    def test_happy_path_lease_then_complete(self):
        broker = self._broker()
        broker.enqueue("a", payload="job-a")
        lease = broker.lease(now=0.0)
        assert lease.key == "a" and lease.attempt == 0
        assert lease.payload == "job-a"
        assert broker.state("a") == LEASED
        assert broker.complete(lease.lease_id, now=1.0) == "completed"
        assert broker.state("a") == DONE
        assert broker.outstanding() == 0

    def test_leases_deliver_oldest_eligible_first(self):
        broker = self._broker()
        for key in ("a", "b", "c"):
            broker.enqueue(key)
        assert [broker.lease(0.0).key for _ in range(3)] == ["a", "b", "c"]
        assert broker.lease(0.0) is None

    def test_heartbeat_extends_the_deadline(self):
        broker = self._broker()
        broker.enqueue("a")
        lease = broker.lease(now=0.0)
        assert broker.heartbeat(lease.lease_id, now=4.0) is True
        # Without the beat the lease would have died at t=5.
        assert broker.expire(now=6.0) == []
        assert broker.state("a") == LEASED
        # The extended deadline (4 + 5) is still enforced.
        assert broker.expire(now=9.0) == [lease.lease_id]

    def test_expired_lease_requeues_with_backoff_hold(self):
        broker = self._broker()
        broker.enqueue("a")
        lease = broker.lease(now=0.0)
        assert broker.expire(now=5.0) == [lease.lease_id]
        assert broker.state("a") == QUEUED
        assert broker.counters["expired"] == 1
        assert broker.counters["retried"] == 1
        # The backoff hold keeps the task off the queue...
        hold = broker.next_eligible()
        assert hold == 5.0 + broker.backoff.delay("a", 0)
        assert broker.lease(now=hold - 0.5) is None
        # ...and the retry is a fresh attempt.
        retry = broker.lease(now=hold)
        assert retry.attempt == 1
        # A beat on the reaped lease tells the worker to stand down.
        assert broker.heartbeat(lease.lease_id, now=hold) is False

    def test_late_completion_is_accepted_then_duplicates_absorbed(self):
        """A straggler's result equals a retry's: digest addressing."""
        broker = self._broker()
        broker.enqueue("a")
        first = broker.lease(now=0.0)
        broker.expire(now=5.0)
        hold = broker.next_eligible()
        second = broker.lease(now=hold)
        # The original worker finally reports in: accepted as late.
        assert broker.complete(first.lease_id, now=hold + 1) == "late"
        assert broker.state("a") == DONE
        # The retry's completion is now a counted no-op.
        assert broker.complete(second.lease_id, now=hold + 2) == "duplicate"
        assert broker.counters["late"] == 1
        assert broker.counters["duplicates"] == 1
        assert broker.counters["completed"] == 1

    def test_retry_exhaustion_produces_one_dead_letter(self):
        broker = self._broker(max_attempts=2)
        broker.enqueue("a", payload="job-a")
        now = 0.0
        for _ in range(2):
            broker.lease(now)
            broker.expire(now + 5.0)
            eligible = broker.next_eligible()
            now = eligible if eligible is not None else now + 5.0
        assert broker.state("a") == DEAD
        assert broker.outstanding() == 0
        assert broker.lease(now) is None
        [letter] = broker.dead_letters
        assert letter.key == "a" and letter.attempts == 2
        assert letter.reason == "lease expired after 2 attempts"
        assert letter.payload == "job-a"
        assert broker.counters["dead"] == 1

    def test_explicit_fail_requeues_without_waiting_for_expiry(self):
        broker = self._broker()
        broker.enqueue("a")
        lease = broker.lease(now=0.0)
        assert broker.fail(lease.lease_id, now=1.0, reason="oom") == "requeued"
        assert broker.state("a") == QUEUED
        retry = broker.lease(now=broker.next_eligible())
        broker.complete(retry.lease_id, now=10.0)
        # Failing a finished task is a no-op.
        assert broker.fail(retry.lease_id, now=11.0) == "ignored"

    def test_duplicate_lease_shares_the_attempt_number(self):
        """A twin delivery is the same attempt arriving twice."""
        broker = self._broker()
        broker.enqueue("a")
        assert broker.duplicate_lease("a", now=0.0) is None  # still QUEUED
        original = broker.lease(now=0.0)
        twin = broker.duplicate_lease("a", now=1.0)
        assert twin.attempt == original.attempt == 0
        assert twin.lease_id != original.lease_id
        assert broker.counters["duplicated"] == 1
        assert broker.complete(twin.lease_id, now=2.0) == "completed"
        assert broker.complete(original.lease_id, now=3.0) == "duplicate"
        assert broker.duplicate_lease("a", now=4.0) is None  # DONE now

    def test_constructor_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            InProcessBroker(lease_timeout=0.0)
        with pytest.raises(ValueError):
            InProcessBroker(max_attempts=0)

    def test_lease_owner_index_is_pruned_once_tasks_resolve(self):
        """Regression: a long-lived broker must not leak one lease-index
        entry per lease forever (exactly what the networked tier, whose
        broker outlives every run, would hit)."""
        broker = self._broker(max_attempts=2)
        # "a": completes on its second attempt after one expiry.
        broker.enqueue("a")
        broker.lease(now=0.0)
        broker.expire(now=5.0)
        retry = broker.lease(now=broker.next_eligible())
        assert broker.complete(retry.lease_id, now=20.0) == "completed"
        # "b": exhausts its retries into a dead letter.
        broker.enqueue("b")
        now = 20.0
        for _ in range(2):
            broker.lease(now)
            broker.expire(now + 5.0)
            eligible = broker.next_eligible()
            now = eligible if eligible is not None else now + 5.0
        assert broker.state("a") == DONE and broker.state("b") == DEAD
        assert broker.outstanding() == 0
        # Four leases were issued; none may linger in the index.
        assert broker._lease_owner == {}

    def test_straggler_completion_after_prune_is_a_duplicate(self):
        """A pruned (but once-issued) lease id is absorbed, not an error;
        a never-issued id is still a loud caller bug."""
        broker = self._broker()
        broker.enqueue("a")
        first = broker.lease(now=0.0)
        broker.expire(now=5.0)
        second = broker.lease(now=broker.next_eligible())
        assert broker.complete(second.lease_id, now=20.0) == "completed"
        # The index was pruned at completion; the straggler's id is gone
        # but must still be absorbed idempotently.
        assert broker.complete(first.lease_id, now=21.0) == "duplicate"
        assert broker.fail(first.lease_id, now=21.0) == "ignored"
        assert broker.heartbeat(first.lease_id, now=21.0) is False
        assert broker.counters["duplicates"] == 1
        with pytest.raises(KeyError):
            broker.complete(999, now=22.0)
        with pytest.raises(KeyError):
            broker.fail(999, now=22.0)

    def test_completion_values_ship_through_the_broker(self):
        """The networked channel home: first completion pins the values,
        duplicates never overwrite them."""
        broker = self._broker()
        broker.enqueue("a")
        lease = broker.lease(now=0.0)
        assert broker.result("a") is None
        twin = broker.duplicate_lease("a", now=0.5)
        assert broker.complete(lease.lease_id, now=1.0,
                               values=[1.0, 2.0], elapsed=0.25) == "completed"
        assert broker.result("a") == ([1.0, 2.0], 0.25)
        assert broker.complete(twin.lease_id, now=2.0,
                               values=[9.0, 9.0], elapsed=9.0) == "duplicate"
        assert broker.result("a") == ([1.0, 2.0], 0.25)


class TestFleetStats:
    def test_merge_accumulates_every_counter(self):
        a = FleetStats(leased=2, completed=2)
        b = FleetStats(leased=3, retried=1, dead=1)
        a.merge(b)
        assert a.leased == 5 and a.completed == 2
        assert a.retried == 1 and a.dead == 1

    def test_as_dict_mirrors_the_fields_and_active_detects_work(self):
        stats = FleetStats()
        assert not stats.active()
        payload = stats.as_dict()
        assert set(payload) == {
            "enqueued", "leased", "duplicated", "heartbeats", "completed",
            "duplicates", "late", "expired", "retried", "dead", "killed",
            "dropped", "reconnects", "replayed"}
        stats.enqueued = 1
        assert stats.active()


class TestEngineRegistration:
    def test_get_executor_resolves_fleet(self):
        executor = get_executor("fleet")
        assert isinstance(executor, FleetExecutor)
        sized = get_executor("fleet", max_workers=2)
        assert sized.options.n_workers == 2

    def test_unknown_executor_error_lists_fleet(self):
        with pytest.raises(ValueError, match="fleet"):
            get_executor("boat")

    def test_fleet_options_validation(self):
        with pytest.raises(ValueError):
            FleetOptions(n_workers=0)
        with pytest.raises(ValueError):
            FleetOptions(tick=0.0)
        with pytest.raises(ValueError):
            FleetOptions(max_attempts=0)
        with pytest.raises(ValueError):
            FleetOptions(dead_letter_policy="shrug")


class TestFleetExecutor:
    def test_empty_grid_is_a_no_op(self):
        assert FleetExecutor().run([]) == []

    def test_faultless_fleet_matches_serial_bit_for_bit(self):
        executor = FleetExecutor()
        fleet = _run(executor)
        serial = _run("serial")
        assert fleet.series == serial.series
        stats = executor.stats
        assert stats.enqueued == stats.completed == 8
        assert stats.retried == stats.dead == stats.expired == 0

    def test_acceptance_grid_survives_kill_drop_delay_duplicate(self):
        """The issue's acceptance bar: 8 cells, >=1 killed worker and
        >=1 duplicated completion, run_id-grade parity with serial."""
        digests = _grid_digests()
        probe = FleetExecutor()
        kill_target, drop_target = digests[0], digests[1]
        faulted = {kill_target, drop_target}
        # Heartbeat suppression only bites cells outliving the lease.
        long_cells = [d for d in digests if d not in faulted
                      and probe._duration(d) > 5.0]
        delay_target = long_cells[0] if long_cells else None
        faulted |= {delay_target} if delay_target else set()
        # The duplicate twin shares its original's attempt number, so a
        # target with another scripted fault would die twice — pick the
        # longest-running clean cell to guarantee the twin dispatches.
        dup_target = max((d for d in digests if d not in faulted),
                         key=probe._duration)
        faults = FaultSchedule(
            kill=frozenset({(kill_target, 0)}),
            drop=frozenset({(drop_target, 0)}),
            delay=frozenset({(delay_target, 0)} if delay_target else ()),
            duplicate=frozenset({dup_target}))
        executor = FleetExecutor(FleetOptions(n_workers=4, faults=faults))

        fleet = _run(executor)
        serial = _run("serial")

        assert fleet.series == serial.series
        stats = executor.stats
        assert stats.killed == 1        # a worker died mid-job
        assert stats.dropped == 1       # a completion was lost in transit
        assert stats.duplicated == 1    # a cell was delivered twice
        assert stats.duplicates >= 1    # ...and the loser was absorbed
        assert stats.retried >= 2       # kill + drop both requeued
        assert stats.expired >= 2
        assert stats.dead == 0
        assert executor.dead_letters == []

    def test_fleet_cells_land_in_the_cache_and_rerun_is_free(self, tmp_path):
        first = FleetExecutor()
        run_grid(_fleet_point, "x", X_VALUES, "series", SERIES_VALUES,
                 n_trials=N_TRIALS, seed=GRID_SEED, executor=first,
                 cache=ResultCache(tmp_path))
        assert first.stats.enqueued == 8
        warm = ResultCache(tmp_path)
        second = FleetExecutor()
        rerun = run_grid(_fleet_point, "x", X_VALUES, "series",
                         SERIES_VALUES, n_trials=N_TRIALS, seed=GRID_SEED,
                         executor=second, cache=warm)
        # Every cell hit the cache; the fleet never even spun up.
        assert (warm.hits, warm.misses) == (8, 0)
        assert not second.stats.active()
        assert rerun.series == _run("serial").series

    def test_poisoned_cell_raises_under_the_raise_policy(self):
        digests = _grid_digests()
        options = FleetOptions(
            faults=FaultSchedule(poison=frozenset({digests[0]})),
            dead_letter_policy="raise")
        with pytest.raises(FleetError, match="dead-lettered"):
            _run(FleetExecutor(options))

    def test_poisoned_cell_dead_letters_under_the_record_policy(self,
                                                                tmp_path):
        digests = _grid_digests()
        poisoned = digests[0]
        executor = FleetExecutor(FleetOptions(
            faults=FaultSchedule(poison=frozenset({poisoned}))))
        cache = ResultCache(tmp_path)
        result = run_grid(_fleet_point, "x", X_VALUES, "series",
                          SERIES_VALUES, n_trials=N_TRIALS, seed=GRID_SEED,
                          executor=executor, cache=cache)
        stats = executor.stats
        assert stats.dead == 1 and stats.killed == executor.options.max_attempts
        [letter] = executor.dead_letters
        assert letter["digest"] == poisoned
        assert letter["attempts"] == executor.options.max_attempts
        assert "lease expired" in letter["reason"]
        # The placeholder never poisons the cache...
        jobs = build_jobs("x", X_VALUES, "series", SERIES_VALUES,
                          n_trials=N_TRIALS, seed=GRID_SEED,
                          code_token=point_fingerprint(_fleet_point))
        assert cache.get(jobs[0]) is None
        assert all(cache.get(job) is not None for job in jobs[1:])
        # ...and every healthy cell still matches serial.
        serial = _run("serial")
        for series in SERIES_VALUES:
            for fleet_stat, serial_stat in zip(result.series[series],
                                               serial.series[series]):
                if fleet_stat != serial_stat:
                    assert fleet_stat.mean == 0.0
        payload = executor.record_payload()
        assert payload["counters"]["dead"] == 1
        assert payload["dead_letters"][0]["digest"] == poisoned


class TestServiceTierFleet:
    def test_service_fleet_run_matches_committed_baseline(self, tmp_path):
        """Bench/CLI/served parity extends to the fleet executor."""
        committed = json.loads(
            (BASELINES / f"{CHEAP_BENCH}.json").read_text())
        core = ServiceCore(cache=tmp_path / "cache")
        run = core.run_bench(CHEAP_BENCH, executor="fleet")
        assert run.record.run_id == committed["run_id"]
        assert run.record.executor == "fleet"
        assert run.record.fleet is not None
        n_cells = run.record.n_cells()
        assert run.record.fleet["counters"]["completed"] == n_cells
        # Core-lifetime counters feed /stats and cache stats --json.
        assert core.fleet_stats.completed == n_cells

    def test_fleet_telemetry_rides_records_without_moving_run_id(
            self, tmp_path):
        core = ServiceCore(cache=tmp_path / "cache")
        fleet_run = core.run_bench(CHEAP_BENCH, executor="fleet")
        serial_run = ServiceCore(
            cache=tmp_path / "cache2").run_bench(CHEAP_BENCH)
        assert fleet_run.record.run_id == serial_run.record.run_id
        path = save_record(fleet_run.record, tmp_path / "fleet.json")
        reloaded = load_record(path)
        assert reloaded.run_id == fleet_run.record.run_id
        assert reloaded.fleet == fleet_run.record.fleet
        # Serial records carry no fleet key at all — byte-stable.
        assert serial_run.record.fleet is None
        assert "fleet" not in json.loads(
            save_record(serial_run.record,
                        tmp_path / "serial.json").read_text())

    def test_dead_letter_diffs_as_value_drift_not_corruption(self, tmp_path):
        """Retry exhaustion must read as 'same experiment, wrong numbers'
        (exit 1) — comparable provenance, never a corrupt record."""
        committed = load_record(BASELINES / f"{CHEAP_BENCH}.json")
        poisoned = committed.panels[0].cells[0].digest
        core = ServiceCore(
            cache=tmp_path / "cache",
            fleet=FleetOptions(
                faults=FaultSchedule(poison=frozenset({poisoned}))))
        broken = core.run_bench(CHEAP_BENCH, executor="fleet").record
        assert broken.fleet["counters"]["dead"] == 1
        assert broken.fleet["dead_letters"][0]["digest"] == poisoned
        diff = diff_records(committed, broken, "baseline", "fleet")
        assert not diff.provenance_drift
        assert diff.value_drift
        assert diff.exit_code == 1
        assert "VALUE DRIFT" in diff.format_summary()
