"""Chaos smoke: the serving tier on a fault-injected fleet, fig05 parity.

The end-to-end claim: boot the real HTTP server over a service core
whose fleet executor kills workers, drops completions, suppresses
heartbeats, and duplicates deliveries at nonzero rates — then ``POST
/run`` the committed fig05 bench through it and get the committed
baseline's ``run_id`` back, with the record's provenance and values
identical to the baseline (``diff_records`` exit 0; the executor label
and fleet telemetry are environment notes, excluded from ``run_id`` by
design).  The injected faults must *visibly* fire — a chaos test whose
schedule did nothing proves nothing — so the fleet counters surfaced by
``GET /stats`` are asserted too.

Marked ``slow``: each case computes a real bench at laptop scale
(seconds, not minutes; the fault simulation itself runs on virtual
time).  Deselect with ``-m "not slow"`` for the fastest signal.
"""

import json
from pathlib import Path

import pytest

from repro.fleet import FaultSchedule, FleetOptions
from repro.results import diff_records, load_record
from repro.server.smoke import _request, _start_server
from repro.service import ServiceCore

REPO_ROOT = Path(__file__).parent.parent
RESULTS = REPO_ROOT / "benchmarks" / "results"
BASELINES = REPO_ROOT / "benchmarks" / "baselines"

#: The committed figure baseline the chaos run must reproduce exactly.
FIG_BENCH = "fig05_lasso_lognormal"

#: Every fault mode at a rate that demonstrably fires on this grid;
#: ``max_attempts=6`` keeps the worst-faulted cell clear of retry
#: exhaustion (the test asserts ``dead == 0`` so a retuned rate that
#: breaks this fails loudly rather than quietly relaxing parity).
CHAOS_FLEET = FleetOptions(
    n_workers=4, max_attempts=6,
    faults=FaultSchedule(seed=7, kill_rate=0.15, drop_rate=0.1,
                         duplicate_rate=0.25, delay_rate=0.2))

pytestmark = pytest.mark.slow


@pytest.fixture()
def chaotic_server(tmp_path):
    """A live server whose fleet executor runs under the chaos schedule."""
    core = ServiceCore(results_dir=RESULTS, baselines_dir=BASELINES,
                       cache=tmp_path / "cache", fleet=CHAOS_FLEET)
    server = _start_server(core)
    return core, f"http://{server.host}:{server.port}"


class TestChaosServing:
    def test_posted_fleet_run_reproduces_the_committed_fig05(
            self, chaotic_server, tmp_path):
        core, base = chaotic_server
        committed = json.loads((BASELINES / f"{FIG_BENCH}.json").read_text())

        body = json.dumps({"name": FIG_BENCH, "executor": "fleet"}).encode()
        status, headers, response = _request(f"{base}/run", method="POST",
                                             body=body)
        assert status == 200
        payload = json.loads(response)
        assert payload["run_id"] == committed["run_id"]
        assert payload["config_digest"] == committed["config_digest"]
        assert headers["etag"] == f'"{committed["run_id"]}"'

        # The schedule actually hurt the fleet — and the fleet absorbed
        # every injury without losing a cell.
        fleet = payload["stats"]["fleet"]
        n_cells = payload["cells"]
        assert fleet["completed"] == n_cells
        assert fleet["killed"] + fleet["dropped"] > 0
        assert fleet["duplicated"] > 0 and fleet["duplicates"] > 0
        assert fleet["retried"] > 0 and fleet["expired"] > 0
        assert fleet["dead"] == 0

        # Beyond run_id equality: the computed record is the committed
        # record — same provenance, same numbers, bit for bit.  Only
        # environment notes (executor label) may differ.
        baseline = load_record(BASELINES / f"{FIG_BENCH}.json")
        rerun = core.run_bench(FIG_BENCH, executor="fleet").record
        diff = diff_records(baseline, rerun, "baseline", "chaos-fleet")
        assert diff.exit_code == 0
        assert diff.identical

    def test_stats_endpoint_exposes_the_fleet_counters(self, chaotic_server):
        core, base = chaotic_server
        body = json.dumps({"name": FIG_BENCH, "executor": "fleet"}).encode()
        assert _request(f"{base}/run", method="POST", body=body)[0] == 200

        status, _, stats_body = _request(f"{base}/stats")
        assert status == 200
        stats = json.loads(stats_body)
        assert stats["fleet"] == core.fleet_stats.as_dict()
        assert stats["fleet"]["completed"] > 0
        assert stats["fleet"]["leased"] >= stats["fleet"]["completed"]

        # A warm repost recomputes nothing: every cell is cached, the
        # fleet never spins up, and the counters hold still.
        before = dict(stats["fleet"])
        status, _, response = _request(f"{base}/run", method="POST",
                                       body=body)
        assert status == 200
        after = json.loads(response)["stats"]["fleet"]
        assert after == before
