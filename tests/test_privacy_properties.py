"""Privacy property tests: the sensitivities the mechanisms are
calibrated to must hold *empirically* on adversarial neighbouring
datasets, and the exponential mechanism must satisfy its defining
inequality exactly.

These are the tests that would catch a silent privacy bug (wrong
constant, un-clipped influence, forgotten factor of 2) that pure utility
tests never would.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.estimators import CatoniEstimator, TruncatedMeanEstimator, shrink_dataset
from repro.geometry import L1Ball
from repro.losses import SquaredLoss
from repro.privacy import ExponentialMechanism

ADVERSARIAL_VALUES = (1e12, -1e12, 0.0, 1.0)


class TestExponentialMechanismInequality:
    @given(
        scores=hnp.arrays(np.float64, 6, elements=st.floats(-5, 5)),
        bumps=hnp.arrays(np.float64, 6, elements=st.floats(-1, 1)),
    )
    @settings(max_examples=60)
    def test_probability_ratio_bounded(self, scores, bumps):
        """For score vectors differing by <= sensitivity entrywise, every
        candidate's selection probability changes by at most e^eps."""
        eps, sensitivity = 1.3, 1.0
        mech = ExponentialMechanism(epsilon=eps, sensitivity=sensitivity)
        p = mech.probabilities(scores)
        q = mech.probabilities(scores + bumps * sensitivity)
        ratio = np.max(p / np.maximum(q, 1e-300))
        assert ratio <= math.exp(eps) * (1 + 1e-9)


class TestCatoniSensitivityVectorised:
    def test_column_estimate_sensitivity(self, rng):
        """Replacing one row moves every column estimate by <= 4sqrt(2)s/(3m)."""
        est = CatoniEstimator(scale=2.0)
        X = rng.normal(size=(120, 5))
        base = est.estimate_columns(X)
        for value in ADVERSARIAL_VALUES:
            X2 = X.copy()
            X2[0] = value
            moved = est.estimate_columns(X2)
            assert np.max(np.abs(moved - base)) <= est.sensitivity(120) + 1e-12

    def test_truncated_estimator_sensitivity(self, rng):
        est = TruncatedMeanEstimator(threshold=3.0)
        X = rng.normal(size=(80, 4))
        base = est.estimate_columns(X)
        for value in ADVERSARIAL_VALUES:
            X2 = X.copy()
            X2[0] = value
            moved = est.estimate_columns(X2)
            assert np.max(np.abs(moved - base)) <= est.sensitivity(80) + 1e-12


class TestAlgorithm1ScoreSensitivity:
    def test_score_change_bounded(self, rng):
        """The exponential-mechanism score sensitivity used by Alg 1
        (diameter * 4sqrt(2)s/(3m)) holds for adversarial replacements."""
        loss = SquaredLoss()
        ball = L1Ball(6)
        est = CatoniEstimator(scale=5.0)
        m = 60
        X = rng.lognormal(sigma=0.6, size=(m, 6))
        y = rng.normal(size=m)
        w = ball.initial_point() + 0.05
        base_scores = ball.vertex_scores(
            est.estimate_columns(loss.per_sample_gradients(w, X, y)))
        claimed = ball.l1_diameter() * est.sensitivity(m)
        for value in ADVERSARIAL_VALUES:
            X2, y2 = X.copy(), y.copy()
            X2[0], y2[0] = value, -value if value else 1.0
            scores = ball.vertex_scores(
                est.estimate_columns(loss.per_sample_gradients(w, X2, y2)))
            assert np.max(np.abs(scores - base_scores)) <= claimed + 1e-9


class TestAlgorithm2ScoreSensitivity:
    def test_shrunken_gradient_score_bounded(self, rng):
        """Alg 2's sensitivity 4 * diameter * K^2 / n for the shrunken
        squared-loss gradient scores."""
        K, n, d = 3.0, 50, 5
        ball = L1Ball(d)
        X = rng.lognormal(sigma=1.0, size=(n, d))
        y = rng.normal(size=n) * 10
        Xs, ys = shrink_dataset(X, y, K)
        w = ball.initial_point()
        w[0] = 0.9  # near the boundary, worst case for <x, w>

        def scores(Xs_, ys_):
            g = 2.0 * Xs_.T @ (Xs_ @ w - ys_) / n
            return ball.vertex_scores(g)

        base = scores(Xs, ys)
        claimed = 4.0 * ball.l1_diameter() * K**2 / n
        for value in ADVERSARIAL_VALUES:
            X2, y2 = X.copy(), y.copy()
            X2[0], y2[0] = value, -value if value else 7.0
            Xs2, ys2 = shrink_dataset(X2, y2, K)
            assert np.max(np.abs(scores(Xs2, ys2) - base)) <= claimed + 1e-9


class TestAlgorithm3StepSensitivity:
    def test_half_step_linf_bounded(self, rng):
        """||w^{t+.5}(D) - w^{t+.5}(D')||_inf <= 2 K^2 eta0 (sqrt(s)+1)/m."""
        K, m, d, s, eta0 = 2.5, 40, 8, 3, 0.1
        X = rng.normal(size=(m, d)) * 5
        y = rng.normal(size=m) * 5
        Xs, ys = shrink_dataset(X, y, K)
        w = np.zeros(d)
        w[:s] = 1.0 / math.sqrt(s)  # s-sparse, unit norm

        def half_step(Xs_, ys_):
            return w - eta0 * Xs_.T @ (Xs_ @ w - ys_) / m

        base = half_step(Xs, ys)
        claimed = 2.0 * K**2 * eta0 * (math.sqrt(s) + 1.0) / m
        for value in ADVERSARIAL_VALUES:
            X2, y2 = X.copy(), y.copy()
            X2[0], y2[0] = value, -value if value else 3.0
            Xs2, ys2 = shrink_dataset(X2, y2, K)
            moved = half_step(Xs2, ys2)
            assert np.max(np.abs(moved - base)) <= claimed + 1e-9


class TestAlgorithm5StepSensitivity:
    def test_half_step_linf_bounded(self, rng):
        """||w^{t+.5}(D) - w^{t+.5}(D')||_inf <= 4 sqrt(2) eta k / (3 m)."""
        k, m, d, eta = 4.0, 50, 6, 0.2
        loss = SquaredLoss()
        est = CatoniEstimator(scale=k)
        X = rng.lognormal(sigma=0.8, size=(m, d))
        y = rng.normal(size=m)
        w = np.zeros(d)

        def half_step(X_, y_):
            g = est.estimate_columns(loss.per_sample_gradients(w, X_, y_))
            return w - eta * g

        base = half_step(X, y)
        claimed = 4.0 * math.sqrt(2.0) * eta * k / (3.0 * m)
        for value in ADVERSARIAL_VALUES:
            X2, y2 = X.copy(), y.copy()
            X2[0], y2[0] = value, -value if value else 2.0
            moved = half_step(X2, y2)
            assert np.max(np.abs(moved - base)) <= claimed + 1e-9
