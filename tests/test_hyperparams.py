"""Tests for the theory-driven hyper-parameter schedules."""

import math

import pytest

from repro.core import (
    classic_fw_steps,
    dpfw_schedule,
    lasso_schedule,
    sparse_linear_schedule,
    sparse_optimization_schedule,
)


class TestClassicSteps:
    def test_first_step(self):
        assert classic_fw_steps(3)[0] == pytest.approx(2.0 / 3.0)

    def test_monotone_decreasing(self):
        steps = classic_fw_steps(20)
        assert all(a > b for a, b in zip(steps, steps[1:]))

    def test_length(self):
        assert len(classic_fw_steps(7)) == 7


class TestDPFWSchedule:
    def test_paper_mode_T(self):
        sched = dpfw_schedule(10_000, 1.0, 100, 200, mode="paper")
        assert sched.n_iterations == int(10_000 ** (1 / 3))

    def test_theory_T_grows_with_n(self):
        small = dpfw_schedule(1_000, 1.0, 100, 200, mode="theory")
        large = dpfw_schedule(1_000_000, 1.0, 100, 200, mode="theory")
        assert large.n_iterations > small.n_iterations

    def test_scale_grows_with_n(self):
        small = dpfw_schedule(1_000, 1.0, 100, 200)
        large = dpfw_schedule(1_000_000, 1.0, 100, 200)
        assert large.scale > small.scale

    def test_chunk_size(self):
        sched = dpfw_schedule(10_000, 1.0, 100, 200, mode="paper")
        assert sched.chunk_size == 10_000 // sched.n_iterations

    def test_T_never_exceeds_n(self):
        sched = dpfw_schedule(5, 100.0, 10, 20, mode="paper")
        assert 1 <= sched.n_iterations <= 5

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            dpfw_schedule(100, 1.0, 10, 20, mode="bogus")


class TestLassoSchedule:
    def test_paper_T(self):
        sched = lasso_schedule(10_000, 1.0, 1e-5, 100, mode="paper")
        assert sched.n_iterations == int(10_000 ** 0.4)

    def test_threshold_consistent(self):
        sched = lasso_schedule(10_000, 1.0, 1e-5, 100)
        expected = (10_000) ** 0.25 / sched.n_iterations ** 0.125
        assert sched.threshold == pytest.approx(expected)

    def test_theory_mode_runs(self):
        sched = lasso_schedule(10_000, 1.0, 1e-5, 100, mode="theory")
        assert sched.n_iterations >= 1 and sched.threshold > 0

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            lasso_schedule(100, 1.0, 1e-5, 10, mode="x")


class TestSparseLinearSchedule:
    def test_log_n_iterations(self):
        sched = sparse_linear_schedule(10_000, 1.0, 5)
        assert sched.n_iterations == int(math.log(10_000))

    def test_selection_size(self):
        sched = sparse_linear_schedule(10_000, 1.0, 5, expansion=3)
        assert sched.selection_size == 15

    def test_threshold_uses_selection_size(self):
        sched = sparse_linear_schedule(10_000, 1.0, 5, expansion=2)
        expected = (10_000 / (10 * sched.n_iterations)) ** 0.25
        assert sched.threshold == pytest.approx(expected)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            sparse_linear_schedule(100, 1.0, 5, mode="nope")


class TestSparseOptimizationSchedule:
    def test_scale_positive_and_grows_with_n(self):
        small = sparse_optimization_schedule(1_000, 1.0, 5, 100)
        large = sparse_optimization_schedule(1_000_000, 1.0, 5, 100)
        assert 0 < small.scale < large.scale

    def test_scale_shrinks_with_sparsity(self):
        low = sparse_optimization_schedule(100_000, 1.0, 2, 100)
        high = sparse_optimization_schedule(100_000, 1.0, 50, 100)
        assert high.scale < low.scale

    def test_selection_size_default(self):
        sched = sparse_optimization_schedule(10_000, 1.0, 7, 100)
        assert sched.selection_size == 14
