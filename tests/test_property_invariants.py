"""Hypothesis property tests on the core value objects and invariants.

Complements the per-module suites with algebraic laws: budget algebra,
linear-oracle optimality, Peeling output structure, packing validity,
and the sweep/table plumbing.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import peeling
from repro.geometry import L1Ball, Simplex
from repro.lower_bound import greedy_packing, verify_packing
from repro.privacy import PrivacyBudget

# Deltas kept small so that sums/multiples in the algebra tests stay
# below the delta < 1 validity bound (which is itself tested in
# tests/test_privacy_budget.py).
budgets = st.builds(
    PrivacyBudget,
    epsilon=st.floats(min_value=1e-6, max_value=100),
    delta=st.floats(min_value=0, max_value=0.01),
)


class TestBudgetAlgebra:
    @given(budgets, budgets)
    @settings(max_examples=50)
    def test_addition_commutes(self, a, b):
        assert (a + b).epsilon == pytest.approx((b + a).epsilon)
        assert (a + b).delta == pytest.approx((b + a).delta)

    @given(budgets, budgets, budgets)
    @settings(max_examples=50)
    def test_addition_associates(self, a, b, c):
        left = (a + b) + c
        right = a + (b + c)
        assert left.epsilon == pytest.approx(right.epsilon)
        assert left.delta == pytest.approx(right.delta)

    @given(budgets, st.integers(min_value=1, max_value=20))
    @settings(max_examples=50)
    def test_multiplication_is_repeated_addition(self, budget, k):
        total = budget
        for _ in range(k - 1):
            total = total + budget
        product = budget * k
        assert product.epsilon == pytest.approx(total.epsilon)
        assert product.delta == pytest.approx(total.delta, abs=1e-12)

    @given(budgets)
    @settings(max_examples=50)
    def test_covers_is_reflexive(self, budget):
        assert budget.covers(budget)

    @given(budgets, budgets)
    @settings(max_examples=50)
    def test_sum_covers_summands(self, a, b):
        total = a + b
        assert total.covers(a)
        assert total.covers(b)


class TestLinearOracleOptimality:
    @given(hnp.arrays(np.float64, 12, elements=st.floats(-10, 10)))
    @settings(max_examples=50)
    def test_l1_ball_minimizer_beats_all_vertices(self, gradient):
        ball = L1Ball(12, radius=1.5)
        _, best = ball.linear_minimizer(gradient)
        best_value = float(best @ gradient)
        for i in range(ball.n_vertices):
            assert best_value <= float(ball.vertex(i) @ gradient) + 1e-9

    @given(hnp.arrays(np.float64, 9, elements=st.floats(-10, 10)))
    @settings(max_examples=50)
    def test_simplex_minimizer_beats_all_vertices(self, gradient):
        simplex = Simplex(9, radius=2.0)
        _, best = simplex.linear_minimizer(gradient)
        best_value = float(best @ gradient)
        for i in range(simplex.n_vertices):
            assert best_value <= float(simplex.vertex(i) @ gradient) + 1e-9

    @given(hnp.arrays(np.float64, 8, elements=st.floats(-5, 5)),
           st.floats(min_value=0.1, max_value=10))
    @settings(max_examples=50)
    def test_score_argmax_is_minimizer(self, gradient, radius):
        """vertex_scores and linear_minimizer must agree."""
        ball = L1Ball(8, radius=radius)
        scores = ball.vertex_scores(gradient)
        index, vertex = ball.linear_minimizer(gradient)
        assert scores[index] == pytest.approx(float(np.max(scores)))
        assert float(vertex @ gradient) == pytest.approx(-float(np.max(scores)))


class TestPeelingStructure:
    @given(hnp.arrays(np.float64, 20, elements=st.floats(-100, 100)),
           st.integers(min_value=1, max_value=20))
    @settings(max_examples=40)
    def test_support_is_distinct_and_sized(self, v, s):
        result = peeling(v, sparsity=s, epsilon=1.0, delta=1e-5,
                         noise_scale=0.1, rng=np.random.default_rng(0))
        assert result.support.size == s
        assert len(set(result.support.tolist())) == s
        outside = np.setdiff1d(np.arange(v.size), result.support)
        assert np.all(result.vector[outside] == 0.0)


class TestPackingProperty:
    @given(st.integers(min_value=4, max_value=12),
           st.integers(min_value=2, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_greedy_packing_always_valid(self, half_d, s):
        d = 4 * half_d  # keep d comfortably above s
        packing = greedy_packing(d, s, max_size=10,
                                 rng=np.random.default_rng(half_d * 31 + s))
        assert verify_packing(packing, s)
