"""Tests for the non-private robust mean baselines."""

import numpy as np
import pytest

from repro.estimators import (
    coordinatewise,
    empirical_mean,
    median_of_means,
    trimmed_mean,
)


class TestEmpiricalMean:
    def test_basic(self):
        assert empirical_mean(np.array([1.0, 2.0, 3.0])) == pytest.approx(2.0)

    def test_rejects_empty(self):
        with pytest.raises(Exception):
            empirical_mean(np.array([]))


class TestTrimmedMean:
    def test_no_trim_is_mean(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert trimmed_mean(x, 0.0) == pytest.approx(2.5)

    def test_trims_outliers(self):
        x = np.array([1.0] * 18 + [1e6, -1e6])
        assert trimmed_mean(x, 0.1) == pytest.approx(1.0)

    def test_rejects_half_or_more(self):
        with pytest.raises(ValueError):
            trimmed_mean(np.ones(10), 0.5)

    def test_small_sample_falls_back_to_mean(self):
        x = np.array([1.0, 5.0])
        # floor(0.1 * 2) == 0 -> plain mean
        assert trimmed_mean(x, 0.1) == pytest.approx(3.0)


class TestMedianOfMeans:
    def test_clean_data(self, rng):
        x = rng.normal(loc=2.0, size=8000)
        assert median_of_means(x, 10, rng=rng) == pytest.approx(2.0, abs=0.1)

    def test_robust_to_few_outliers(self, rng):
        x = rng.normal(loc=1.0, size=1000)
        x[:3] = 1e8
        assert median_of_means(x, 20, rng=rng) == pytest.approx(1.0, abs=0.3)

    def test_more_blocks_than_samples(self, rng):
        x = np.array([1.0, 2.0, 3.0])
        # blocks get clamped to the sample size
        out = median_of_means(x, 100, rng=rng)
        assert out == pytest.approx(2.0)

    def test_deterministic_given_rng(self):
        x = np.arange(100, dtype=float)
        a = median_of_means(x, 8, rng=np.random.default_rng(1))
        b = median_of_means(x, 8, rng=np.random.default_rng(1))
        assert a == b


class TestCoordinatewise:
    def test_applies_per_column(self, rng):
        X = np.column_stack([np.full(50, 1.0), np.full(50, -2.0)])
        out = coordinatewise(empirical_mean, X)
        np.testing.assert_allclose(out, [1.0, -2.0])

    def test_kwargs_forwarded(self):
        X = np.column_stack([np.concatenate([np.ones(18), [1e9, -1e9]])] * 2)
        out = coordinatewise(trimmed_mean, X, trim_fraction=0.1)
        np.testing.assert_allclose(out, [1.0, 1.0])

    def test_rejects_vector(self):
        with pytest.raises(ValueError):
            coordinatewise(empirical_mean, np.ones(5))
