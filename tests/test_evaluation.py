"""Tests for the evaluation harness: metrics, runner, sweeps, tables."""

import numpy as np
import pytest

from repro import SquaredLoss
from repro.evaluation import (
    ExperimentRunner,
    TrialStats,
    classification_accuracy,
    excess_empirical_risk,
    format_series_table,
    markdown_table,
    mean_squared_estimation_error,
    parameter_error,
    relative_risk_gap,
    shape_summary,
    support_recovery,
    sweep,
)


class TestMetrics:
    def test_excess_risk_zero_at_optimum(self, small_linear_data):
        X, y, w_star = small_linear_data
        assert excess_empirical_risk(SquaredLoss(), w_star, w_star, X, y) == 0.0

    def test_excess_risk_positive_away_from_optimum(self, small_linear_data):
        X, y, w_star = small_linear_data
        w = w_star + 0.5
        assert excess_empirical_risk(SquaredLoss(), w, w_star, X, y) > 0

    def test_parameter_error_norms(self):
        a, b = np.array([1.0, 0.0]), np.array([0.0, 0.0])
        assert parameter_error(a, b) == 1.0
        assert parameter_error(a, b, order=1) == 1.0

    def test_support_recovery_perfect(self):
        w = np.array([0.0, 1.0, 0.0, -1.0])
        metrics = support_recovery(w, w)
        assert metrics["precision"] == 1.0 and metrics["recall"] == 1.0
        assert metrics["f1"] == 1.0

    def test_support_recovery_partial(self):
        truth = np.array([1.0, 1.0, 0.0, 0.0])
        est = np.array([1.0, 0.0, 1.0, 0.0])
        metrics = support_recovery(est, truth)
        assert metrics["precision"] == 0.5 and metrics["recall"] == 0.5

    def test_support_recovery_empty_estimate(self):
        metrics = support_recovery(np.zeros(3), np.array([1.0, 0.0, 0.0]))
        assert metrics["precision"] == 0.0 and metrics["recall"] == 0.0
        assert metrics["f1"] == 0.0

    def test_classification_accuracy(self, rng):
        X = rng.normal(size=(500, 3))
        w = np.array([1.0, 0.0, 0.0])
        y = np.where(X @ w > 0, 1.0, -1.0)
        assert classification_accuracy(w, X, y) == 1.0
        assert classification_accuracy(-w, X, y) == 0.0

    def test_mse(self):
        assert mean_squared_estimation_error(np.array([1.0, 1.0]),
                                             np.zeros(2)) == 2.0

    def test_relative_risk_gap(self, small_linear_data):
        X, y, w_star = small_linear_data
        loss = SquaredLoss()
        gap = relative_risk_gap(loss, w_star + 0.1, w_star, X, y)
        assert gap > 0


class TestRunner:
    def test_trial_stats(self):
        stats = TrialStats.from_values([1.0, 2.0, 3.0])
        assert stats.mean == 2.0
        assert stats.minimum == 1.0 and stats.maximum == 3.0
        assert stats.n_trials == 3

    def test_stderr_uses_sample_std(self):
        values = [1.0, 2.0, 3.0, 6.0]
        stats = TrialStats.from_values(values)
        sample_std = np.std(values, ddof=1)
        assert stats.stderr == pytest.approx(sample_std / np.sqrt(len(values)))
        # Equivalent closed form from the stored population std.
        assert stats.stderr == pytest.approx(stats.std / np.sqrt(len(values) - 1))

    def test_stderr_single_trial_is_zero(self):
        stats = TrialStats.from_values([4.2])
        assert stats.stderr == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TrialStats.from_values([])

    def test_runner_deterministic(self):
        runner = ExperimentRunner(n_trials=5, seed=1)
        f = lambda rng: float(rng.normal())
        assert runner.run(f).mean == ExperimentRunner(n_trials=5, seed=1).run(f).mean

    def test_runner_trials_independent(self):
        runner = ExperimentRunner(n_trials=50, seed=0)
        stats = runner.run(lambda rng: float(rng.normal()))
        assert stats.std > 0.4  # not identical draws

    def test_run_multi(self):
        runner = ExperimentRunner(n_trials=4, seed=0)
        out = runner.run_multi(lambda rng: {"a": 1.0, "b": float(rng.uniform())})
        assert out["a"].mean == 1.0
        assert 0 <= out["b"].mean <= 1


class TestSweep:
    def test_grid_shape(self):
        result = sweep(lambda series, x, rng: float(x) * series,
                       "n", [1, 2, 4], "d", [1, 10], n_trials=2, seed=0)
        assert result.sweep_values == [1, 2, 4]
        assert set(result.series) == {1, 10}
        assert len(result.series[1]) == 3

    def test_means_and_decreasing(self):
        result = sweep(lambda series, x, rng: 1.0 / x,
                       "n", [1, 2, 4], "d", [1], n_trials=2, seed=0)
        np.testing.assert_allclose(result.means(1), [1.0, 0.5, 0.25])
        assert result.is_decreasing(1)

    def test_not_decreasing(self):
        result = sweep(lambda series, x, rng: float(x),
                       "n", [1, 2], "d", [1], n_trials=1, seed=0)
        assert not result.is_decreasing(1)

    def test_is_decreasing_relative_slack(self):
        # Curve rises 1.0 -> 1.1: a 10% rise, forgiven by slack >= 0.1.
        result = sweep(lambda series, x, rng: 1.0 + 0.1 * (x - 1),
                       "n", [1, 2], "d", [1], n_trials=1, seed=0)
        assert not result.is_decreasing(1)
        assert not result.is_decreasing(1, slack=0.05)
        assert result.is_decreasing(1, slack=0.11)

    def test_is_decreasing_zero_baseline_uses_absolute_slack(self):
        # Starting at exactly 0.0, multiplicative slack would grant no
        # allowance at all; slack must act as an absolute tolerance.
        result = sweep(lambda series, x, rng: 0.0 if x == 1 else 0.05,
                       "n", [1, 2], "d", [1], n_trials=1, seed=0)
        assert not result.is_decreasing(1)
        assert result.is_decreasing(1, slack=0.06)

    def test_is_decreasing_dust_baseline_treated_as_zero(self):
        # A baseline that is zero up to floating dust must behave like
        # the exact-zero case, not get a ~1e-17-sized allowance.
        result = sweep(lambda series, x, rng: 5e-17 if x == 1 else 0.05,
                       "n", [1, 2], "d", [1], n_trials=1, seed=0)
        assert not result.is_decreasing(1)
        assert result.is_decreasing(1, slack=0.06)

    def test_is_decreasing_negative_baseline(self):
        # A negative start must still get a positive allowance (the old
        # multiplicative form *tightened* the check below zero).
        result = sweep(lambda series, x, rng: -1.0 if x == 1 else -0.95,
                       "n", [1, 2], "d", [1], n_trials=1, seed=0)
        assert not result.is_decreasing(1)
        assert result.is_decreasing(1, slack=0.1)

    def test_format_table_contains_values(self):
        result = sweep(lambda series, x, rng: 0.5,
                       "eps", [0.1, 1.0], "d", [50], n_trials=1, seed=0)
        table = result.format_table(title="demo")
        assert "demo" in table and "eps" in table and "0.50000" in table


class TestTables:
    def test_format_series_table(self):
        table = format_series_table("n", [10, 20],
                                    {"private": [0.5, 0.25],
                                     "non-private": [0.1, 0.05]})
        assert "private" in table
        assert "0.25000" in table

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            format_series_table("n", [1, 2], {"a": [1.0]})

    def test_shape_summary_direction(self):
        text = shape_summary([1, 8], [0.4, 0.1])
        assert "down" in text

    def test_markdown_table(self):
        md = markdown_table(["a", "b"], [[1, 2], [3, 4]])
        assert md.startswith("| a | b |")
        assert "| 3 | 4 |" in md
