"""Tests for the private heavy-tailed mean estimators."""

import numpy as np
import pytest

from repro.estimators import PrivateSparseMeanEstimator, private_mean_catoni_laplace
from repro.privacy import PrivacyAccountant


class TestDensePrivateMean:
    def test_accuracy_at_large_epsilon(self, rng):
        mean = np.array([1.0, -0.5, 0.25])
        x = rng.normal(loc=mean, scale=1.0, size=(20_000, 3))
        est = private_mean_catoni_laplace(x, epsilon=50.0, second_moment=3.0,
                                          rng=rng)
        np.testing.assert_allclose(est, mean, atol=0.2)

    def test_accountant_charged(self, rng):
        acc = PrivacyAccountant()
        x = rng.normal(size=(500, 2))
        private_mean_catoni_laplace(x, epsilon=1.0, rng=rng, accountant=acc)
        assert acc.total_epsilon == pytest.approx(1.0)
        assert acc.total.is_pure

    def test_error_grows_with_dimension(self, rng):
        """The dense estimator's noise is the poly(d) behaviour the paper avoids."""
        errors = {}
        for d in (4, 64):
            trials = []
            for _ in range(30):
                x = rng.normal(size=(2000, d))
                est = private_mean_catoni_laplace(x, epsilon=1.0, rng=rng)
                trials.append(np.max(np.abs(est)))
            errors[d] = np.mean(trials)
        assert errors[64] > 4.0 * errors[4]

    def test_explicit_scale_respected(self, rng):
        x = rng.normal(size=(100, 2))
        out = private_mean_catoni_laplace(x, epsilon=1.0, scale=5.0, rng=rng)
        assert out.shape == (2,)


class TestSparsePrivateMean:
    def test_recovers_support_at_large_epsilon(self, rng):
        d, s = 50, 3
        mean = np.zeros(d)
        mean[:s] = [2.0, -2.0, 1.5]
        x = rng.normal(loc=mean, scale=0.5, size=(20_000, d))
        est = PrivateSparseMeanEstimator(sparsity=s, epsilon=20.0, delta=1e-5,
                                         second_moment=6.0)
        out = est.estimate(x, rng=rng)
        assert set(np.nonzero(out)[0]) == {0, 1, 2}
        np.testing.assert_allclose(out[:s], mean[:s], atol=0.5)

    def test_output_is_sparse(self, rng):
        est = PrivateSparseMeanEstimator(sparsity=4, epsilon=1.0, delta=1e-5)
        x = rng.normal(size=(400, 30))
        out = est.estimate(x, rng=rng)
        assert np.count_nonzero(out) <= 4

    def test_accountant_charged_once(self, rng):
        acc = PrivacyAccountant()
        est = PrivateSparseMeanEstimator(sparsity=2, epsilon=0.7, delta=1e-6)
        est.estimate(np.random.default_rng(0).normal(size=(200, 10)),
                     rng=rng, accountant=acc)
        assert acc.total_epsilon == pytest.approx(0.7)
        assert acc.total_delta == pytest.approx(1e-6)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PrivateSparseMeanEstimator(sparsity=0, epsilon=1.0, delta=1e-5)
        with pytest.raises(ValueError):
            PrivateSparseMeanEstimator(sparsity=2, epsilon=-1.0, delta=1e-5)
