"""Tests for the ASCII plotting helper."""

import pytest

from repro.evaluation import ascii_plot


class TestAsciiPlot:
    def test_contains_title_and_legend(self):
        out = ascii_plot([1, 2], {"alpha": [1.0, 2.0]}, title="hello")
        assert "hello" in out
        assert "o alpha" in out

    def test_axis_labels(self):
        out = ascii_plot([1, 8], {"s": [0.5, 4.0]})
        assert "0.5" in out and "4" in out  # y range endpoints
        assert "1" in out and "8" in out    # x endpoints

    def test_markers_distinct_per_series(self):
        out = ascii_plot([1, 2], {"a": [1.0, 1.0], "b": [2.0, 2.0]})
        assert "o a" in out and "x b" in out
        assert "o" in out and "x" in out

    def test_monotone_series_renders_monotone(self):
        out = ascii_plot([1, 2, 3, 4], {"down": [4.0, 3.0, 2.0, 1.0]},
                         width=40, height=8)
        rows = [line for line in out.splitlines() if "|" in line]
        # first marker appears in an earlier row (higher value) than last
        first_col_rows = [i for i, r in enumerate(rows) if r.strip(" |").startswith("o")]
        assert first_col_rows  # the top-left marker exists

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot([1, 2], {"a": [1.0]})

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot([1, 2], {})

    def test_logy_drops_nonpositive(self):
        out = ascii_plot([1, 2, 3], {"a": [0.0, 1.0, 10.0]}, logy=True)
        assert "dropped" in out

    def test_logy_all_dropped_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot([1, 2], {"a": [0.0, -1.0]}, logy=True)

    def test_constant_series_safe(self):
        out = ascii_plot([1, 2], {"flat": [3.0, 3.0]})
        assert "flat" in out

    def test_dimensions(self):
        out = ascii_plot([1, 2], {"a": [1.0, 2.0]}, width=30, height=5)
        grid_rows = [line for line in out.splitlines()
                     if line.strip().startswith("|")]
        assert len(grid_rows) == 5
