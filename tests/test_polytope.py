"""Tests for polytopes and their linear minimisation oracles."""

import numpy as np
import pytest

from repro.geometry import L1Ball, Polytope, Simplex, hypercube


class TestGenericPolytope:
    @pytest.fixture
    def triangle(self):
        return Polytope(np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]]))

    def test_basic_properties(self, triangle):
        assert triangle.dimension == 2
        assert triangle.n_vertices == 3

    def test_vertex_copy_is_fresh(self, triangle):
        v = triangle.vertex(1)
        v[0] = 99.0
        assert triangle.vertex(1)[0] == 1.0

    def test_vertices_read_only(self, triangle):
        with pytest.raises(ValueError):
            triangle.vertices[0, 0] = 5.0

    def test_l1_diameter(self, triangle):
        # max pairwise |.|_1 distance: between (1,0) and (0,1) -> 2
        assert triangle.l1_diameter() == pytest.approx(2.0)

    def test_single_vertex_diameter_zero(self):
        assert Polytope(np.array([[1.0, 2.0]])).l1_diameter() == 0.0

    def test_linear_minimizer(self, triangle):
        index, v = triangle.linear_minimizer(np.array([1.0, 1.0]))
        np.testing.assert_array_equal(v, [0.0, 0.0])
        assert index == 0

    def test_vertex_scores_are_negative_inner_products(self, triangle):
        g = np.array([2.0, -1.0])
        np.testing.assert_allclose(triangle.vertex_scores(g),
                                   -triangle.vertices @ g)

    def test_contains_interior_point(self, triangle):
        assert triangle.contains(np.array([0.2, 0.2]))

    def test_contains_rejects_outside(self, triangle):
        assert not triangle.contains(np.array([1.0, 1.0]))

    def test_initial_point_is_feasible(self, triangle):
        assert triangle.contains(triangle.initial_point())

    def test_empty_vertices_rejected(self):
        with pytest.raises(ValueError):
            Polytope(np.zeros((0, 3)))


class TestL1Ball:
    def test_vertex_layout(self):
        ball = L1Ball(3, radius=2.0)
        np.testing.assert_array_equal(ball.vertex(1), [0.0, 2.0, 0.0])
        np.testing.assert_array_equal(ball.vertex(4), [0.0, -2.0, 0.0])

    def test_vertex_out_of_range(self):
        with pytest.raises(IndexError):
            L1Ball(3).vertex(6)

    def test_n_vertices(self):
        assert L1Ball(5).n_vertices == 10

    def test_l1_diameter(self):
        assert L1Ball(4, radius=1.5).l1_diameter() == pytest.approx(3.0)

    def test_scores_match_dense_polytope(self, rng):
        ball = L1Ball(6)
        dense = Polytope(ball.vertices)
        g = rng.normal(size=6)
        np.testing.assert_allclose(ball.vertex_scores(g), dense.vertex_scores(g))

    def test_linear_minimizer_matches_dense(self, rng):
        ball = L1Ball(6)
        dense = Polytope(ball.vertices)
        for _ in range(10):
            g = rng.normal(size=6)
            _, v_fast = ball.linear_minimizer(g)
            _, v_dense = dense.linear_minimizer(g)
            assert np.dot(v_fast, g) == pytest.approx(np.dot(v_dense, g))

    def test_minimizer_optimality(self, rng):
        ball = L1Ball(8, radius=2.0)
        g = rng.normal(size=8)
        _, v = ball.linear_minimizer(g)
        assert np.dot(v, g) == pytest.approx(-2.0 * np.abs(g).max())

    def test_contains(self):
        ball = L1Ball(3)
        assert ball.contains(np.array([0.5, -0.3, 0.1]))
        assert not ball.contains(np.array([0.9, 0.9, 0.0]))

    def test_initial_point_is_origin(self):
        np.testing.assert_array_equal(L1Ball(4).initial_point(), np.zeros(4))


class TestSimplex:
    def test_vertices(self):
        s = Simplex(3, radius=2.0)
        np.testing.assert_array_equal(s.vertex(2), [0.0, 0.0, 2.0])
        assert s.n_vertices == 3

    def test_minimizer_picks_smallest_gradient(self):
        s = Simplex(4)
        index, v = s.linear_minimizer(np.array([3.0, -1.0, 2.0, 0.0]))
        assert index == 1
        np.testing.assert_array_equal(v, [0.0, 1.0, 0.0, 0.0])

    def test_contains(self):
        s = Simplex(3)
        assert s.contains(np.array([0.2, 0.3, 0.5]))
        assert not s.contains(np.array([0.5, 0.6, 0.2]))  # sums to 1.3
        assert not s.contains(np.array([1.2, -0.2, 0.0]))  # negative entry

    def test_initial_point_is_barycentre(self):
        np.testing.assert_allclose(Simplex(4, radius=2.0).initial_point(),
                                   np.full(4, 0.5))

    def test_dimension_one_diameter(self):
        assert Simplex(1).l1_diameter() == 0.0


class TestHypercube:
    def test_vertex_count(self):
        cube = hypercube(3, radius=1.0)
        assert cube.n_vertices == 8

    def test_diameter(self):
        assert hypercube(3, radius=1.0).l1_diameter() == pytest.approx(6.0)

    def test_rejects_large_dimension(self):
        with pytest.raises(ValueError):
            hypercube(20)

    def test_minimizer_is_sign_vector(self, rng):
        cube = hypercube(4)
        g = rng.normal(size=4)
        _, v = cube.linear_minimizer(g)
        np.testing.assert_array_equal(v, -np.sign(g))
