"""Tests for the heavy-tailed samplers and their moment helpers."""

import numpy as np
import pytest

from repro.data import (
    DistributionSpec,
    log_gamma,
    log_gamma_mean,
    log_logistic,
    lognormal,
    lognormal_moments,
    pareto,
    student_t,
    student_t_second_moment,
)


class TestLognormal:
    def test_moments_formula(self):
        mean, second = lognormal_moments(0.0, 0.6)
        assert mean == pytest.approx(np.exp(0.18))
        assert second == pytest.approx(np.exp(0.72))

    def test_empirical_moments(self, rng):
        x = lognormal(rng, 200_000, sigma=0.6)
        mean, second = lognormal_moments(0.0, 0.6)
        assert x.mean() == pytest.approx(mean, rel=0.02)
        assert np.mean(x**2) == pytest.approx(second, rel=0.05)

    def test_positive(self, rng):
        assert np.all(lognormal(rng, 1000) > 0)


class TestStudentT:
    def test_second_moment(self, rng):
        x = student_t(rng, 400_000, df=10)
        assert np.mean(x**2) == pytest.approx(student_t_second_moment(10), rel=0.05)

    def test_moment_formula_requires_df(self):
        with pytest.raises(ValueError):
            student_t_second_moment(2.0)

    def test_heavier_than_gaussian(self, rng):
        x = student_t(rng, 200_000, df=5)
        kurtosis = np.mean(x**4) / np.mean(x**2) ** 2
        assert kurtosis > 3.5  # Gaussian kurtosis is 3


class TestLogLogistic:
    def test_positive(self, rng):
        assert np.all(log_logistic(rng, 1000, c=0.5) > 0)

    def test_median_is_one(self, rng):
        # CDF(1) = 1/2 for every shape c.
        x = log_logistic(rng, 100_000, c=0.8)
        assert np.median(x) == pytest.approx(1.0, rel=0.05)

    def test_extreme_tail_for_small_c(self, rng):
        """c=0.1 has no finite mean: the max dwarfs the median."""
        x = log_logistic(rng, 50_000, c=0.1)
        assert x.max() > 1e6 * np.median(x)


class TestLogGamma:
    def test_mean_is_digamma(self, rng):
        x = log_gamma(rng, 300_000, c=0.5)
        assert x.mean() == pytest.approx(log_gamma_mean(0.5), abs=0.02)

    def test_left_skew(self, rng):
        x = log_gamma(rng, 100_000, c=0.5)
        centered = x - x.mean()
        skew = np.mean(centered**3) / np.mean(centered**2) ** 1.5
        assert skew < -0.5


class TestPareto:
    def test_support(self, rng):
        assert np.all(pareto(rng, 1000, tail_index=2.5) >= 1.0)

    def test_tail_index_controls_heaviness(self, rng):
        light = pareto(rng, 100_000, tail_index=5.0)
        heavy = pareto(rng, 100_000, tail_index=1.2)
        assert np.quantile(heavy, 0.999) > np.quantile(light, 0.999)


class TestDistributionSpec:
    def test_known_samplers(self, rng):
        for name in ("lognormal", "student_t", "log_logistic", "log_gamma",
                     "logistic", "laplace", "gaussian", "pareto"):
            spec = DistributionSpec(name)
            assert spec.sample(rng, 10).shape == (10,)

    def test_unknown_sampler_rejected(self):
        with pytest.raises(ValueError):
            DistributionSpec("cauchy")

    def test_params_forwarded(self, rng):
        spec = DistributionSpec("gaussian", {"scale": 10.0})
        x = spec.sample(rng, 100_000)
        assert x.std() == pytest.approx(10.0, rel=0.02)

    def test_matrix_shape(self, rng):
        assert DistributionSpec("lognormal").sample(rng, (5, 7)).shape == (5, 7)

    def test_centered_sample_lognormal(self, rng):
        spec = DistributionSpec("lognormal", {"sigma": 0.5})
        x = spec.centered_sample(rng, 300_000)
        assert abs(x.mean()) < 0.02

    def test_centered_sample_log_gamma(self, rng):
        spec = DistributionSpec("log_gamma", {"c": 0.5})
        x = spec.centered_sample(rng, 300_000)
        assert abs(x.mean()) < 0.05

    def test_centered_sample_gaussian_uses_loc(self, rng):
        spec = DistributionSpec("gaussian", {"scale": 1.0})
        x = spec.centered_sample(rng, 100_000)
        assert abs(x.mean()) < 0.02

    def test_centered_sample_log_logistic_uses_median(self, rng):
        # Infinite mean: centering must still return finite values.
        spec = DistributionSpec("log_logistic", {"c": 0.1})
        x = spec.centered_sample(rng, 1000)
        assert np.all(np.isfinite(x))
