"""Tests for the loss substrate: values, gradients, smoothness metadata."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.losses import (
    BiweightLoss,
    HuberLoss,
    L2Regularized,
    LogisticLoss,
    SquaredLoss,
    finite_difference_gradient,
    sigmoid,
)

ALL_REGRESSION_LOSSES = [SquaredLoss(), HuberLoss(1.0), BiweightLoss(2.0)]


def _make_regression(rng, n=60, d=4):
    X = rng.normal(size=(n, d))
    y = rng.normal(size=n)
    w = rng.normal(size=d) * 0.3
    return w, X, y


def _make_classification(rng, n=60, d=4):
    X = rng.normal(size=(n, d))
    y = rng.choice([-1.0, 1.0], size=n)
    w = rng.normal(size=d) * 0.3
    return w, X, y


class TestGradientsAgainstFiniteDifferences:
    @pytest.mark.parametrize("loss", ALL_REGRESSION_LOSSES,
                             ids=lambda l: l.name)
    def test_regression_losses(self, loss, rng):
        w, X, y = _make_regression(rng)
        analytic = loss.gradient(w, X, y)
        numeric = finite_difference_gradient(loss, w, X, y)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_logistic(self, rng):
        loss = LogisticLoss()
        w, X, y = _make_classification(rng)
        analytic = loss.gradient(w, X, y)
        numeric = finite_difference_gradient(loss, w, X, y)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_regularized(self, rng):
        loss = L2Regularized(SquaredLoss(), lam=0.3)
        w, X, y = _make_regression(rng)
        analytic = loss.gradient(w, X, y)
        numeric = finite_difference_gradient(loss, w, X, y)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)


class TestPerSampleConsistency:
    @pytest.mark.parametrize("loss", ALL_REGRESSION_LOSSES + [LogisticLoss()],
                             ids=lambda l: l.name)
    def test_mean_of_per_sample_equals_batch(self, loss, rng):
        if isinstance(loss, LogisticLoss):
            w, X, y = _make_classification(rng)
        else:
            w, X, y = _make_regression(rng)
        per_sample = loss.per_sample_gradients(w, X, y)
        np.testing.assert_allclose(per_sample.mean(axis=0),
                                   loss.gradient(w, X, y), atol=1e-12)
        assert loss.value(w, X, y) == pytest.approx(
            float(np.mean(loss.per_sample_values(w, X, y))))

    def test_per_sample_gradient_shape(self, rng):
        loss = SquaredLoss()
        w, X, y = _make_regression(rng, n=17, d=5)
        assert loss.per_sample_gradients(w, X, y).shape == (17, 5)


class TestSquaredLoss:
    def test_zero_at_perfect_fit(self, rng):
        loss = SquaredLoss()
        X = rng.normal(size=(30, 3))
        w = np.array([1.0, -1.0, 0.5])
        assert loss.value(w, X, X @ w) == pytest.approx(0.0, abs=1e-16)

    def test_smoothness_is_hessian_norm(self, rng):
        loss = SquaredLoss()
        X = rng.normal(size=(500, 4))
        hessian = 2.0 * X.T @ X / X.shape[0]
        assert loss.smoothness(X) == pytest.approx(
            float(np.linalg.eigvalsh(hessian)[-1]))

    def test_curvature_range_ordering(self, rng):
        mu, gamma = SquaredLoss().curvature_range(rng.normal(size=(200, 3)))
        assert 0 < mu <= gamma


class TestLogisticLoss:
    def test_sigmoid_stability(self):
        assert sigmoid(np.array(800.0)) == pytest.approx(1.0)
        assert sigmoid(np.array(-800.0)) == pytest.approx(0.0)

    @given(st.floats(-30, 30))
    @settings(max_examples=50)
    def test_sigmoid_symmetry(self, t):
        s = float(sigmoid(np.array(t)))
        assert s + float(sigmoid(np.array(-t))) == pytest.approx(1.0)

    def test_rejects_non_pm1_labels(self, rng):
        loss = LogisticLoss()
        X = rng.normal(size=(5, 2))
        with pytest.raises(ValueError):
            loss.value(np.zeros(2), X, np.array([0, 1, 1, 0, 1.0]))

    def test_value_at_origin_is_log2(self, rng):
        loss = LogisticLoss()
        X = rng.normal(size=(50, 3))
        y = rng.choice([-1.0, 1.0], size=50)
        assert loss.value(np.zeros(3), X, y) == pytest.approx(np.log(2.0))

    def test_no_overflow_on_extreme_margins(self):
        loss = LogisticLoss()
        X = np.array([[1e6], [-1e6]])
        y = np.array([1.0, 1.0])
        vals = loss.per_sample_values(np.array([1.0]), X, y)
        assert np.all(np.isfinite(vals))
        assert vals[0] == pytest.approx(0.0)

    def test_gradient_bounded_by_feature(self, rng):
        """|psi'| <= 1 so per-sample gradient <= |x| entrywise."""
        loss = LogisticLoss()
        w, X, y = _make_classification(rng)
        grads = loss.per_sample_gradients(w, X, y)
        assert np.all(np.abs(grads) <= np.abs(X) + 1e-12)


class TestBiweightLoss:
    def test_saturates_beyond_c(self):
        loss = BiweightLoss(c=1.0)
        assert float(loss.psi(np.array(5.0))) == pytest.approx(1.0 / 6.0)
        assert float(loss.psi_derivative(np.array(5.0))) == 0.0

    def test_derivative_is_odd(self):
        loss = BiweightLoss(c=2.0)
        t = np.linspace(-3, 3, 41)
        np.testing.assert_allclose(loss.psi_derivative(t),
                                   -loss.psi_derivative(-t), atol=1e-15)

    def test_derivative_bound(self):
        loss = BiweightLoss(c=1.0)
        t = np.linspace(-2, 2, 2001)
        assert np.max(np.abs(loss.psi_derivative(t))) <= loss.derivative_bound() + 1e-9

    def test_psi_derivative_matches_psi(self):
        loss = BiweightLoss(c=1.5)
        t = np.linspace(-1.2, 1.2, 15)
        h = 1e-6
        numeric = (loss.psi(t + h) - loss.psi(t - h)) / (2 * h)
        np.testing.assert_allclose(loss.psi_derivative(t), numeric, atol=1e-6)


class TestHuberLoss:
    def test_quadratic_inside(self):
        loss = HuberLoss(delta=1.0)
        np.testing.assert_allclose(loss.link(np.array([0.5]), np.array([0.0])),
                                   [0.125])

    def test_linear_outside(self):
        loss = HuberLoss(delta=1.0)
        np.testing.assert_allclose(loss.link(np.array([3.0]), np.array([0.0])),
                                   [2.5])

    def test_derivative_clipped(self):
        loss = HuberLoss(delta=2.0)
        d = loss.link_derivative(np.array([-10.0, 0.5, 10.0]), np.zeros(3))
        np.testing.assert_allclose(d, [-2.0, 0.5, 2.0])


class TestL2Regularized:
    def test_penalty_added(self, rng):
        base = SquaredLoss()
        reg = L2Regularized(base, lam=2.0)
        w, X, y = _make_regression(rng)
        assert reg.value(w, X, y) == pytest.approx(
            base.value(w, X, y) + float(w @ w))

    def test_zero_lambda_is_base(self, rng):
        base = SquaredLoss()
        reg = L2Regularized(base, lam=0.0)
        w, X, y = _make_regression(rng)
        assert reg.value(w, X, y) == pytest.approx(base.value(w, X, y))

    def test_per_sample_gradients_include_ridge(self, rng):
        reg = L2Regularized(SquaredLoss(), lam=1.0)
        w, X, y = _make_regression(rng)
        per_sample = reg.per_sample_gradients(w, X, y)
        np.testing.assert_allclose(per_sample.mean(axis=0),
                                   reg.gradient(w, X, y), atol=1e-12)

    def test_name_mentions_base(self):
        assert "squared" in L2Regularized(SquaredLoss(), 0.1).name
