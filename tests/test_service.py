"""The service core: coalescing, shard migration, and run-id parity.

The tentpole guarantees under test: N concurrent requests for one cold
cell digest trigger exactly one engine computation (single-flight); the
sharded cache layout transparently reads cells written by the legacy
flat layout; and the bench, CLI, and service execution paths produce
run records with equal ``run_id`` for the same catalog entry.
"""

import json
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.evaluation import ResultCache, SingleFlight, build_jobs, run_grid
from repro.exceptions import ResultsError
from repro.fleet import ManualClock
from repro.results import load_record, save_record
from repro.service import ServiceCore

REPO_ROOT = Path(__file__).parent.parent

#: The cheapest catalog entry: one panel, five cells at laptop scale.
CHEAP_BENCH = "ablation_truncation_threshold"

_CALLS_LOCK = threading.Lock()
_CALLS = {"n": 0}

#: Virtual clock for the would-be sleeps below: exactly-once is a
#: single-flight guarantee, not a timing accident, so the tests assert
#: it without ever blocking on the wall clock.
_CLOCK = ManualClock()


def _counting_point(series, x, rng):
    """Module-level point that counts every engine invocation."""
    with _CALLS_LOCK:
        _CALLS["n"] += 1
    _CLOCK.sleep(0.005)
    return float(series) * float(x) + float(rng.normal())


def _reset_calls():
    with _CALLS_LOCK:
        _CALLS["n"] = 0


class TestSingleFlightCoalescing:
    N_CLIENTS = 8

    def _grid_kwargs(self, cache, flight):
        # code_tag="" keys cells by coordinates alone: the counting
        # point mutates module state on every call, which the default
        # code fingerprint (rightly) folds into the digest — stable
        # digests across racing threads need the opt-out.
        return dict(n_trials=3, seed=7, executor="serial", cache=cache,
                    flight=flight, code_tag="")

    def test_concurrent_cold_grid_computes_each_cell_once(self, tmp_path):
        """Eight simultaneous cold runs -> one computation per digest."""
        cache = ResultCache(tmp_path)
        flight = SingleFlight()
        sweep_values, series_values = [1, 2, 3], [10, 20]
        n_cells = len(sweep_values) * len(series_values)
        barrier = threading.Barrier(self.N_CLIENTS)
        _reset_calls()

        def run_once(_):
            barrier.wait()
            return run_grid(_counting_point, "x", sweep_values,
                            "series", series_values,
                            **self._grid_kwargs(cache, flight))

        with ThreadPoolExecutor(max_workers=self.N_CLIENTS) as pool:
            results = list(pool.map(run_once, range(self.N_CLIENTS)))

        # The headline: every cell's trials ran exactly once, however
        # many clients raced for them.
        assert _CALLS["n"] == n_cells * 3
        for result in results[1:]:
            assert result.series == results[0].series

    def test_coalesced_results_match_an_uncontended_run(self, tmp_path):
        """Coalescing must not change the numbers, only the work."""
        cache = ResultCache(tmp_path / "contended")
        flight = SingleFlight()
        barrier = threading.Barrier(4)

        def run_once(_):
            barrier.wait()
            return run_grid(_counting_point, "x", [1, 2], "series", [5],
                            **self._grid_kwargs(cache, flight))

        with ThreadPoolExecutor(max_workers=4) as pool:
            contended = list(pool.map(run_once, range(4)))
        solo = run_grid(_counting_point, "x", [1, 2], "series", [5],
                        **self._grid_kwargs(None, None))
        for result in contended:
            assert result.series == solo.series

    def test_flight_counters_split_leaders_from_followers(self, tmp_path):
        """Followers are counted as coalesced, never as extra leaders."""
        cache = ResultCache(tmp_path)
        flight = SingleFlight()
        barrier = threading.Barrier(self.N_CLIENTS)
        _reset_calls()

        def run_once(_):
            barrier.wait()
            return run_grid(_counting_point, "x", [1, 2, 3, 4], "series",
                            [10], **self._grid_kwargs(cache, flight))

        with ThreadPoolExecutor(max_workers=self.N_CLIENTS) as pool:
            list(pool.map(run_once, range(self.N_CLIENTS)))
        # Exactly one computation per digest is the hard guarantee; the
        # counters must account for every claim without inventing work.
        assert _CALLS["n"] == 4 * 3
        assert flight.led >= 4
        assert flight.led + flight.coalesced <= self.N_CLIENTS * 4

    def test_failed_leader_propagates_to_followers(self, tmp_path):
        """A crashing computation fails everyone waiting on it."""
        flight = SingleFlight()
        barrier = threading.Barrier(2)

        def bad_point(series, x, rng):
            barrier.wait(timeout=10)
            _CLOCK.sleep(0.01)
            raise RuntimeError("boom")

        def run_once(_):
            with pytest.raises(RuntimeError):
                run_grid(bad_point, "x", [1], "series", [2], n_trials=1,
                         seed=0, flight=flight)
            return True

        with ThreadPoolExecutor(max_workers=2) as pool:
            assert all(pool.map(run_once, range(2)))
        # The map must not leak the dead flight: a retry starts fresh.
        assert flight.pending() == 0


class TestShardMigration:
    def test_legacy_flat_cell_is_read_through(self, tmp_path):
        """A cell written by the old flat layout still hits."""
        job = build_jobs("x", [3], "series", [4], n_trials=2, seed=1)[0]
        legacy = tmp_path / f"{job.digest}.json"
        legacy.write_text(json.dumps([1.5, 2.5]))
        cache = ResultCache(tmp_path)
        assert cache.get(job) == [1.5, 2.5]
        assert (cache.hits, cache.misses) == (1, 0)
        assert cache.read_values(job.digest) == [1.5, 2.5]

    def test_new_cells_land_in_shards(self, tmp_path):
        """Writes go to the two-hex-prefix shard, reads find them."""
        job = build_jobs("x", [3], "series", [4], n_trials=2, seed=1)[0]
        cache = ResultCache(tmp_path)
        cache.put(job, [9.0, 8.0])
        shard_file = tmp_path / job.digest[:2] / f"{job.digest}.json"
        assert shard_file.is_file()
        assert not (tmp_path / f"{job.digest}.json").exists()
        assert cache.get(job) == [9.0, 8.0]

    def test_iter_cells_walks_both_layouts(self, tmp_path):
        """Shard files and legacy flat files are both enumerated once."""
        jobs = build_jobs("x", [1, 2], "series", [3], n_trials=1, seed=0)
        cache = ResultCache(tmp_path)
        cache.put(jobs[0], [1.0])
        legacy = tmp_path / f"{jobs[1].digest}.json"
        legacy.write_text(json.dumps([2.0]))
        stems = sorted(path.stem for path in cache.iter_cells())
        assert stems == sorted(job.digest for job in jobs)

    def test_grid_rerun_after_migration_recomputes_nothing(self, tmp_path):
        """A warm flat-layout cache keeps a sharded rerun at zero work."""
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        solo = run_grid(_counting_point, "x", [1, 2], "series", [5],
                        n_trials=2, seed=3, code_tag="")
        first = ResultCache(cache_dir)
        run_grid(_counting_point, "x", [1, 2], "series", [5],
                 n_trials=2, seed=3, cache=first, code_tag="")
        # Flatten the shard layout back to the legacy one by hand.
        for cell in list(first.iter_cells()):
            cell.replace(cache_dir / cell.name)
        for shard in [p for p in cache_dir.iterdir() if p.is_dir()]:
            shard.rmdir()
        _reset_calls()
        second = ResultCache(cache_dir)
        result = run_grid(_counting_point, "x", [1, 2], "series", [5],
                          n_trials=2, seed=3, cache=second, code_tag="")
        assert _CALLS["n"] == 0
        assert (second.hits, second.misses) == (2, 0)
        assert result.series == solo.series

    def test_scan_and_prune_cover_both_layouts(self, tmp_path):
        """cache stats / prune see (and delete) cells wherever they live."""
        core = ServiceCore()
        flat = tmp_path / ("0" * 32 + ".json")
        flat.write_text("[1.0]")
        shard = tmp_path / "ff"
        shard.mkdir()
        sharded = shard / ("f" * 32 + ".json")
        sharded.write_text("[2.0]")
        split = core.scan_cache(tmp_path, set())
        assert len(split["orphaned"]) == 2
        core.prune_cache(tmp_path, set())
        assert not flat.exists() and not sharded.exists()


class TestRunIdParity:
    """Bench, CLI, and service runs of one entry share one run_id."""

    def test_service_run_matches_committed_baseline(self, tmp_path):
        baseline = json.loads(
            (REPO_ROOT / "benchmarks" / "baselines"
             / f"{CHEAP_BENCH}.json").read_text())
        core = ServiceCore(cache=tmp_path / "cache")
        run = core.run_bench(CHEAP_BENCH)
        assert run.record.run_id == baseline["run_id"]
        assert run.record.config_digest == baseline["config_digest"]

    def test_cli_run_matches_service_run(self, tmp_path):
        from repro.cli import main

        core = ServiceCore(cache=tmp_path / "cache")
        service_run = core.run_bench(CHEAP_BENCH)
        results_dir = tmp_path / "results"
        assert main(["run", CHEAP_BENCH, "--results-dir",
                     str(results_dir)]) == 0
        stem = service_run.definition.result_stem
        cli_record = load_record(results_dir / f"{stem}.json")
        assert cli_record.run_id == service_run.record.run_id
        # The tables agree byte-for-byte too.
        table = (results_dir / f"{stem}.txt").read_text()
        assert table == "".join(service_run.blocks)

    def test_timings_are_recorded_but_excluded_from_run_id(self, tmp_path):
        """Wall-times ride along without perturbing record identity."""
        core = ServiceCore(cache=tmp_path / "cache")
        run = core.run_bench(CHEAP_BENCH)
        assert run.record.timings is not None
        assert all(t is None or t >= 0.0
                   for row in run.record.timings for t in row)
        path = save_record(run.record, tmp_path / "with_timings.json")
        reloaded = load_record(path)
        assert reloaded.timings == run.record.timings
        assert reloaded.run_id == run.record.run_id


class TestServiceCoreQueries:
    def test_load_record_by_stem_and_by_catalog_name(self):
        core = ServiceCore(results_dir=REPO_ROOT / "benchmarks" / "results")
        by_stem = core.load_record("fig05")
        by_name = core.load_record("fig05_lasso_lognormal")
        assert by_stem.run_id == by_name.run_id

    def test_load_record_without_store_raises(self):
        with pytest.raises(ResultsError):
            ServiceCore().load_record("fig05")

    def test_cell_values_rejects_non_hex_digests(self, tmp_path):
        core = ServiceCore(cache=tmp_path)
        assert core.cell_values("../../etc/passwd") is None
        assert core.cell_values("ZZ" * 16) is None
        assert core.cell_values("ab" * 16) is None  # hex but absent

    def test_catalog_entries_cover_every_bench(self):
        from repro.experiments import bench_names

        core = ServiceCore()
        names = [d.name for d in core.catalog_entries()]
        assert names == list(bench_names())
