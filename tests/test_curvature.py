"""Tests for curvature (smoothness constant) estimation."""

import numpy as np
import pytest

from repro.losses import (
    L2Regularized,
    LogisticLoss,
    SquaredLoss,
    estimate_curvature,
    gram_top_eigenvalue,
)


class TestGramTopEigenvalue:
    def test_identity_design(self, rng):
        X = rng.normal(size=(50_000, 3))
        assert gram_top_eigenvalue(X) == pytest.approx(1.0, rel=0.05)

    def test_factor_applied(self, rng):
        X = rng.normal(size=(1000, 3))
        assert gram_top_eigenvalue(X, factor=2.0) == pytest.approx(
            2.0 * gram_top_eigenvalue(X, factor=1.0))

    def test_scaled_features(self, rng):
        X = 3.0 * rng.normal(size=(50_000, 2))
        assert gram_top_eigenvalue(X) == pytest.approx(9.0, rel=0.05)


class TestEstimateCurvature:
    def test_matches_squared_loss_hessian(self, rng):
        X = rng.normal(size=(2000, 5))
        y = rng.normal(size=2000)
        exact = SquaredLoss().smoothness(X)
        estimated = estimate_curvature(SquaredLoss(), X, y, rng=rng)
        # 5% inflation is built in; allow a loose band around exact.
        assert exact * 0.9 <= estimated <= exact * 1.3

    def test_ridge_raises_curvature(self, rng):
        X = rng.normal(size=(1000, 4))
        y = rng.choice([-1.0, 1.0], size=1000)
        base = estimate_curvature(LogisticLoss(), X, y, rng=rng)
        ridged = estimate_curvature(L2Regularized(LogisticLoss(), 5.0), X, y,
                                    rng=rng)
        assert ridged > base

    def test_subsampling_path(self, rng):
        X = rng.normal(size=(6000, 3))
        y = rng.normal(size=6000)
        out = estimate_curvature(SquaredLoss(), X, y, max_rows=500, rng=rng)
        assert out > 0

    def test_positive_on_flat_loss(self, rng):
        """Even a loss with (near) zero Hessian returns a positive floor."""
        X = rng.normal(size=(100, 2))
        y = rng.normal(size=100)

        class FlatLoss(SquaredLoss):
            def gradient(self, w, X, y):
                return np.zeros(X.shape[1])

        assert estimate_curvature(FlatLoss(), X, y, rng=rng) > 0

    def test_invalid_args(self, rng):
        X = rng.normal(size=(10, 2))
        y = rng.normal(size=10)
        with pytest.raises(ValueError):
            estimate_curvature(SquaredLoss(), X, y, n_power_iterations=0)
        with pytest.raises(ValueError):
            estimate_curvature(SquaredLoss(), X, y, fd_step=0.0)
