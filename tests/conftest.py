"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_linear_data(rng):
    """A tiny well-conditioned linear dataset: (X, y, w_star)."""
    n, d = 400, 8
    w_star = np.zeros(d)
    w_star[:3] = [0.3, -0.2, 0.1]
    X = rng.normal(size=(n, d))
    y = X @ w_star + 0.05 * rng.normal(size=n)
    return X, y, w_star
