"""Tests for the packing construction and the Theorem 9 lower bound."""

import numpy as np
import pytest

from repro.lower_bound import (
    HardInstance,
    greedy_packing,
    hamming_distance,
    lower_bound_rate,
    make_hard_family,
    packing_lower_bound,
    paper_mixing_weight,
    private_fano_bound,
    random_sparse_sign_vector,
    verify_packing,
)


class TestHamming:
    def test_distance(self):
        a = np.array([1, 0, -1, 0])
        b = np.array([1, 1, 1, 0])
        assert hamming_distance(a, b) == 2

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance(np.zeros(2), np.zeros(3))


class TestPacking:
    def test_random_vector_in_H(self, rng):
        v = random_sparse_sign_vector(30, 5, rng)
        assert np.count_nonzero(v) == 5
        assert set(np.unique(v)) <= {-1, 0, 1}

    def test_greedy_packing_is_valid(self, rng):
        packing = greedy_packing(64, 8, max_size=20, rng=rng)
        assert verify_packing(packing, 8)
        assert packing.shape[0] > 1

    def test_greedy_packing_reaches_decent_size(self, rng):
        packing = greedy_packing(128, 8, max_size=32, rng=rng)
        assert packing.shape[0] >= 16

    def test_verify_detects_violations(self):
        bad = np.array([[1, 1, 0, 0], [1, 1, 0, 0]], dtype=np.int8)
        assert not verify_packing(bad, 2)  # identical rows: distance 0

    def test_verify_detects_wrong_sparsity(self):
        bad = np.array([[1, 0, 0, 0]], dtype=np.int8)
        assert not verify_packing(bad, 2)

    def test_lower_bound_formula(self):
        val = packing_lower_bound(100, 10)
        assert val == pytest.approx(np.exp(5 * np.log(90 / 5)))

    def test_sparsity_exceeding_dim(self, rng):
        with pytest.raises(ValueError):
            greedy_packing(5, 10, rng=rng)


class TestHardInstance:
    def test_moment_constraint_satisfied(self, rng):
        instances, _ = make_hard_family(40, 4, tau=2.0, mixing_weight=0.01,
                                        rng=rng)
        for inst in instances:
            assert inst.coordinate_second_moment() <= 2.0 + 1e-9

    def test_mean_formula(self, rng):
        instances, _ = make_hard_family(40, 4, tau=1.0, mixing_weight=0.05,
                                        rng=rng)
        inst = instances[0]
        np.testing.assert_allclose(inst.mean, inst.mixing_weight * inst.spike)

    def test_sample_shape_and_support(self, rng):
        instances, _ = make_hard_family(20, 3, tau=1.0, mixing_weight=0.3,
                                        rng=rng)
        samples = instances[0].sample(500, rng=rng)
        assert samples.shape == (500, 20)
        # Every row is either the origin or the spike.
        for row in samples[:50]:
            assert np.allclose(row, 0.0) or np.allclose(row, instances[0].spike)

    def test_empirical_mean_matches(self, rng):
        instances, _ = make_hard_family(10, 2, tau=1.0, mixing_weight=0.2,
                                        rng=rng)
        inst = instances[0]
        samples = inst.sample(200_000, rng=rng)
        np.testing.assert_allclose(samples.mean(axis=0), inst.mean, atol=0.02)

    def test_means_are_separated(self, rng):
        """rho*(V) >= sqrt(p tau)/2: means are p*A*v with A = sqrt(tau/p)/sqrt(2s)
        and packing vectors differ in >= s/2 coordinates."""
        p, tau = 0.05, 1.0
        instances, _ = make_hard_family(60, 6, tau=tau, mixing_weight=p,
                                        rng=rng)
        required = np.sqrt(p * tau) / 2.0
        for i in range(len(instances)):
            for j in range(i + 1, len(instances)):
                gap = np.linalg.norm(instances[i].mean - instances[j].mean)
                assert gap >= required - 1e-9


class TestBounds:
    def test_mixing_weight_in_range(self):
        p = paper_mixing_weight(10_000, 1.0, 1e-5, 200, 10)
        assert 0 < p <= 1

    def test_mixing_weight_shrinks_with_n(self):
        small = paper_mixing_weight(1000, 1.0, 1e-5, 200, 10)
        large = paper_mixing_weight(100_000, 1.0, 1e-5, 200, 10)
        assert large < small

    def test_fano_bound_positive(self):
        assert private_fano_bound(10_000, 1.0, 1e-5, 200, 10, tau=1.0) > 0

    def test_fano_bound_decreases_with_n(self):
        a = private_fano_bound(1000, 1.0, 1e-5, 200, 10, 1.0)
        b = private_fano_bound(100_000, 1.0, 1e-5, 200, 10, 1.0)
        assert b < a

    def test_rate_formula(self):
        rate = lower_bound_rate(10_000, 1.0, 1e-5, 200, 10, tau=2.0)
        expected = 2.0 * min(10 * np.log(200), np.log(1e5)) / 10_000
        assert rate == pytest.approx(expected)

    def test_rate_scales_linearly_in_tau(self):
        r1 = lower_bound_rate(1000, 1.0, 1e-5, 100, 5, tau=1.0)
        r2 = lower_bound_rate(1000, 1.0, 1e-5, 100, 5, tau=3.0)
        assert r2 == pytest.approx(3 * r1)

    def test_upper_bound_respects_lower_bound(self, rng):
        """A private sparse mean estimator cannot beat the Fano bound
        on the hard family (sanity link between the two halves)."""
        from repro.estimators import PrivateSparseMeanEstimator

        n, d, s, tau, eps, delta = 2000, 40, 4, 1.0, 1.0, 1e-5
        p = paper_mixing_weight(n, eps, delta, d, s)
        instances, _ = make_hard_family(d, s, tau, p, max_size=8, rng=rng)
        bound = private_fano_bound(n, eps, delta, d, s, tau)
        est = PrivateSparseMeanEstimator(sparsity=s, epsilon=eps, delta=delta,
                                         second_moment=tau)
        risks = []
        for inst in instances[:4]:
            x = inst.sample(n, rng=rng)
            out = est.estimate(x, rng=rng)
            risks.append(float(np.sum((out - inst.mean) ** 2)))
        assert np.mean(risks) >= bound * 0.9  # estimator cannot beat Fano
