"""Tests for Algorithm 3 — Heavy-tailed Private Sparse Linear Regression."""

import numpy as np
import pytest

from repro import (
    DistributionSpec,
    HeavyTailedSparseLinearRegression,
    SquaredLoss,
    make_linear_data,
    sparse_truth,
)


def _sparse_data(rng, n=20_000, d=60, s_star=4):
    w_star = sparse_truth(d, s_star, rng, norm_bound=0.5)
    data = make_linear_data(n, w_star,
                            DistributionSpec("gaussian", {"scale": 1.0}),
                            DistributionSpec("lognormal", {"sigma": 0.5}),
                            rng=rng)
    return data


class TestConfiguration:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HeavyTailedSparseLinearRegression(sparsity=0, epsilon=1.0, delta=1e-5)
        with pytest.raises(ValueError):
            HeavyTailedSparseLinearRegression(sparsity=3, epsilon=1.0, delta=1e-5,
                                              project_radius=0.0)

    def test_schedule(self):
        solver = HeavyTailedSparseLinearRegression(sparsity=5, epsilon=1.0,
                                                   delta=1e-5)
        sched = solver.resolve_schedule(10_000)
        assert sched.n_iterations == int(np.log(10_000))
        assert sched.selection_size == 10
        assert sched.threshold == pytest.approx(
            (10_000 / (10 * sched.n_iterations)) ** 0.25)

    def test_selection_size_exceeding_dim_rejected(self, rng):
        solver = HeavyTailedSparseLinearRegression(sparsity=5, epsilon=1.0,
                                                   delta=1e-5, selection_size=20)
        with pytest.raises(ValueError):
            solver.fit(rng.normal(size=(100, 10)), rng.normal(size=100), rng=rng)


class TestPrivacyBookkeeping:
    def test_budget(self, rng):
        data = _sparse_data(rng, n=2000, d=20, s_star=2)
        solver = HeavyTailedSparseLinearRegression(sparsity=2, epsilon=0.9,
                                                   delta=1e-6)
        result = solver.fit(data.features, data.labels, rng=rng)
        assert result.advertised_budget.epsilon == 0.9
        assert result.privacy_spent.delta == pytest.approx(1e-6)


class TestOptimization:
    def test_output_is_sparse_and_feasible(self, rng):
        data = _sparse_data(rng, n=4000, d=40, s_star=3)
        solver = HeavyTailedSparseLinearRegression(sparsity=3, epsilon=1.0,
                                                   delta=1e-5)
        result = solver.fit(data.features, data.labels, rng=rng)
        assert np.count_nonzero(result.w) <= result.metadata["selection_size"]
        assert np.linalg.norm(result.w) <= 1.0 + 1e-9

    def test_supports_recorded_each_iteration(self, rng):
        data = _sparse_data(rng, n=2000, d=20, s_star=2)
        solver = HeavyTailedSparseLinearRegression(sparsity=2, epsilon=1.0,
                                                   delta=1e-5)
        result = solver.fit(data.features, data.labels, rng=rng)
        assert len(result.metadata["supports"]) == result.n_iterations

    def test_curvature_metadata(self, rng):
        data = _sparse_data(rng, n=2000, d=20, s_star=2)
        solver = HeavyTailedSparseLinearRegression(sparsity=2, epsilon=1.0,
                                                   delta=1e-5)
        result = solver.fit(data.features, data.labels, rng=rng)
        assert result.metadata["curvature"] > 0
        assert result.metadata["step_size"] == pytest.approx(
            0.5 / result.metadata["curvature"])

    def test_explicit_curvature_respected(self, rng):
        data = _sparse_data(rng, n=1000, d=20, s_star=2)
        solver = HeavyTailedSparseLinearRegression(sparsity=2, epsilon=1.0,
                                                   delta=1e-5, curvature=4.0)
        result = solver.fit(data.features, data.labels, rng=rng)
        assert result.metadata["curvature"] == 4.0

    def test_recovery_at_generous_budget(self, rng):
        """With a huge budget, plenty of data and an equal-magnitude
        planted support, the support is found exactly."""
        d = 30
        w_star = np.zeros(d)
        planted = rng.choice(d, size=3, replace=False)
        w_star[planted] = 0.29
        data = make_linear_data(50_000, w_star,
                                DistributionSpec("gaussian", {"scale": 1.0}),
                                DistributionSpec("lognormal", {"sigma": 0.5}),
                                rng=rng)
        solver = HeavyTailedSparseLinearRegression(sparsity=3, epsilon=50.0,
                                                   delta=1e-3, expansion=1)
        result = solver.fit(data.features, data.labels, rng=rng)
        assert set(np.nonzero(result.w)[0]) == set(planted.tolist())
        assert np.linalg.norm(result.w - w_star) < 0.25

    def test_error_shrinks_with_epsilon(self, rng):
        errors = {}
        for eps in (0.3, 30.0):
            trial_errors = []
            for seed in range(4):
                trial = np.random.default_rng(seed)
                data = _sparse_data(trial, n=20_000, d=40, s_star=3)
                solver = HeavyTailedSparseLinearRegression(
                    sparsity=3, epsilon=eps, delta=1e-5)
                res = solver.fit(data.features, data.labels, rng=trial)
                trial_errors.append(np.linalg.norm(res.w - data.w_star))
            errors[eps] = np.mean(trial_errors)
        assert errors[30.0] < errors[0.3]

    def test_heavy_tailed_noise_tolerated(self, rng):
        """Log-logistic noise (infinite mean!) must not break the fit."""
        w_star = sparse_truth(30, 3, rng, norm_bound=0.5)
        data = make_linear_data(20_000, w_star,
                                DistributionSpec("gaussian", {"scale": 1.0}),
                                DistributionSpec("log_logistic", {"c": 0.3}),
                                rng=rng)
        solver = HeavyTailedSparseLinearRegression(sparsity=3, epsilon=10.0,
                                                   delta=1e-5)
        result = solver.fit(data.features, data.labels, rng=rng)
        assert np.all(np.isfinite(result.w))

    def test_reproducible(self, rng):
        data = _sparse_data(rng, n=1000, d=20, s_star=2)
        solver = HeavyTailedSparseLinearRegression(sparsity=2, epsilon=1.0,
                                                   delta=1e-5)
        a = solver.fit(data.features, data.labels, rng=np.random.default_rng(7))
        b = solver.fit(data.features, data.labels, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a.w, b.w)
