"""Tests for the Rényi-DP accountant."""

import math

import pytest

from repro.privacy import (
    PrivacyBudget,
    RenyiAccountant,
    advanced_composition_step,
    calibrate_noise_multiplier,
    gaussian_rdp,
    rdp_to_dp,
)


class TestGaussianRDP:
    def test_formula(self):
        assert gaussian_rdp(2.0, 4.0) == pytest.approx(0.5)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            gaussian_rdp(1.0, 1.0)

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            gaussian_rdp(0.0, 2.0)


class TestConversion:
    def test_single_order(self):
        budget = rdp_to_dp([(2.0, 0.1)], delta=1e-5)
        assert budget.epsilon == pytest.approx(0.1 + math.log(1e5))
        assert budget.delta == 1e-5

    def test_picks_best_order(self):
        pairs = [(2.0, 0.1), (100.0, 0.5)]
        budget = rdp_to_dp(pairs, delta=1e-5)
        manual = min(0.1 + math.log(1e5) / 1.0, 0.5 + math.log(1e5) / 99.0)
        assert budget.epsilon == pytest.approx(manual)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rdp_to_dp([], delta=1e-5)

    def test_bad_delta(self):
        with pytest.raises(ValueError):
            rdp_to_dp([(2.0, 0.1)], delta=0.0)


class TestRenyiAccountant:
    def test_additivity(self):
        acc = RenyiAccountant()
        acc.record_gaussian(2.0)
        acc.record_gaussian(2.0)
        assert acc.rdp_at(2.0) == pytest.approx(2 * gaussian_rdp(2.0, 2.0))
        assert acc.n_recorded == 2

    def test_count_argument(self):
        a = RenyiAccountant()
        a.record_gaussian(3.0, count=10)
        b = RenyiAccountant()
        for _ in range(10):
            b.record_gaussian(3.0)
        assert a.rdp_at(4.0) == pytest.approx(b.rdp_at(4.0))

    def test_unknown_order(self):
        acc = RenyiAccountant()
        with pytest.raises(KeyError):
            acc.rdp_at(3.14159)

    def test_invalid_orders(self):
        with pytest.raises(ValueError):
            RenyiAccountant(orders=(0.5, 2.0))

    def test_epsilon_grows_sublinearly(self):
        few = RenyiAccountant()
        few.record_gaussian(4.0, count=10)
        many = RenyiAccountant()
        many.record_gaussian(4.0, count=1000)
        ratio = many.to_dp(1e-5).epsilon / few.to_dp(1e-5).epsilon
        assert ratio < 40  # far below the x100 of basic composition

    def test_tighter_than_advanced_composition(self):
        """RDP should certify a smaller total epsilon than Lemma 2 for the
        same Gaussian mechanism repeated many times."""
        sigma, T, delta = 8.0, 500, 1e-5
        # Advanced composition: what total eps does Lemma 2 certify if each
        # step is calibrated from sigma?  Invert the classical calibration:
        eps_step = math.sqrt(2.0 * math.log(1.25 / (delta / (2 * T)))) / sigma
        # Find the total budget whose advanced-composition step equals it.
        # advanced eps_step = eps_total / (2 sqrt(2 T log(2/delta)))
        eps_total_adv = eps_step * 2.0 * math.sqrt(2.0 * T * math.log(2.0 / delta))
        acc = RenyiAccountant()
        acc.record_gaussian(sigma, count=T)
        eps_total_rdp = acc.to_dp(delta).epsilon
        assert eps_total_rdp < eps_total_adv


class TestCalibration:
    def test_meets_target(self):
        target = PrivacyBudget(1.0, 1e-5)
        sigma = calibrate_noise_multiplier(target, n_steps=100)
        acc = RenyiAccountant()
        acc.record_gaussian(sigma, count=100)
        assert acc.to_dp(1e-5).epsilon <= target.epsilon * (1 + 1e-2)

    def test_is_not_wasteful(self):
        """Slightly less noise must violate the target (tight calibration)."""
        target = PrivacyBudget(1.0, 1e-5)
        sigma = calibrate_noise_multiplier(target, n_steps=100, precision=1e-4)
        acc = RenyiAccountant()
        acc.record_gaussian(sigma * 0.95, count=100)
        assert acc.to_dp(1e-5).epsilon > target.epsilon

    def test_more_steps_more_noise(self):
        target = PrivacyBudget(1.0, 1e-5)
        assert (calibrate_noise_multiplier(target, 1000)
                > calibrate_noise_multiplier(target, 10))

    def test_pure_dp_rejected(self):
        with pytest.raises(ValueError):
            calibrate_noise_multiplier(PrivacyBudget(1.0), 10)
