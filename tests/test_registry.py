"""Registry semantics: collisions, unknown names, lazy population."""

import sys
import types

import pytest

from repro.registry import (
    ALL_REGISTRIES,
    CATALOG,
    DATA,
    DATASETS,
    DISTRIBUTIONS,
    ESTIMATORS,
    LOSSES,
    METRICS,
    SOLVERS,
    Registry,
    RegistryCollisionError,
    UnknownNameError,
)


class TestRegistryMechanics:
    def test_decorator_registration_returns_object(self):
        reg = Registry("thing")

        @reg.register("alpha")
        def alpha():
            return 1

        assert reg.get("alpha") is alpha
        assert alpha() == 1  # the decorator must not wrap

    def test_direct_registration(self):
        reg = Registry("thing")
        marker = object()
        assert reg.register("a", marker) is marker
        assert reg.get("a") is marker

    def test_collision_raises_and_names_existing_entry(self):
        reg = Registry("solver")
        reg.register("dup", min)
        with pytest.raises(RegistryCollisionError, match="'dup'.*already"):
            reg.register("dup", max)
        # The original registration survives a failed collision.
        assert reg.get("dup") is min

    def test_reregistering_the_same_object_is_idempotent(self):
        reg = Registry("thing")
        reg.register("x", min)
        reg.register("x", min)  # e.g. module reloaded
        assert reg.get("x") is min

    def test_invalid_names_rejected(self):
        reg = Registry("thing")
        with pytest.raises(TypeError):
            reg.register("", min)
        with pytest.raises(TypeError):
            reg.register(3, min)

    def test_unknown_name_lists_available_entries(self):
        reg = Registry("widget")
        reg.register("gadget", min)
        reg.register("gizmo", max)
        with pytest.raises(UnknownNameError) as excinfo:
            reg.get("sprocket")
        message = str(excinfo.value)
        assert "unknown widget 'sprocket'" in message
        assert "gadget" in message and "gizmo" in message

    def test_unknown_name_suggests_close_matches(self):
        reg = Registry("widget")
        reg.register("gadget", min)
        with pytest.raises(UnknownNameError, match="Did you mean: gadget"):
            reg.get("gadgett")

    def test_unknown_name_is_a_keyerror(self):
        # Mapping-style callers that catch KeyError keep working.
        reg = Registry("widget")
        with pytest.raises(KeyError):
            reg.get("nope")

    def test_mapping_protocol(self):
        reg = Registry("thing")
        reg.register("b", min)
        reg.register("a", max)
        assert reg.names() == ("a", "b")
        assert list(reg) == ["a", "b"]
        assert "a" in reg and "c" not in reg
        assert len(reg) == 2
        assert reg.items() == (("a", max), ("b", min))

    def test_lazy_population_imports_modules_on_first_use(self):
        module = types.ModuleType("_repro_registry_lazy_test")
        holder = Registry("lazy thing", populate=("_repro_registry_lazy_test",))
        module.__dict__["_register"] = holder.register("from_module", min)
        sys.modules["_repro_registry_lazy_test"] = module
        try:
            # Registration above ran eagerly because we executed it here;
            # a fresh registry must import its module on first lookup.
            fresh = Registry("lazy thing",
                             populate=("_repro_registry_lazy_test",))
            # The module is already imported, so population is a no-op
            # import; entries registered into *holder*, not fresh.
            assert "from_module" in holder
            assert fresh.names() == ()
        finally:
            del sys.modules["_repro_registry_lazy_test"]


class TestBuiltinRegistries:
    def test_solver_menu(self):
        for name in ("heavy_tailed_dp_fw", "private_lasso", "dp_sgd", "iht",
                     "frank_wolfe", "regular_dp_fw",
                     "sparse_linear_regression", "sparse_optimizer"):
            assert name in SOLVERS.names()

    def test_loss_menu(self):
        for name in ("squared", "logistic", "huber", "biweight",
                     "l2_regularized"):
            assert name in LOSSES.names()

    def test_distribution_menu_matches_distribution_spec(self):
        from repro import DistributionSpec
        for name in DISTRIBUTIONS.names():
            DistributionSpec(name)  # every registered sampler resolves
        with pytest.raises(ValueError, match="unknown distribution"):
            DistributionSpec("cauchyy")

    def test_dataset_menu(self):
        assert DATASETS.names() == ("blog", "twitter", "winnipeg",
                                    "year_prediction")

    def test_data_generator_menu(self):
        for name in ("l1_linear", "l1_logistic", "sparse_linear",
                     "sparse_logistic", "real_like"):
            assert name in DATA.names()

    def test_metric_menu(self):
        for name in ("excess_risk", "param_error", "accuracy", "support_f1"):
            assert name in METRICS.names()

    def test_estimator_menu(self):
        assert "catoni" in ESTIMATORS.names()
        assert "truncated" in ESTIMATORS.names()

    def test_catalog_holds_all_18_benches(self):
        assert len(CATALOG.names()) == 18

    def test_all_registries_listing(self):
        sections = [section for section, _ in ALL_REGISTRIES]
        assert "solvers" in sections and "metrics" in sections

    def test_solver_adapters_run(self, rng):
        data = DATA.get("l1_linear")(rng, n=200, d=6,
                                     features={"name": "gaussian",
                                               "scale": 1.0})
        w = SOLVERS.get("frank_wolfe")(data, None, n_iterations=10)
        assert w.shape == (6,)
        assert METRICS.get("excess_risk")(w, data) == pytest.approx(
            METRICS.get("excess_risk")(w, data))


class TestPopulationFailureRecovery:
    """A failed populate import must stay visible, not half-populate."""

    def test_failed_import_is_retried_and_not_masked(self):
        import importlib
        module_name = "_registry_pop_fail_mod"
        module = types.ModuleType(module_name)
        calls = {"n": 0}
        reg = Registry("fragile", populate=(module_name,))

        # Module import raises the first time, succeeds the second.
        def fake_import(name, package=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ImportError("boom")
            reg.register("late", min)
            return module

        original = importlib.import_module
        importlib.import_module = fake_import
        try:
            with pytest.raises(ImportError, match="boom"):
                reg.get("late")
            # The failure must not freeze the registry half-populated:
            # the retry imports for real and the entry appears.
            assert reg.get("late") is min
        finally:
            importlib.import_module = original
