"""Property harness: random grids x random fault schedules, exact parity.

Each case draws a grid shape, worker count, and fault rates from a
seeded ``random.Random`` — so the "random" schedule is frozen forever —
and asserts the two fleet invariants the design promises for *any*
schedule:

* **Bit-identity.**  The fleet's series equal the serial executor's,
  whatever was killed, dropped, delayed, or duplicated along the way.
* **Exactly-once results.**  ``run_grid`` observes every cell digest
  exactly once (retries and twin deliveries are absorbed inside the
  broker), and a warm-cache rerun computes nothing at all.

``max_attempts`` is set high enough that no drawn schedule exhausts a
cell's retries — each case asserts ``dead == 0`` so a rate change that
breaks that assumption fails loudly instead of silently weakening the
parity check to "parity except where cells died".
"""

import random

import pytest

from repro.evaluation import ResultCache, run_grid
from repro.fleet import FaultSchedule, FleetExecutor, FleetOptions

N_CASES = 5


def _property_point(series, x, rng):
    """A module-level grid point: deterministic given the job's rng."""
    return float(series) + float(x) * float(rng.normal())


def _draw_case(case: int):
    """One frozen-random configuration: grid, fleet size, fault rates."""
    rng = random.Random(1000 + case)
    x_values = list(range(1, rng.randint(2, 4) + 1))
    series_values = [10 * (i + 1) for i in range(rng.randint(1, 3))]
    grid = dict(n_trials=rng.randint(1, 3), seed=rng.randint(0, 10 ** 6))
    faults = FaultSchedule(
        seed=case,
        kill_rate=rng.uniform(0.0, 0.25),
        drop_rate=rng.uniform(0.0, 0.2),
        duplicate_rate=rng.uniform(0.0, 0.3),
        delay_rate=rng.uniform(0.0, 0.3))
    options = FleetOptions(n_workers=rng.randint(1, 4), max_attempts=8,
                           faults=faults)
    return x_values, series_values, grid, options


@pytest.mark.parametrize("case", range(N_CASES))
def test_random_faults_preserve_bit_identity_and_exactly_once(
        case, tmp_path):
    x_values, series_values, grid, options = _draw_case(case)
    n_cells = len(x_values) * len(series_values)
    executor = FleetExecutor(options)
    seen = []
    cache = ResultCache(tmp_path)

    fleet = run_grid(_property_point, "x", x_values, "series", series_values,
                     executor=executor, cache=cache,
                     on_cell=lambda job, values, elapsed:
                     seen.append(job.digest), **grid)
    serial = run_grid(_property_point, "x", x_values, "series",
                      series_values, **grid)

    # Bit-identity, whatever the schedule injected.
    assert fleet.series == serial.series
    # The schedule was chosen to never exhaust retries; a dead letter
    # here means the case needs retuning, not that parity may be waived.
    assert executor.stats.dead == 0
    assert executor.stats.completed == n_cells
    # Exactly once: every digest observed once, none missing, none twice.
    assert len(seen) == len(set(seen)) == n_cells
    assert (cache.hits, cache.misses) == (0, n_cells)


@pytest.mark.parametrize("case", range(N_CASES))
def test_warm_cache_rerun_never_spins_the_fleet_up(case, tmp_path):
    x_values, series_values, grid, options = _draw_case(case)
    n_cells = len(x_values) * len(series_values)
    cold = FleetExecutor(options)
    run_grid(_property_point, "x", x_values, "series", series_values,
             executor=cold, cache=ResultCache(tmp_path), **grid)

    warm_cache = ResultCache(tmp_path)
    warm = FleetExecutor(options)
    rerun = run_grid(_property_point, "x", x_values, "series", series_values,
                     executor=warm, cache=warm_cache, **grid)

    assert (warm_cache.hits, warm_cache.misses) == (n_cells, 0)
    assert not warm.stats.active()
    serial = run_grid(_property_point, "x", x_values, "series",
                      series_values, **grid)
    assert rerun.series == serial.series


@pytest.mark.parametrize("case", range(N_CASES))
def test_identical_schedules_replay_identical_telemetry(case, tmp_path):
    """The whole simulation — not just the values — is deterministic."""
    x_values, series_values, grid, options = _draw_case(case)
    first = FleetExecutor(options)
    second = FleetExecutor(options)
    a = run_grid(_property_point, "x", x_values, "series", series_values,
                 executor=first, **grid)
    b = run_grid(_property_point, "x", x_values, "series", series_values,
                 executor=second, **grid)
    assert a.series == b.series
    assert first.stats.as_dict() == second.stats.as_dict()
    assert first.dead_letters == second.dead_letters
