"""Tests for the theoretical-rate calculators."""

import pytest

from repro.theory import (
    theorem2_rate,
    theorem3_rate,
    theorem5_rate,
    theorem7_rate,
    theorem8_rate,
    theorem9_rate,
    upper_to_lower_gap,
)

N, EPS, DELTA, D = 100_000, 1.0, 1e-5, 1000


class TestScalings:
    def test_theorem2_n_scaling(self):
        """Doubling n*eps shrinks the Thm 2 rate by ~2^{1/3}."""
        a = theorem2_rate(N, EPS, D, 2 * D)
        b = theorem2_rate(8 * N, EPS, D, 2 * D)
        assert b == pytest.approx(a / 2.0, rel=0.05)  # x8 n -> /2

    def test_theorem3_slower_than_theorem2(self):
        """The non-convex rate (nε)^{-1/4} is slower than (nε)^{-1/3}."""
        assert (theorem3_rate(N, EPS, D)
                > theorem2_rate(N, EPS, D, 2 * D) / 10)
        # scaling comparison at large n:
        big = 10**9
        assert theorem3_rate(big, EPS, D) > theorem2_rate(big, EPS, D, 2 * big)

    def test_theorem5_decays_faster_than_theorem2(self):
        """(nε)^{-2/5} decays faster than (nε)^{-1/3} — the paper's
        motivation for Algorithm 2.  (Because of Theorem 5's larger log
        factors, the *crossover* happens at astronomically large n; the
        decay-rate comparison is the robust check.)"""
        ratio5 = theorem5_rate(100 * N, EPS, DELTA, D) / theorem5_rate(N, EPS, DELTA, D)
        ratio2 = (theorem2_rate(100 * N, EPS, D, 2 * D)
                  / theorem2_rate(N, EPS, D, 2 * D))
        assert ratio5 < ratio2

    def test_theorem7_sparsity_squared(self):
        a = theorem7_rate(N, EPS, DELTA, D, sparsity=4)
        b = theorem7_rate(N, EPS, DELTA, D, sparsity=8)
        assert b == pytest.approx(4.0 * a, rel=1e-9)

    def test_theorem8_sparsity_power(self):
        a = theorem8_rate(N, EPS, DELTA, D, sparsity=4)
        b = theorem8_rate(N, EPS, DELTA, D, sparsity=16)
        assert b == pytest.approx(8.0 * a, rel=1e-9)  # (16/4)^{3/2}

    def test_theorem9_min_branches(self):
        # huge delta branch: log(1/delta) small -> active
        small_delta_rate = theorem9_rate(N, EPS, 1e-300, D, sparsity=50)
        normal_rate = theorem9_rate(N, EPS, DELTA, D, sparsity=50)
        assert normal_rate <= small_delta_rate

    def test_all_rates_1_over_n_eps_family(self):
        for fn in (lambda n: theorem7_rate(n, EPS, DELTA, D, 4),
                   lambda fn_n: None,):
            break
        a = theorem7_rate(N, EPS, DELTA, D, 4)
        b = theorem7_rate(2 * N, EPS, DELTA, D, 4)
        # 1/n up to the log n factor
        assert a / 2 < b < a


class TestGap:
    def test_upper_dominates_lower(self):
        assert upper_to_lower_gap(N, EPS, DELTA, D, 16) > 1.0

    def test_gap_grows_like_sqrt_sparsity(self):
        # delta small enough that s* log d is the active branch of the
        # lower bound's min for BOTH sparsities (16 log 1000 ~ 110 < 138).
        delta = 1e-60
        g4 = upper_to_lower_gap(N, EPS, delta, D, 4)
        g16 = upper_to_lower_gap(N, EPS, delta, D, 16)
        # Thm 8 scales as s^{3/2}, Thm 9 as s -> gap ratio is (16/4)^{1/2}.
        assert g16 / g4 == pytest.approx(2.0, rel=1e-6)


class TestValidation:
    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            theorem2_rate(0, EPS, D, 2 * D)
        with pytest.raises(ValueError):
            theorem5_rate(N, -1.0, DELTA, D)
        with pytest.raises(ValueError):
            theorem7_rate(N, EPS, DELTA, D, sparsity=0)
        with pytest.raises(ValueError):
            theorem9_rate(N, EPS, -1e-5, D, 5)

    def test_constant_is_linear(self):
        assert theorem2_rate(N, EPS, D, 2 * D, constant=3.0) == pytest.approx(
            3.0 * theorem2_rate(N, EPS, D, 2 * D))
