"""Property-based tests for the Euclidean and sparse projections."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.geometry import (
    hard_threshold,
    project_l1_ball,
    project_l2_ball,
    project_simplex,
    restrict_to_support,
    support,
)

finite_vec = hnp.arrays(np.float64, 12, elements=st.floats(-50, 50))


class TestProjectL2Ball:
    def test_inside_unchanged(self):
        v = np.array([0.3, 0.4])
        np.testing.assert_array_equal(project_l2_ball(v, 1.0), v)

    def test_outside_lands_on_boundary(self):
        out = project_l2_ball(np.array([3.0, 4.0]), 1.0)
        assert np.linalg.norm(out) == pytest.approx(1.0)

    @given(finite_vec)
    @settings(max_examples=50)
    def test_feasible_and_idempotent(self, v):
        out = project_l2_ball(v, 2.0)
        assert np.linalg.norm(out) <= 2.0 + 1e-9
        np.testing.assert_allclose(project_l2_ball(out, 2.0), out)

    @given(finite_vec, finite_vec)
    @settings(max_examples=50)
    def test_non_expansive(self, a, b):
        pa, pb = project_l2_ball(a, 1.0), project_l2_ball(b, 1.0)
        assert np.linalg.norm(pa - pb) <= np.linalg.norm(a - b) + 1e-9


class TestProjectSimplex:
    def test_already_on_simplex(self):
        v = np.array([0.2, 0.3, 0.5])
        np.testing.assert_allclose(project_simplex(v, 1.0), v, atol=1e-12)

    def test_uniform_from_equal_entries(self):
        out = project_simplex(np.array([5.0, 5.0]), 1.0)
        np.testing.assert_allclose(out, [0.5, 0.5])

    @given(finite_vec)
    @settings(max_examples=60)
    def test_output_is_on_simplex(self, v):
        out = project_simplex(v, 1.0)
        assert np.all(out >= -1e-12)
        assert out.sum() == pytest.approx(1.0, abs=1e-9)

    @given(finite_vec)
    @settings(max_examples=40)
    def test_is_euclidean_projection(self, v):
        """No random feasible point may be closer than the projection."""
        out = project_simplex(v, 1.0)
        rng = np.random.default_rng(0)
        for _ in range(10):
            candidate = rng.dirichlet(np.ones(v.size))
            assert (np.linalg.norm(v - out)
                    <= np.linalg.norm(v - candidate) + 1e-9)


class TestProjectL1Ball:
    def test_inside_unchanged(self):
        v = np.array([0.2, -0.3])
        np.testing.assert_array_equal(project_l1_ball(v, 1.0), v)

    @given(finite_vec)
    @settings(max_examples=60)
    def test_feasible_and_idempotent(self, v):
        out = project_l1_ball(v, 1.0)
        assert np.abs(out).sum() <= 1.0 + 1e-9
        np.testing.assert_allclose(project_l1_ball(out, 1.0), out, atol=1e-12)

    @given(finite_vec)
    @settings(max_examples=40)
    def test_sign_preservation(self, v):
        out = project_l1_ball(v, 1.0)
        mask = out != 0
        assert np.all(np.sign(out[mask]) == np.sign(v[mask]))

    def test_known_projection(self):
        # Projection of (2, 0) onto the unit l1 ball is (1, 0).
        np.testing.assert_allclose(project_l1_ball(np.array([2.0, 0.0]), 1.0),
                                   [1.0, 0.0])


class TestHardThreshold:
    def test_keeps_largest(self):
        v = np.array([1.0, -3.0, 0.5, 2.0])
        out = hard_threshold(v, 2)
        np.testing.assert_array_equal(out, [0.0, -3.0, 0.0, 2.0])

    def test_zero_sparsity(self):
        np.testing.assert_array_equal(hard_threshold(np.ones(3), 0), np.zeros(3))

    def test_full_sparsity_identity(self):
        v = np.array([1.0, 2.0])
        np.testing.assert_array_equal(hard_threshold(v, 5), v)

    def test_negative_sparsity_rejected(self):
        with pytest.raises(ValueError):
            hard_threshold(np.ones(3), -1)

    @given(finite_vec, st.integers(min_value=0, max_value=12))
    @settings(max_examples=60)
    def test_support_size_and_best_approximation(self, v, s):
        out = hard_threshold(v, s)
        assert np.count_nonzero(out) <= s
        # It is the best s-sparse approximation in l2.
        sorted_mags = np.sort(np.abs(v))[::-1]
        best_error = float(np.sum(sorted_mags[s:] ** 2)) if s < v.size else 0.0
        assert np.sum((v - out) ** 2) == pytest.approx(best_error, abs=1e-9)


class TestSupportUtilities:
    def test_support(self):
        np.testing.assert_array_equal(support(np.array([0.0, 1.0, 0.0, -2.0])),
                                      [1, 3])

    def test_support_with_tolerance(self):
        v = np.array([1e-12, 1.0])
        np.testing.assert_array_equal(support(v, tol=1e-9), [1])

    def test_restrict(self):
        v = np.array([1.0, 2.0, 3.0])
        out = restrict_to_support(v, np.array([0, 2]))
        np.testing.assert_array_equal(out, [1.0, 0.0, 3.0])

    def test_restrict_out_of_range(self):
        with pytest.raises(IndexError):
            restrict_to_support(np.ones(3), np.array([5]))
