"""Tests for Algorithm 1 — Heavy-tailed DP-FW."""

import numpy as np
import pytest

from repro import (
    DistributionSpec,
    HeavyTailedDPFW,
    L1Ball,
    SquaredLoss,
    l1_ball_truth,
    make_linear_data,
)
from repro.losses import BiweightLoss, LogisticLoss


def _lognormal_linear(rng, n=4000, d=10):
    w_star = l1_ball_truth(d, rng)
    data = make_linear_data(n, w_star,
                            DistributionSpec("lognormal", {"sigma": 0.6}),
                            DistributionSpec("gaussian", {"scale": 0.1}),
                            rng=rng)
    return data


class TestConfiguration:
    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            HeavyTailedDPFW(SquaredLoss(), L1Ball(5), epsilon=0.0)

    def test_dimension_mismatch(self, rng):
        solver = HeavyTailedDPFW(SquaredLoss(), L1Ball(3), epsilon=1.0)
        with pytest.raises(ValueError):
            solver.fit(rng.normal(size=(10, 4)), rng.normal(size=10))

    def test_schedule_resolution(self):
        solver = HeavyTailedDPFW(SquaredLoss(), L1Ball(5), epsilon=1.0,
                                 schedule_mode="paper")
        sched = solver.resolve_schedule(8000)
        assert sched.n_iterations == int(8000 ** (1 / 3))
        assert sched.scale > 0

    def test_explicit_overrides(self, rng):
        data = _lognormal_linear(rng, n=500, d=4)
        solver = HeavyTailedDPFW(SquaredLoss(), L1Ball(4), epsilon=1.0,
                                 n_iterations=3, scale=2.0)
        result = solver.fit(data.features, data.labels, rng=rng)
        assert result.n_iterations == 3
        assert result.metadata["scale"] == 2.0

    def test_step_sizes_length_validated(self, rng):
        data = _lognormal_linear(rng, n=500, d=4)
        solver = HeavyTailedDPFW(SquaredLoss(), L1Ball(4), epsilon=1.0,
                                 n_iterations=5, step_sizes=[0.5, 0.5])
        with pytest.raises(ValueError):
            solver.fit(data.features, data.labels, rng=rng)


class TestPrivacyBookkeeping:
    def test_advertised_budget_is_pure_epsilon(self, rng):
        data = _lognormal_linear(rng, n=1000, d=5)
        solver = HeavyTailedDPFW(SquaredLoss(), L1Ball(5), epsilon=0.8)
        result = solver.fit(data.features, data.labels, rng=rng)
        assert result.advertised_budget.epsilon == 0.8
        assert result.advertised_budget.is_pure

    def test_ledger_matches_advertised(self, rng):
        data = _lognormal_linear(rng, n=1000, d=5)
        solver = HeavyTailedDPFW(SquaredLoss(), L1Ball(5), epsilon=0.8)
        result = solver.fit(data.features, data.labels, rng=rng)
        assert result.privacy_spent.epsilon == pytest.approx(0.8)
        assert result.privacy_spent.delta == 0.0

    def test_ledger_notes_parallel_composition(self, rng):
        data = _lognormal_linear(rng, n=1000, d=5)
        result = HeavyTailedDPFW(SquaredLoss(), L1Ball(5), epsilon=1.0).fit(
            data.features, data.labels, rng=rng)
        assert "parallel composition" in result.accountant.entries[0].note


class TestOptimization:
    def test_iterate_stays_feasible(self, rng):
        data = _lognormal_linear(rng, n=2000, d=8)
        ball = L1Ball(8)
        solver = HeavyTailedDPFW(SquaredLoss(), ball, epsilon=1.0,
                                 record_history=True)
        result = solver.fit(data.features, data.labels, rng=rng)
        for w in result.iterates:
            assert ball.contains(w, tol=1e-9)

    def test_risk_decreases_from_start(self, rng):
        data = _lognormal_linear(rng, n=8000, d=10)
        solver = HeavyTailedDPFW(SquaredLoss(), L1Ball(10), epsilon=2.0,
                                 tau=5.0, record_history=True)
        result = solver.fit(data.features, data.labels, rng=rng)
        assert result.risks[-1] < result.risks[0]

    def test_beats_trivial_predictor(self, rng):
        data = _lognormal_linear(rng, n=10_000, d=10)
        loss = SquaredLoss()
        solver = HeavyTailedDPFW(loss, L1Ball(10), epsilon=2.0, tau=5.0)
        result = solver.fit(data.features, data.labels, rng=rng)
        risk_zero = loss.value(np.zeros(10), data.features, data.labels)
        assert loss.value(result.w, data.features, data.labels) < risk_zero

    def test_robust_to_gross_outliers(self, rng):
        """A single corrupted sample must not derail the fit (bounded influence)."""
        data = _lognormal_linear(rng, n=4000, d=6)
        X, y = data.features.copy(), data.labels.copy()
        X[0] = 1e9
        y[0] = -1e9
        loss = SquaredLoss()
        solver = HeavyTailedDPFW(loss, L1Ball(6), epsilon=2.0, tau=5.0)
        result = solver.fit(X, y, rng=rng)
        assert np.all(np.isfinite(result.w))
        clean_risk = loss.value(result.w, data.features[1:], data.labels[1:])
        zero_risk = loss.value(np.zeros(6), data.features[1:], data.labels[1:])
        assert clean_risk <= zero_risk * 1.2

    def test_callback_invoked_every_iteration(self, rng):
        data = _lognormal_linear(rng, n=500, d=4)
        calls = []
        solver = HeavyTailedDPFW(SquaredLoss(), L1Ball(4), epsilon=1.0,
                                 n_iterations=4)
        solver.fit(data.features, data.labels, rng=rng,
                   callback=lambda t, w: calls.append(t))
        assert calls == [0, 1, 2, 3]

    def test_works_with_logistic_loss(self, rng):
        from repro.data import make_logistic_data

        w_star = l1_ball_truth(6, rng)
        data = make_logistic_data(4000, w_star,
                                  DistributionSpec("lognormal", {"sigma": 0.6}),
                                  rng=rng)
        loss = LogisticLoss()
        result = HeavyTailedDPFW(loss, L1Ball(6), epsilon=2.0).fit(
            data.features, data.labels, rng=rng)
        assert loss.value(result.w, data.features, data.labels) <= np.log(2.0) * 1.05

    def test_works_with_biweight_loss(self, rng):
        data = _lognormal_linear(rng, n=2000, d=5)
        loss = BiweightLoss(c=2.0)
        result = HeavyTailedDPFW(loss, L1Ball(5), epsilon=2.0).fit(
            data.features, data.labels, rng=rng)
        assert np.all(np.isfinite(result.w))

    def test_reproducible_given_seed(self, rng):
        data = _lognormal_linear(rng, n=1000, d=5)
        solver = HeavyTailedDPFW(SquaredLoss(), L1Ball(5), epsilon=1.0)
        a = solver.fit(data.features, data.labels, rng=np.random.default_rng(9))
        b = solver.fit(data.features, data.labels, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(a.w, b.w)

    def test_error_improves_with_epsilon(self, rng):
        """Across repeats, eps=8 should beat eps=0.05 on average."""
        loss = SquaredLoss()
        gaps = {0.05: [], 8.0: []}
        for seed in range(5):
            trial_rng = np.random.default_rng(seed)
            data = _lognormal_linear(trial_rng, n=6000, d=8)
            for eps in gaps:
                solver = HeavyTailedDPFW(loss, L1Ball(8), epsilon=eps, tau=5.0)
                res = solver.fit(data.features, data.labels,
                                 rng=np.random.default_rng(seed + 100))
                gaps[eps].append(loss.value(res.w, data.features, data.labels))
        assert np.mean(gaps[8.0]) < np.mean(gaps[0.05])
