"""Tests for the UCI-dataset stand-ins."""

import numpy as np
import pytest

from repro.data import REAL_DATASETS, kurtosis_report, load_real_like


class TestRegistry:
    def test_paper_shapes_recorded(self):
        assert REAL_DATASETS["blog"].n_samples == 60021
        assert REAL_DATASETS["blog"].dimension == 281
        assert REAL_DATASETS["twitter"].n_samples == 583249
        assert REAL_DATASETS["twitter"].dimension == 77
        assert REAL_DATASETS["winnipeg"].dimension == 175
        assert REAL_DATASETS["year_prediction"].dimension == 90

    def test_tasks(self):
        assert REAL_DATASETS["blog"].task == "linear"
        assert REAL_DATASETS["winnipeg"].task == "logistic"


class TestLoadRealLike:
    def test_unknown_name(self):
        with pytest.raises(ValueError):
            load_real_like("imagenet")

    def test_row_override(self, rng):
        data = load_real_like("blog", rng=rng, n_samples=500)
        assert data.features.shape == (500, 281)

    def test_logistic_labels(self, rng):
        data = load_real_like("winnipeg", rng=rng, n_samples=300)
        assert set(np.unique(data.labels)) <= {-1.0, 1.0}

    def test_linear_labels_are_floats(self, rng):
        data = load_real_like("twitter", rng=rng, n_samples=300)
        assert data.labels.dtype == float
        assert len(set(np.round(data.labels, 6))) > 10

    def test_heavy_tails_present(self, rng):
        """The stand-ins must actually be heavy-tailed (high kurtosis)."""
        data = load_real_like("blog", rng=rng, n_samples=4000)
        report = kurtosis_report(data.features, data.labels)
        assert report["max_coordinate_kurtosis"] > 10.0
        assert report["max_outlier_sigmas"] > 6.0

    def test_deterministic(self):
        a = load_real_like("blog", rng=np.random.default_rng(0), n_samples=100)
        b = load_real_like("blog", rng=np.random.default_rng(0), n_samples=100)
        np.testing.assert_array_equal(a.features, b.features)

    def test_planted_signal_learnable(self, rng):
        """A least-squares fit on the stand-in should beat predicting zero."""
        data = load_real_like("twitter", rng=rng, n_samples=3000)
        X, y = data.features, data.labels
        coef, *_ = np.linalg.lstsq(X, y, rcond=None)
        residual = y - X @ coef
        assert np.mean(residual**2) < 0.9 * np.mean(y**2)
