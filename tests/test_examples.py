"""Smoke tests for the example scripts.

Every example must at least compile; the fast ones are executed
end-to-end so the documented entry points cannot silently rot.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: Examples cheap enough to execute inside the unit-test suite.
FAST_EXAMPLES = ["parallel_sweep.py", "privacy_accounting.py",
                 "robust_mean_comparison.py"]


def test_examples_exist():
    assert len(ALL_EXAMPLES) >= 3, "the deliverable requires >= 3 examples"


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"
