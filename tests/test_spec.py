"""ExperimentSpec: validation, round-trips, and engine integration."""

import pickle

import pytest

from repro.evaluation import (
    ExperimentSpec,
    ResultCache,
    SpecScenario,
    point_fingerprint,
)
from repro.registry import UnknownNameError


def tiny_spec_dict(**overrides):
    """A fast private-Lasso spec (seconds, not minutes)."""
    base = {
        "name": "lasso_tiny",
        "solver": "private_lasso",
        "data": "l1_linear",
        "metric": "excess_risk",
        "solver_kwargs": {"delta": 1e-5},
        "data_kwargs": {"n": 300,
                        "features": {"name": "lognormal", "sigma": 0.6},
                        "noise": {"name": "gaussian", "scale": 0.1}},
        "sweep": {"name": "epsilon", "target": "solver.epsilon",
                  "values": [0.5, 2.0]},
        "series": {"name": "d", "target": "data.d", "values": [4, 8]},
        "n_trials": 2,
        "seed": 7,
    }
    base.update(overrides)
    return base


class TestRoundTrip:
    def test_dict_to_spec_to_dict(self):
        spec = ExperimentSpec.from_dict(tiny_spec_dict())
        rebuilt = ExperimentSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.to_dict() == spec.to_dict()

    def test_dict_to_scenario_is_stable(self):
        d = tiny_spec_dict()
        scenario1 = ExperimentSpec.from_dict(d).to_scenario()
        scenario2 = ExperimentSpec.from_dict(d).to_scenario()
        assert scenario1 == scenario2
        assert point_fingerprint(scenario1) == point_fingerprint(scenario2)

    def test_scenario_pickles_by_value(self):
        scenario = ExperimentSpec.from_dict(tiny_spec_dict()).to_scenario()
        clone = pickle.loads(pickle.dumps(scenario))
        assert clone == scenario
        assert isinstance(clone, SpecScenario)

    def test_kwargs_changes_change_the_fingerprint(self):
        base = ExperimentSpec.from_dict(tiny_spec_dict()).to_scenario()
        hotter = ExperimentSpec.from_dict(tiny_spec_dict(
            solver_kwargs={"delta": 1e-6})).to_scenario()
        assert point_fingerprint(base) != point_fingerprint(hotter)

    def test_toml_round_trip(self, tmp_path):
        spec = ExperimentSpec.from_dict(tiny_spec_dict())
        toml_text = "\n".join([
            'name = "lasso_tiny"',
            'solver = "private_lasso"',
            'data = "l1_linear"',
            'metric = "excess_risk"',
            'n_trials = 2',
            'seed = 7',
            '[solver_kwargs]',
            'delta = 1e-5',
            '[data_kwargs]',
            'n = 300',
            'features = {name = "lognormal", sigma = 0.6}',
            'noise = {name = "gaussian", scale = 0.1}',
            '[sweep]',
            'name = "epsilon"',
            'target = "solver.epsilon"',
            'values = [0.5, 2.0]',
            '[series]',
            'name = "d"',
            'target = "data.d"',
            'values = [4, 8]',
        ])
        path = tmp_path / "spec.toml"
        path.write_text(toml_text)
        assert ExperimentSpec.from_toml(path) == spec


class TestValidation:
    def test_unknown_solver_lists_menu(self):
        with pytest.raises(UnknownNameError, match="private_lasso"):
            ExperimentSpec.from_dict(tiny_spec_dict(solver="private_laso"))

    def test_unknown_data_generator(self):
        with pytest.raises(UnknownNameError, match="l1_linear"):
            ExperimentSpec.from_dict(tiny_spec_dict(data="l1_liner"))

    def test_unknown_metric(self):
        with pytest.raises(UnknownNameError, match="excess_risk"):
            ExperimentSpec.from_dict(tiny_spec_dict(metric="excess"))

    def test_axis_target_must_name_an_accepted_kwarg(self):
        bad = tiny_spec_dict(sweep={"name": "epsilon",
                                    "target": "solver.epsilonn",
                                    "values": [1.0]})
        with pytest.raises(ValueError, match="epsilonn"):
            ExperimentSpec.from_dict(bad)

    def test_axis_target_section_must_be_solver_or_data(self):
        bad = tiny_spec_dict(sweep={"name": "epsilon",
                                    "target": "metric.epsilon",
                                    "values": [1.0]})
        with pytest.raises(ValueError, match="solver.<kwarg>"):
            ExperimentSpec.from_dict(bad)

    def test_unknown_solver_kwarg_rejected(self):
        bad = tiny_spec_dict(solver_kwargs={"delta": 1e-5, "bogus": 1})
        with pytest.raises(ValueError, match="bogus"):
            ExperimentSpec.from_dict(bad)

    def test_axis_collision_with_fixed_kwarg(self):
        bad = tiny_spec_dict(solver_kwargs={"delta": 1e-5, "epsilon": 1.0})
        with pytest.raises(ValueError, match="collides"):
            ExperimentSpec.from_dict(bad)

    def test_empty_axis_values_rejected(self):
        bad = tiny_spec_dict(sweep={"name": "epsilon",
                                    "target": "solver.epsilon",
                                    "values": []})
        with pytest.raises(ValueError, match="no values"):
            ExperimentSpec.from_dict(bad)

    def test_duplicate_series_values_rejected(self):
        bad = tiny_spec_dict(series={"name": "d", "target": "data.d",
                                     "values": [4, 4]})
        with pytest.raises(ValueError, match="unique"):
            ExperimentSpec.from_dict(bad)

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="typo_key"):
            ExperimentSpec.from_dict(tiny_spec_dict(typo_key=1))

    def test_missing_required_key_rejected(self):
        d = tiny_spec_dict()
        del d["solver"]
        with pytest.raises(ValueError, match="solver"):
            ExperimentSpec.from_dict(d)

    def test_unserialisable_kwargs_rejected(self):
        bad = tiny_spec_dict(data_kwargs={"n": 300, "features": object()})
        with pytest.raises(TypeError, match="JSON"):
            ExperimentSpec.from_dict(bad)


class TestExecution:
    def test_run_is_deterministic_and_executor_invariant(self):
        spec = ExperimentSpec.from_dict(tiny_spec_dict())
        serial = spec.run()
        threaded = spec.run(executor="thread")
        for d in (4, 8):
            assert [s.mean for s in serial.series[d]] == \
                   [s.mean for s in threaded.series[d]]

    def test_run_uses_spec_axis_names(self):
        result = ExperimentSpec.from_dict(tiny_spec_dict()).run()
        assert result.sweep_name == "epsilon"
        assert result.series_name == "d"

    def test_warm_cache_rerun_hits_every_cell(self, tmp_path):
        spec = ExperimentSpec.from_dict(tiny_spec_dict())
        cold = ResultCache(tmp_path / "cells")
        first = spec.run(cache=cold)
        assert cold.misses == 4 and cold.hits == 0
        warm = ResultCache(tmp_path / "cells")
        second = spec.run(cache=warm)
        assert warm.hits == 4 and warm.misses == 0
        for d in (4, 8):
            assert [s.mean for s in first.series[d]] == \
                   [s.mean for s in second.series[d]]


class TestReviewRegressions:
    """Regressions for review findings on spec validation coverage."""

    def test_sweep_and_series_may_not_share_a_target(self):
        bad = tiny_spec_dict(
            sweep={"name": "eps_a", "target": "solver.epsilon",
                   "values": [0.5, 1.0]},
            series={"name": "eps_b", "target": "solver.epsilon",
                    "values": [2.0, 4.0]})
        with pytest.raises(ValueError, match="both target"):
            ExperimentSpec.from_dict(bad)

    def test_reserved_positional_params_rejected_as_kwargs(self):
        with pytest.raises(ValueError, match="'rng'"):
            ExperimentSpec.from_dict(
                tiny_spec_dict(solver_kwargs={"delta": 1e-5, "rng": 7}))
        with pytest.raises(ValueError, match="'data'"):
            ExperimentSpec.from_dict(
                tiny_spec_dict(solver_kwargs={"delta": 1e-5, "data": 1}))

    def test_reserved_positional_params_rejected_as_axis_targets(self):
        bad = tiny_spec_dict(sweep={"name": "rng", "target": "solver.rng",
                                    "values": [1, 2]})
        with pytest.raises(ValueError, match="'rng'"):
            ExperimentSpec.from_dict(bad)
