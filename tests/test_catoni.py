"""Tests for the smoothed Catoni estimator — the paper's statistical engine.

Includes the property-based checks that pin the implementation to the
math: the closed-form smoothed influence must agree with quadrature of
``E[phi(a + b xi)]`` everywhere, stay inside ``[-2sqrt(2)/3, 2sqrt(2)/3]``
and reduce to ``phi`` as the smoothing noise vanishes.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimators import (
    PHI_BOUND,
    PHI_KNEE,
    CatoniEstimator,
    correction_term,
    optimal_scale,
    phi,
    smoothed_phi,
    smoothed_phi_quadrature,
)


class TestPhi:
    def test_cubic_inside_knee(self):
        u = np.array([-1.0, 0.0, 0.5, 1.0])
        np.testing.assert_allclose(phi(u), u - u**3 / 6.0)

    def test_saturates_outside_knee(self):
        assert phi(np.array(10.0)) == pytest.approx(PHI_BOUND)
        assert phi(np.array(-10.0)) == pytest.approx(-PHI_BOUND)

    def test_continuous_at_knee(self):
        inner = float(phi(np.array(PHI_KNEE - 1e-12)))
        outer = float(phi(np.array(PHI_KNEE + 1e-12)))
        assert inner == pytest.approx(outer, abs=1e-9)
        assert outer == pytest.approx(PHI_BOUND)

    def test_odd_function(self):
        u = np.linspace(-5, 5, 101)
        np.testing.assert_allclose(phi(u), -phi(-u), atol=1e-15)

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_bounded_everywhere(self, u):
        assert abs(float(phi(np.array(u)))) <= PHI_BOUND + 1e-12

    @given(st.floats(min_value=-10, max_value=10))
    def test_catoni_log_sandwich(self, u):
        """phi satisfies -log(1 - u + u^2/2) <= phi(u) <= log(1 + u + u^2/2)."""
        val = float(phi(np.array(u)))
        upper = math.log(1.0 + u + u * u / 2.0)
        lower = -math.log(1.0 - u + u * u / 2.0)
        assert lower - 1e-9 <= val <= upper + 1e-9


class TestSmoothedPhi:
    @given(
        a=st.floats(min_value=-8, max_value=8),
        b=st.floats(min_value=1e-6, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_quadrature(self, a, b):
        closed = float(smoothed_phi(np.array(a), np.array(b)))
        reference = smoothed_phi_quadrature(a, b)
        assert closed == pytest.approx(reference, abs=1e-6)

    @given(
        a=st.floats(min_value=-100, max_value=100),
        b=st.floats(min_value=0, max_value=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_bounded(self, a, b):
        assert abs(float(smoothed_phi(np.array(a), np.array(b)))) <= PHI_BOUND

    def test_degenerate_b_equals_phi(self):
        a = np.linspace(-3, 3, 17)
        np.testing.assert_allclose(smoothed_phi(a, np.zeros_like(a)), phi(a))

    def test_small_b_approaches_phi(self):
        a = np.array([0.5, 1.0, -2.5])
        out = smoothed_phi(a, np.full_like(a, 1e-6))
        np.testing.assert_allclose(out, phi(a), atol=1e-5)

    def test_odd_in_a(self):
        a = np.linspace(0.1, 4, 20)
        b = np.full_like(a, 0.7)
        np.testing.assert_allclose(smoothed_phi(a, b), -smoothed_phi(-a, b),
                                   atol=1e-12)

    def test_rejects_negative_b(self):
        with pytest.raises(ValueError):
            smoothed_phi(np.array(1.0), np.array(-0.5))

    def test_broadcasting(self):
        out = smoothed_phi(np.ones((2, 3)), np.array(0.5))
        assert out.shape == (2, 3)

    def test_correction_vanishes_for_central_a_small_b(self):
        # With a well inside the knee and tiny noise, phi never saturates,
        # so the correction is negligible.
        c = float(correction_term(np.array(0.1), np.array(0.01)))
        assert abs(c) < 1e-10


class TestCatoniEstimator:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CatoniEstimator(scale=0.0)
        with pytest.raises(ValueError):
            CatoniEstimator(scale=1.0, beta=0.0)

    def test_estimates_gaussian_mean(self, rng):
        est = CatoniEstimator(scale=20.0)
        x = rng.normal(loc=3.0, scale=1.0, size=20_000)
        assert est.estimate(x) == pytest.approx(3.0, abs=0.1)

    def test_robust_to_one_huge_outlier(self, rng):
        est = CatoniEstimator(scale=10.0)
        x = rng.normal(loc=1.0, size=2000)
        x[0] = 1e9
        # Empirical mean is destroyed (~5e5); Catoni moves by <= s*bound/n.
        assert abs(np.mean(x)) > 1e5
        assert est.estimate(x) == pytest.approx(1.0, abs=0.2)

    def test_influence_bound(self, rng):
        est = CatoniEstimator(scale=2.0)
        x = rng.standard_cauchy(size=5000) * 100
        influences = est.influence(x)
        assert np.all(np.abs(influences) <= 2.0 * PHI_BOUND + 1e-12)

    def test_sensitivity_formula(self):
        est = CatoniEstimator(scale=3.0)
        assert est.sensitivity(100) == pytest.approx(4 * math.sqrt(2) * 3.0 / 300)

    def test_sensitivity_realized(self, rng):
        """Replacing one sample moves the estimate by at most the sensitivity."""
        est = CatoniEstimator(scale=1.5)
        x = rng.normal(size=200)
        base = est.estimate(x)
        worst = 0.0
        for replacement in (1e12, -1e12, 0.0):
            x2 = x.copy()
            x2[0] = replacement
            worst = max(worst, abs(est.estimate(x2) - base))
        assert worst <= est.sensitivity(200) + 1e-12

    def test_estimate_columns_matches_scalar(self, rng):
        est = CatoniEstimator(scale=5.0)
        X = rng.normal(size=(300, 4))
        cols = est.estimate_columns(X)
        expected = [est.estimate(X[:, j]) for j in range(4)]
        np.testing.assert_allclose(cols, expected)

    def test_estimate_rejects_bad_shapes(self):
        est = CatoniEstimator(scale=1.0)
        with pytest.raises(ValueError):
            est.estimate(np.ones((2, 2)))
        with pytest.raises(ValueError):
            est.estimate_columns(np.ones(3))

    def test_error_bound_holds_empirically(self, rng):
        """Lemma 4's deviation bound should hold for lognormal data."""
        tau = float(np.exp(2 * 0.6**2))  # second moment of Lognormal(0, .6)
        n = 4000
        failures = 0
        trials = 40
        for _ in range(trials):
            x = rng.lognormal(mean=0.0, sigma=0.6, size=n)
            scale = optimal_scale(n, tau, 0.05)
            est = CatoniEstimator(scale=scale)
            bound = est.error_bound(n, tau, 0.05)
            truth = float(np.exp(0.6**2 / 2))
            if abs(est.estimate(x) - truth) > bound:
                failures += 1
        assert failures <= 0.05 * trials + 2

    def test_noisy_estimate_mean_converges_to_smoothed(self, rng):
        """The Monte-Carlo eq.(3) estimator averages to the eq.(4) closed form."""
        est = CatoniEstimator(scale=2.0, beta=1.0)
        x = rng.normal(loc=1.0, size=50)
        smoothed = est.estimate(x)
        draws = [est.noisy_estimate(x, rng.normal(scale=1.0, size=x.size))
                 for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(smoothed, abs=0.02)

    def test_noisy_estimate_shape_mismatch(self, rng):
        est = CatoniEstimator(scale=1.0)
        with pytest.raises(ValueError):
            est.noisy_estimate(np.ones(3), np.ones(4))


class TestOptimalScale:
    def test_balances_bound(self):
        """The optimal scale should (locally) minimise the Lemma 4 bound."""
        n, tau, zeta = 1000, 2.0, 0.05
        s_opt = optimal_scale(n, tau, zeta)
        best = CatoniEstimator(scale=s_opt).error_bound(n, tau, zeta)
        for factor in (0.5, 0.9, 1.1, 2.0):
            other = CatoniEstimator(scale=s_opt * factor).error_bound(n, tau, zeta)
            assert best <= other + 1e-12

    def test_grows_with_n(self):
        assert optimal_scale(10_000, 1.0, 0.05) > optimal_scale(100, 1.0, 0.05)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            optimal_scale(100, -1.0, 0.05)
        with pytest.raises(ValueError):
            optimal_scale(100, 1.0, 0.0)
