"""Tests for the parallel, cache-aware experiment engine.

The load-bearing properties: cell seeds are stable digests of the cell
coordinates (never the process-salted builtin ``hash``), the serial,
thread, and process executors are bit-identical, and the on-disk cache
recomputes only the missing cells.
"""

import os
import pathlib
import subprocess
import sys

import numpy as np
import pytest

from repro.evaluation import (
    ProcessExecutor,
    ResultCache,
    SerialExecutor,
    ThreadExecutor,
    build_jobs,
    get_executor,
    run_grid,
    sweep,
)
from repro.evaluation.engine import canonical_token, cell_seed_words

SRC_DIR = pathlib.Path(__file__).parent.parent / "src"


def _linear_point(series, x, rng):
    """Module-level (hence picklable) point function for executor tests."""
    return float(series) * float(x) + float(rng.normal())


class _CountingExecutor:
    """Serial executor that records how many jobs it was asked to run."""

    def __init__(self):
        self.calls = 0
        self._inner = SerialExecutor()

    def run(self, payloads):
        self.calls += len(payloads)
        return self._inner.run(payloads)


class TestSeeding:
    def test_pinned_cell_seeds(self):
        """Regression pin: exact per-cell seed material for a known grid.

        These constants were computed from the stable blake2b digest of
        the cell coordinates; they must never change across processes,
        platforms, or ``PYTHONHASHSEED`` values.  (The old seeding used
        ``hash(str(series_value))``, which is process-salted.)
        """
        jobs = build_jobs("n", [10, 20], "d", [5], n_trials=2, seed=7)
        assert [job.spawn_key for job in jobs] == [
            (2366456720, 51034412),
            (1037081866, 783733681),
        ]
        assert [job.digest for job in jobs] == [
            "8ab5efe58115810023f5687ec7921202",
            "a62b4cd800e50c2e5e2d3ce667477ee0",
        ]

    def test_seeds_depend_on_values_not_indices(self):
        """The same coordinates get the same seed wherever they sit in
        the grid, so extending a sweep keeps existing cells valid."""
        short = build_jobs("n", [20], "d", [5], n_trials=2, seed=7)
        long = build_jobs("n", [10, 20], "d", [5], n_trials=2, seed=7)
        assert short[0].spawn_key == long[1].spawn_key
        assert short[0].digest == long[1].digest

    def test_duplicate_series_values_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            build_jobs("n", [1, 2], "d", [5, 5], n_trials=1, seed=0)

    def test_distinct_cells_distinct_seeds(self):
        jobs = build_jobs("n", [1, 2, 3], "d", [10, 20], n_trials=2, seed=0)
        keys = {job.spawn_key for job in jobs}
        assert len(keys) == len(jobs)

    def test_root_seed_changes_results_not_spawn_words(self):
        a = build_jobs("n", [1], "d", [1], n_trials=2, seed=0)[0]
        b = build_jobs("n", [1], "d", [1], n_trials=2, seed=1)[0]
        # The digest words come from the coordinates; the root seed
        # enters through the entropy (and the cache digest).
        assert a.spawn_key == b.spawn_key
        assert a.entropy != b.entropy
        assert a.digest != b.digest

    def test_seed_sequence_root_accepted(self):
        root = np.random.SeedSequence(42, spawn_key=(3,))
        job = build_jobs("n", [1], "d", [1], n_trials=2, seed=root)[0]
        assert job.entropy == 42
        assert job.spawn_key[0] == 3

    @pytest.mark.parametrize("bad", [None, 1.5, "7", True,
                                     np.random.default_rng(0)])
    def test_unsupported_seed_types_raise(self, bad):
        with pytest.raises(TypeError):
            sweep(lambda s, x, rng: 0.0, "n", [1], "d", [1], seed=bad)

    def test_canonical_token_type_tags(self):
        assert canonical_token(1) != canonical_token("1")
        assert canonical_token(1) != canonical_token(1.0)
        assert canonical_token(np.float64(0.5)) == canonical_token(0.5)

    def test_canonical_token_separator_injection_rejected(self):
        # Free-form payloads are length-prefixed, so a value embedding
        # the token separators cannot mimic another coordinate list.
        assert canonical_token(["a,s:b"]) != canonical_token(["a", "b"])
        assert canonical_token(("a", "b")) == canonical_token(["a", "b"])
        assert canonical_token("a\x1fb") != canonical_token("ab")

    def test_canonical_token_arrays_digest_full_buffer(self):
        # numpy repr elides big arrays; the token must not.
        a = np.zeros(5000)
        b = np.zeros(5000)
        b[2500] = 1.0
        assert canonical_token(a) != canonical_token(b)
        assert canonical_token(a) == canonical_token(np.zeros(5000))

    def test_canonical_token_sets_are_order_independent(self):
        built_one_way = {"alpha", "beta", "gamma"}
        built_another = set()
        for item in ("gamma", "alpha", "beta"):
            built_another.add(item)
        assert canonical_token(built_one_way) == canonical_token(built_another)

    def test_canonical_token_rejects_default_repr_objects(self):
        # A default repr is just a per-process memory address — seeding
        # from it would silently reintroduce the cross-process bug.
        class Opaque:
            pass

        with pytest.raises(TypeError, match="memory address"):
            canonical_token(Opaque())

    def test_canonical_token_custom_repr_is_process_stable(self):
        class Config:
            def __repr__(self):
                return f"Config(x=1, inner={object.__repr__(self)})"

        token = canonical_token(Config())
        # Embedded addresses are stripped, so two instances agree.
        assert token == canonical_token(Config())
        assert "0x" in token and "object at 0x>" in token

    def test_canonical_token_preserves_hex_literal_state(self):
        # Only the default-repr ' at 0x...' address pattern is stripped;
        # hex literals that carry state must keep distinguishing values.
        class Spec:
            def __init__(self, flags):
                self.flags = flags

            def __repr__(self):
                return f"Spec({self.flags:#x})"

        assert canonical_token(Spec(0x0F)) != canonical_token(Spec(0xFF))

    def test_cell_seed_words_are_stable_across_calls(self):
        assert (cell_seed_words("d", 5, "n", 10)
                == cell_seed_words("d", 5, "n", 10))


class TestCrossProcessReproducibility:
    def test_sweep_identical_under_different_hash_seeds(self):
        """The headline bugfix: two processes with different
        ``PYTHONHASHSEED`` values must produce identical sweep means."""
        script = (
            "from repro.evaluation import sweep\n"
            "r = sweep(lambda s, x, rng: {'a': 1, 'b': 2}[s] * float(x) + rng.normal(),\n"
            "          'n', [1, 2, 4], 'd', ['a', 'b'], n_trials=3, seed=123)\n"
            "print([[v.hex() for v in r.means(k)] for k in ['a', 'b']])\n"
        )
        outputs = []
        for hash_seed in ("0", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed,
                       PYTHONPATH=os.pathsep.join(
                           [str(SRC_DIR)] +
                           ([os.environ["PYTHONPATH"]]
                            if os.environ.get("PYTHONPATH") else [])))
            proc = subprocess.run([sys.executable, "-c", script], env=env,
                                  capture_output=True, text=True, timeout=120)
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]


class TestExecutors:
    def test_process_matches_serial_bit_for_bit(self):
        kwargs = dict(n_trials=4, seed=11)
        serial = run_grid(_linear_point, "n", [1, 2, 3], "d", [5, 7],
                          executor="serial", **kwargs)
        procs = run_grid(_linear_point, "n", [1, 2, 3], "d", [5, 7],
                         executor="process", max_workers=2, **kwargs)
        for d in (5, 7):
            assert serial.means(d).tolist() == procs.means(d).tolist()
            assert ([s.std for s in serial.series[d]]
                    == [s.std for s in procs.series[d]])

    def test_chunksize_batching_matches(self):
        base = run_grid(_linear_point, "n", list(range(6)), "d", [2],
                        n_trials=2, seed=3, executor="process",
                        max_workers=2, chunksize=1)
        chunked = run_grid(_linear_point, "n", list(range(6)), "d", [2],
                           n_trials=2, seed=3, executor="process",
                           max_workers=2, chunksize=4)
        assert base.means(2).tolist() == chunked.means(2).tolist()

    def test_thread_matches_serial_bit_for_bit(self):
        kwargs = dict(n_trials=4, seed=11)
        serial = run_grid(_linear_point, "n", [1, 2, 3], "d", [5, 7],
                          executor="serial", **kwargs)
        threads = run_grid(_linear_point, "n", [1, 2, 3], "d", [5, 7],
                           executor="thread", max_workers=4, **kwargs)
        for d in (5, 7):
            assert serial.means(d).tolist() == threads.means(d).tolist()
            assert ([s.std for s in serial.series[d]]
                    == [s.std for s in threads.series[d]])

    def test_thread_executor_accepts_closures(self):
        # Unlike the process pool, threads share the interpreter: no
        # pickling requirement, so closure points parallelise too.
        offset = 2.5
        serial = run_grid(lambda s, x, rng: offset * x + rng.normal(),
                          "n", [1, 2], "d", [1], n_trials=3, seed=4)
        threads = run_grid(lambda s, x, rng: offset * x + rng.normal(),
                           "n", [1, 2], "d", [1], n_trials=3, seed=4,
                           executor="thread")
        assert serial.means(1).tolist() == threads.means(1).tolist()

    def test_closure_rejected_with_clear_error(self):
        offset = 1.0
        with pytest.raises(TypeError, match="picklable"):
            run_grid(lambda s, x, rng: offset, "n", [1], "d", [1],
                     n_trials=1, seed=0, executor="process")

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            get_executor("threads")
        with pytest.raises(TypeError):
            get_executor(42)

    def test_executor_names_resolve(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("thread"), ThreadExecutor)
        assert isinstance(get_executor("process"), ProcessExecutor)

    def test_invalid_pool_parameters_rejected(self):
        with pytest.raises(ValueError):
            ProcessExecutor(max_workers=0)
        with pytest.raises(ValueError):
            ProcessExecutor(chunksize=0)
        with pytest.raises(ValueError):
            ThreadExecutor(max_workers=0)

    def test_executor_instance_passthrough(self):
        counting = _CountingExecutor()
        result = run_grid(_linear_point, "n", [1, 2], "d", [3],
                          n_trials=2, seed=0, executor=counting)
        assert counting.calls == 2
        assert len(result.series[3]) == 2


class TestResultCache:
    def test_second_run_is_all_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_grid(_linear_point, "n", [1, 2], "d", [3, 4],
                         n_trials=3, seed=5, cache=cache)
        assert cache.misses == 4 and cache.hits == 0
        counting = _CountingExecutor()
        second = run_grid(_linear_point, "n", [1, 2], "d", [3, 4],
                          n_trials=3, seed=5, cache=cache, executor=counting)
        assert counting.calls == 0
        assert cache.hits == 4
        for d in (3, 4):
            assert first.means(d).tolist() == second.means(d).tolist()

    def test_extending_grid_recomputes_only_missing(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_grid(_linear_point, "n", [1, 2], "d", [3], n_trials=2, seed=0,
                 cache=cache)
        counting = _CountingExecutor()
        run_grid(_linear_point, "n", [1, 2, 4], "d", [3], n_trials=2, seed=0,
                 cache=cache, executor=counting)
        assert counting.calls == 1  # only the new x=4 cell

    def test_cache_keys_separate_seeds_trials_and_tags(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = dict(n_trials=2, cache=cache)
        run_grid(_linear_point, "n", [1], "d", [1], seed=0, **base)
        for kwargs in (dict(seed=1), dict(seed=0, cache_tag="other")):
            counting = _CountingExecutor()
            run_grid(_linear_point, "n", [1], "d", [1], executor=counting,
                     **base, **kwargs)
            assert counting.calls == 1
        counting = _CountingExecutor()
        run_grid(_linear_point, "n", [1], "d", [1], seed=0, n_trials=3,
                 cache=cache, executor=counting)
        assert counting.calls == 1

    def test_non_numeric_cache_payload_is_a_miss(self, tmp_path):
        import json as json_mod

        cache = ResultCache(tmp_path)
        run_grid(_linear_point, "n", [1], "d", [1], n_trials=3, seed=0,
                 cache=cache)
        for path in tmp_path.glob("**/*.json"):
            path.write_text(json_mod.dumps([None, 1.0, "x"]))
        fresh = ResultCache(tmp_path)
        result = run_grid(_linear_point, "n", [1], "d", [1], n_trials=3,
                          seed=0, cache=fresh)
        assert fresh.hits == 0 and fresh.misses == 1
        assert np.isfinite(result.means(1)).all()

    def test_corrupt_cache_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_grid(_linear_point, "n", [1], "d", [1], n_trials=2, seed=0,
                 cache=cache)
        for path in tmp_path.glob("**/*.json"):
            path.write_text("not json")
        fresh = ResultCache(tmp_path)
        result = run_grid(_linear_point, "n", [1], "d", [1], n_trials=2,
                          seed=0, cache=fresh)
        assert fresh.hits == 0 and fresh.misses == 1
        assert np.isfinite(result.means(1)).all()

    def test_completed_cells_survive_midgrid_failure(self, tmp_path):
        # Both runs pin an explicit code_tag: by default a fixed point
        # function has a new fingerprint, which (correctly) retires the
        # failed run's cells too — here we isolate the survival
        # property itself, as a caller managing versions by hand would.
        cache = ResultCache(tmp_path)

        def exploding_point(series, x, rng):
            if x == 3:
                raise RuntimeError("boom")
            return float(x)

        with pytest.raises(RuntimeError):
            run_grid(exploding_point, "n", [1, 2, 3], "d", [0],
                     n_trials=1, seed=0, cache=cache, code_tag="panel")
        # The two cells finished before the failure were persisted...
        assert len(list(tmp_path.glob("**/*.json"))) == 2
        # ...so a rerun with a fixed point recomputes only the third.
        counting = _CountingExecutor()
        fixed = run_grid(_linear_point, "n", [1, 2, 3], "d", [0],
                         n_trials=1, seed=0, cache=ResultCache(tmp_path),
                         executor=counting, code_tag="panel")
        assert counting.calls == 1
        assert len(fixed.series[0]) == 3

    def test_cache_dir_path_accepted(self, tmp_path):
        run_grid(_linear_point, "n", [1], "d", [1], n_trials=2, seed=0,
                 cache=str(tmp_path / "cells"))
        assert list((tmp_path / "cells").glob("**/*.json"))


class TestSweepWrapper:
    def test_sweep_matches_run_grid(self):
        a = sweep(_linear_point, "n", [1, 2], "d", [3], n_trials=3, seed=9)
        b = run_grid(_linear_point, "n", [1, 2], "d", [3], n_trials=3, seed=9)
        assert a.means(3).tolist() == b.means(3).tolist()

    def test_sweep_same_root_seed_reproducible_in_process(self):
        run = lambda: sweep(_linear_point, "n", [1, 2, 4], "d", [1, 10],
                            n_trials=3, seed=0)
        assert run().means(10).tolist() == run().means(10).tolist()
