"""Tests for the scenario layer and code-aware cache keys.

The load-bearing properties: scenarios are picklable (so the process
executor genuinely fans bench grids out), all three executors produce
bit-identical results on a *real* bench scenario, and the engine's
cache keys see the point's code — editing a point function's body
invalidates exactly its warm-cache cells, while reformatting (line
shifts) does not.  Renames of the defining module invalidate too, by
design: for a cache, a spurious recompute is cheap and a stale hit is
not.
"""

import importlib.util
import pathlib
import pickle
import sys
import textwrap
import types

import numpy as np
import pytest

from repro.evaluation import (
    PointSpec,
    ResultCache,
    Scenario,
    point_fingerprint,
    run_grid,
)

BENCH_DIR = pathlib.Path(__file__).parent.parent / "benchmarks"
if str(BENCH_DIR) not in sys.path:  # make benchmarks/_scenarios importable
    sys.path.insert(0, str(BENCH_DIR))

import _scenarios  # noqa: E402  (needs the sys.path entry above)
from test_engine import _CountingExecutor  # noqa: E402  (shared helper)


def _quadratic_point(series, x, rng, scale=1.0):
    """Module-level point for PointSpec tests."""
    return scale * float(series) * float(x) + float(rng.normal())


def _bench_scenario():
    """A real (but laptop-sized) figure scenario: the Peeling ablation."""
    return _scenarios.PeelingVsDenseAblation(n=300, s=2)


class TestScenarioProtocol:
    def test_base_scenario_call_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Scenario()(1, 2, np.random.default_rng(0))

    def test_point_spec_binds_parameters(self):
        spec = PointSpec.of(_quadratic_point, scale=3.0)
        rng = np.random.default_rng(0)
        expected = _quadratic_point(2, 5, np.random.default_rng(0), scale=3.0)
        assert spec(2, 5, rng) == expected

    def test_point_spec_requires_callable(self):
        with pytest.raises(TypeError):
            PointSpec.of(None)

    def test_point_spec_param_order_is_canonical(self):
        a = PointSpec.of(_quadratic_point, scale=2.0)
        b = PointSpec(fn=_quadratic_point, params=(("scale", 2.0),))
        assert a == b
        assert a.fingerprint() == b.fingerprint()

    def test_mistyped_mode_fields_rejected(self):
        """A typo in a mode field must fail fast, not silently take the
        last dispatch branch and emit a plausible but wrong panel."""
        with pytest.raises(ValueError, match="sweep"):
            _scenarios.SparseLinearPanel(
                features=_scenarios.DistributionSpec("gaussian",
                                                     {"scale": 1.0}),
                noise=_scenarios.DistributionSpec("gaussian",
                                                  {"scale": 1.0}),
                sweep="eps")
        with pytest.raises(ValueError, match="solver"):
            _scenarios.L1LinearPanel(solver="sgd")
        with pytest.raises(ValueError, match="loss"):
            _scenarios.RealDataPanel(dataset="blog", loss="hinge")
        with pytest.raises(ValueError, match="metric"):
            _scenarios.SparseLinearPanel(
                features=_scenarios.DistributionSpec("gaussian",
                                                     {"scale": 1.0}),
                noise=_scenarios.DistributionSpec("gaussian",
                                                  {"scale": 1.0}),
                metric="l2")

    @pytest.mark.parametrize("scenario", [
        _scenarios.L1LinearPanel(
            solver="dpfw",
            features=_scenarios.DistributionSpec("lognormal", {"sigma": 0.6}),
            noise=_scenarios.DistributionSpec("gaussian", {"scale": 0.1}),
            sweep="epsilon", n_fixed=100),
        _scenarios.RealDataPanel(dataset="blog", loss="squared"),
        _scenarios.SparseLinearPanel(
            features=_scenarios.DistributionSpec("gaussian", {"scale": 2.24}),
            noise=_scenarios.DistributionSpec("lognormal", {"sigma": 0.5}),
            sweep="n", s_fixed=2),
        _scenarios.PeelingVsDenseAblation(n=100, s=2),
    ], ids=lambda s: type(s).__name__)
    def test_bench_scenarios_pickle_roundtrip(self, scenario):
        clone = pickle.loads(pickle.dumps(scenario))
        assert clone == scenario
        assert clone.fingerprint() == scenario.fingerprint()


class TestExecutorBitIdentityOnBenchScenario:
    def test_serial_thread_process_agree(self):
        """The acceptance property: a real bench scenario produces
        bit-identical result tables on every executor."""
        grid = dict(n_trials=2, seed=220)
        results = {
            name: run_grid(_bench_scenario(), "d", [10, 20],
                           "method", ["peeling", "dense-laplace"],
                           executor=name, max_workers=2, **grid)
            for name in ("serial", "thread", "process")
        }
        for method in ("peeling", "dense-laplace"):
            serial = results["serial"].means(method).tolist()
            assert results["thread"].means(method).tolist() == serial
            assert results["process"].means(method).tolist() == serial


class TestFingerprints:
    def test_fingerprint_is_deterministic(self):
        assert (point_fingerprint(_quadratic_point)
                == point_fingerprint(_quadratic_point))

    def test_fields_change_fingerprint(self):
        a = _scenarios.PeelingVsDenseAblation(n=100, s=2)
        b = _scenarios.PeelingVsDenseAblation(n=100, s=3)
        assert a.fingerprint() != b.fingerprint()

    def test_point_spec_params_change_fingerprint(self):
        a = PointSpec.of(_quadratic_point, scale=1.0)
        b = PointSpec.of(_quadratic_point, scale=2.0)
        assert a.fingerprint() != b.fingerprint()

    def test_closure_state_changes_fingerprint(self):
        def make(offset):
            return lambda s, x, rng: x + offset

        assert point_fingerprint(make(1.0)) != point_fingerprint(make(2.0))
        assert point_fingerprint(make(1.0)) == point_fingerprint(make(1.0))

    def test_scenario_helper_method_body_is_covered(self):
        """Editing a method the scenario calls via ``self`` must change
        the fingerprint — co_names cannot resolve attribute lookups, so
        the fingerprint hashes every method the class defines."""
        from dataclasses import dataclass

        def make_class(factor):
            @dataclass(frozen=True)
            class Probe(Scenario):
                def _helper(self, x):
                    return float(x) * factor  # noqa: B023

                def __call__(self, series, x, rng):
                    return self._helper(x)

            return Probe

        # Same closure state, same methods -> same fingerprint...
        assert (point_fingerprint(make_class(2.0)())
                == point_fingerprint(make_class(2.0)()))
        # ...but a different helper body (here, captured state the
        # helper uses) re-keys the cache.
        assert (point_fingerprint(make_class(2.0)())
                != point_fingerprint(make_class(3.0)()))

    def test_module_constant_referenced_by_point_is_covered(self, tmp_path):
        probe = _ProbeModules(tmp_path, name="_const_probe")
        template = """\
        FACTOR = {factor}

        def probe_point(series, x, rng):
            return float(x) * FACTOR
        """

        def load(factor):
            return probe.load_source(
                textwrap.dedent(template).format(factor=factor))

        assert point_fingerprint(load(2.0)) == point_fingerprint(load(2.0))
        assert point_fingerprint(load(2.0)) != point_fingerprint(load(7.0))

    def test_module_rename_conservatively_invalidates(self, tmp_path):
        """The module-qualified name is part of the fingerprint: a
        rename costs an early recompute, never a stale hit."""
        body = "return float(x) * 2.0"
        a = _ProbeModules(tmp_path, name="_rename_probe_a").load(body)
        b = _ProbeModules(tmp_path, name="_rename_probe_b").load(body)
        assert point_fingerprint(a) != point_fingerprint(b)

    def test_line_shifts_do_not_invalidate(self, tmp_path):
        """Reformatting around a function (same module, same body at a
        different line number) keeps the fingerprint stable."""
        probe = _ProbeModules(tmp_path, name="_shift_probe")
        token = point_fingerprint(probe.load("return float(x) * 2.0"))
        shifted = probe.load_source("# a comment\n\n\n"
                                    + probe.path.read_text())
        assert point_fingerprint(shifted) == token

    def test_never_raises_on_opaque_callables(self):
        class Opaque:
            __slots__ = ()

            def __call__(self, s, x, rng):
                return 0.0

        token = point_fingerprint(Opaque())
        assert isinstance(token, str) and token


class _ProbeModules:
    """Write, import, and rewrite a throwaway point-function module."""

    TEMPLATE = """\
    def probe_point(series, x, rng):
        {body}
    """

    def __init__(self, tmp_path, name="_code_probe"):
        self.path = tmp_path / f"{name}.py"
        self.name = name
        self.module = None

    def load_source(self, source):
        """(Re)write the module with ``source`` and import its point."""
        self.path.write_text(source)
        spec = importlib.util.spec_from_file_location(self.name, self.path)
        self.module = importlib.util.module_from_spec(spec)
        sys.modules[self.name] = self.module
        spec.loader.exec_module(self.module)
        return self.module.probe_point

    def load(self, body):
        """(Re)write the probe function with ``body`` and import it."""
        return self.load_source(
            textwrap.dedent(self.TEMPLATE).format(body=body))


class TestCodeAwareCaching:
    """Editing a point function's body must invalidate its cached cells."""

    def _run(self, point, cache):
        counting = _CountingExecutor()
        result = run_grid(point, "n", [1, 2], "d", [1], n_trials=2, seed=0,
                          cache=cache, executor=counting)
        return counting.calls, result

    def test_bytecode_change_invalidates_warm_cache(self, tmp_path):
        probe = _ProbeModules(tmp_path)
        cache = ResultCache(tmp_path / "cells")
        point = probe.load("return float(x) * 2.0")
        calls, first = self._run(point, cache)
        assert calls == 2  # cold: both cells computed

        # Identical source reloaded -> identical fingerprint -> all hits.
        point = probe.load("return float(x) * 2.0")
        calls, warm = self._run(point, cache)
        assert calls == 0
        assert warm.means(1).tolist() == first.means(1).tolist()

        # Edited body (a constant in co_consts) -> cells recomputed.
        point = probe.load("return float(x) * 3.0")
        calls, changed = self._run(point, cache)
        assert calls == 2
        assert changed.means(1).tolist() != first.means(1).tolist()

    def test_same_module_helper_edit_invalidates(self, tmp_path):
        """The fingerprint walks helpers the point calls in its own
        module, so refactoring point logic into ``_make``-style helpers
        does not hide edits from the cache."""
        probe = _ProbeModules(tmp_path)
        template = """\
        def _helper(x):
            return float(x) * {factor}

        def probe_point(series, x, rng):
            return _helper(x)
        """

        def load(factor):
            return probe.load_source(
                textwrap.dedent(template).format(factor=factor))

        cache = ResultCache(tmp_path / "cells")
        calls, _ = self._run(load(2.0), cache)
        assert calls == 2
        calls, _ = self._run(load(2.0), cache)
        assert calls == 0
        calls, _ = self._run(load(5.0), cache)
        assert calls == 2

    def test_explicit_code_tag_opts_out(self, tmp_path):
        """``code_tag=""`` restores coordinate-only cache keys."""
        probe = _ProbeModules(tmp_path)
        cache = ResultCache(tmp_path / "cells")
        point = probe.load("return float(x) * 2.0")
        counting = _CountingExecutor()
        run_grid(point, "n", [1], "d", [1], n_trials=1, seed=0, cache=cache,
                 executor=counting, code_tag="")
        assert counting.calls == 1
        point = probe.load("return float(x) * 9.0")
        counting = _CountingExecutor()
        run_grid(point, "n", [1], "d", [1], n_trials=1, seed=0, cache=cache,
                 executor=counting, code_tag="")
        assert counting.calls == 0  # stale hit, by explicit request

    def test_scenario_field_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        grid = dict(n_trials=1, seed=220)
        for expected, scenario in [
            (2, _scenarios.PeelingVsDenseAblation(n=120, s=2)),
            (0, _scenarios.PeelingVsDenseAblation(n=120, s=2)),
            (2, _scenarios.PeelingVsDenseAblation(n=150, s=2)),
        ]:
            counting = _CountingExecutor()
            run_grid(scenario, "d", [8, 16], "method", ["peeling"],
                     cache=cache, executor=counting, **grid)
            assert counting.calls == expected

    def test_code_tag_does_not_change_seeds(self, tmp_path):
        """Fingerprints gate cache reuse only: recomputed cells draw the
        same randomness regardless of the point's code identity."""
        probe = _ProbeModules(tmp_path)
        noisy = probe.load("return float(rng.normal())")
        baseline = run_grid(noisy, "n", [1], "d", [1], n_trials=3, seed=7)
        relabeled = run_grid(noisy, "n", [1], "d", [1], n_trials=3, seed=7,
                             code_tag="v2")
        assert baseline.means(1).tolist() == relabeled.means(1).tolist()


class TestCodeHashModules:
    """The opt-in cross-module fingerprint knob on Scenario."""

    def _fake_module(self, name, body):
        module = types.ModuleType(name)
        exec(textwrap.dedent(body), module.__dict__)
        sys.modules[name] = module
        return module

    def test_module_edit_invalidates_fingerprint(self):
        import dataclasses as _dc
        from repro.evaluation import PointSpec, point_fingerprint
        name = "_fp_knob_test_mod"
        self._fake_module(name, """
            def helper(a):
                return a + 1
        """)
        try:
            def point(series, x, rng):
                return 0.0
            spec = _dc.replace(PointSpec.of(point),
                               code_hash_modules=(name,))
            before = point_fingerprint(spec)
            # Same module content -> same fingerprint.
            assert point_fingerprint(spec) == before
            # Editing the module's function body must invalidate.
            self._fake_module(name, """
                def helper(a):
                    return a + 2
            """)
            assert point_fingerprint(spec) != before
        finally:
            del sys.modules[name]

    def test_class_methods_in_module_are_covered(self):
        import dataclasses as _dc
        from repro.evaluation import PointSpec, point_fingerprint
        name = "_fp_knob_class_mod"
        self._fake_module(name, """
            class Estimator:
                def estimate(self, x):
                    return x * 2
        """)
        try:
            def point(series, x, rng):
                return 0.0
            spec = _dc.replace(PointSpec.of(point),
                               code_hash_modules=(name,))
            before = point_fingerprint(spec)
            self._fake_module(name, """
                class Estimator:
                    def estimate(self, x):
                        return x * 3
            """)
            assert point_fingerprint(spec) != before
        finally:
            del sys.modules[name]

    def test_field_participates_in_fingerprint_itself(self):
        import dataclasses as _dc
        from repro.evaluation import PointSpec, point_fingerprint
        def point(series, x, rng):
            return 0.0
        bare = PointSpec.of(point)
        opted = _dc.replace(bare, code_hash_modules=("repro.rng",))
        assert point_fingerprint(bare) != point_fingerprint(opted)

    def test_unknown_module_raises_not_degrades(self):
        import dataclasses as _dc
        from repro.evaluation import (FingerprintError, PointSpec,
                                      point_fingerprint)
        def point(series, x, rng):
            return 0.0
        spec = _dc.replace(PointSpec.of(point),
                           code_hash_modules=("no_such_module_qq",))
        with pytest.raises(FingerprintError, match="no_such_module_qq"):
            point_fingerprint(spec)

    def test_real_library_module_token_is_stable(self):
        from repro.evaluation import module_token
        assert module_token("repro.estimators.catoni") == \
               module_token("repro.estimators.catoni")


class TestModuleTokenDescriptors:
    """module_token must see property and cached_property bodies."""

    def _fake_module(self, name, body):
        module = types.ModuleType(name)
        exec(textwrap.dedent(body), module.__dict__)
        sys.modules[name] = module
        return module

    def test_property_edit_changes_module_token(self):
        from repro.evaluation import module_token
        name = "_fp_prop_mod"
        self._fake_module(name, """
            class Shape:
                @property
                def diameter(self):
                    return 1
        """)
        try:
            before = module_token(name)
            self._fake_module(name, """
                class Shape:
                    @property
                    def diameter(self):
                        return 2
            """)
            assert module_token(name) != before
        finally:
            del sys.modules[name]

    def test_cached_property_edit_changes_module_token(self):
        from repro.evaluation import module_token
        name = "_fp_cached_prop_mod"
        self._fake_module(name, """
            import functools
            class Shape:
                @functools.cached_property
                def area(self):
                    return 1
        """)
        try:
            before = module_token(name)
            self._fake_module(name, """
                import functools
                class Shape:
                    @functools.cached_property
                    def area(self):
                        return 2
            """)
            assert module_token(name) != before
        finally:
            del sys.modules[name]
