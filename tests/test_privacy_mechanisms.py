"""Distributional and API tests for the DP mechanisms."""

import numpy as np
import pytest
from scipy import stats

from repro.privacy import (
    ExponentialMechanism,
    GaussianMechanism,
    LaplaceMechanism,
    report_noisy_max,
)


class TestLaplaceMechanism:
    def test_scale(self):
        mech = LaplaceMechanism(epsilon=0.5, sensitivity=2.0)
        assert mech.scale == pytest.approx(4.0)

    def test_budget_is_pure(self):
        assert LaplaceMechanism(1.0, 1.0).budget.is_pure

    def test_noise_distribution(self, rng):
        mech = LaplaceMechanism(epsilon=1.0, sensitivity=1.0)
        noise = mech.randomize(np.zeros(20_000), rng=rng)
        # Laplace(1): mean 0, variance 2.
        assert abs(noise.mean()) < 0.05
        assert noise.var() == pytest.approx(2.0, rel=0.1)

    def test_shape_preserved(self, rng):
        mech = LaplaceMechanism(epsilon=1.0, sensitivity=1.0)
        out = mech.randomize(np.ones((3, 4)), rng=rng)
        assert out.shape == (3, 4)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LaplaceMechanism(epsilon=0.0, sensitivity=1.0)
        with pytest.raises(ValueError):
            LaplaceMechanism(epsilon=1.0, sensitivity=0.0)


class TestGaussianMechanism:
    def test_sigma_formula(self):
        mech = GaussianMechanism(epsilon=1.0, delta=1e-5, sensitivity=2.0)
        expected = 2.0 * np.sqrt(2.0 * np.log(1.25 / 1e-5))
        assert mech.sigma == pytest.approx(expected)

    def test_noise_distribution(self, rng):
        mech = GaussianMechanism(epsilon=2.0, delta=1e-3, sensitivity=1.0)
        noise = mech.randomize(np.zeros(20_000), rng=rng)
        assert noise.std() == pytest.approx(mech.sigma, rel=0.05)

    def test_budget(self):
        b = GaussianMechanism(1.0, 1e-5, 1.0).budget
        assert b.epsilon == 1.0 and b.delta == 1e-5

    def test_warns_above_unit_epsilon(self):
        with pytest.warns(UserWarning, match="epsilon <= 1"):
            GaussianMechanism(epsilon=2.0, delta=1e-5, sensitivity=1.0)

    def test_no_warning_at_or_below_unit_epsilon(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            GaussianMechanism(epsilon=1.0, delta=1e-5, sensitivity=1.0)
            GaussianMechanism(epsilon=0.5, delta=1e-5, sensitivity=1.0)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            GaussianMechanism(epsilon=1.0, delta=0.0, sensitivity=1.0)
        with pytest.raises(ValueError):
            GaussianMechanism(epsilon=1.0, delta=1.0, sensitivity=1.0)


class TestExponentialMechanism:
    def test_probabilities_sum_to_one(self):
        mech = ExponentialMechanism(epsilon=1.0, sensitivity=1.0)
        p = mech.probabilities(np.array([0.0, 1.0, 2.0]))
        assert p.sum() == pytest.approx(1.0)

    def test_probabilities_prefer_high_scores(self):
        mech = ExponentialMechanism(epsilon=2.0, sensitivity=1.0)
        p = mech.probabilities(np.array([0.0, 5.0]))
        assert p[1] > p[0]
        # exact form: p1/p0 = exp(eps * (u1-u0) / (2 Delta)) = exp(5)
        assert p[1] / p[0] == pytest.approx(np.exp(5.0), rel=1e-9)

    def test_extreme_scores_are_stable(self):
        mech = ExponentialMechanism(epsilon=1.0, sensitivity=1e-6)
        p = mech.probabilities(np.array([0.0, 1e6, -1e6]))
        assert np.all(np.isfinite(p))
        assert p.sum() == pytest.approx(1.0)

    def test_softmax_select_survives_widely_separated_scores(self, rng):
        """Rounding in exp/normalisation must not crash ``rng.choice``.

        With widely separated logits the probability vector collapses to
        a single surviving mass (plus rounding dust); the softmax path
        renormalises defensively instead of raising ``ValueError:
        probabilities do not sum to 1``.
        """
        mech = ExponentialMechanism(epsilon=4.0, sensitivity=1e-9,
                                    method="softmax")
        scores = np.array([-1e12, 0.0, 1e12, 3.0, -7.5])
        for _ in range(50):
            assert mech.select(scores, rng=rng) == 2

    @pytest.mark.parametrize("method", ["softmax", "gumbel"])
    def test_select_rejects_logit_overflow(self, method, rng):
        # Finite scores can still overflow once scaled by
        # eps/(2*sensitivity); both samplers must refuse rather than
        # degrade to a deterministic argmax.
        mech = ExponentialMechanism(epsilon=4.0, sensitivity=1e-9,
                                    method=method)
        with pytest.raises(ValueError, match="finite"):
            mech.select(np.array([1e300, 0.0]), rng=rng)

    @pytest.mark.parametrize("method", ["softmax", "gumbel"])
    @pytest.mark.parametrize("bad", [np.inf, -np.inf, np.nan])
    def test_select_rejects_degenerate_scores(self, method, bad, rng):
        # A non-finite score admits no exponential-mechanism distribution;
        # silently returning a deterministic argmax would void the
        # privacy guarantee, so both samplers must raise.
        mech = ExponentialMechanism(epsilon=1.0, sensitivity=1.0,
                                    method=method)
        with pytest.raises(ValueError, match="finite"):
            mech.select(np.array([0.0, bad, -1.0]), rng=rng)

    @pytest.mark.parametrize("method", ["softmax", "gumbel"])
    def test_empirical_distribution_matches(self, method, rng):
        """Both samplers should realise the exponential-mechanism law."""
        scores = np.array([0.0, 0.7, 1.5, -0.5])
        mech = ExponentialMechanism(epsilon=2.0, sensitivity=1.0, method=method)
        expected = mech.probabilities(scores)
        draws = np.array([mech.select(scores, rng=rng) for _ in range(8000)])
        counts = np.bincount(draws, minlength=scores.size)
        _, p_value = stats.chisquare(counts, expected * draws.size)
        assert p_value > 1e-4  # not a significant deviation

    def test_select_rejects_empty(self, rng):
        mech = ExponentialMechanism(epsilon=1.0, sensitivity=1.0)
        with pytest.raises(ValueError):
            mech.select(np.array([]), rng=rng)

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            ExponentialMechanism(epsilon=1.0, sensitivity=1.0, method="bogus")


class TestReportNoisyMax:
    def test_returns_argmax_with_high_epsilon(self, rng):
        scores = np.array([0.0, 10.0, 1.0])
        picks = {report_noisy_max(scores, epsilon=100.0, sensitivity=0.01, rng=rng)
                 for _ in range(20)}
        assert picks == {1}

    def test_exclusion(self, rng):
        scores = np.array([0.0, 10.0, 1.0])
        exclude = np.array([False, True, False])
        for _ in range(20):
            pick = report_noisy_max(scores, epsilon=100.0, sensitivity=0.01,
                                    rng=rng, exclude=exclude)
            assert pick != 1

    def test_all_excluded_raises(self, rng):
        with pytest.raises(ValueError):
            report_noisy_max(np.array([1.0]), 1.0, 1.0, rng=rng,
                             exclude=np.array([True]))

    def test_randomises_with_low_epsilon(self, rng):
        scores = np.array([0.0, 0.1])
        picks = {report_noisy_max(scores, epsilon=0.01, sensitivity=1.0, rng=rng)
                 for _ in range(50)}
        assert picks == {0, 1}
