"""The ``python -m repro`` CLI and the bench env-knob fail-fast."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments import claimed_digests

REPO_ROOT = Path(__file__).resolve().parents[1]

TINY_SPEC = "\n".join([
    'name = "cli_tiny"',
    'solver = "private_lasso"',
    'data = "l1_linear"',
    'metric = "excess_risk"',
    'n_trials = 2',
    'seed = 3',
    '[data_kwargs]',
    'n = 300',
    'features = {name = "lognormal", sigma = 0.6}',
    '[sweep]',
    'name = "epsilon"',
    'target = "solver.epsilon"',
    'values = [0.5, 2.0]',
    '[series]',
    'name = "d"',
    'target = "data.d"',
    'values = [4, 8]',
])


class TestList:
    def test_lists_catalog_and_components(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig05_lasso_lognormal" in out
        assert "ablation_peeling_vs_dense" in out
        assert "solvers:" in out and "private_lasso" in out
        assert "metrics:" in out and "excess_risk" in out
        assert "distributions:" in out and "lognormal" in out


class TestRun:
    def test_unknown_name_fails_with_menu(self, capsys):
        assert main(["run", "fig99_nope"]) == 1
        err = capsys.readouterr().err
        assert "unknown catalog scenario" in err
        assert "fig05_lasso_lognormal" in err

    def test_missing_spec_file_fails(self, capsys):
        assert main(["run", "no/such/spec.toml"]) == 1
        assert "does not exist" in capsys.readouterr().err

    def test_spec_run_cold_then_warm(self, tmp_path, capsys):
        spec_path = tmp_path / "tiny.toml"
        spec_path.write_text(TINY_SPEC)
        cache_dir = tmp_path / "cells"
        assert main(["run", str(spec_path), "--cache", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "cli_tiny" in out and "epsilon" in out
        assert "hits=0 misses=4" in out
        # Warm rerun: every cell must come from the cache.
        assert main(["run", str(spec_path), "--cache", str(cache_dir)]) == 0
        assert "hits=4 misses=0" in capsys.readouterr().out

    def test_trials_override_changes_cache_keys(self, tmp_path, capsys):
        spec_path = tmp_path / "tiny.toml"
        spec_path.write_text(TINY_SPEC)
        cache_dir = tmp_path / "cells"
        main(["run", str(spec_path), "--cache", str(cache_dir)])
        capsys.readouterr()
        assert main(["run", str(spec_path), "--cache", str(cache_dir),
                     "--trials", "1"]) == 0
        assert "hits=0 misses=4" in capsys.readouterr().out


class TestCacheMaintenance:
    def _fake_cache(self, tmp_path, n_claimed=3, n_orphans=2):
        """A cache with files named by real claimed digests plus orphans.

        Writing the files directly (instead of running a bench) keeps
        the test fast while exercising exactly the digest-set logic
        prune relies on.
        """
        cache = tmp_path / "cells"
        cache.mkdir()
        claimed = sorted(claimed_digests())[:n_claimed]
        for digest in claimed:
            (cache / f"{digest}.json").write_text(json.dumps([0.0, 1.0]))
        orphans = [f"{'0' * 31}{i}" for i in range(n_orphans)]
        for digest in orphans:
            (cache / f"{digest}.json").write_text(json.dumps([2.0]))
        return cache, claimed, orphans

    def test_stats_counts_claimed_and_orphaned(self, tmp_path, capsys):
        cache, claimed, orphans = self._fake_cache(tmp_path)
        assert main(["cache", "stats", "--cache", str(cache)]) == 0
        out = capsys.readouterr().out
        assert f"cells={len(claimed) + len(orphans)}" in out
        assert f"claimed={len(claimed)}" in out
        assert f"orphaned={len(orphans)}" in out

    def test_prune_deletes_only_orphans(self, tmp_path, capsys):
        cache, claimed, orphans = self._fake_cache(tmp_path)
        assert main(["cache", "prune", "--cache", str(cache)]) == 0
        out = capsys.readouterr().out
        assert f"kept={len(claimed)} deleted={len(orphans)}" in out
        remaining = {p.stem for p in cache.glob("*.json")}
        assert remaining == set(claimed)  # every claimed cell survives

    def test_prune_dry_run_deletes_nothing(self, tmp_path, capsys):
        cache, claimed, orphans = self._fake_cache(tmp_path)
        before = sorted(cache.glob("*.json"))
        assert main(["cache", "prune", "--cache", str(cache),
                     "--dry-run"]) == 0
        assert "would delete=2" in capsys.readouterr().out
        assert sorted(cache.glob("*.json")) == before

    def test_cache_commands_require_a_directory(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_CACHE", raising=False)
        assert main(["cache", "stats"]) == 1
        assert "no cache directory" in capsys.readouterr().err

    def test_missing_cache_directory_fails(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache",
                     str(tmp_path / "nope")]) == 1
        assert "does not exist" in capsys.readouterr().err


class TestBenchEnvKnobs:
    """`benchmarks/_common.py` must reject bad env knobs at import."""

    def _import_common(self, env_overrides):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.pop("REPRO_BENCH_EXECUTOR", None)
        env.pop("REPRO_BENCH_CACHE", None)
        env.update(env_overrides)
        return subprocess.run(
            [sys.executable, "-c", "import _common"],
            cwd=REPO_ROOT / "benchmarks", env=env,
            capture_output=True, text=True)

    def test_valid_executor_imports(self):
        result = self._import_common({"REPRO_BENCH_EXECUTOR": "thread"})
        assert result.returncode == 0, result.stderr

    def test_unknown_executor_fails_listing_options(self):
        result = self._import_common({"REPRO_BENCH_EXECUTOR": "warp"})
        assert result.returncode != 0
        assert "unknown REPRO_BENCH_EXECUTOR value 'warp'" in result.stderr
        assert "serial, thread, process" in result.stderr

    def test_unwritable_cache_dir_fails(self, tmp_path):
        blocker = tmp_path / "a-file"
        blocker.write_text("")
        result = self._import_common(
            {"REPRO_BENCH_CACHE": str(blocker / "sub")})
        assert result.returncode != 0
        assert "REPRO_BENCH_CACHE" in result.stderr
        assert "not writable" in result.stderr

    def test_writable_cache_dir_is_created(self, tmp_path):
        target = tmp_path / "fresh" / "cells"
        result = self._import_common({"REPRO_BENCH_CACHE": str(target)})
        assert result.returncode == 0, result.stderr
        assert target.is_dir()
