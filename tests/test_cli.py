"""The ``python -m repro`` CLI and the bench env-knob fail-fast."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.evaluation import build_jobs
from repro.experiments import claimed_digests
from repro.results import (
    ResultsStore,
    RunRecord,
    RunRecorder,
    compute_config_digest,
    compute_run_id,
    load_record,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

TINY_SPEC = "\n".join([
    'name = "cli_tiny"',
    'solver = "private_lasso"',
    'data = "l1_linear"',
    'metric = "excess_risk"',
    'n_trials = 2',
    'seed = 3',
    '[data_kwargs]',
    'n = 300',
    'features = {name = "lognormal", sigma = 0.6}',
    '[sweep]',
    'name = "epsilon"',
    'target = "solver.epsilon"',
    'values = [0.5, 2.0]',
    '[series]',
    'name = "d"',
    'target = "data.d"',
    'values = [4, 8]',
])


class TestList:
    def test_lists_catalog_and_components(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig05_lasso_lognormal" in out
        assert "ablation_peeling_vs_dense" in out
        assert "solvers:" in out and "private_lasso" in out
        assert "metrics:" in out and "excess_risk" in out
        assert "distributions:" in out and "lognormal" in out


class TestRun:
    def test_unknown_name_fails_with_menu(self, capsys):
        assert main(["run", "fig99_nope"]) == 1
        err = capsys.readouterr().err
        assert "unknown catalog scenario" in err
        assert "fig05_lasso_lognormal" in err

    def test_missing_spec_file_fails(self, capsys):
        assert main(["run", "no/such/spec.toml"]) == 1
        assert "does not exist" in capsys.readouterr().err

    def test_spec_run_cold_then_warm(self, tmp_path, capsys):
        spec_path = tmp_path / "tiny.toml"
        spec_path.write_text(TINY_SPEC)
        cache_dir = tmp_path / "cells"
        assert main(["run", str(spec_path), "--cache", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "cli_tiny" in out and "epsilon" in out
        assert "hits=0 misses=4" in out
        # Warm rerun: every cell must come from the cache.
        assert main(["run", str(spec_path), "--cache", str(cache_dir)]) == 0
        assert "hits=4 misses=0" in capsys.readouterr().out

    def test_trials_override_changes_cache_keys(self, tmp_path, capsys):
        spec_path = tmp_path / "tiny.toml"
        spec_path.write_text(TINY_SPEC)
        cache_dir = tmp_path / "cells"
        main(["run", str(spec_path), "--cache", str(cache_dir)])
        capsys.readouterr()
        assert main(["run", str(spec_path), "--cache", str(cache_dir),
                     "--trials", "1"]) == 0
        assert "hits=0 misses=4" in capsys.readouterr().out


def _spec_record(tmp_path, capsys, stem="run_a"):
    """Run the tiny spec once with ``--record``; return the record path."""
    spec_path = tmp_path / "tiny.toml"
    spec_path.write_text(TINY_SPEC)
    record_path = tmp_path / f"{stem}.json"
    assert main(["run", str(spec_path), "--record", str(record_path)]) == 0
    out = capsys.readouterr().out
    assert f"[record] wrote {record_path}" in out
    return record_path


def _perturbed_copy(record_path, target, mutate):
    """Write a deliberately edited (re-stamped) copy of a record."""
    payload = json.loads(record_path.read_text())
    mutate(payload)
    payload["config_digest"] = compute_config_digest(payload)
    payload["run_id"] = compute_run_id(payload)
    target.write_text(json.dumps(payload))
    return target


class TestDiff:
    """Exit codes: 0 identical, 1 value drift, 2 provenance, 3 errors."""

    def test_identical_records_exit_zero(self, tmp_path, capsys):
        record = _spec_record(tmp_path, capsys)
        assert main(["diff", str(record), str(record)]) == 0
        out = capsys.readouterr().out
        assert "verdict: identical (exit 0)" in out
        assert "values: identical" in out

    def test_value_drift_exits_one(self, tmp_path, capsys):
        record = _spec_record(tmp_path, capsys)

        def bump_mean(payload):
            payload["panels"][0]["cells"][0]["stats"]["mean"] += 0.5

        drifted = _perturbed_copy(record, tmp_path / "drift.json", bump_mean)
        assert main(["diff", str(record), str(drifted)]) == 1
        out = capsys.readouterr().out
        assert "value drift" in out
        assert "stats.mean" in out
        assert "provenance: identical" in out

    def test_provenance_drift_exits_two(self, tmp_path, capsys):
        record = _spec_record(tmp_path, capsys)

        def new_fingerprint(payload):
            payload["panels"][0]["point_fingerprint"] = "deadbeef"

        drifted = _perturbed_copy(record, tmp_path / "prov.json",
                                  new_fingerprint)
        assert main(["diff", str(record), str(drifted)]) == 2
        out = capsys.readouterr().out
        assert "INCOMPATIBLE PROVENANCE" in out
        assert "point_fingerprint" in out

    def test_json_output_round_trips(self, tmp_path, capsys):
        record = _spec_record(tmp_path, capsys)

        def bump_mean(payload):
            payload["panels"][0]["cells"][0]["stats"]["mean"] += 0.5

        drifted = _perturbed_copy(record, tmp_path / "drift.json", bump_mean)
        code = main(["diff", str(record), str(drifted), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == code == 1
        assert payload["value_drift"] and not payload["provenance_drift"]
        assert payload["a"]["run_id"] == load_record(record).run_id
        (entry,) = [e for e in payload["entries"]
                    if e["severity"] == "value"]
        assert entry["field"] == "stats.mean"

    def test_unreadable_record_exits_three(self, tmp_path, capsys):
        record = _spec_record(tmp_path, capsys)
        bad = tmp_path / "bad.json"
        bad.write_text("{truncated")
        assert main(["diff", str(record), str(bad)]) == 3
        assert "error:" in capsys.readouterr().err

    def test_against_catalog_uses_baselines_dir(self, tmp_path, capsys):
        record = _spec_record(tmp_path, capsys)
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        (baselines / "tiny.json").write_text(record.read_text())
        assert main(["diff", str(record), "--against-catalog", "tiny",
                     "--baselines", str(baselines)]) == 0

    def test_requires_exactly_one_comparison_target(self, tmp_path, capsys):
        record = _spec_record(tmp_path, capsys)
        assert main(["diff", str(record)]) == 3
        assert "exactly one" in capsys.readouterr().err
        assert main(["diff", str(record), str(record),
                     "--against-catalog", "x"]) == 3


class TestRecordPath:
    def test_record_path_is_honoured_exactly(self, tmp_path, capsys):
        # --record out.rec must write out.rec, not rewrite it to .json.
        spec_path = tmp_path / "tiny.toml"
        spec_path.write_text(TINY_SPEC)
        target = tmp_path / "out.rec"
        assert main(["run", str(spec_path), "--record", str(target)]) == 0
        assert f"[record] wrote {target}" in capsys.readouterr().out
        assert target.exists()
        assert load_record(target).name == "cli_tiny"


class TestResultsCommands:
    def test_list_shows_records(self, tmp_path, capsys):
        record_path = _spec_record(tmp_path, capsys)
        assert main(["results", "list", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "run_a.json" in out
        assert "name=cli_tiny kind=spec" in out
        assert load_record(record_path).run_id in out

    def test_list_empty_directory(self, tmp_path, capsys):
        assert main(["results", "list", "--dir", str(tmp_path)]) == 0
        assert "runs=0" in capsys.readouterr().out

    def test_show_prints_provenance_and_table(self, tmp_path, capsys):
        record_path = _spec_record(tmp_path, capsys)
        assert main(["results", "show", str(record_path)]) == 0
        out = capsys.readouterr().out
        assert "name=cli_tiny kind=spec" in out
        assert "run_id=" in out and "fingerprint=" in out
        assert "epsilon" in out  # the rebuilt table block

    def test_show_json_round_trips(self, tmp_path, capsys):
        record_path = _spec_record(tmp_path, capsys)
        assert main(["results", "show", str(record_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert RunRecord.from_dict(payload) == load_record(record_path)

    def test_show_corrupt_record_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        assert main(["results", "show", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err


class TestCacheMaintenance:
    def _fake_cache(self, tmp_path, n_claimed=3, n_orphans=2):
        """A cache with files named by real claimed digests plus orphans.

        Writing the files directly (instead of running a bench) keeps
        the test fast while exercising exactly the digest-set logic
        prune relies on.
        """
        cache = tmp_path / "cells"
        cache.mkdir()
        claimed = sorted(claimed_digests())[:n_claimed]
        for digest in claimed:
            (cache / f"{digest}.json").write_text(json.dumps([0.0, 1.0]))
        orphans = [f"{'0' * 31}{i}" for i in range(n_orphans)]
        for digest in orphans:
            (cache / f"{digest}.json").write_text(json.dumps([2.0]))
        return cache, claimed, orphans

    def test_stats_counts_claimed_and_orphaned(self, tmp_path, capsys):
        cache, claimed, orphans = self._fake_cache(tmp_path)
        assert main(["cache", "stats", "--cache", str(cache)]) == 0
        out = capsys.readouterr().out
        assert f"cells={len(claimed) + len(orphans)}" in out
        assert f"claimed={len(claimed)}" in out
        assert f"orphaned={len(orphans)}" in out

    def test_prune_deletes_only_orphans(self, tmp_path, capsys):
        cache, claimed, orphans = self._fake_cache(tmp_path)
        assert main(["cache", "prune", "--cache", str(cache)]) == 0
        out = capsys.readouterr().out
        assert f"kept={len(claimed)} deleted={len(orphans)}" in out
        remaining = {p.stem for p in cache.glob("*.json")}
        assert remaining == set(claimed)  # every claimed cell survives

    def test_prune_dry_run_deletes_nothing(self, tmp_path, capsys):
        cache, claimed, orphans = self._fake_cache(tmp_path)
        before = sorted(cache.glob("*.json"))
        assert main(["cache", "prune", "--cache", str(cache),
                     "--dry-run"]) == 0
        assert "would delete=2" in capsys.readouterr().out
        assert sorted(cache.glob("*.json")) == before

    def _baseline_pinned_cache(self, tmp_path):
        """A cache holding one baseline-pinned cell and one true orphan.

        The pinned cell's digest comes from a real engine job built
        with a code token no catalog scenario uses — exactly the state
        after a code edit retires a cell that a committed baseline
        record still references.
        """
        cache = tmp_path / "cells"
        cache.mkdir()
        (job,) = build_jobs("x", [1], "series", ["only"], 2, 123,
                            code_token="retired-code")
        (cache / f"{job.digest}.json").write_text(json.dumps([0.1, 0.2]))
        orphan = cache / f"{'f' * 32}.json"
        orphan.write_text(json.dumps([0.3]))
        baselines = tmp_path / "baselines"
        recorder = RunRecorder(kind="bench", name="pin", result_stem="pin")
        recorder.add_panel(
            title="t", x_name="x", sweep_name="x", series_name="series",
            sweep_values=[1], series_values=["only"], seed=123, n_trials=2,
            point_fingerprint="retired-code", cells=[(job, [0.1, 0.2])])
        ResultsStore(baselines).save(recorder.finalize())
        return cache, baselines, cache / f"{job.digest}.json", orphan

    def test_prune_never_deletes_baseline_referenced_cells(self, tmp_path,
                                                           capsys):
        cache, baselines, pinned, orphan = self._baseline_pinned_cache(
            tmp_path)
        assert main(["cache", "prune", "--cache", str(cache),
                     "--baselines", str(baselines)]) == 0
        out = capsys.readouterr().out
        assert "kept=1 deleted=1" in out
        assert "baseline=1" in out
        assert pinned.exists()  # the keep-set wins over catalog orphaning
        assert not orphan.exists()

    def test_stats_counts_baseline_pinned_cells_and_records(self, tmp_path,
                                                            capsys):
        cache, baselines, _, _ = self._baseline_pinned_cache(tmp_path)
        assert main(["cache", "stats", "--cache", str(cache),
                     "--baselines", str(baselines)]) == 0
        out = capsys.readouterr().out
        assert "cells=2" in out and "baseline=1" in out and "orphaned=1" in out
        assert f"[records] dir={baselines} runs=1 cells=1" in out

    def test_prune_warns_loudly_when_no_baselines_found(self, tmp_path,
                                                        capsys, monkeypatch):
        # Outside the repo root the default baselines dir is absent;
        # prune must say the pins are unprotected, never silently
        # downgrade into deleting baseline-referenced cells.
        cache = tmp_path / "cells"
        cache.mkdir()
        monkeypatch.chdir(tmp_path)
        assert main(["cache", "prune", "--cache", str(cache)]) == 0
        err = capsys.readouterr().err
        assert "warning: no baselines directory" in err
        assert "NOT protected" in err

    def test_explicit_missing_baselines_dir_is_an_error(self, tmp_path,
                                                        capsys):
        cache = tmp_path / "cells"
        cache.mkdir()
        assert main(["cache", "prune", "--cache", str(cache),
                     "--baselines", str(tmp_path / "nope")]) == 1
        assert "does not exist" in capsys.readouterr().err

    def test_cache_commands_require_a_directory(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_CACHE", raising=False)
        assert main(["cache", "stats"]) == 1
        assert "no cache directory" in capsys.readouterr().err

    def test_missing_cache_directory_fails(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache",
                     str(tmp_path / "nope")]) == 1
        assert "does not exist" in capsys.readouterr().err


class TestBenchEnvKnobs:
    """`benchmarks/_common.py` must reject bad env knobs at import."""

    def _import_common(self, env_overrides):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.pop("REPRO_BENCH_EXECUTOR", None)
        env.pop("REPRO_BENCH_CACHE", None)
        env.update(env_overrides)
        return subprocess.run(
            [sys.executable, "-c", "import _common"],
            cwd=REPO_ROOT / "benchmarks", env=env,
            capture_output=True, text=True)

    def test_valid_executor_imports(self):
        result = self._import_common({"REPRO_BENCH_EXECUTOR": "thread"})
        assert result.returncode == 0, result.stderr

    def test_unknown_executor_fails_listing_options(self):
        result = self._import_common({"REPRO_BENCH_EXECUTOR": "warp"})
        assert result.returncode != 0
        assert "unknown REPRO_BENCH_EXECUTOR value 'warp'" in result.stderr
        assert "serial, thread, process" in result.stderr

    def test_unwritable_cache_dir_fails(self, tmp_path):
        blocker = tmp_path / "a-file"
        blocker.write_text("")
        result = self._import_common(
            {"REPRO_BENCH_CACHE": str(blocker / "sub")})
        assert result.returncode != 0
        assert "REPRO_BENCH_CACHE" in result.stderr
        assert "not writable" in result.stderr

    def test_writable_cache_dir_is_created(self, tmp_path):
        target = tmp_path / "fresh" / "cells"
        result = self._import_common({"REPRO_BENCH_CACHE": str(target)})
        assert result.returncode == 0, result.stderr
        assert target.is_dir()
