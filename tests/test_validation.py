"""Tests for the shared validation helpers."""

import numpy as np
import pytest

from repro._validation import (
    check_dataset,
    check_in_choices,
    check_matrix,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
    check_vector,
)
from repro.exceptions import ConfigurationError, DataShapeError, ReproError


class TestScalarChecks:
    def test_positive_ok(self):
        assert check_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("bad", [0, -1, float("nan"), float("inf")])
    def test_positive_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_positive(bad, "x")

    def test_non_negative_accepts_zero(self):
        assert check_non_negative(0, "x") == 0.0

    def test_non_negative_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_non_negative(-0.1, "x")

    def test_probability_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ConfigurationError):
            check_probability(1.5, "p")

    def test_probability_open_bounds(self):
        with pytest.raises(ConfigurationError):
            check_probability(0.0, "p", allow_zero=False)
        with pytest.raises(ConfigurationError):
            check_probability(1.0, "p", allow_one=False)

    def test_positive_int(self):
        assert check_positive_int(3, "k") == 3
        with pytest.raises(ConfigurationError):
            check_positive_int(0, "k")
        with pytest.raises(ConfigurationError):
            check_positive_int(2.5, "k")


class TestArrayChecks:
    def test_vector_coerces(self):
        out = check_vector([1, 2, 3], "v")
        assert out.dtype == float and out.shape == (3,)

    def test_vector_dim_mismatch(self):
        with pytest.raises(DataShapeError):
            check_vector([1, 2], "v", dim=3)

    def test_vector_rejects_matrix(self):
        with pytest.raises(DataShapeError):
            check_vector(np.ones((2, 2)), "v")

    def test_vector_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            check_vector([1.0, np.nan], "v")

    def test_matrix_rejects_vector(self):
        with pytest.raises(DataShapeError):
            check_matrix(np.ones(3), "m")

    def test_dataset_row_mismatch(self):
        with pytest.raises(DataShapeError):
            check_dataset(np.ones((4, 2)), np.ones(3))

    def test_dataset_empty(self):
        with pytest.raises(ConfigurationError):
            check_dataset(np.ones((0, 2)), np.ones(0))

    def test_dataset_ok(self):
        X, y = check_dataset(np.ones((4, 2)), np.ones(4))
        assert X.shape == (4, 2) and y.shape == (4,)


class TestChoices:
    def test_accepts_member(self):
        assert check_in_choices("a", "opt", ["a", "b"]) == "a"

    def test_rejects_other(self):
        with pytest.raises(ConfigurationError):
            check_in_choices("c", "opt", ["a", "b"])


class TestExceptionHierarchy:
    def test_configuration_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(ConfigurationError, ReproError)

    def test_data_shape_is_configuration(self):
        assert issubclass(DataShapeError, ConfigurationError)
