"""The HTTP serving tier over real sockets: routes, ETags, coalescing.

Each test boots a :class:`~repro.server.ReproServer` on an ephemeral
port (daemon-thread event loop) against the committed record stores and
drives it with blocking ``urllib`` clients — the same transport the CI
smoke job uses.  The acceptance-critical cases: a served record is
byte-identical to its committed file, conditional requests round-trip
to 304, and concurrent cold ``POST /run`` s coalesce onto one engine
computation per cell digest while returning the committed baseline's
``run_id``.
"""

import json
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.server.smoke import _request, _start_server
from repro.service import ServiceCore

REPO_ROOT = Path(__file__).parent.parent
RESULTS = REPO_ROOT / "benchmarks" / "results"
BASELINES = REPO_ROOT / "benchmarks" / "baselines"

#: One panel, five cells at laptop scale — cheap enough to compute live.
CHEAP_BENCH = "ablation_truncation_threshold"


@pytest.fixture()
def served(tmp_path):
    """A live server over the committed stores and a cold tmp cache."""
    core = ServiceCore(results_dir=RESULTS, baselines_dir=BASELINES,
                       cache=tmp_path / "cache")
    server = _start_server(core)
    return core, f"http://{server.host}:{server.port}"


class TestQueryEndpoints:
    def test_catalog_lists_every_bench_with_records(self, served):
        _, base = served
        status, _, body = _request(f"{base}/catalog")
        assert status == 200
        payload = json.loads(body)
        names = [entry["name"] for entry in payload["benches"]]
        assert CHEAP_BENCH in names and "fig05_lasso_lognormal" in names
        assert all(entry["has_record"] for entry in payload["benches"])

    def test_served_record_is_byte_identical_to_committed_file(self, served):
        _, base = served
        status, headers, body = _request(f"{base}/records/fig05")
        assert status == 200
        assert body == (RESULTS / "fig05.json").read_bytes()
        run_id = json.loads(body)["run_id"]
        assert headers["etag"] == f'"{run_id}"'

    def test_record_resolves_catalog_name_to_stem(self, served):
        _, base = served
        by_stem = _request(f"{base}/records/fig05")
        by_name = _request(f"{base}/records/fig05_lasso_lognormal")
        assert by_stem[0] == by_name[0] == 200
        assert by_stem[2] == by_name[2]

    def test_etag_round_trip_returns_304_with_empty_body(self, served):
        _, base = served
        _, headers, _ = _request(f"{base}/records/fig05")
        status, _, body = _request(
            f"{base}/records/fig05",
            headers={"If-None-Match": headers["etag"]})
        assert status == 304 and body == b""
        # A stale validator still gets the full representation.
        status, _, body = _request(
            f"{base}/records/fig05", headers={"If-None-Match": '"stale"'})
        assert status == 200 and body

    def test_unknown_resources_404_and_bad_bodies_400(self, served):
        _, base = served
        assert _request(f"{base}/records/no-such")[0] == 404
        assert _request(f"{base}/cells/{'0' * 32}")[0] == 404
        assert _request(f"{base}/cells/../secrets")[0] == 404
        assert _request(f"{base}/nope")[0] == 404
        assert _request(f"{base}/catalog", method="DELETE")[0] == 405
        assert _request(f"{base}/run", method="POST",
                        body=b"{broken")[0] == 400
        assert _request(f"{base}/run", method="POST",
                        body=json.dumps({"n_trials": 3}).encode())[0] == 400
        assert _request(f"{base}/run", method="POST",
                        body=json.dumps({"name": "zzz"}).encode())[0] == 404


class TestComputeEndpoint:
    def test_posted_run_matches_committed_baseline_run_id(self, served):
        _, base = served
        body = json.dumps({"name": CHEAP_BENCH}).encode()
        status, headers, response = _request(f"{base}/run", method="POST",
                                             body=body)
        assert status == 200
        payload = json.loads(response)
        committed = json.loads(
            (BASELINES / f"{CHEAP_BENCH}.json").read_text())
        assert payload["run_id"] == committed["run_id"]
        assert headers["etag"] == f'"{committed["run_id"]}"'

    def test_concurrent_cold_runs_coalesce_single_flight(self, served):
        """Eight clients, one cold bench: flights led == cell count."""
        core, base = served
        committed = json.loads(
            (BASELINES / f"{CHEAP_BENCH}.json").read_text())
        n_cells = sum(len(panel["cells"]) for panel in committed["panels"])
        body = json.dumps({"name": CHEAP_BENCH}).encode()

        def post(_):
            return _request(f"{base}/run", method="POST", body=body)

        with ThreadPoolExecutor(max_workers=8) as pool:
            responses = list(pool.map(post, range(8)))
        run_ids = {json.loads(resp)["run_id"] for status, _, resp in responses}
        assert all(status == 200 for status, _, _ in responses)
        assert run_ids == {committed["run_id"]}
        status, _, stats_body = _request(f"{base}/stats")
        assert status == 200
        stats = json.loads(stats_body)
        assert stats["flight"]["led"] == n_cells
        assert stats["flight"]["led"] == core.flight.led

    def test_cells_are_served_after_a_run_populates_the_cache(self, served):
        _, base = served
        body = json.dumps({"name": CHEAP_BENCH}).encode()
        assert _request(f"{base}/run", method="POST", body=body)[0] == 200
        committed = json.loads(
            (BASELINES / f"{CHEAP_BENCH}.json").read_text())
        digest = committed["panels"][0]["cells"][0]["digest"]
        status, headers, cell_body = _request(f"{base}/cells/{digest}")
        assert status == 200
        payload = json.loads(cell_body)
        assert payload["digest"] == digest and payload["values"]
        status, _, cell_body = _request(
            f"{base}/cells/{digest}",
            headers={"If-None-Match": headers["etag"]})
        assert status == 304 and cell_body == b""
