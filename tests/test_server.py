"""The HTTP serving tier over real sockets: routes, ETags, coalescing.

Each test boots a :class:`~repro.server.ReproServer` on an ephemeral
port (daemon-thread event loop) against the committed record stores and
drives it with blocking ``urllib`` clients — the same transport the CI
smoke job uses.  The acceptance-critical cases: a served record is
byte-identical to its committed file, conditional requests round-trip
to 304, and concurrent cold ``POST /run`` s coalesce onto one engine
computation per cell digest while returning the committed baseline's
``run_id``.
"""

import json
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.server.smoke import _request, _start_server
from repro.service import ServiceCore

REPO_ROOT = Path(__file__).parent.parent
RESULTS = REPO_ROOT / "benchmarks" / "results"
BASELINES = REPO_ROOT / "benchmarks" / "baselines"

#: One panel, five cells at laptop scale — cheap enough to compute live.
CHEAP_BENCH = "ablation_truncation_threshold"


@pytest.fixture()
def served(tmp_path):
    """A live server over the committed stores and a cold tmp cache."""
    core = ServiceCore(results_dir=RESULTS, baselines_dir=BASELINES,
                       cache=tmp_path / "cache")
    server = _start_server(core)
    return core, f"http://{server.host}:{server.port}"


class TestQueryEndpoints:
    def test_catalog_lists_every_bench_with_records(self, served):
        _, base = served
        status, _, body = _request(f"{base}/catalog")
        assert status == 200
        payload = json.loads(body)
        names = [entry["name"] for entry in payload["benches"]]
        assert CHEAP_BENCH in names and "fig05_lasso_lognormal" in names
        assert all(entry["has_record"] for entry in payload["benches"])

    def test_served_record_is_byte_identical_to_committed_file(self, served):
        _, base = served
        status, headers, body = _request(f"{base}/records/fig05")
        assert status == 200
        assert body == (RESULTS / "fig05.json").read_bytes()
        run_id = json.loads(body)["run_id"]
        assert headers["etag"] == f'"{run_id}"'

    def test_record_resolves_catalog_name_to_stem(self, served):
        _, base = served
        by_stem = _request(f"{base}/records/fig05")
        by_name = _request(f"{base}/records/fig05_lasso_lognormal")
        assert by_stem[0] == by_name[0] == 200
        assert by_stem[2] == by_name[2]

    def test_etag_round_trip_returns_304_with_empty_body(self, served):
        _, base = served
        _, headers, _ = _request(f"{base}/records/fig05")
        status, _, body = _request(
            f"{base}/records/fig05",
            headers={"If-None-Match": headers["etag"]})
        assert status == 304 and body == b""
        # A stale validator still gets the full representation.
        status, _, body = _request(
            f"{base}/records/fig05", headers={"If-None-Match": '"stale"'})
        assert status == 200 and body

    def test_unknown_resources_404_and_bad_bodies_400(self, served):
        _, base = served
        assert _request(f"{base}/records/no-such")[0] == 404
        assert _request(f"{base}/cells/{'0' * 32}")[0] == 404
        assert _request(f"{base}/cells/../secrets")[0] == 404
        assert _request(f"{base}/nope")[0] == 404
        assert _request(f"{base}/catalog", method="DELETE")[0] == 405
        assert _request(f"{base}/run", method="POST",
                        body=b"{broken")[0] == 400
        assert _request(f"{base}/run", method="POST",
                        body=json.dumps({"n_trials": 3}).encode())[0] == 400
        assert _request(f"{base}/run", method="POST",
                        body=json.dumps({"name": "zzz"}).encode())[0] == 404


class TestComputeEndpoint:
    def test_posted_run_matches_committed_baseline_run_id(self, served):
        _, base = served
        body = json.dumps({"name": CHEAP_BENCH}).encode()
        status, headers, response = _request(f"{base}/run", method="POST",
                                             body=body)
        assert status == 200
        payload = json.loads(response)
        committed = json.loads(
            (BASELINES / f"{CHEAP_BENCH}.json").read_text())
        assert payload["run_id"] == committed["run_id"]
        assert headers["etag"] == f'"{committed["run_id"]}"'

    def test_concurrent_cold_runs_coalesce_single_flight(self, served):
        """Eight clients, one cold bench: flights led == cell count."""
        core, base = served
        committed = json.loads(
            (BASELINES / f"{CHEAP_BENCH}.json").read_text())
        n_cells = sum(len(panel["cells"]) for panel in committed["panels"])
        body = json.dumps({"name": CHEAP_BENCH}).encode()

        def post(_):
            return _request(f"{base}/run", method="POST", body=body)

        with ThreadPoolExecutor(max_workers=8) as pool:
            responses = list(pool.map(post, range(8)))
        run_ids = {json.loads(resp)["run_id"] for status, _, resp in responses}
        assert all(status == 200 for status, _, _ in responses)
        assert run_ids == {committed["run_id"]}
        status, _, stats_body = _request(f"{base}/stats")
        assert status == 200
        stats = json.loads(stats_body)
        assert stats["flight"]["led"] == n_cells
        assert stats["flight"]["led"] == core.flight.led

    def test_cells_are_served_after_a_run_populates_the_cache(self, served):
        _, base = served
        body = json.dumps({"name": CHEAP_BENCH}).encode()
        assert _request(f"{base}/run", method="POST", body=body)[0] == 200
        committed = json.loads(
            (BASELINES / f"{CHEAP_BENCH}.json").read_text())
        digest = committed["panels"][0]["cells"][0]["digest"]
        status, headers, cell_body = _request(f"{base}/cells/{digest}")
        assert status == 200
        payload = json.loads(cell_body)
        assert payload["digest"] == digest and payload["values"]
        status, _, cell_body = _request(
            f"{base}/cells/{digest}",
            headers={"If-None-Match": headers["etag"]})
        assert status == 304 and cell_body == b""


class TestHeadLimits:
    def test_oversized_head_is_431_not_a_dropped_connection(self, served):
        # Between _MAX_HEAD (64 KiB) and the stream limit (1 MiB): the
        # head reads fine and the explicit size check must reject it.
        # Before the limit was raised this branch was unreachable —
        # asyncio's default 64 KiB stream limit fired first.
        _, base = served
        status, _, body = _request(f"{base}/catalog",
                                   headers={"X-Pad": "x" * (80 * 1024)})
        assert status == 431
        assert b"head too large" in body

    def test_head_overrunning_the_stream_limit_is_431(self, served):
        # Past the 1 MiB stream limit readuntil raises LimitOverrunError
        # mid-head; the server must still answer 431 instead of letting
        # the exception tear the connection down with no response.
        _, base = served
        status, _, body = _request(f"{base}/catalog",
                                   headers={"X-Pad": "x" * (2 * 1024 * 1024)})
        assert status == 431
        assert b"head too large" in body


class TestWeakEtagComparison:
    def test_weak_if_none_match_hits_304(self, served):
        # RFC 9110 13.1.2: If-None-Match uses weak comparison, so a
        # proxy-weakened W/"tag" must still validate against our strong
        # ETag.
        _, base = served
        _, headers, _ = _request(f"{base}/records/fig05")
        etag = headers["etag"]
        status, _, body = _request(
            f"{base}/records/fig05",
            headers={"If-None-Match": f"W/{etag}"})
        assert status == 304 and body == b""

    def test_weak_tag_in_a_list_of_candidates(self, served):
        _, base = served
        _, headers, _ = _request(f"{base}/records/fig05")
        etag = headers["etag"]
        status, _, _ = _request(
            f"{base}/records/fig05",
            headers={"If-None-Match": f'"miss", W/{etag}'})
        assert status == 304

    def test_non_matching_weak_tag_still_misses(self, served):
        _, base = served
        status, _, _ = _request(
            f"{base}/records/fig05",
            headers={"If-None-Match": 'W/"something-else"'})
        assert status == 200


class TestRunValidation:
    def test_non_positive_n_trials_is_400_naming_the_field(self, served):
        _, base = served
        for bad in (0, -3):
            status, _, body = _request(
                f"{base}/run", method="POST",
                body=json.dumps({"name": CHEAP_BENCH,
                                 "n_trials": bad}).encode())
            assert status == 400, body
            assert b"n_trials must be a positive integer" in body

    def test_non_bool_full_is_400_naming_the_field(self, served):
        # bool("yes") is True: without route validation a string "full"
        # silently selects the paper-scale grid and 500s much later (or
        # worse, computes for hours).
        _, base = served
        for bad in ("yes", 1, [True]):
            status, _, body = _request(
                f"{base}/run", method="POST",
                body=json.dumps({"name": CHEAP_BENCH,
                                 "full": bad}).encode())
            assert status == 400, body
            assert b"full must be a boolean" in body
