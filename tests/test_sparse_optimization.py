"""Tests for Algorithm 5 — Heavy-tailed Private Sparse Optimization."""

import numpy as np
import pytest

from repro import (
    DistributionSpec,
    HeavyTailedSparseOptimizer,
    L2Regularized,
    LogisticLoss,
    SquaredLoss,
    make_linear_data,
    make_logistic_data,
    sparse_truth,
)


def _logistic_data(rng, n=8000, d=40, s_star=3):
    w_star = sparse_truth(d, s_star, rng, norm_bound=0.5)
    return make_logistic_data(n, w_star,
                              DistributionSpec("gaussian", {"scale": 1.0}),
                              DistributionSpec("logistic", {"scale": 0.5}),
                              rng=rng)


class TestConfiguration:
    def test_invalid_params(self):
        loss = L2Regularized(LogisticLoss(), 0.01)
        with pytest.raises(ValueError):
            HeavyTailedSparseOptimizer(loss, sparsity=0, epsilon=1.0, delta=1e-5)
        with pytest.raises(ValueError):
            HeavyTailedSparseOptimizer(loss, sparsity=2, epsilon=1.0, delta=1e-5,
                                       step_size=0.0)

    def test_schedule_defaults(self):
        loss = L2Regularized(LogisticLoss(), 0.01)
        solver = HeavyTailedSparseOptimizer(loss, sparsity=5, epsilon=1.0,
                                            delta=1e-5)
        sched = solver.resolve_schedule(10_000, 100)
        assert sched.n_iterations == int(np.log(10_000))
        assert sched.selection_size == 10
        assert sched.scale > 0

    def test_selection_exceeding_dim(self, rng):
        loss = L2Regularized(LogisticLoss(), 0.01)
        solver = HeavyTailedSparseOptimizer(loss, sparsity=5, epsilon=1.0,
                                            delta=1e-5, selection_size=50)
        X = rng.normal(size=(100, 10))
        y = rng.choice([-1.0, 1.0], size=100)
        with pytest.raises(ValueError):
            solver.fit(X, y, rng=rng)


class TestPrivacyBookkeeping:
    def test_budget(self, rng):
        data = _logistic_data(rng, n=1500, d=20, s_star=2)
        loss = L2Regularized(LogisticLoss(), 0.01)
        solver = HeavyTailedSparseOptimizer(loss, sparsity=2, epsilon=0.6,
                                            delta=1e-6)
        result = solver.fit(data.features, data.labels, rng=rng)
        assert result.advertised_budget.epsilon == 0.6
        assert result.privacy_spent.delta == pytest.approx(1e-6)


class TestOptimization:
    def test_output_sparsity(self, rng):
        data = _logistic_data(rng, n=2000, d=30, s_star=3)
        loss = L2Regularized(LogisticLoss(), 0.01)
        solver = HeavyTailedSparseOptimizer(loss, sparsity=3, epsilon=1.0,
                                            delta=1e-5)
        result = solver.fit(data.features, data.labels, rng=rng)
        assert np.count_nonzero(result.w) <= result.metadata["selection_size"]

    def test_curvature_and_step_metadata(self, rng):
        data = _logistic_data(rng, n=1500, d=20, s_star=2)
        loss = L2Regularized(LogisticLoss(), 0.01)
        solver = HeavyTailedSparseOptimizer(loss, sparsity=2, epsilon=1.0,
                                            delta=1e-5, step_size=0.6)
        result = solver.fit(data.features, data.labels, rng=rng)
        assert result.metadata["step_size"] == pytest.approx(
            0.6 / result.metadata["curvature"])

    def test_risk_improves_at_generous_budget(self, rng):
        data = _logistic_data(rng, n=20_000, d=30, s_star=3)
        loss = L2Regularized(LogisticLoss(), 0.01)
        solver = HeavyTailedSparseOptimizer(loss, sparsity=3, epsilon=30.0,
                                            delta=1e-3, tau=2.0)
        result = solver.fit(data.features, data.labels, rng=rng)
        risk = loss.value(result.w, data.features, data.labels)
        risk_zero = loss.value(np.zeros(30), data.features, data.labels)
        assert risk < risk_zero

    def test_support_recovery_at_generous_budget(self, rng):
        d = 30
        w_star = np.zeros(d)
        planted = rng.choice(d, size=3, replace=False)
        w_star[planted] = 0.29
        data = make_logistic_data(30_000, w_star,
                                  DistributionSpec("gaussian", {"scale": 1.0}),
                                  DistributionSpec("logistic", {"scale": 0.5}),
                                  rng=rng)
        loss = L2Regularized(LogisticLoss(), 0.01)
        solver = HeavyTailedSparseOptimizer(loss, sparsity=3, epsilon=50.0,
                                            delta=1e-3, tau=2.0, expansion=1,
                                            n_iterations=15)
        result = solver.fit(data.features, data.labels, rng=rng)
        truth = set(planted.tolist())
        found = set(np.nonzero(result.w)[0].tolist())
        assert len(truth & found) >= 2

    def test_works_with_squared_loss(self, rng):
        w_star = sparse_truth(25, 3, rng, norm_bound=0.5)
        data = make_linear_data(10_000, w_star,
                                DistributionSpec("gaussian", {"scale": 1.0}),
                                DistributionSpec("lognormal", {"sigma": 0.5}),
                                rng=rng)
        solver = HeavyTailedSparseOptimizer(SquaredLoss(), sparsity=3,
                                            epsilon=20.0, delta=1e-3, tau=4.0)
        result = solver.fit(data.features, data.labels, rng=rng)
        assert np.all(np.isfinite(result.w))

    def test_robust_to_gross_outliers(self, rng):
        data = _logistic_data(rng, n=4000, d=20, s_star=2)
        X = data.features.copy()
        X[0] = 1e9  # one wildly corrupted row
        loss = L2Regularized(LogisticLoss(), 0.01)
        solver = HeavyTailedSparseOptimizer(loss, sparsity=2, epsilon=2.0,
                                            delta=1e-5, curvature=1.0)
        result = solver.fit(X, data.labels, rng=rng)
        assert np.all(np.isfinite(result.w))

    def test_reproducible(self, rng):
        data = _logistic_data(rng, n=1000, d=15, s_star=2)
        loss = L2Regularized(LogisticLoss(), 0.01)
        solver = HeavyTailedSparseOptimizer(loss, sparsity=2, epsilon=1.0,
                                            delta=1e-5)
        a = solver.fit(data.features, data.labels, rng=np.random.default_rng(2))
        b = solver.fit(data.features, data.labels, rng=np.random.default_rng(2))
        np.testing.assert_array_equal(a.w, b.w)
