"""Tests for the moment-diagnostic helpers."""

import numpy as np
import pytest

from repro.data import (
    coordinate_second_moment,
    gradient_second_moment,
    pairwise_fourth_moment,
    response_fourth_moment,
)
from repro.losses import SquaredLoss


class TestCoordinateSecondMoment:
    def test_max_over_columns(self):
        X = np.column_stack([np.full(100, 1.0), np.full(100, 3.0)])
        assert coordinate_second_moment(X) == pytest.approx(9.0)

    def test_gaussian(self, rng):
        X = rng.normal(size=(200_000, 3)) * 2.0
        assert coordinate_second_moment(X) == pytest.approx(4.0, rel=0.05)


class TestGradientSecondMoment:
    def test_at_zero_for_squared_loss(self, rng):
        # grad at w=0 is -2 x y; with x,y ~ N(0,1) indep: E (2xy)^2 = 4.
        X = rng.normal(size=(200_000, 2))
        y = rng.normal(size=200_000)
        tau = gradient_second_moment(SquaredLoss(), np.zeros(2), X, y)
        assert tau == pytest.approx(4.0, rel=0.1)


class TestPairwiseFourthMoment:
    def test_diagonal_dominates_gaussian(self, rng):
        X = rng.normal(size=(100_000, 4))
        M = pairwise_fourth_moment(X, rng=rng)
        # E x^4 = 3 for standard normal (diagonal); cross terms are 1.
        assert M == pytest.approx(3.0, rel=0.15)

    def test_single_column(self, rng):
        X = rng.normal(size=(50_000, 1))
        assert pairwise_fourth_moment(X, rng=rng) == pytest.approx(3.0, rel=0.15)


class TestResponseFourthMoment:
    def test_constant(self):
        assert response_fourth_moment(np.full(10, 2.0)) == pytest.approx(16.0)
