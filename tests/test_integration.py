"""Cross-module integration tests.

These exercise the full pipelines the benches use: generate heavy-tailed
data, fit private and non-private solvers, evaluate excess risk, and
check the qualitative claims of the paper's theorems at small scale.
"""

import numpy as np
import pytest

from repro import (
    DistributionSpec,
    HeavyTailedDPFW,
    HeavyTailedPrivateLasso,
    HeavyTailedSparseLinearRegression,
    L1Ball,
    SquaredLoss,
    l1_ball_truth,
    make_linear_data,
    sparse_truth,
)
from repro.baselines import FrankWolfe
from repro.evaluation import ExperimentRunner, excess_empirical_risk

LOGNORMAL = DistributionSpec("lognormal", {"sigma": 0.6})
SMALL_NOISE = DistributionSpec("gaussian", {"scale": 0.1})


class TestFigure1Pipeline:
    """The Figure 1 code path at toy scale."""

    def test_private_approaches_nonprivate_with_n(self):
        loss = SquaredLoss()
        gaps = {}
        for n in (2000, 32_000):
            def trial(rng, n=n):
                w_star = l1_ball_truth(10, rng)
                data = make_linear_data(n, w_star, LOGNORMAL, SMALL_NOISE,
                                        rng=rng)
                ball = L1Ball(10)
                w_np = FrankWolfe(loss, ball, n_iterations=60).fit(
                    data.features, data.labels)
                res = HeavyTailedDPFW(loss, ball, epsilon=1.0, tau=5.0).fit(
                    data.features, data.labels, rng=rng)
                return (loss.value(res.w, data.features, data.labels)
                        - loss.value(w_np, data.features, data.labels))
            gaps[n] = ExperimentRunner(n_trials=4, seed=0).run(trial).mean
        assert gaps[32_000] < gaps[2000]

    def test_dimension_insensitivity(self):
        """Theorem 2's log d dependence: d=12 vs d=96 errors are comparable."""
        loss = SquaredLoss()
        errors = {}
        for d in (12, 96):
            def trial(rng, d=d):
                w_star = l1_ball_truth(d, rng)
                data = make_linear_data(8000, w_star, LOGNORMAL, SMALL_NOISE,
                                        rng=rng)
                res = HeavyTailedDPFW(loss, L1Ball(d), epsilon=1.0, tau=5.0).fit(
                    data.features, data.labels, rng=rng)
                return excess_empirical_risk(loss, res.w, data.w_star,
                                             data.features, data.labels)
            errors[d] = ExperimentRunner(n_trials=4, seed=1).run(trial).mean
        # x8 dimension must NOT produce x8 error (poly-d would).
        assert errors[96] < 4.0 * max(errors[12], 1e-4)


class TestLassoPipeline:
    def test_error_decreases_with_epsilon(self):
        loss = SquaredLoss()
        errors = {}
        for eps in (0.2, 4.0):
            def trial(rng, eps=eps):
                w_star = l1_ball_truth(8, rng)
                data = make_linear_data(8000, w_star, LOGNORMAL, SMALL_NOISE,
                                        rng=rng)
                res = HeavyTailedPrivateLasso(L1Ball(8), epsilon=eps,
                                              delta=1e-5).fit(
                    data.features, data.labels, rng=rng)
                return excess_empirical_risk(loss, res.w, data.w_star,
                                             data.features, data.labels)
            errors[eps] = ExperimentRunner(n_trials=4, seed=2).run(trial).mean
        assert errors[4.0] < errors[0.2]


class TestSparsePipeline:
    def test_error_grows_with_sparsity(self):
        """Figures 7-9 panel (c): the error depends polynomially on s*."""
        errors = {}
        for s_star in (2, 16):
            def trial(rng, s_star=s_star):
                w_star = sparse_truth(64, s_star, rng, norm_bound=0.5)
                data = make_linear_data(20_000, w_star,
                                        DistributionSpec("gaussian",
                                                         {"scale": 1.0}),
                                        DistributionSpec("lognormal",
                                                         {"sigma": 0.5}),
                                        rng=rng)
                res = HeavyTailedSparseLinearRegression(
                    sparsity=s_star, epsilon=8.0, delta=1e-5).fit(
                    data.features, data.labels, rng=rng)
                return float(np.linalg.norm(res.w - w_star))
            errors[s_star] = ExperimentRunner(n_trials=3, seed=3).run(trial).mean
        assert errors[16] > errors[2]

    def test_error_decreases_with_n(self):
        errors = {}
        for n in (10_000, 80_000):
            def trial(rng, n=n):
                w_star = sparse_truth(40, 3, rng, norm_bound=0.5)
                data = make_linear_data(n, w_star,
                                        DistributionSpec("gaussian",
                                                         {"scale": 1.0}),
                                        DistributionSpec("lognormal",
                                                         {"sigma": 0.5}),
                                        rng=rng)
                res = HeavyTailedSparseLinearRegression(
                    sparsity=3, epsilon=4.0, delta=1e-5).fit(
                    data.features, data.labels, rng=rng)
                return float(np.linalg.norm(res.w - w_star))
            errors[n] = ExperimentRunner(n_trials=3, seed=4).run(trial).mean
        assert errors[80_000] < errors[10_000]


class TestPrivacyAccountingEndToEnd:
    def test_every_algorithm_reports_its_budget(self, rng):
        w_star = l1_ball_truth(6, rng)
        data = make_linear_data(1500, w_star, LOGNORMAL, SMALL_NOISE, rng=rng)
        runs = [
            HeavyTailedDPFW(SquaredLoss(), L1Ball(6), epsilon=1.0).fit(
                data.features, data.labels, rng=rng),
            HeavyTailedPrivateLasso(L1Ball(6), epsilon=1.0, delta=1e-5).fit(
                data.features, data.labels, rng=rng),
        ]
        w_sp = sparse_truth(6, 2, rng, norm_bound=0.5)
        sparse_data = make_linear_data(
            1500, w_sp, DistributionSpec("gaussian", {"scale": 1.0}),
            SMALL_NOISE, rng=rng)
        runs.append(HeavyTailedSparseLinearRegression(
            sparsity=2, epsilon=1.0, delta=1e-5).fit(
            sparse_data.features, sparse_data.labels, rng=rng))
        for result in runs:
            assert result.privacy_spent is not None
            assert result.advertised_budget.covers(result.privacy_spent)
            assert result.privacy_spent.covers(result.advertised_budget)
