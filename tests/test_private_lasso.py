"""Tests for Algorithm 2 — Heavy-tailed Private LASSO."""

import math

import numpy as np
import pytest

from repro import (
    DistributionSpec,
    HeavyTailedPrivateLasso,
    L1Ball,
    SquaredLoss,
    l1_ball_truth,
    make_linear_data,
)


def _data(rng, n=4000, d=8, sigma=0.6):
    w_star = l1_ball_truth(d, rng)
    return make_linear_data(n, w_star,
                            DistributionSpec("lognormal", {"sigma": sigma}),
                            DistributionSpec("gaussian", {"scale": 0.1}),
                            rng=rng)


class TestConfiguration:
    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            HeavyTailedPrivateLasso(L1Ball(4), epsilon=0.0, delta=1e-5)
        with pytest.raises(ValueError):
            HeavyTailedPrivateLasso(L1Ball(4), epsilon=1.0, delta=0.0)

    def test_schedule(self):
        solver = HeavyTailedPrivateLasso(L1Ball(4), epsilon=1.0, delta=1e-5)
        sched = solver.resolve_schedule(10_000)
        assert sched.n_iterations == int(10_000 ** 0.4)
        assert sched.threshold > 0

    def test_per_iteration_epsilon_formula(self):
        solver = HeavyTailedPrivateLasso(L1Ball(4), epsilon=1.0, delta=1e-5)
        eps_step = solver.per_iteration_epsilon(25)
        assert eps_step == pytest.approx(
            1.0 / (2 * math.sqrt(2 * 25 * math.log(1e5))))

    def test_dimension_mismatch(self, rng):
        solver = HeavyTailedPrivateLasso(L1Ball(3), epsilon=1.0, delta=1e-5)
        with pytest.raises(ValueError):
            solver.fit(rng.normal(size=(20, 5)), rng.normal(size=20))


class TestPrivacyBookkeeping:
    def test_advertised_budget(self, rng):
        data = _data(rng, n=800, d=4)
        solver = HeavyTailedPrivateLasso(L1Ball(4), epsilon=0.7, delta=1e-6)
        result = solver.fit(data.features, data.labels, rng=rng)
        assert result.advertised_budget.epsilon == 0.7
        assert result.advertised_budget.delta == 1e-6
        assert result.privacy_spent.epsilon == pytest.approx(0.7)

    def test_metadata_reports_step_budget(self, rng):
        data = _data(rng, n=800, d=4)
        solver = HeavyTailedPrivateLasso(L1Ball(4), epsilon=1.0, delta=1e-5)
        result = solver.fit(data.features, data.labels, rng=rng)
        T = result.n_iterations
        assert result.metadata["per_iteration_epsilon"] == pytest.approx(
            solver.per_iteration_epsilon(T))


class TestOptimization:
    def test_feasible_iterates(self, rng):
        data = _data(rng, n=2000, d=6)
        ball = L1Ball(6)
        solver = HeavyTailedPrivateLasso(ball, epsilon=1.0, delta=1e-5,
                                         record_history=True)
        result = solver.fit(data.features, data.labels, rng=rng)
        for w in result.iterates:
            assert ball.contains(w, tol=1e-9)

    def test_risk_decreases(self, rng):
        data = _data(rng, n=10_000, d=8)
        solver = HeavyTailedPrivateLasso(L1Ball(8), epsilon=2.0, delta=1e-5,
                                         record_history=True)
        result = solver.fit(data.features, data.labels, rng=rng)
        assert result.risks[-1] < result.risks[0]

    def test_threshold_actually_shrinks_data(self, rng):
        """With a tiny K the effective gradient signal collapses —
        check the fitted model is no better than a random vertex walk."""
        data = _data(rng, n=2000, d=6)
        solver = HeavyTailedPrivateLasso(L1Ball(6), epsilon=1.0, delta=1e-5,
                                         threshold=1e-6, n_iterations=5)
        result = solver.fit(data.features, data.labels, rng=rng)
        assert np.all(np.isfinite(result.w))

    def test_explicit_threshold_respected(self, rng):
        data = _data(rng, n=500, d=4)
        solver = HeavyTailedPrivateLasso(L1Ball(4), epsilon=1.0, delta=1e-5,
                                         threshold=3.0, n_iterations=4)
        result = solver.fit(data.features, data.labels, rng=rng)
        assert result.metadata["threshold"] == 3.0
        assert result.n_iterations == 4

    def test_robust_to_gross_outliers(self, rng):
        data = _data(rng, n=4000, d=6)
        X, y = data.features.copy(), data.labels.copy()
        X[0] = 1e12
        y[0] = -1e12
        loss = SquaredLoss()
        result = HeavyTailedPrivateLasso(L1Ball(6), epsilon=2.0, delta=1e-5).fit(
            X, y, rng=rng)
        assert np.all(np.isfinite(result.w))
        clean_risk = loss.value(result.w, data.features[1:], data.labels[1:])
        zero_risk = loss.value(np.zeros(6), data.features[1:], data.labels[1:])
        assert clean_risk <= zero_risk * 1.2

    def test_reproducible(self, rng):
        data = _data(rng, n=800, d=4)
        solver = HeavyTailedPrivateLasso(L1Ball(4), epsilon=1.0, delta=1e-5)
        a = solver.fit(data.features, data.labels, rng=np.random.default_rng(3))
        b = solver.fit(data.features, data.labels, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a.w, b.w)

    def test_beats_trivial_predictor_on_average(self, rng):
        loss = SquaredLoss()
        wins = 0
        for seed in range(5):
            trial = np.random.default_rng(seed)
            data = _data(trial, n=24_000, d=8)
            result = HeavyTailedPrivateLasso(L1Ball(8), epsilon=2.0,
                                             delta=1e-5).fit(
                data.features, data.labels, rng=trial)
            if (loss.value(result.w, data.features, data.labels)
                    < loss.value(np.zeros(8), data.features, data.labels)):
                wins += 1
        assert wins >= 4
