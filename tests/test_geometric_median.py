"""Tests for the geometric median-of-means vector estimator."""

import numpy as np
import pytest

from repro.estimators import geometric_median_of_means, weiszfeld


class TestWeiszfeld:
    def test_single_point(self):
        p = np.array([[1.0, 2.0]])
        np.testing.assert_allclose(weiszfeld(p), [1.0, 2.0])

    def test_collinear_median(self):
        # Geometric median of 3 collinear points is the middle one.
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]])
        np.testing.assert_allclose(weiszfeld(pts), [1.0, 0.0], atol=1e-4)

    def test_symmetric_configuration(self):
        pts = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        np.testing.assert_allclose(weiszfeld(pts), [0.0, 0.0], atol=1e-8)

    def test_minimizes_sum_of_distances(self, rng):
        pts = rng.normal(size=(30, 4))
        z = weiszfeld(pts)
        objective = lambda q: np.sum(np.linalg.norm(pts - q, axis=1))
        base = objective(z)
        for _ in range(20):
            probe = z + rng.normal(scale=0.1, size=4)
            assert base <= objective(probe) + 1e-8

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            weiszfeld(np.ones((2, 2)), max_iterations=0)
        with pytest.raises(ValueError):
            weiszfeld(np.ones(3))


class TestGeometricMedianOfMeans:
    def test_clean_gaussian(self, rng):
        mean = np.array([1.0, -2.0, 0.5])
        x = rng.normal(loc=mean, size=(20_000, 3))
        est = geometric_median_of_means(x, 10, rng=rng)
        np.testing.assert_allclose(est, mean, atol=0.1)

    def test_robust_to_corrupted_blocks(self, rng):
        mean = np.zeros(2)
        x = rng.normal(loc=mean, size=(5000, 2))
        # MoM tolerates corrupted *blocks*: 5 outliers can spoil at most
        # 5 of the 30 blocks, well under the k/2 breakdown point.
        x[:5] = 1e9
        est = geometric_median_of_means(x, 30, rng=rng)
        np.testing.assert_allclose(est, mean, atol=0.5)

    def test_rotation_equivariance(self, rng):
        """Unlike coordinate-wise estimators, GMoM commutes with rotations."""
        x = rng.standard_t(df=3, size=(4000, 2))
        theta = 0.7
        R = np.array([[np.cos(theta), -np.sin(theta)],
                      [np.sin(theta), np.cos(theta)]])
        a = geometric_median_of_means(x @ R.T, 16, rng=np.random.default_rng(1))
        b = R @ geometric_median_of_means(x, 16, rng=np.random.default_rng(1))
        np.testing.assert_allclose(a, b, atol=0.05)

    def test_single_block_is_mean(self, rng):
        x = rng.normal(size=(100, 3))
        est = geometric_median_of_means(x, 1, rng=rng)
        np.testing.assert_allclose(est, x.mean(axis=0))

    def test_blocks_clamped_to_n(self, rng):
        x = rng.normal(size=(5, 2))
        est = geometric_median_of_means(x, 100, rng=rng)
        assert est.shape == (2,)

    def test_rejects_bad_input(self, rng):
        with pytest.raises(ValueError):
            geometric_median_of_means(np.ones(5), 4, rng=rng)
