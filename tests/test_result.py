"""Tests for the FitResult container."""

import numpy as np
import pytest

from repro.core import FitResult
from repro.privacy import PrivacyAccountant, PrivacyBudget


def _make_result(**overrides):
    accountant = PrivacyAccountant()
    accountant.spend(PrivacyBudget(1.0), "exponential")
    defaults = dict(
        w=np.array([0.5, -0.5]),
        n_iterations=3,
        accountant=accountant,
        advertised_budget=PrivacyBudget(1.0),
    )
    defaults.update(overrides)
    return FitResult(**defaults)


class TestFitResult:
    def test_privacy_spent_matches_ledger(self):
        result = _make_result()
        assert result.privacy_spent.epsilon == pytest.approx(1.0)

    def test_privacy_spent_none_for_empty_ledger(self):
        result = _make_result(accountant=PrivacyAccountant())
        assert result.privacy_spent is None

    def test_risk_trace_empty_by_default(self):
        assert _make_result().risk_trace().size == 0

    def test_risk_trace_array(self):
        result = _make_result(risks=[1.0, 0.5, 0.25])
        trace = result.risk_trace()
        assert trace.dtype == float
        np.testing.assert_allclose(trace, [1.0, 0.5, 0.25])

    def test_repr_mentions_iterations_and_budget(self):
        text = repr(_make_result())
        assert "n_iterations=3" in text
        assert "(1)-DP" in text

    def test_metadata_defaults_to_empty_dict(self):
        result = _make_result()
        assert result.metadata == {}
        result.metadata["key"] = 1  # mutable per-instance
        assert _make_result().metadata == {}
