"""Cross-estimator behavioural contrasts.

These tests pin the *relative* behaviour of the estimation engines —
the facts the paper's design rests on — rather than any single
estimator's accuracy:

* bounded-influence estimators survive contamination that destroys the
  empirical mean;
* the Catoni scale controls a bias/influence trade-off monotonically;
* the truncated-mean engine degrades gracefully as the moment order
  drops (smaller thresholds, heavier shrinkage).
"""

import numpy as np
import pytest

from repro.estimators import (
    CatoniEstimator,
    TruncatedMeanEstimator,
    empirical_mean,
    geometric_median_of_means,
    median_of_means,
    optimal_truncation_threshold,
    trimmed_mean,
)


@pytest.fixture
def contaminated(rng):
    """Lognormal sample with 1% gross contamination; true mean e^{0.18}."""
    x = rng.lognormal(sigma=0.6, size=10_000)
    n_bad = 100
    x[:n_bad] = 1e6
    return x, float(np.exp(0.18))


class TestContaminationSurvival:
    def test_empirical_mean_destroyed(self, contaminated):
        x, truth = contaminated
        assert abs(empirical_mean(x) - truth) > 1000

    @pytest.mark.parametrize("estimator", [
        lambda x, rng: CatoniEstimator(scale=10.0).estimate(x),
        lambda x, rng: TruncatedMeanEstimator(threshold=20.0).estimate(x),
        lambda x, rng: trimmed_mean(x, 0.05),
        lambda x, rng: median_of_means(x, 400, rng=rng),
    ], ids=["catoni", "truncated", "trimmed", "mom"])
    def test_robust_estimators_survive(self, contaminated, estimator, rng):
        x, truth = contaminated
        assert abs(estimator(x, rng) - truth) < 0.5

    def test_geometric_median_of_means_vector(self, rng):
        x = rng.lognormal(sigma=0.6, size=(10_000, 3))
        x[:20] = 1e6
        est = geometric_median_of_means(x, 200, rng=rng)
        np.testing.assert_allclose(est, np.exp(0.18) * np.ones(3), atol=0.5)


class TestScaleTradeoff:
    def test_small_scale_biases_toward_zero(self, rng):
        """Aggressive truncation shrinks the estimate toward zero."""
        x = rng.normal(loc=5.0, scale=0.5, size=5000)
        tiny = CatoniEstimator(scale=0.5).estimate(x)
        large = CatoniEstimator(scale=500.0).estimate(x)
        assert tiny < large
        assert large == pytest.approx(5.0, abs=0.1)
        assert tiny < 1.0  # hard truncation bias

    def test_sensitivity_monotone_in_scale(self):
        scales = [0.5, 1.0, 5.0, 50.0]
        sens = [CatoniEstimator(scale=s).sensitivity(100) for s in scales]
        assert all(a < b for a, b in zip(sens, sens[1:]))

    def test_catoni_and_truncated_agree_on_bounded_data(self, rng):
        """With scales far above the data range both engines are the mean."""
        x = rng.uniform(-1, 1, size=2000)
        catoni = CatoniEstimator(scale=1000.0).estimate(x)
        truncated = TruncatedMeanEstimator(threshold=1000.0).estimate(x)
        assert catoni == pytest.approx(truncated, abs=1e-6)
        assert catoni == pytest.approx(float(np.mean(x)), abs=1e-6)


class TestMomentOrderBehaviour:
    def test_threshold_monotone_in_order(self):
        """At fixed budget, assuming heavier tails (smaller v) prescribes a
        larger threshold — less aggressive truncation of rare spikes whose
        contribution to the mean matters more."""
        orders = [1.2, 1.5, 1.8, 2.0]
        thresholds = [optimal_truncation_threshold(10_000, 1.0, o)
                      for o in orders]
        assert all(a > b for a, b in zip(thresholds, thresholds[1:]))

    def test_error_bound_worsens_for_heavier_tails(self):
        est = TruncatedMeanEstimator(threshold=50.0)
        light = est.error_bound(10_000, 2.0, 1.0, 0.05)
        heavy = est.error_bound(10_000, 1.2, 1.0, 0.05)
        assert heavy > light
