"""Tests for Algorithm 4 (Peeling) and the dense-release comparator."""

import math

import numpy as np
import pytest

from repro.core import dense_laplace_release, peeling, peeling_laplace_scale
from repro.privacy import PrivacyAccountant


class TestLaplaceScale:
    def test_formula(self):
        scale = peeling_laplace_scale(sparsity=5, epsilon=1.0, delta=1e-5,
                                      noise_scale=0.1)
        expected = 2 * 0.1 * math.sqrt(3 * 5 * math.log(1e5)) / 1.0
        assert scale == pytest.approx(expected)

    def test_scales_inversely_with_epsilon(self):
        low = peeling_laplace_scale(5, 2.0, 1e-5, 0.1)
        high = peeling_laplace_scale(5, 1.0, 1e-5, 0.1)
        assert low == pytest.approx(high / 2)

    def test_invalid(self):
        with pytest.raises(ValueError):
            peeling_laplace_scale(0, 1.0, 1e-5, 0.1)
        with pytest.raises(ValueError):
            peeling_laplace_scale(5, 1.0, 1e-5, 0.0)


class TestPeeling:
    def test_output_sparsity(self, rng):
        v = rng.normal(size=40)
        result = peeling(v, sparsity=6, epsilon=1.0, delta=1e-5,
                         noise_scale=0.01, rng=rng)
        assert np.count_nonzero(result.vector) <= 6
        assert result.support.size == 6
        assert len(set(result.support.tolist())) == 6  # distinct indices

    def test_selects_top_coordinates_with_tiny_noise(self, rng):
        v = np.array([0.1, 5.0, -4.0, 0.2, 3.0])
        result = peeling(v, sparsity=3, epsilon=1000.0, delta=1e-5,
                         noise_scale=1e-9, rng=rng)
        assert set(result.support.tolist()) == {1, 2, 4}

    def test_values_close_to_input_with_tiny_noise(self, rng):
        v = np.array([0.0, 5.0, -4.0, 0.0, 3.0])
        result = peeling(v, sparsity=3, epsilon=1000.0, delta=1e-5,
                         noise_scale=1e-9, rng=rng)
        np.testing.assert_allclose(result.vector, v, atol=1e-4)

    def test_peel_order_is_magnitude_order(self, rng):
        v = np.array([1.0, 10.0, 5.0])
        result = peeling(v, sparsity=3, epsilon=1000.0, delta=1e-5,
                         noise_scale=1e-9, rng=rng)
        assert result.support.tolist() == [1, 2, 0]

    def test_large_noise_randomises_selection(self, rng):
        v = np.array([0.0, 0.01, 0.0, 0.0])
        picks = set()
        for _ in range(40):
            res = peeling(v, sparsity=1, epsilon=0.1, delta=1e-5,
                          noise_scale=1.0, rng=rng)
            picks.add(int(res.support[0]))
        assert len(picks) > 1

    def test_sparsity_exceeding_length_rejected(self, rng):
        with pytest.raises(ValueError):
            peeling(np.ones(3), sparsity=4, epsilon=1.0, delta=1e-5,
                    noise_scale=0.1, rng=rng)

    def test_accountant(self, rng):
        acc = PrivacyAccountant()
        peeling(np.ones(5), sparsity=2, epsilon=0.5, delta=1e-6,
                noise_scale=0.1, rng=rng, accountant=acc)
        assert acc.total_epsilon == pytest.approx(0.5)
        assert acc.total_delta == pytest.approx(1e-6)

    def test_release_noise_matches_scale(self, rng):
        """The released values should deviate with the stated Laplace scale."""
        v = np.zeros(2000)
        res = peeling(v, sparsity=2000, epsilon=1.0, delta=1e-5,
                      noise_scale=0.05, rng=rng)
        # all coords selected; the additive noise has scale res.noise_scale
        observed_std = np.std(res.vector)
        expected_std = res.noise_scale * math.sqrt(2.0)
        assert observed_std == pytest.approx(expected_std, rel=0.1)


class TestDenseLaplaceRelease:
    def test_output_sparsity(self, rng):
        v = rng.normal(size=30)
        res = dense_laplace_release(v, sparsity=4, epsilon=1.0, delta=1e-5,
                                    noise_scale=0.001, rng=rng)
        assert np.count_nonzero(res.vector) <= 4

    def test_noisier_than_peeling_in_high_dimension(self, rng):
        """The ablation claim: dense release error grows with d."""
        d, s = 400, 4
        v = np.zeros(d)
        v[:s] = 1.0
        peel_errors, dense_errors = [], []
        for _ in range(20):
            p = peeling(v, s, 1.0, 1e-5, noise_scale=0.001, rng=rng)
            q = dense_laplace_release(v, s, 1.0, 1e-5, noise_scale=0.001, rng=rng)
            peel_errors.append(np.linalg.norm(p.vector - v))
            dense_errors.append(np.linalg.norm(q.vector - v))
        assert np.mean(dense_errors) > 2.0 * np.mean(peel_errors)

    def test_accountant_is_pure_dp(self, rng):
        acc = PrivacyAccountant()
        dense_laplace_release(np.ones(5), 2, 1.0, 1e-5, 0.1, rng=rng,
                              accountant=acc)
        assert acc.total.is_pure
