"""Tests for PrivacyBudget arithmetic and composition theorems."""

import math

import pytest

from repro.privacy import (
    PrivacyBudget,
    advanced_composition_step,
    advanced_composition_total,
)


class TestPrivacyBudget:
    def test_pure_dp(self):
        b = PrivacyBudget(1.0)
        assert b.is_pure and b.delta == 0.0

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            PrivacyBudget(0.0)
        with pytest.raises(ValueError):
            PrivacyBudget(-1.0)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            PrivacyBudget(1.0, -0.1)
        with pytest.raises(ValueError):
            PrivacyBudget(1.0, 1.0)

    def test_addition_is_basic_composition(self):
        total = PrivacyBudget(1.0, 1e-5) + PrivacyBudget(0.5, 1e-6)
        assert total.epsilon == pytest.approx(1.5)
        assert total.delta == pytest.approx(1.1e-5)

    def test_multiplication(self):
        assert (PrivacyBudget(0.5) * 4).epsilon == pytest.approx(2.0)
        assert (3 * PrivacyBudget(0.5, 1e-6)).delta == pytest.approx(3e-6)

    def test_multiplication_rejects_bad_k(self):
        with pytest.raises(ValueError):
            PrivacyBudget(1.0) * 0
        with pytest.raises(ValueError):
            PrivacyBudget(1.0) * 1.5

    def test_split_inverts_multiplication(self):
        b = PrivacyBudget(2.0, 1e-5)
        again = b.split(4) * 4
        assert again.epsilon == pytest.approx(b.epsilon)
        assert again.delta == pytest.approx(b.delta)

    def test_covers(self):
        big = PrivacyBudget(2.0, 1e-4)
        small = PrivacyBudget(1.0, 1e-5)
        assert big.covers(small)
        assert not small.covers(big)

    def test_covers_tolerates_float_drift(self):
        b = PrivacyBudget(1.0)
        drifted = PrivacyBudget(1.0 + 1e-12)
        assert b.covers(drifted)

    def test_hashable_and_frozen(self):
        b = PrivacyBudget(1.0, 1e-6)
        assert hash(b) == hash(PrivacyBudget(1.0, 1e-6))
        with pytest.raises(Exception):
            b.epsilon = 2.0


class TestAdvancedComposition:
    def test_step_formula_matches_paper(self):
        # eps' = eps / (2 sqrt(2 T ln(2/delta)))
        total = PrivacyBudget(1.0, 1e-5)
        step = advanced_composition_step(total, 10)
        expected = 1.0 / (2.0 * math.sqrt(2.0 * 10 * math.log(2.0 / 1e-5)))
        assert step.epsilon == pytest.approx(expected)
        assert step.delta == pytest.approx(1e-5 / 20)

    def test_step_requires_delta(self):
        with pytest.raises(ValueError):
            advanced_composition_step(PrivacyBudget(1.0), 5)

    def test_step_rejects_bad_T(self):
        with pytest.raises(ValueError):
            advanced_composition_step(PrivacyBudget(1.0, 1e-5), 0)

    def test_roundtrip_is_conservative(self):
        """Composing the per-step budgets must not exceed the target."""
        total = PrivacyBudget(1.0, 1e-5)
        T = 20
        step = advanced_composition_step(total, T)
        recomposed = advanced_composition_total(step, T, delta_slack=total.delta / 2)
        assert recomposed.epsilon <= total.epsilon * (1 + 1e-9)
        assert recomposed.delta <= total.delta * (1 + 1e-9)

    def test_total_grows_sublinearly(self):
        step = PrivacyBudget(0.01, 1e-8)
        t_small = advanced_composition_total(step, 10, 1e-6)
        t_large = advanced_composition_total(step, 1000, 1e-6)
        # sqrt scaling: x100 steps should grow eps by ~x10, far below x100
        assert t_large.epsilon < 15 * t_small.epsilon

    def test_total_rejects_bad_args(self):
        with pytest.raises(ValueError):
            advanced_composition_total(PrivacyBudget(0.1, 1e-8), 0, 1e-6)
        with pytest.raises(ValueError):
            advanced_composition_total(PrivacyBudget(0.1, 1e-8), 5, 0.0)
