"""The networked fleet: wire protocol, socket contract parity, workers.

The tentpole guarantee under test: moving the broker behind a TCP
socket and the workers into their own loops changes *nothing* about the
values — a grid computed by real leased workers over the wire is
bit-identical to a serial run, under worker kills, dropped completions,
dropped client connections, and duplicated deliveries, because the
transport only moves digest-addressed jobs and idempotent completions.

Three layers, cheapest first: pure protocol round-trips, the
:class:`~repro.fleet.net.SocketBroker` satisfying the broker method
contract verbatim against a live :class:`~repro.fleet.net.BrokerServer`
(same assertions the in-process broker passes, explicit ``now``
preserved), and whole-fleet runs — the unchanged simulated
:class:`~repro.fleet.FleetExecutor` driving a *networked* broker via
``broker_factory``, and the :class:`~repro.fleet.net.RemoteFleetExecutor`
coordinating real :class:`~repro.fleet.net.FleetWorker` loops on
threads.
"""

import threading
import time

import pytest

from repro.evaluation import run_grid
from repro.evaluation.scenarios import point_fingerprint
from repro.evaluation import build_jobs
from repro.fleet import (
    DEAD,
    DONE,
    LEASED,
    BackoffPolicy,
    BrokerBusyError,
    FaultSchedule,
    FleetError,
    FleetExecutor,
    FleetOptions,
    create_fleet_executor,
    read_journal,
)
from repro.fleet.net import (
    BrokerServer,
    FleetWorker,
    RemoteFleetExecutor,
    SocketBroker,
    protocol,
)

def _fleet_point(series, x, rng):
    """A module-level grid point: deterministic given the job's rng."""
    return float(series) * float(x) + float(rng.normal())


X_VALUES = [1, 2, 3]
SERIES_VALUES = [10, 20]
N_TRIALS = 3
GRID_SEED = 11

#: Wall-clock-fast lease policy for the real-worker tests: a killed
#: worker's lease expires in half a second, retries release almost
#: immediately, and the whole chaos run stays under a few seconds.
FAST = dict(lease_timeout=0.5, max_attempts=3,
            backoff=BackoffPolicy(base=0.05, cap=0.2))


def _grid_digests():
    """Cell digests exactly as ``run_grid`` derives them (code token in)."""
    jobs = build_jobs("x", X_VALUES, "series", SERIES_VALUES,
                      n_trials=N_TRIALS, seed=GRID_SEED,
                      code_token=point_fingerprint(_fleet_point))
    return [job.digest for job in jobs]


def _run(executor):
    """The acceptance grid through any executor."""
    return run_grid(_fleet_point, "x", X_VALUES, "series", SERIES_VALUES,
                    n_trials=N_TRIALS, seed=GRID_SEED, executor=executor)


@pytest.fixture()
def server():
    """A live broker server on an ephemeral port."""
    with BrokerServer(lease_timeout=5.0, max_attempts=3) as live:
        yield live


class TestProtocol:
    def test_payload_round_trip(self):
        payload = ("point", {"nested": [1.5, None]})
        assert protocol.decode_payload(
            protocol.encode_payload(payload)) == payload
        assert protocol.encode_payload(None) is None
        assert protocol.decode_payload(None) is None

    def test_result_round_trip(self):
        assert protocol.result_from_wire(
            protocol.result_to_wire(([1.0, 2.0], 0.25))) == ([1.0, 2.0], 0.25)
        assert protocol.result_to_wire(None) is None
        assert protocol.result_from_wire(None) is None

    def test_parse_address(self):
        assert protocol.parse_address("127.0.0.1:8421") == ("127.0.0.1", 8421)
        for bad in ("nocolon", ":9", "host:notaport", "host:70000"):
            with pytest.raises(ValueError):
                protocol.parse_address(bad)

    def test_remote_keyerror_is_reraised_as_keyerror(self):
        with pytest.raises(KeyError):
            protocol.raise_remote("KeyError", "'unknown lease id 7'")
        with pytest.raises(ValueError):
            protocol.raise_remote("ValueError", "nope")
        with pytest.raises(protocol.ProtocolError):
            protocol.raise_remote("RuntimeError", "anything else")


class TestSocketContractParity:
    """The broker method contract, verbatim, over the wire."""

    def test_lease_lifecycle_with_explicit_now(self, server):
        broker = SocketBroker(server.address)
        assert broker.lease_timeout == 5.0 and broker.max_attempts == 3
        assert broker.enqueue("k1", ("point", "job")) is True
        assert broker.enqueue("k1") is False  # idempotent by key
        lease = broker.lease(now=100.0)
        assert lease.key == "k1" and lease.attempt == 0
        assert lease.deadline == 105.0
        assert lease.payload == ("point", "job")
        assert broker.lease(now=100.0) is None  # nothing else queued
        assert broker.heartbeat(lease.lease_id, now=104.0) is True
        # The heartbeat extended the deadline: 104 + 5 = 109.
        assert broker.expire(now=108.0) == []
        assert broker.complete(lease.lease_id, now=108.5,
                               values=[1.0, 2.0, 3.0],
                               elapsed=0.125) == "completed"
        assert broker.state("k1") == DONE
        assert broker.result("k1") == ([1.0, 2.0, 3.0], 0.125)
        assert broker.outstanding() == 0
        counters = broker.counters
        assert counters["completed"] == 1 and counters["heartbeats"] == 1

    def test_unknown_lease_id_raises_keyerror_through_the_wire(self, server):
        broker = SocketBroker(server.address)
        with pytest.raises(KeyError):
            broker.complete(999, now=1.0)
        with pytest.raises(KeyError):
            broker.fail(999, now=1.0)
        assert broker.heartbeat(999, now=1.0) is False

    def test_expiry_retry_and_dead_letter_over_the_wire(self, server):
        broker = SocketBroker(server.address)
        broker.enqueue("doomed")
        for attempt in range(3):
            eligible = broker.next_eligible()
            now = 1000.0 * (attempt + 1) if eligible is None else \
                max(eligible, 1000.0 * (attempt + 1))
            lease = broker.lease(now=now)
            assert lease is not None and lease.attempt == attempt
            reaped = broker.expire(now=now + 10.0)
            assert lease.lease_id in reaped
        assert broker.state("doomed") == DEAD
        letters = broker.dead_letters
        assert len(letters) == 1
        assert letters[0].key == "doomed" and letters[0].attempts == 3
        assert broker.counters["dead"] == 1

    def test_duplicate_delivery_over_the_socket(self, server):
        """Two workers complete one attempt; the loser is absorbed."""
        broker = SocketBroker(server.address)
        broker.enqueue("twice")
        first = broker.lease(now=10.0)
        twin = broker.duplicate_lease("twice", now=10.0)
        assert twin is not None and twin.attempt == first.attempt
        assert twin.lease_id != first.lease_id
        assert broker.complete(first.lease_id, now=11.0,
                               values=[7.0]) == "completed"
        assert broker.complete(twin.lease_id, now=11.5,
                               values=[7.0]) == "duplicate"
        counters = broker.counters
        assert counters["duplicated"] == 1 and counters["duplicates"] == 1
        # The first completion's values stick.
        assert broker.result("twice") == ([7.0], None)

    def test_dropped_connection_mid_complete_is_idempotent(self, server):
        """A client that loses the ack resends; the broker absorbs it."""
        broker = SocketBroker(server.address)
        broker.enqueue("flaky")
        lease = broker.lease(now=1.0)
        assert broker.complete(lease.lease_id, now=2.0,
                               values=[5.0]) == "completed"
        # The ack was "lost": the client reconnects and resends the
        # exact same completion (what the retry loop in call() does).
        broker.close()
        assert broker.complete(lease.lease_id, now=2.5,
                               values=[5.0]) == "duplicate"
        counters = broker.counters
        assert counters["completed"] == 1 and counters["duplicates"] == 1
        assert broker.result("flaky") == ([5.0], None)

    def test_reset_installs_a_fresh_broker(self, server):
        stale = SocketBroker(server.address)
        stale.enqueue("old")
        fresh = SocketBroker(server.address, lease_timeout=2.0,
                             max_attempts=5, reset=True)
        assert fresh.lease_timeout == 2.0 and fresh.max_attempts == 5
        assert fresh.counters["enqueued"] == 0
        with pytest.raises(KeyError):
            fresh.state("old")


class TestSimulatedFleetOverTheSocket:
    """The unchanged FleetExecutor driving a networked broker."""

    def test_grid_is_bit_identical_to_serial(self, server):
        serial = _run("serial")
        fleet = FleetExecutor(
            FleetOptions(n_workers=3),
            broker_factory=lambda **kw: SocketBroker(server.address,
                                                     reset=True, **kw))
        assert _run(fleet) == serial
        assert fleet.stats.completed == len(_grid_digests())

    def test_chaos_schedule_is_bit_identical_to_serial(self, server):
        digests = _grid_digests()
        faults = FaultSchedule(kill={(digests[0], 0)},
                               drop={(digests[1], 0)},
                               duplicate={digests[2]})
        fleet = FleetExecutor(
            FleetOptions(n_workers=3, faults=faults),
            broker_factory=lambda **kw: SocketBroker(server.address,
                                                     reset=True, **kw))
        assert _run(fleet) == _run("serial")
        assert fleet.stats.killed == 1 and fleet.stats.dropped == 1
        assert fleet.stats.duplicated == 1
        assert fleet.stats.retried >= 2


def _spawn_workers(server, n, **kwargs):
    """Start ``n`` worker loops on daemon threads against ``server``."""
    workers, threads = [], []
    for index in range(n):
        worker = FleetWorker(SocketBroker(server.address),
                             poll_interval=0.02,
                             label=f"w{index}", **kwargs)
        thread = threading.Thread(target=worker.run, daemon=True)
        workers.append(worker)
        threads.append(thread)
        thread.start()
    return workers, threads


def _reap_workers(workers, threads):
    """Stop every worker loop and join its thread."""
    for worker in workers:
        worker.stop()
    for thread in threads:
        thread.join(timeout=10.0)


class TestRealWorkers:
    """RemoteFleetExecutor + FleetWorker loops on wall clock."""

    def test_networked_grid_is_bit_identical_to_serial(self, server):
        serial = _run("serial")
        remote = RemoteFleetExecutor(FleetOptions(
            broker=server.address, poll_interval=0.02, run_timeout=60.0,
            **FAST))
        workers, threads = _spawn_workers(server, 2)
        try:
            assert _run(remote) == serial
        finally:
            _reap_workers(workers, threads)
        assert remote.stats.completed == len(_grid_digests())
        assert remote.stats.dead == 0
        assert sum(w.leased for w in workers) == len(_grid_digests())

    def test_worker_killed_mid_lease_retries_elsewhere(self, server):
        """A worker dies holding a lease; the survivor finishes the grid."""
        digests = _grid_digests()
        serial = _run("serial")
        # The doomed worker dies on the first attempt of one known
        # cell; its twin carries no fault schedule and survives.
        doomed_faults = FaultSchedule(kill={(digests[0], 0)})
        died = []
        doomed = FleetWorker(SocketBroker(server.address),
                             poll_interval=0.02, label="doomed",
                             faults=doomed_faults,
                             on_kill=lambda: died.append(True))
        healthy = FleetWorker(SocketBroker(server.address),
                              poll_interval=0.02, label="healthy")
        threads = [threading.Thread(target=w.run, daemon=True)
                   for w in (doomed, healthy)]
        remote = RemoteFleetExecutor(FleetOptions(
            broker=server.address, poll_interval=0.02, run_timeout=60.0,
            **FAST))
        result_box = {}

        def coordinate():
            result_box["run"] = _run(remote)

        coordinator = threading.Thread(target=coordinate, daemon=True)
        try:
            # Start the doomed worker first so it leases digests[0]
            # (lease order is queue order) and dies; only then bring up
            # the survivor, which inherits the retry.
            threads[0].start()
            coordinator.start()
            while not died and coordinator.is_alive():
                time.sleep(0.01)
            threads[1].start()
            coordinator.join(timeout=60.0)
            assert not coordinator.is_alive(), "networked run did not settle"
            assert result_box["run"] == serial
        finally:
            _reap_workers([doomed, healthy], threads)
        assert died == [True]
        assert remote.stats.expired >= 1
        assert remote.stats.retried >= 1
        assert remote.stats.dead == 0

    def test_dropped_completion_is_retried_and_visible(self, server):
        digests = _grid_digests()
        serial = _run("serial")
        faults = FaultSchedule(drop={(digests[1], 0)})
        workers, threads = _spawn_workers(server, 2, faults=faults)
        remote = RemoteFleetExecutor(FleetOptions(
            broker=server.address, poll_interval=0.02, run_timeout=60.0,
            **FAST))
        try:
            assert _run(remote) == serial
        finally:
            _reap_workers(workers, threads)
        assert sum(w.dropped for w in workers) == 1
        assert remote.stats.expired >= 1
        assert remote.stats.retried >= 1

    def test_worker_local_cache_completes_without_recompute(
            self, server, tmp_path):
        from repro.evaluation import ResultCache
        serial = _run("serial")
        cache = ResultCache(tmp_path / "cells")
        workers, threads = _spawn_workers(server, 1, cache=cache)
        remote = RemoteFleetExecutor(FleetOptions(
            broker=server.address, poll_interval=0.02, run_timeout=60.0,
            **FAST))
        try:
            assert _run(remote) == serial      # cold: computes + fills
            assert _run(remote) == serial      # warm: all cache hits
        finally:
            _reap_workers(workers, threads)
        assert workers[0].cache_hits == len(_grid_digests())

    def test_settle_timeout_without_workers_raises(self, server):
        remote = RemoteFleetExecutor(FleetOptions(
            broker=server.address, poll_interval=0.02, run_timeout=0.3))
        with pytest.raises(FleetError, match="did not settle"):
            _run(remote)


class TestFactoryWiring:
    def test_options_without_broker_build_the_simulation(self):
        assert isinstance(create_fleet_executor(FleetOptions()),
                          FleetExecutor)

    def test_options_with_broker_build_the_remote_coordinator(self):
        executor = create_fleet_executor(
            FleetOptions(broker="127.0.0.1:9"))
        assert isinstance(executor, RemoteFleetExecutor)

    def test_malformed_broker_address_fails_at_option_construction(self):
        with pytest.raises(ValueError):
            FleetOptions(broker="no-port-here")

    def test_remote_executor_requires_a_broker(self):
        with pytest.raises(ValueError):
            RemoteFleetExecutor(FleetOptions())


#: Fast reconnect backoff so the outage tests finish in milliseconds.
QUICK_RECONNECT = BackoffPolicy(base=0.02, factor=2.0, cap=0.05, jitter=0.0)


class TestReconnectAndRecovery:
    """Broker death: client reconnects, journal replay, refused resets."""

    def test_client_reconnects_across_server_restart(self):
        first = BrokerServer(lease_timeout=5.0, max_attempts=3).start()
        port = first.port
        broker = SocketBroker(first.address, reconnect=QUICK_RECONNECT)
        assert broker.enqueue("doomed") is True
        first.stop()
        # Same port, fresh (journal-less) broker: the client must ride
        # the severed connection into the replacement transparently.
        second = BrokerServer(port=port, lease_timeout=5.0,
                              max_attempts=3).start()
        try:
            assert broker.outstanding() == 0  # unjournalled state died
            assert broker.enqueue("doomed") is True  # and the key is free
        finally:
            second.stop()
        assert broker.reconnects >= 1

    def test_call_fails_once_the_reconnect_deadline_passes(self):
        server = BrokerServer().start()
        broker = SocketBroker(server.address, reconnect=QUICK_RECONNECT,
                              reconnect_timeout=0.3)
        server.stop()
        started = time.monotonic()
        with pytest.raises(ConnectionError, match="unreachable for 0.3s"):
            broker.outstanding()
        assert time.monotonic() - started >= 0.3

    def test_reconnect_timeout_must_be_positive(self, server):
        with pytest.raises(ValueError, match="reconnect_timeout"):
            SocketBroker(server.address, reconnect_timeout=0.0)

    def test_reset_refused_while_leases_outstanding(self, server):
        coordinator = SocketBroker(server.address)
        coordinator.enqueue("busy")
        assert coordinator.lease(now=time.time()) is not None
        with pytest.raises(BrokerBusyError, match="reset refused"):
            SocketBroker(server.address, reset=True)
        # The in-flight run survived the refused reset untouched.
        assert coordinator.state("busy") == LEASED
        forced = SocketBroker(server.address, reset=True, force_reset=True)
        assert forced.counters["enqueued"] == 0

    def test_worker_retries_lease_polls_while_broker_is_down(self):
        server = BrokerServer().start()
        broker = SocketBroker(server.address, reconnect=QUICK_RECONNECT,
                              reconnect_timeout=0.1)
        server.stop()
        worker = FleetWorker(broker, poll_interval=0.01, idle_exit=0.8,
                             retry=BackoffPolicy(base=0.02, cap=0.05,
                                                 jitter=0.0))
        assert worker.run() == 0  # survived the outage, then idled out
        assert worker.broker_retries >= 2

    def test_journalled_server_restart_resumes_state(self, tmp_path):
        journal = tmp_path / "broker.wal"
        first = BrokerServer(lease_timeout=5.0, max_attempts=3,
                             journal=str(journal)).start()
        port = first.port
        broker = SocketBroker(first.address, reconnect=QUICK_RECONNECT)
        broker.enqueue("persistent", ("point", 1))
        lease = broker.lease(now=10.0)
        first.stop()
        second = BrokerServer(port=port, journal=str(journal)).start()
        try:
            # The replayed broker still holds the pre-crash lease; the
            # client completes it as if nothing happened.
            assert second.replayed == 2  # enqueue + lease
            assert broker.state("persistent") == LEASED
            assert broker.complete(lease.lease_id, now=11.0,
                                   values=[4.0]) == "completed"
            assert broker.result("persistent") == ([4.0], None)
            counters = broker.counters
            assert counters["replayed"] == 2
            assert counters["completed"] == 1
            # A wire reset compacts the journal back to config-only.
            SocketBroker(second.address, reset=True)
            assert read_journal(journal)[1] == []
        finally:
            second.stop()

    def test_broker_crash_mid_run_replays_and_stays_bit_identical(
            self, tmp_path):
        journal = tmp_path / "broker.wal"
        serial = _run("serial")
        digests = _grid_digests()
        # Every first attempt drops its completion, so leases dangle and
        # the run is guaranteed to still be in flight when we crash.
        faults = FaultSchedule(drop={(digest, 0) for digest in digests})
        first = BrokerServer(journal=str(journal), **FAST).start()
        port = first.port
        workers, threads = _spawn_workers(first, 2, faults=faults)
        remote = RemoteFleetExecutor(FleetOptions(
            broker=first.address, poll_interval=0.02, run_timeout=60.0,
            **FAST))
        box = {}
        coordinator = threading.Thread(
            target=lambda: box.update(run=_run(remote)), daemon=True)
        first_stopped = False
        second = None
        try:
            coordinator.start()
            deadline = time.time() + 30.0
            while time.time() < deadline:
                if (journal.exists()
                        and b'"op":"lease"' in journal.read_bytes()):
                    break
                time.sleep(0.01)
            else:
                pytest.fail("no lease was journalled within 30s")
            first.stop()          # the crash: state survives only on disk
            first_stopped = True
            second = BrokerServer(port=port, journal=str(journal)).start()
            assert second.replayed > 0
            coordinator.join(timeout=60.0)
            assert not coordinator.is_alive(), ("networked run did not "
                                                "settle after the restart")
            assert box["run"] == serial
        finally:
            _reap_workers(workers, threads)
            if not first_stopped:
                first.stop()
            if second is not None:
                second.stop()
        assert remote.stats.replayed > 0
        assert remote.stats.reconnects >= 1
        assert remote.stats.retried >= len(digests)
        assert remote.stats.dead == 0
