"""The provenance-stamped results store: round trips, integrity, schema.

Covers the three failure-mode contracts the store promises:

* a write/read round trip is lossless (record equality, byte-identical
  re-serialisation);
* truncated or hand-edited manifests raise a clear ``ResultsError`` —
  the stored digests are *verified* on load, never trusted;
* a manifest declaring an unknown future schema version refuses to
  load outright (``UnknownSchemaError``), with no best-effort parse.
"""

import json

import pytest

from repro.evaluation import build_jobs
from repro.exceptions import ReproError
from repro.results import (
    ResultsError,
    ResultsStore,
    RunRecord,
    RunRecorder,
    UnknownSchemaError,
    baseline_digests,
    compute_config_digest,
    compute_run_id,
    load_record,
)

FINGERPRINT = "cafe" * 8


def tiny_record(name="tiny_bench", seed=7, executor="serial",
                fingerprint=FINGERPRINT, scale=1.0):
    """A small two-series record built through the real recorder path.

    The cell "trial values" are synthetic (no solver runs), but the
    jobs — and hence the digests — are the engine's own.
    """
    sweep = [1, 2]
    series = ["a", "b"]
    jobs = build_jobs("x", sweep, "series", series, 3, seed,
                      code_token=fingerprint)
    recorder = RunRecorder(kind="bench", name=name, result_stem=name,
                           executor=executor)
    recorder.add_panel(
        title="tiny panel", x_name="x", sweep_name="x", series_name="series",
        sweep_values=sweep, series_values=series, seed=seed, n_trials=3,
        point_fingerprint=fingerprint,
        cells=[(job, [scale * (i + k * 0.25) for k in range(3)])
               for i, job in enumerate(jobs)])
    return recorder.finalize()


def restamped(payload):
    """Re-stamp a deliberately edited payload's digests, then load it."""
    payload["config_digest"] = compute_config_digest(payload)
    payload["run_id"] = compute_run_id(payload)
    return RunRecord.from_dict(payload)


class TestRoundTrip:
    def test_save_load_equality(self, tmp_path):
        record = tiny_record()
        path = ResultsStore(tmp_path).save(record)
        loaded = load_record(path)
        assert loaded == record
        assert loaded.to_dict() == record.to_dict()

    def test_dict_round_trip(self):
        record = tiny_record()
        assert RunRecord.from_dict(record.to_dict()) == record

    def test_save_is_byte_deterministic(self, tmp_path):
        record = tiny_record()
        path_a = ResultsStore(tmp_path / "a").save(record)
        path_b = ResultsStore(tmp_path / "b").save(record)
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_run_id_ignores_environment_metadata(self):
        # Executors are bit-identical by the engine's contract, so the
        # same experiment run by a different executor is the same run.
        serial = tiny_record(executor="serial")
        thread = tiny_record(executor="thread")
        assert serial.run_id == thread.run_id
        assert serial.config_digest == thread.config_digest
        assert serial.executor != thread.executor

    def test_different_values_different_run_id_same_config(self):
        a, b = tiny_record(scale=1.0), tiny_record(scale=2.0)
        assert a.run_id != b.run_id
        assert a.config_digest == b.config_digest  # same experiment

    def test_different_seed_different_config_digest(self):
        a, b = tiny_record(seed=7), tiny_record(seed=8)
        assert a.config_digest != b.config_digest

    def test_store_load_by_stem(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.save(tiny_record())
        assert store.load("tiny_bench") == tiny_record()

    def test_store_runs_sorted(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.save(tiny_record(name="zz"))
        store.save(tiny_record(name="aa"))
        assert [p.name for p in store.runs()] == ["aa.json", "zz.json"]

    def test_cell_digests_and_counts(self):
        record = tiny_record()
        assert record.n_cells() == 4
        assert len(record.cell_digests()) == 4

    def test_save_keeps_existing_record_with_equal_run_id(self, tmp_path):
        # Environment metadata (executor) is excluded from run_id, so a
        # thread-executor rerun must not churn the committed serial
        # record's bytes.
        store = ResultsStore(tmp_path)
        path = store.save(tiny_record(executor="serial"))
        before = path.read_bytes()
        store.save(tiny_record(executor="thread"))
        assert path.read_bytes() == before
        assert load_record(path).executor == "serial"

    def test_save_replaces_record_with_different_values(self, tmp_path):
        store = ResultsStore(tmp_path)
        path = store.save(tiny_record(scale=1.0))
        store.save(tiny_record(scale=2.0))
        assert load_record(path) == tiny_record(scale=2.0)

    def test_save_replaces_unreadable_existing_file(self, tmp_path):
        store = ResultsStore(tmp_path)
        path = store.save(tiny_record())
        path.write_text("{corrupt")
        store.save(tiny_record())
        assert load_record(path) == tiny_record()


class TestCorruption:
    def _saved(self, tmp_path):
        return ResultsStore(tmp_path).save(tiny_record())

    def test_truncated_manifest_raises(self, tmp_path):
        path = self._saved(tmp_path)
        path.write_text(path.read_text()[:150])
        with pytest.raises(ResultsError, match="truncated or corrupt"):
            load_record(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ResultsError, match="cannot read"):
            load_record(tmp_path / "nope.json")

    def test_hand_edited_value_fails_integrity(self, tmp_path):
        path = self._saved(tmp_path)
        payload = json.loads(path.read_text())
        payload["panels"][0]["cells"][0]["stats"]["mean"] += 1.0
        path.write_text(json.dumps(payload))
        with pytest.raises(ResultsError, match="integrity check failed"):
            load_record(path)

    def test_hand_edited_provenance_fails_config_digest(self, tmp_path):
        # Re-stamping only run_id is not enough: the provenance digest
        # is verified independently, so a fingerprint edit with a stale
        # config_digest still fails loudly.
        path = self._saved(tmp_path)
        payload = json.loads(path.read_text())
        payload["panels"][0]["point_fingerprint"] = "deadbeef"
        payload["run_id"] = compute_run_id(payload)
        path.write_text(json.dumps(payload))
        with pytest.raises(ResultsError, match="config_digest"):
            load_record(path)

    def test_deliberate_edit_via_restamp_loads(self):
        payload = tiny_record().to_dict()
        payload["panels"][0]["point_fingerprint"] = "deadbeef"
        assert restamped(payload).panels[0].point_fingerprint == "deadbeef"

    def test_missing_key_raises_naming_it(self):
        payload = tiny_record().to_dict()
        del payload["engine_version"]
        with pytest.raises(ResultsError, match="engine_version"):
            RunRecord.from_dict(payload)

    def test_wrong_stats_type_raises(self):
        payload = tiny_record().to_dict()
        payload["panels"][0]["cells"][0]["stats"]["mean"] = "fast"
        with pytest.raises(ResultsError, match="mean"):
            RunRecord.from_dict(payload)

    def test_wrong_cell_count_raises(self):
        payload = tiny_record().to_dict()
        del payload["panels"][0]["cells"][0]
        with pytest.raises(ResultsError, match="cells"):
            RunRecord.from_dict(payload)

    def test_permuted_cells_raise(self):
        # A permutation would silently print curves against the wrong
        # coordinates; the grid correspondence is enforced on load.
        payload = tiny_record().to_dict()
        cells = payload["panels"][0]["cells"]
        cells[0], cells[1] = cells[1], cells[0]
        with pytest.raises(ResultsError, match="series-major"):
            restamped(payload)

    def test_mislabelled_cell_coordinate_raises(self):
        payload = tiny_record().to_dict()
        payload["panels"][0]["cells"][0]["series_value"] = "not-an-axis-value"
        with pytest.raises(ResultsError, match="declared grid axes"):
            restamped(payload)

    def test_errors_are_repro_errors(self):
        assert issubclass(ResultsError, ReproError)
        assert issubclass(ResultsError, ValueError)
        assert issubclass(UnknownSchemaError, ResultsError)


class TestSchemaGate:
    def test_future_schema_version_refuses_to_load(self, tmp_path):
        payload = tiny_record().to_dict()
        payload["schema_version"] = 99
        path = tmp_path / "future.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(UnknownSchemaError, match="schema version 99"):
            load_record(path)

    def test_schema_checked_before_everything_else(self):
        # A future-schema payload must refuse on the version alone,
        # even if the rest of the manifest is gibberish to this build.
        with pytest.raises(UnknownSchemaError):
            RunRecord.from_dict({"schema_version": 2, "who": "knows"})

    def test_non_integer_schema_raises(self):
        with pytest.raises(ResultsError, match="schema_version"):
            RunRecord.from_dict({"schema_version": "1"})


class TestRecorder:
    def test_kind_validated(self):
        with pytest.raises(ResultsError, match="kind"):
            RunRecorder(kind="vibes", name="x", result_stem="x")

    def test_empty_run_refused(self):
        with pytest.raises(ResultsError, match="at least one panel"):
            RunRecorder(kind="bench", name="x", result_stem="x").finalize()

    def test_non_json_coordinate_refused(self):
        recorder = RunRecorder(kind="bench", name="x", result_stem="x")
        with pytest.raises(ResultsError, match="not JSON-expressible"):
            recorder.add_panel(
                title="t", x_name="x", sweep_name="x", series_name="series",
                sweep_values=[object()], series_values=[1], seed=0,
                n_trials=1, point_fingerprint="f", cells=[])

    def test_non_finite_coordinate_refused(self):
        recorder = RunRecorder(kind="bench", name="x", result_stem="x")
        with pytest.raises(ResultsError, match="non-finite"):
            recorder.add_panel(
                title="t", x_name="x", sweep_name="x", series_name="series",
                sweep_values=[float("inf")], series_values=[1], seed=0,
                n_trials=1, point_fingerprint="f", cells=[])

    def test_non_finite_trial_values_refused_at_finalize(self):
        # A diverged trial must fail loudly, not write a manifest with
        # a bare NaN token that strict JSON parsers reject.
        from repro.evaluation import build_jobs as _build
        (job,) = _build("x", [1], "series", ["a"], 2, 0, code_token="f")
        recorder = RunRecorder(kind="bench", name="x", result_stem="x")
        recorder.add_panel(
            title="t", x_name="x", sweep_name="x", series_name="series",
            sweep_values=[1], series_values=["a"], seed=0, n_trials=2,
            point_fingerprint="f", cells=[(job, [0.5, float("nan")])])
        with pytest.raises(ResultsError, match="non-finite"):
            recorder.finalize()


class TestBaselineDigests:
    def test_collects_union_of_cell_digests(self, tmp_path):
        store = ResultsStore(tmp_path)
        a, b = tiny_record(name="a"), tiny_record(name="b", seed=9)
        store.save(a)
        store.save(b)
        assert baseline_digests(tmp_path) == a.cell_digests() | b.cell_digests()

    def test_corrupt_baseline_raises_not_skips(self, tmp_path):
        # Silently skipping a corrupt baseline would let prune delete
        # exactly the cells it was pinning.
        ResultsStore(tmp_path).save(tiny_record())
        (tmp_path / "bad.json").write_text("{nope")
        with pytest.raises(ResultsError):
            baseline_digests(tmp_path)

    def test_empty_directory_is_empty_set(self, tmp_path):
        assert baseline_digests(tmp_path) == set()
