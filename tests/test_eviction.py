"""Cell-store eviction: LRU bounds that never touch baseline pins.

The multi-machine cell-store policy (``docs/engine.md``, "Networked
fleet"): a long-lived fleet worker's cache is bounded by
:class:`~repro.evaluation.EvictionPolicy` — size (cells/bytes) and age
limits applied oldest-first over the sharded layout — while digests
pinned by committed baseline records are never evicted, reusing the
same keep-set logic as ``cache prune``.
"""

import os
import time

import pytest

from repro.evaluation import EvictionPolicy, ResultCache, build_jobs


def _jobs(n, n_trials=3):
    """``n`` distinct digest-keyed jobs from a real grid."""
    jobs = build_jobs("x", list(range(n)), "series", ["s"],
                      n_trials=n_trials, seed=0)
    assert len(jobs) == n
    return jobs


def _fill(cache, jobs, start=1_000_000.0, step=10.0):
    """Write one cell per job with strictly increasing mtimes."""
    for index, job in enumerate(jobs):
        cache.put(job, [float(index)] * job.n_trials)
        path = cache._path(job.digest)
        stamp = start + index * step
        os.utime(path, (stamp, stamp))


def _stems(cache):
    return {path.stem for path in cache.iter_cells()}


class TestEvictionPolicy:
    def test_bounds_must_be_positive(self):
        with pytest.raises(ValueError):
            EvictionPolicy(max_cells=0)
        with pytest.raises(ValueError):
            EvictionPolicy(max_bytes=0)
        with pytest.raises(ValueError):
            EvictionPolicy(max_age_seconds=0.0)

    def test_unbounded_policy_is_a_no_op(self, tmp_path):
        cache = ResultCache(tmp_path, eviction=EvictionPolicy())
        jobs = _jobs(4)
        for job in jobs:
            cache.put(job, [1.0] * job.n_trials)
        assert cache.evict() == []
        assert len(_stems(cache)) == 4
        assert cache.evicted == 0


class TestLruEviction:
    def test_max_cells_drops_the_oldest_first(self, tmp_path):
        jobs = _jobs(6)
        cache = ResultCache(tmp_path, eviction=EvictionPolicy(max_cells=6))
        _fill(cache, jobs)
        cache.eviction = EvictionPolicy(max_cells=3)
        victims = cache.evict()
        assert {v.stem for v in victims} == {j.digest for j in jobs[:3]}
        assert _stems(cache) == {j.digest for j in jobs[3:]}
        assert cache.evicted == 3

    def test_put_keeps_the_cache_within_the_bound(self, tmp_path):
        jobs = _jobs(8)
        cache = ResultCache(tmp_path, eviction=EvictionPolicy(max_cells=3))
        for job in jobs:
            cache.put(job, [0.0] * job.n_trials)
            assert len(_stems(cache)) <= 3
        # The most recent writes survive.
        assert jobs[-1].digest in _stems(cache)

    def test_get_hit_refreshes_recency(self, tmp_path):
        jobs = _jobs(4)
        cache = ResultCache(tmp_path, eviction=EvictionPolicy(max_cells=4))
        _fill(cache, jobs)
        # Touch the oldest cell: it becomes the youngest.
        assert cache.get(jobs[0]) == [0.0] * jobs[0].n_trials
        cache.eviction = EvictionPolicy(max_cells=2)
        cache.evict()
        survivors = _stems(cache)
        assert jobs[0].digest in survivors
        assert jobs[1].digest not in survivors

    def test_max_bytes_bound(self, tmp_path):
        jobs = _jobs(5)
        cache = ResultCache(tmp_path, eviction=EvictionPolicy(max_cells=5))
        _fill(cache, jobs)
        sizes = {p.stem: p.stat().st_size for p in cache.iter_cells()}
        budget = sum(sizes.values()) - 1  # one byte short of everything
        cache.eviction = EvictionPolicy(max_bytes=budget)
        victims = cache.evict()
        # Exactly the oldest cell goes: that already frees enough.
        assert [v.stem for v in victims] == [jobs[0].digest]

    def test_max_age_drops_stale_cells_regardless_of_size(self, tmp_path):
        jobs = _jobs(4)
        cache = ResultCache(tmp_path)
        now = time.time()
        _fill(cache, jobs, start=now - 10_000.0, step=5_000.0)
        cache.eviction = EvictionPolicy(max_age_seconds=3600.0)
        # jobs[0] at now-10000 and jobs[1] at now-5000 are stale;
        # jobs[2] (now) and jobs[3] (now+5000) are fresh.
        victims = cache.evict(now=now)
        assert {v.stem for v in victims} == {jobs[0].digest, jobs[1].digest}

    def test_legacy_flat_cells_participate(self, tmp_path):
        jobs = _jobs(3)
        cache = ResultCache(tmp_path, eviction=EvictionPolicy(max_cells=3))
        _fill(cache, jobs[:2], start=2_000_000.0)
        # A legacy flat-layout cell, older than everything sharded.
        legacy = tmp_path / f"{jobs[2].digest}.json"
        legacy.write_text("[1.0, 1.0, 1.0]")
        os.utime(legacy, (1_000_000.0, 1_000_000.0))
        cache.eviction = EvictionPolicy(max_cells=2)
        victims = cache.evict()
        assert [v.stem for v in victims] == [jobs[2].digest]
        assert not legacy.exists()


class TestBaselinePins:
    def test_pinned_cells_are_never_evicted(self, tmp_path):
        jobs = _jobs(6)
        pins = {jobs[0].digest, jobs[1].digest}  # the two oldest
        cache = ResultCache(tmp_path, eviction=EvictionPolicy(max_cells=6),
                            pinned=pins)
        _fill(cache, jobs)
        cache.eviction = EvictionPolicy(max_cells=3)
        victims = cache.evict()
        # The three oldest *unpinned* cells go instead.
        assert {v.stem for v in victims} == {j.digest for j in jobs[2:5]}
        assert pins <= _stems(cache)

    def test_all_pinned_cache_may_exceed_its_bounds(self, tmp_path):
        jobs = _jobs(4)
        cache = ResultCache(tmp_path, eviction=EvictionPolicy(max_cells=1),
                            pinned={j.digest for j in jobs})
        _fill(cache, jobs)
        assert cache.evict() == []
        assert len(_stems(cache)) == 4

    def test_age_bound_spares_pinned_cells(self, tmp_path):
        jobs = _jobs(3)
        now = time.time()
        cache = ResultCache(tmp_path, pinned={jobs[0].digest})
        _fill(cache, jobs, start=now - 10_000.0, step=1.0)
        cache.eviction = EvictionPolicy(max_age_seconds=60.0)
        victims = cache.evict(now=now)
        assert {v.stem for v in victims} == {jobs[1].digest, jobs[2].digest}
        assert jobs[0].digest in _stems(cache)
