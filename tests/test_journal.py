"""The broker write-ahead journal: replay parity, torn tails, compaction.

The contract under test is the crash-safety tentpole: every broker
mutation is journalled before it is applied, so
:func:`~repro.fleet.journal.replay_journal` must rebuild a byte-lossy
broker *exactly* — queue order, lease ids, attempt counts, backoff
holds, counters, dead letters.  ``InProcessBroker.snapshot()`` equality
is the oracle throughout.

Three layers:

* **Property**: randomized op soups (leases, heartbeats, completions,
  explicit failures, expiry sweeps, duplicate deliveries — the fault
  harness's whole vocabulary) replay to snapshot-identical brokers.
* **Crash-at-every-record**: the journal truncated at every record
  boundary (and mid-record) replays to exactly the state after the
  surviving prefix — a torn tail is dropped, never guessed at — while
  corruption *before* intact records refuses to replay at all.
* **Mechanics**: write-ahead ordering (no record for no-op or raising
  calls), reopen-resume, ``reset`` compaction, fsync policy and
  version validation.
"""

import json
import random

import pytest

from repro.fleet import (
    BackoffPolicy,
    InProcessBroker,
    Journal,
    JournalError,
    read_journal,
    replay_journal,
)
from repro.fleet.journal import JOURNAL_VERSION, apply_record


def _journalled_broker(path, **config):
    """A fresh broker logging to ``path`` (config record written)."""
    journal = Journal(path, fsync="never")
    broker = InProcessBroker(journal=journal, **config)
    journal.reset(lease_timeout=broker.lease_timeout,
                  max_attempts=broker.max_attempts, backoff=broker.backoff)
    return broker, journal


def _random_workout(path, seed):
    """Drive a journalled broker through a seeded random op soup."""
    rng = random.Random(seed)
    broker, journal = _journalled_broker(
        path, lease_timeout=5.0, max_attempts=3,
        backoff=BackoffPolicy(base=0.5, cap=4.0, seed=seed))
    now = 0.0
    leases = []
    for step in range(rng.randrange(40, 120)):
        now += rng.random() * 3.0
        op = rng.choice(("enqueue", "lease", "duplicate", "heartbeat",
                         "complete", "fail", "expire"))
        if op == "enqueue":
            broker.enqueue(f"cell-{rng.randrange(20)}",
                           payload=("point", step))
        elif op == "lease":
            lease = broker.lease(now)
            if lease is not None:
                leases.append(lease)
        elif op == "duplicate" and leases:
            twin = broker.duplicate_lease(rng.choice(leases).key, now)
            if twin is not None:
                leases.append(twin)
        elif op == "heartbeat" and leases:
            broker.heartbeat(rng.choice(leases).lease_id, now)
        elif op == "complete" and leases:
            # Sometimes a live lease, sometimes a long-settled one — the
            # duplicate/late absorption paths must journal too.
            broker.complete(rng.choice(leases).lease_id, now,
                            values=[float(step)], elapsed=0.125)
        elif op == "fail" and leases:
            broker.fail(rng.choice(leases).lease_id, now, "injected")
        elif op == "expire":
            broker.expire(now)
    journal.close()
    return broker


def _scripted_journal(path):
    """A small deterministic journal exercising every mutation kind."""
    broker, journal = _journalled_broker(
        path, lease_timeout=2.0, max_attempts=2,
        backoff=BackoffPolicy(base=0.25, cap=1.0))
    broker.enqueue("alpha", payload=("pt", 1))
    broker.enqueue("beta")
    first = broker.lease(1.0)
    broker.heartbeat(first.lease_id, 1.5)
    twin = broker.duplicate_lease("alpha", 1.6)
    second = broker.lease(2.0)
    broker.complete(first.lease_id, 2.5, values=[1.0, 2.0], elapsed=0.1)
    broker.complete(twin.lease_id, 2.6, values=[1.0, 2.0], elapsed=0.1)
    broker.fail(second.lease_id, 3.0, "boom")       # attempt 1 of 2
    retry = broker.lease(10.0)                      # past the backoff hold
    broker.expire(100.0)                            # exhausts beta -> dead
    assert retry is not None and broker.counters["dead"] == 1
    journal.close()
    return broker


class TestReplayParity:
    def test_randomized_op_soups_replay_bit_for_bit(self, tmp_path):
        for seed in range(8):
            path = tmp_path / f"soup-{seed}.wal"
            live = _random_workout(path, seed)
            replayed = replay_journal(path)
            assert replayed.snapshot() == live.snapshot(), f"seed {seed}"
            assert replayed.counters == live.counters
            assert replayed.replayed > 0
            assert live.replayed == 0  # only rebuilt brokers report it

    def test_replayed_payloads_round_trip(self, tmp_path):
        path = tmp_path / "payload.wal"
        broker, journal = _journalled_broker(path)
        broker.enqueue("k", payload=("point", {"nested": [1.5, None]}))
        journal.close()
        lease = replay_journal(path).lease(0.0)
        assert lease.payload == ("point", {"nested": [1.5, None]})

    def test_reopened_journal_resumes_appending(self, tmp_path):
        """Stop, reopen, mutate more: the journal covers both lives."""
        path = tmp_path / "resume.wal"
        broker, journal = _journalled_broker(path, lease_timeout=2.0)
        broker.enqueue("early")
        lease = broker.lease(1.0)
        journal.close()
        # "Restart": replay, then attach a reopened journal and go on.
        resumed = replay_journal(path)
        resumed.journal = Journal(path, fsync="never")
        resumed.complete(lease.lease_id, 2.0, values=[9.0], elapsed=0.5)
        resumed.enqueue("late")
        resumed.journal.close()
        final = replay_journal(path)
        assert final.snapshot() == resumed.snapshot()
        assert final.result("early") == ([9.0], 0.5)
        assert final.state("late") == "queued"


class TestCrashTruncation:
    def test_crash_at_every_record_boundary_and_mid_record(self, tmp_path):
        path = tmp_path / "scripted.wal"
        _scripted_journal(path)
        lines = path.read_bytes().splitlines(keepends=True)
        config, ops = read_journal(path)
        assert len(lines) == len(ops) + 1  # config + one line per op
        # The expected state after each surviving prefix, rebuilt
        # incrementally with the same apply path replay uses.
        reference = InProcessBroker(lease_timeout=config["lease_timeout"],
                                    max_attempts=config["max_attempts"],
                                    backoff=BackoffPolicy(**config["backoff"]))
        expected = [reference.snapshot()]
        for op, args in ops:
            apply_record(reference, op, args)
            expected.append(reference.snapshot())
        for survivors in range(1, len(lines) + 1):
            crash = tmp_path / f"crash-{survivors}.wal"
            prefix = b"".join(lines[:survivors])
            # Clean cut at the record boundary.
            crash.write_bytes(prefix)
            assert replay_journal(crash).snapshot() == expected[survivors - 1]
            # Torn cut partway through the next record: the partial
            # final record must be dropped, not half-applied.
            if survivors < len(lines):
                torn = prefix + lines[survivors][:len(lines[survivors]) // 2]
                crash.write_bytes(torn)
                assert (replay_journal(crash).snapshot()
                        == expected[survivors - 1])

    def test_opening_truncates_the_torn_tail(self, tmp_path):
        path = tmp_path / "torn.wal"
        _scripted_journal(path)
        raw = path.read_bytes()
        path.write_bytes(raw[:-7])  # mid-record crash
        journal = Journal(path, fsync="never")
        journal.close()
        clean = path.read_bytes()
        assert raw.startswith(clean) and clean.endswith(b"\n")
        assert len(clean) < len(raw)

    def test_mid_file_corruption_refuses_to_replay(self, tmp_path):
        path = tmp_path / "holed.wal"
        _scripted_journal(path)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[2] = b"}garbage{\n"
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalError, match="mid-file"):
            replay_journal(path)
        with pytest.raises(JournalError, match="mid-file"):
            Journal(path, fsync="never")

    def test_a_journal_of_only_torn_bytes_has_no_records(self, tmp_path):
        path = tmp_path / "stub.wal"
        path.write_bytes(b'{"op": "conf')
        with pytest.raises(JournalError, match="no intact records"):
            read_journal(path)
        journal = Journal(path, fsync="never")  # recovery truncates it
        assert journal.records_on_disk == 0
        journal.close()


class TestWriteAheadDiscipline:
    def test_no_op_calls_leave_no_record(self, tmp_path):
        path = tmp_path / "noop.wal"
        broker, journal = _journalled_broker(path)
        broker.enqueue("only")
        written = journal.appended
        assert broker.enqueue("only") is False        # duplicate key
        assert broker.lease(-100.0) is None           # nothing eligible yet?
        assert broker.duplicate_lease("ghost", 0.0) is None
        assert broker.heartbeat(987654, 0.0) is False  # never issued
        assert broker.expire(0.0) == []               # nothing to reap
        assert journal.appended == written
        with pytest.raises(KeyError):
            broker.complete(987654, 0.0)              # raising call
        with pytest.raises(KeyError):
            broker.fail(987654, 0.0)
        assert journal.appended == written
        journal.close()

    def test_unjournalled_broker_behaves_identically(self, tmp_path):
        """The hook is optional: journal=None costs and changes nothing."""
        path = tmp_path / "hooked.wal"
        journalled = _scripted_journal(path)
        bare = InProcessBroker(lease_timeout=2.0, max_attempts=2,
                               backoff=BackoffPolicy(base=0.25, cap=1.0))
        bare.enqueue("alpha", payload=("pt", 1))
        bare.enqueue("beta")
        first = bare.lease(1.0)
        bare.heartbeat(first.lease_id, 1.5)
        twin = bare.duplicate_lease("alpha", 1.6)
        second = bare.lease(2.0)
        bare.complete(first.lease_id, 2.5, values=[1.0, 2.0], elapsed=0.1)
        bare.complete(twin.lease_id, 2.6, values=[1.0, 2.0], elapsed=0.1)
        bare.fail(second.lease_id, 3.0, "boom")
        bare.lease(10.0)
        bare.expire(100.0)
        assert bare.snapshot() == journalled.snapshot()


class TestCompactionAndValidation:
    def test_reset_compacts_to_a_single_config_record(self, tmp_path):
        path = tmp_path / "compact.wal"
        broker, journal = _journalled_broker(path)
        for index in range(10):
            broker.enqueue(f"cell-{index}")
        assert journal.records_on_disk == 11
        journal.reset(lease_timeout=9.0, max_attempts=5,
                      backoff=BackoffPolicy(seed=42))
        assert journal.records_on_disk == 1
        journal.close()
        config, ops = read_journal(path)
        assert ops == []
        assert config["lease_timeout"] == 9.0
        assert config["backoff"]["seed"] == 42
        fresh = replay_journal(path)
        assert fresh.outstanding() == 0 and fresh.max_attempts == 5

    def test_fsync_policy_is_validated(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            Journal(tmp_path / "bad.wal", fsync="sometimes")

    def test_first_record_must_be_config(self, tmp_path):
        path = tmp_path / "headless.wal"
        path.write_text(json.dumps(
            {"op": "enqueue", "args": {"key": "k"}}) + "\n")
        with pytest.raises(JournalError, match="config"):
            read_journal(path)

    def test_future_journal_version_refuses(self, tmp_path):
        path = tmp_path / "future.wal"
        path.write_text(json.dumps(
            {"op": "config",
             "args": {"journal_version": JOURNAL_VERSION + 1,
                      "lease_timeout": 5.0, "max_attempts": 3}}) + "\n")
        with pytest.raises(JournalError, match="journal_version"):
            read_journal(path)

    def test_unknown_op_refuses_to_replay(self, tmp_path):
        path = tmp_path / "odd.wal"
        broker, journal = _journalled_broker(path)
        journal.append("teleport", {"now": 1.0})
        journal.close()
        with pytest.raises(JournalError, match="unknown journal op"):
            replay_journal(path)

    def test_always_fsync_appends_and_replays(self, tmp_path):
        path = tmp_path / "durable.wal"
        journal = Journal(path, fsync="always")
        broker = InProcessBroker(journal=journal)
        journal.reset(lease_timeout=broker.lease_timeout,
                      max_attempts=broker.max_attempts,
                      backoff=broker.backoff)
        broker.enqueue("durable-cell")
        journal.close()
        assert replay_journal(path).state("durable-cell") == "queued"
