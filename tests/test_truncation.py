"""Tests for entry-wise shrinkage and clipping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.estimators import (
    clip_l2,
    lasso_threshold,
    shrink,
    shrink_dataset,
    shrinkage_bias_bound,
    sparse_regression_threshold,
)


class TestShrink:
    def test_caps_magnitude(self):
        out = shrink(np.array([-5.0, -0.5, 0.0, 0.5, 5.0]), 1.0)
        np.testing.assert_allclose(out, [-1.0, -0.5, 0.0, 0.5, 1.0])

    def test_preserves_sign(self):
        x = np.array([-3.0, 3.0])
        out = shrink(x, 2.0)
        np.testing.assert_array_equal(np.sign(out), np.sign(x))

    def test_matrix_input(self):
        out = shrink(np.full((2, 3), 10.0), 4.0)
        assert out.shape == (2, 3)
        assert np.all(out == 4.0)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            shrink(np.ones(3), 0.0)

    @given(hnp.arrays(np.float64, 10,
                      elements=st.floats(-1e6, 1e6)),
           st.floats(min_value=1e-3, max_value=1e3))
    @settings(max_examples=50)
    def test_idempotent_and_bounded(self, x, k):
        once = shrink(x, k)
        assert np.all(np.abs(once) <= k + 1e-12)
        np.testing.assert_allclose(shrink(once, k), once)

    @given(hnp.arrays(np.float64, 10, elements=st.floats(-100, 100)),
           st.floats(min_value=0.1, max_value=10))
    @settings(max_examples=50)
    def test_non_expansive(self, x, k):
        """Shrinkage never increases any entry's magnitude."""
        assert np.all(np.abs(shrink(x, k)) <= np.abs(x) + 1e-12)

    def test_no_op_above_all_entries(self):
        x = np.array([0.5, -0.25])
        np.testing.assert_array_equal(shrink(x, 10.0), x)


class TestShrinkDataset:
    def test_shrinks_both(self):
        X = np.full((3, 2), 9.0)
        y = np.array([-9.0, 0.0, 9.0])
        Xs, ys = shrink_dataset(X, y, 1.0)
        assert np.all(Xs == 1.0)
        np.testing.assert_allclose(ys, [-1.0, 0.0, 1.0])


class TestThresholdSchedules:
    def test_lasso_threshold_formula(self):
        K = lasso_threshold(10_000, 1.0, 16)
        assert K == pytest.approx(10_000**0.25 / 16**0.125)

    def test_sparse_threshold_formula(self):
        K = sparse_regression_threshold(10_000, 1.0, 20, 10)
        assert K == pytest.approx((10_000 / 200) ** 0.25)

    def test_thresholds_grow_with_n(self):
        assert lasso_threshold(10**6, 1.0, 10) > lasso_threshold(10**3, 1.0, 10)
        assert (sparse_regression_threshold(10**6, 1.0, 10, 5)
                > sparse_regression_threshold(10**3, 1.0, 10, 5))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            lasso_threshold(0, 1.0, 10)
        with pytest.raises(ValueError):
            sparse_regression_threshold(100, 1.0, 0, 10)


class TestShrinkageBias:
    def test_rate(self):
        assert shrinkage_bias_bound(10.0, 4.0) == pytest.approx(0.04)

    def test_empirical_distortion_within_rate(self, rng):
        """Measured covariance distortion should be O(M/K^2)."""
        n = 60_000
        x = rng.standard_t(df=8, size=n)  # finite 4th moment
        M = float(np.mean(x**4))
        for K in (2.0, 4.0, 8.0):
            distortion = abs(np.mean(shrink(x, K) ** 2) - np.mean(x**2))
            assert distortion <= 5.0 * shrinkage_bias_bound(K, M) + 0.05


class TestClipL2:
    def test_short_vectors_unchanged(self):
        v = np.array([0.3, 0.4])
        np.testing.assert_array_equal(clip_l2(v, 1.0), v)

    def test_long_vectors_rescaled(self):
        v = np.array([3.0, 4.0])
        out = clip_l2(v, 1.0)
        assert np.linalg.norm(out) == pytest.approx(1.0)
        np.testing.assert_allclose(out, v / 5.0)

    def test_rowwise(self):
        rows = np.array([[3.0, 4.0], [0.1, 0.0]])
        out = clip_l2(rows, 1.0)
        assert np.linalg.norm(out[0]) == pytest.approx(1.0)
        np.testing.assert_array_equal(out[1], rows[1])

    def test_zero_vector_safe(self):
        np.testing.assert_array_equal(clip_l2(np.zeros(3), 1.0), np.zeros(3))

    @given(hnp.arrays(np.float64, (5, 3), elements=st.floats(-100, 100)))
    @settings(max_examples=40)
    def test_norms_bounded(self, rows):
        out = clip_l2(rows, 2.0)
        assert np.all(np.linalg.norm(out, axis=1) <= 2.0 + 1e-9)
