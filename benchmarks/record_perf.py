"""Record the engine perf suite: append-only trajectories in benchmarks/perf.

Runs each suite bench cold through the service core and snapshots the
per-cell compute wall-times the run record captured (``record.timings``
— measured inside the engine workers, honest under any executor).  Each
``benchmarks/perf/BENCH_*.json`` holds a *trajectory*: a list of
snapshots, oldest first, appended to and never rewritten, so the
committed history shows what each optimization bought.  Timings are
environment, excluded from ``run_id``/``config_digest``, so recording
never perturbs any bit-identity gate — but every snapshot carries the
bench's ``run_id``, which check_perf.py asserts against the committed
trajectory (speed must never be purchased with drift).

Regenerate deliberately, on quiet hardware::

    PYTHONPATH=src python benchmarks/record_perf.py

In CI (or anywhere the committed files must stay untouched), measure
into a scratch directory and gate with check_perf.py::

    PYTHONPATH=src python benchmarks/record_perf.py --out /tmp/perf
    PYTHONPATH=src python benchmarks/check_perf.py --fresh /tmp/perf
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from typing import Optional

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import numpy as np

from repro.service import ServiceCore

#: The perf suite: trajectory file -> catalog bench.  BENCH_engine
#: tracks the cheapest ablation (the regression gate's primary bench);
#: BENCH_lasso and BENCH_dpfw track one bench per batched solver family.
SUITE = {
    "BENCH_engine.json": "ablation_truncation_threshold",
    "BENCH_lasso.json": "fig05_lasso_lognormal",
    "BENCH_dpfw.json": "fig01_dpfw_linear",
}

PERF_DIR = Path(__file__).parent / "perf"


def measure(core: ServiceCore, bench: str) -> dict:
    """Run ``bench`` uncached and return one timing snapshot."""
    record = core.run_bench(bench).record
    assert record.timings is not None, "engine reported no cell timings"
    cells = [
        {"digest": cell.digest, "seconds": round(seconds, 6)}
        for panel, row in zip(record.panels, record.timings)
        for cell, seconds in zip(panel.cells, row)
    ]
    return {
        "bench": bench,
        "run_id": record.run_id,
        "config_digest": record.config_digest,
        "executor": record.executor,
        "n_cells": len(cells),
        "cells": cells,
        "total_seconds": round(sum(c["seconds"] for c in cells), 6),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def load_trajectory(path: Path) -> list:
    """The snapshot list at ``path``; migrates the legacy flat layout.

    The first committed baseline (PR 6) was a single flat snapshot
    object; it becomes entry 0 of the trajectory so history is
    preserved append-only.
    """
    if not path.exists():
        return []
    payload = json.loads(path.read_text())
    if isinstance(payload, dict) and "trajectory" in payload:
        return list(payload["trajectory"])
    return [payload]  # legacy flat snapshot


def write_trajectory(path: Path, bench: str, snapshots: list) -> None:
    """Write the canonical trajectory document, stable byte layout."""
    payload = {"bench": bench, "trajectory": snapshots}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")


def main(argv: Optional[list] = None) -> int:
    """Measure the suite; append to (or write fresh into) perf files."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", type=Path, default=None, metavar="DIR",
        help="write fresh single-snapshot files into DIR instead of "
             "appending to the committed trajectories")
    args = parser.parse_args(argv)
    core = ServiceCore()  # no cache: every cell computes, every cell times
    for filename, bench in SUITE.items():
        snapshot = measure(core, bench)
        if args.out is not None:
            target = args.out / filename
            write_trajectory(target, bench, [snapshot])
        else:
            target = PERF_DIR / filename
            trajectory = load_trajectory(target)
            trajectory.append(snapshot)
            write_trajectory(target, bench, trajectory)
        print(f"[perf] {target}: {bench} total={snapshot['total_seconds']}s "
              f"over {snapshot['n_cells']} cells run_id={snapshot['run_id']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
