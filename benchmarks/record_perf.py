"""Regenerate the committed engine perf baseline: BENCH_engine.json.

Runs the cheapest catalog bench cold through the service core and
snapshots the per-cell compute wall-times the run record captured
(``record.timings`` — measured inside the engine workers, honest under
any executor).  The snapshot is a *coarse* tracking artifact: timings
are environment, excluded from ``run_id``/``config_digest``, so the
baseline regenerates freely without perturbing any bit-identity gate.
Regenerate deliberately, on quiet hardware::

    PYTHONPATH=src python benchmarks/record_perf.py
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import numpy as np

from repro.service import ServiceCore

BENCH = "ablation_truncation_threshold"
TARGET = Path(__file__).parent / "perf" / "BENCH_engine.json"


def main() -> int:
    """Run the bench uncached and write the timing snapshot; 0 on success."""
    core = ServiceCore()  # no cache: every cell computes, every cell times
    run = core.run_bench(BENCH)
    record = run.record
    assert record.timings is not None, "engine reported no cell timings"
    cells = [
        {"digest": cell.digest, "seconds": round(seconds, 6)}
        for panel, row in zip(record.panels, record.timings)
        for cell, seconds in zip(panel.cells, row)
    ]
    payload = {
        "bench": BENCH,
        "run_id": record.run_id,
        "config_digest": record.config_digest,
        "executor": record.executor,
        "n_cells": len(cells),
        "cells": cells,
        "total_seconds": round(sum(c["seconds"] for c in cells), 6),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    TARGET.parent.mkdir(parents=True, exist_ok=True)
    TARGET.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"[perf] wrote {TARGET} total={payload['total_seconds']}s "
          f"over {payload['n_cells']} cells")
    return 0


if __name__ == "__main__":
    sys.exit(main())
