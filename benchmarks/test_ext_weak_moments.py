"""Extension — the conclusion's (1+v)-th moment open problem.

Compares Algorithm 1's two gradient engines on data whose gradients only
have a finite ~1.4-th moment (Pareto(1.45) features): the paper's
smoothed Catoni estimator (analysed under *second* moments) against the
shrink-then-average extension (``gradient_estimator="truncated"``),
which is the natural estimator for the weak-moment regime.  Catalog
entry: ``ext_weak_moments``.
"""

import numpy as np

from _common import FULL, assert_finite, assert_trending_down, \
    run_catalog_bench
from _scenarios import _l1_linear_data
from repro import HeavyTailedDPFW, L1Ball, SquaredLoss
from repro.experiments import bench


def test_ext_weak_moments(benchmark):
    definition = bench("ext_weak_moments", full=FULL)
    point = definition.panels[0].point
    n0 = definition.panels[0].sweep_values[0]
    data0 = _l1_linear_data(n0, point.d, point.features, point.noise,
                            np.random.default_rng(0))
    solver0 = HeavyTailedDPFW(SquaredLoss(), L1Ball(point.d), epsilon=1.0,
                              tau=point.tau, gradient_estimator="truncated",
                              moment_order=point.moment_order)
    benchmark.pedantic(
        lambda: solver0.fit(data0.features, data0.labels,
                            rng=np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    table, = run_catalog_bench("ext_weak_moments")
    assert_finite(table)
    # Both engines must remain bounded (the l1 ball caps the damage) and
    # the truncated engine must trend down with n.
    assert_trending_down({"truncated(v=0.4)": table["truncated(v=0.4)"]},
                         slack=0.4)
