"""Extension — the conclusion's (1+v)-th moment open problem.

Compares Algorithm 1's two gradient engines on data whose gradients only
have a finite ~1.4-th moment (Pareto(1.45) features): the paper's
smoothed Catoni estimator (analysed under *second* moments) against the
shrink-then-average extension (``gradient_estimator="truncated"``),
which is the natural estimator for the weak-moment regime.
"""

import numpy as np

from _common import FULL, assert_finite, assert_trending_down, emit_table, run_sweep
from _scenarios import WeakMomentsExtension, _l1_linear_data
from repro import DistributionSpec, HeavyTailedDPFW, L1Ball, SquaredLoss

D = 30
N_SWEEP = [20_000, 80_000] if FULL else [5000, 20_000]
LOSS = SquaredLoss()
# Pareto(1.45) features: E|x|^{1.4} finite, E x^2 infinite — squarely in
# the open-problem regime where Assumption 1 fails.
FEATURES = DistributionSpec("pareto", {"tail_index": 1.45})
NOISE = DistributionSpec("gaussian", {"scale": 0.1})


def test_ext_weak_moments(benchmark):
    data0 = _l1_linear_data(N_SWEEP[0], D, FEATURES, NOISE,
                            np.random.default_rng(0))
    solver0 = HeavyTailedDPFW(LOSS, L1Ball(D), epsilon=1.0, tau=3.0,
                              gradient_estimator="truncated", moment_order=1.4)
    benchmark.pedantic(
        lambda: solver0.fit(data0.features, data0.labels,
                            rng=np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    point = WeakMomentsExtension(features=FEATURES, noise=NOISE, d=D,
                                 moment_order=1.4)
    table = run_sweep(point, N_SWEEP, ["truncated(v=0.4)", "catoni"], seed=310)
    emit_table("ext_weak_moments",
               "Extension: l1 parameter error under infinite-variance "
               "features (Pareto 1.45)", "n", N_SWEEP, table)
    assert_finite(table)
    # Both engines must remain bounded (the l1 ball caps the damage) and
    # the truncated engine must trend down with n.
    assert_trending_down({"truncated(v=0.4)": table["truncated(v=0.4)"]},
                         slack=0.4)
