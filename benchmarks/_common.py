"""Shared machinery for the figure-reproduction benchmarks.

Each ``test_figXX_*`` benchmark regenerates one figure of the paper at a
laptop-scale size: it sweeps the figure's x-axis, prints the same
(x, series) rows the paper plots, appends the table to
``benchmarks/results/`` and asserts the robust qualitative shapes
(finiteness; the headline monotonicity with generous slack).

The paper's sizes (n up to 9e4 per point, 20 trials) would take hours;
``REPRO_BENCH_FULL=1`` switches to paper scale.  What each bench *is* —
panel scenarios, grids, seeds, trial counts, table titles — lives in
the named catalog (:mod:`repro.experiments.catalog`); the test files
call :func:`run_catalog_bench` and assert figure shapes on the returned
panels, and ``python -m repro run <name>`` reproduces the identical
tables from the same definitions.  See ``docs/engine.md`` for the
engine architecture and the executor/cache environment knobs.
"""

from __future__ import annotations

import os
import pickle
import warnings
from pathlib import Path
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.evaluation import format_panel_block, run_grid
from repro.results import ResultsStore
from repro.service import ServiceCore

FULL = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))

#: Trials per sweep point (the paper uses >= 20).
N_TRIALS = 10 if FULL else 3

#: Executor names the engine accepts (mirrors ``repro.cli``).
_VALID_EXECUTORS = ("serial", "thread", "process", "fleet")

#: Executor for the sweep grids: "serial" (default), "thread",
#: "process", or "fleet" (the work-queue executor of ``repro.fleet``).
#: Every figure/ablation point is a picklable scenario dataclass (see
#: ``repro.experiments.panels``), so the parallel executors fan the
#: grid cells out for real.  All four are bit-identical.  An unknown
#: value fails here, at import — not as a confusing engine error after
#: the first expensive data generation.
EXECUTOR = os.environ.get("REPRO_BENCH_EXECUTOR", "serial")
if EXECUTOR not in _VALID_EXECUTORS:
    raise ValueError(
        f"unknown REPRO_BENCH_EXECUTOR value {EXECUTOR!r}; valid options: "
        f"{', '.join(_VALID_EXECUTORS)}")

#: Optional on-disk cell cache; rerunning a bench recomputes only the
#: cells missing from this directory.  Keys include each scenario's
#: code fingerprint; ``python -m repro cache prune`` garbage-collects
#: cells no current catalog grid claims.  An unusable directory fails
#: here, at import, instead of silently running uncached.
CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE") or None
if CACHE_DIR is not None:
    try:
        Path(CACHE_DIR).mkdir(parents=True, exist_ok=True)
        _probe = Path(CACHE_DIR) / ".write-probe"
        _probe.write_text("")
        _probe.unlink()
    except OSError as exc:
        raise ValueError(
            f"REPRO_BENCH_CACHE directory {CACHE_DIR!r} is not writable "
            f"({exc}); fix or unset the variable") from exc

RESULTS_DIR = Path(__file__).parent / "results"


def run_sweep(point: Callable[[object, object, np.random.Generator], float],
              sweep_values: Sequence, series_values: Sequence,
              n_trials: int = N_TRIALS, seed: int = 0
              ) -> Dict[object, List[float]]:
    """Average ``point(series, x, rng)`` over trials for each grid cell.

    A thin wrapper over :func:`repro.evaluation.run_grid`, so the bench
    grids get the engine's stable cross-process seeding, parallel
    fan-out (``REPRO_BENCH_EXECUTOR``) and code-aware cell caching
    (``REPRO_BENCH_CACHE``) for free.  ``point`` is normally one of the
    ``repro.experiments.panels`` dataclasses — picklable, so the
    process executor genuinely fans out, and fingerprinted, so the
    engine's cache keys see its code.  An ad-hoc closure still works:
    it runs on the serial (or thread) executor, and under ``process``
    it falls back to serial with a warning rather than failing the
    bench.
    """
    result = run_grid(point, "x", sweep_values, "series", series_values,
                      n_trials=n_trials, seed=seed,
                      executor=_resolve_executor(point), cache=CACHE_DIR)
    return {series: [stat.mean for stat in result.series[series]]
            for series in series_values}


def _resolve_executor(point) -> str:
    """The env-selected executor, demoted to serial for unpicklable points."""
    if EXECUTOR == "process":
        try:
            pickle.dumps(point)
        except Exception:
            warnings.warn(f"point {point!r} is not picklable; "
                          "falling back to the serial executor")
            return "serial"
    return EXECUTOR


#: The one service core every bench in a pytest session runs through:
#: shared cell cache, shared single-flight map — exactly the tier the
#: CLI and ``python -m repro serve`` sit on, which is what makes bench,
#: CLI, and served runs bit-identical (equal ``run_id``).
CORE = ServiceCore(results_dir=RESULTS_DIR, cache=CACHE_DIR)


def run_catalog_bench(name: str) -> List[Dict[object, List[float]]]:
    """Run every panel of the named catalog bench; emit tables + record.

    The single bench entry point: grids, seeds, trial counts and titles
    come from the catalog, and execution goes through the same
    :meth:`~repro.service.ServiceCore.run_bench` the CLI and the HTTP
    server use (with the bench env knobs applied), so each panel's
    table is printed and persisted exactly as ``python -m repro run
    <name>`` writes it.  A provenance-stamped run record
    (``repro.results``) lands next to the text table —
    ``results/<stem>.json`` — identical to the CLI's, so ``python -m
    repro diff`` can compare bench and CLI runs freely.  Returns the
    panels' ``series -> mean curve`` mappings, in catalog order, for
    the caller's shape assertions.
    """
    run = CORE.run_bench(name, full=FULL, executor=EXECUTOR,
                         demote_unpicklable=True)
    for block in run.blocks:
        _emit_block(run.definition.result_stem, block)
    ResultsStore(RESULTS_DIR).save(run.record)
    return list(run.panels)


#: Result files already written this run — the first panel of a bench
#: truncates its file so a rerun never leaves stale (and possibly
#: irreproducible) tables from earlier code stacked above fresh ones;
#: later panels of the same bench append.
_WRITTEN: set = set()


def _emit_block(name: str, text: str) -> str:
    """Print a formatted table block and persist it under results/."""
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    mode = "a" if name in _WRITTEN else "w"
    _WRITTEN.add(name)
    with open(RESULTS_DIR / f"{name}.txt", mode) as fh:
        fh.write(text)
    return text


def emit_table(name: str, title: str, x_name: str, x_values: Sequence,
               series: Dict[object, List[float]]) -> str:
    """Print the figure table and persist it under benchmarks/results/."""
    return _emit_block(name, format_panel_block(title, x_name, x_values,
                                                series))


def assert_finite(series: Dict[object, List[float]]) -> None:
    """Every swept value must be a finite number."""
    for values in series.values():
        assert np.all(np.isfinite(values)), f"non-finite bench values: {values}"


def assert_trending_down(series: Dict[object, List[float]],
                         slack: float = 0.15, floor: float = 0.05) -> None:
    """End point must not exceed start point by more than the allowance.

    DP runs are noisy at bench scale; we assert the robust end-to-end
    trend rather than per-step monotonicity.  The allowance is
    ``slack * max(|start|, floor)`` so the check stays meaningful when
    values hover near (or below) zero.
    """
    for label, values in series.items():
        allowance = slack * max(abs(values[0]), floor)
        assert values[-1] <= values[0] + allowance + 1e-9, (
            f"series {label} trends up: {values}"
        )


def assert_dimension_insensitive(series: Dict[object, List[float]],
                                 factor: float = 4.0) -> None:
    """Across series (dimensions), mean errors must stay within ``factor``.

    This is the paper's headline log-d claim: d=200 vs d=800 curves
    nearly coincide.  A poly(d) method would blow past any constant
    factor.
    """
    means = [float(np.mean(v)) for v in series.values()]
    lo = max(min(means), 1e-6)
    assert max(means) <= factor * lo, f"dimension sensitivity too strong: {means}"
