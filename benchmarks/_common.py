"""Shared machinery for the figure-reproduction benchmarks.

Each ``test_figXX_*`` benchmark regenerates one figure of the paper at a
laptop-scale size: it sweeps the figure's x-axis, prints the same
(x, series) rows the paper plots, appends the table to
``benchmarks/results/`` and asserts the robust qualitative shapes
(finiteness; the headline monotonicity with generous slack).

The paper's sizes (n up to 9e4 per point, 20 trials) would take hours;
the ``SCALE`` constants below keep the full bench suite in minutes while
preserving every trend.  Set the environment variable
``REPRO_BENCH_FULL=1`` to run closer to paper scale.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.evaluation import format_series_table, shape_summary
from repro.rng import spawn_rngs

FULL = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))

#: Trials per sweep point (the paper uses >= 20).
N_TRIALS = 10 if FULL else 3

RESULTS_DIR = Path(__file__).parent / "results"


def run_sweep(point: Callable[[object, object, np.random.Generator], float],
              sweep_values: Sequence, series_values: Sequence,
              n_trials: int = N_TRIALS, seed: int = 0
              ) -> Dict[object, List[float]]:
    """Average ``point(series, x, rng)`` over trials for each grid cell."""
    out: Dict[object, List[float]] = {}
    for si, series in enumerate(series_values):
        curve = []
        for xi, x in enumerate(sweep_values):
            rngs = spawn_rngs(np.random.SeedSequence(seed, spawn_key=(si, xi)),
                              n_trials)
            curve.append(float(np.mean([point(series, x, rng) for rng in rngs])))
        out[series] = curve
    return out


def emit_table(name: str, title: str, x_name: str, x_values: Sequence,
               series: Dict[object, List[float]]) -> str:
    """Print the figure table and persist it under benchmarks/results/."""
    labelled = {f"{k}": v for k, v in series.items()}
    table = format_series_table(x_name, list(x_values), labelled, title=title)
    trends = "\n".join(
        f"  series {label}: {shape_summary(list(x_values), values)}"
        for label, values in labelled.items()
    )
    text = f"\n{table}\n{trends}\n"
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / f"{name}.txt", "a") as fh:
        fh.write(text)
    return text


def assert_finite(series: Dict[object, List[float]]) -> None:
    """Every swept value must be a finite number."""
    for values in series.values():
        assert np.all(np.isfinite(values)), f"non-finite bench values: {values}"


def assert_trending_down(series: Dict[object, List[float]],
                         slack: float = 0.15, floor: float = 0.05) -> None:
    """End point must not exceed start point by more than the allowance.

    DP runs are noisy at bench scale; we assert the robust end-to-end
    trend rather than per-step monotonicity.  The allowance is
    ``slack * max(|start|, floor)`` so the check stays meaningful when
    values hover near (or below) zero.
    """
    for label, values in series.items():
        allowance = slack * max(abs(values[0]), floor)
        assert values[-1] <= values[0] + allowance + 1e-9, (
            f"series {label} trends up: {values}"
        )


def assert_dimension_insensitive(series: Dict[object, List[float]],
                                 factor: float = 4.0) -> None:
    """Across series (dimensions), mean errors must stay within ``factor``.

    This is the paper's headline log-d claim: d=200 vs d=800 curves
    nearly coincide.  A poly(d) method would blow past any constant
    factor.
    """
    means = [float(np.mean(v)) for v in series.values()]
    lo = max(min(means), 1e-6)
    assert max(means) <= factor * lo, f"dimension sensitivity too strong: {means}"
