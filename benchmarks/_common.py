"""Shared machinery for the figure-reproduction benchmarks.

Each ``test_figXX_*`` benchmark regenerates one figure of the paper at a
laptop-scale size: it sweeps the figure's x-axis, prints the same
(x, series) rows the paper plots, appends the table to
``benchmarks/results/`` and asserts the robust qualitative shapes
(finiteness; the headline monotonicity with generous slack).

The paper's sizes (n up to 9e4 per point, 20 trials) would take hours;
the ``SCALE`` constants below keep the full bench suite in minutes while
preserving every trend.  Set the environment variable
``REPRO_BENCH_FULL=1`` to run closer to paper scale.

Each bench's point function lives in ``_scenarios.py`` as a picklable
scenario dataclass; the test files only assemble scenarios, run
:func:`run_sweep`, and assert figure shapes.  See ``docs/engine.md``
for the engine architecture and the executor/cache environment knobs.
"""

from __future__ import annotations

import os
import pickle
import warnings
from pathlib import Path
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.evaluation import format_series_table, run_grid, shape_summary

FULL = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))

#: Trials per sweep point (the paper uses >= 20).
N_TRIALS = 10 if FULL else 3

#: Executor for the sweep grids: "serial" (default), "thread", or
#: "process".  Every figure/ablation point is a picklable scenario
#: dataclass (see ``_scenarios.py``), so both parallel executors fan the
#: grid cells out for real — "process" across worker processes,
#: "thread" across an in-process pool for the BLAS-dominated points
#: that release the GIL.  All three are bit-identical.
EXECUTOR = os.environ.get("REPRO_BENCH_EXECUTOR", "serial")

#: Optional on-disk cell cache; rerunning a bench recomputes only the
#: cells missing from this directory.  Keys include each scenario's
#: code fingerprint, so editing a point's code (or its fields)
#: invalidates exactly the cells it produced.
CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE") or None

RESULTS_DIR = Path(__file__).parent / "results"


def run_sweep(point: Callable[[object, object, np.random.Generator], float],
              sweep_values: Sequence, series_values: Sequence,
              n_trials: int = N_TRIALS, seed: int = 0
              ) -> Dict[object, List[float]]:
    """Average ``point(series, x, rng)`` over trials for each grid cell.

    A thin wrapper over :func:`repro.evaluation.run_grid`, so the bench
    grids get the engine's stable cross-process seeding, parallel
    fan-out (``REPRO_BENCH_EXECUTOR``) and code-aware cell caching
    (``REPRO_BENCH_CACHE``) for free.  ``point`` is normally one of the
    ``_scenarios.py`` dataclasses — picklable, so the process executor
    genuinely fans out, and fingerprinted, so the engine's cache keys
    see its code.  An ad-hoc closure still works: it runs on the serial
    (or thread) executor, and under ``process`` it falls back to serial
    with a warning rather than failing the bench.
    """
    executor = EXECUTOR
    if executor == "process":
        try:
            pickle.dumps(point)
        except Exception:
            warnings.warn(f"point {point!r} is not picklable; "
                          "falling back to the serial executor")
            executor = "serial"
    result = run_grid(point, "x", sweep_values, "series", series_values,
                      n_trials=n_trials, seed=seed, executor=executor,
                      cache=CACHE_DIR)
    return {series: [stat.mean for stat in result.series[series]]
            for series in series_values}


#: Result files already written this run — the first panel of a bench
#: truncates its file so a rerun never leaves stale (and possibly
#: irreproducible) tables from earlier code stacked above fresh ones;
#: later panels of the same bench append.
_WRITTEN: set = set()


def emit_table(name: str, title: str, x_name: str, x_values: Sequence,
               series: Dict[object, List[float]]) -> str:
    """Print the figure table and persist it under benchmarks/results/."""
    labelled = {f"{k}": v for k, v in series.items()}
    table = format_series_table(x_name, list(x_values), labelled, title=title)
    trends = "\n".join(
        f"  series {label}: {shape_summary(list(x_values), values)}"
        for label, values in labelled.items()
    )
    text = f"\n{table}\n{trends}\n"
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    mode = "a" if name in _WRITTEN else "w"
    _WRITTEN.add(name)
    with open(RESULTS_DIR / f"{name}.txt", mode) as fh:
        fh.write(text)
    return text


def assert_finite(series: Dict[object, List[float]]) -> None:
    """Every swept value must be a finite number."""
    for values in series.values():
        assert np.all(np.isfinite(values)), f"non-finite bench values: {values}"


def assert_trending_down(series: Dict[object, List[float]],
                         slack: float = 0.15, floor: float = 0.05) -> None:
    """End point must not exceed start point by more than the allowance.

    DP runs are noisy at bench scale; we assert the robust end-to-end
    trend rather than per-step monotonicity.  The allowance is
    ``slack * max(|start|, floor)`` so the check stays meaningful when
    values hover near (or below) zero.
    """
    for label, values in series.items():
        allowance = slack * max(abs(values[0]), floor)
        assert values[-1] <= values[0] + allowance + 1e-9, (
            f"series {label} trends up: {values}"
        )


def assert_dimension_insensitive(series: Dict[object, List[float]],
                                 factor: float = 4.0) -> None:
    """Across series (dimensions), mean errors must stay within ``factor``.

    This is the paper's headline log-d claim: d=200 vs d=800 curves
    nearly coincide.  A poly(d) method would blow past any constant
    factor.
    """
    means = [float(np.mean(v)) for v in series.values()]
    lo = max(min(means), 1e-6)
    assert max(means) <= factor * lo, f"dimension sensitivity too strong: {means}"
