"""Shared machinery for the figure-reproduction benchmarks.

Each ``test_figXX_*`` benchmark regenerates one figure of the paper at a
laptop-scale size: it sweeps the figure's x-axis, prints the same
(x, series) rows the paper plots, appends the table to
``benchmarks/results/`` and asserts the robust qualitative shapes
(finiteness; the headline monotonicity with generous slack).

The paper's sizes (n up to 9e4 per point, 20 trials) would take hours;
the ``SCALE`` constants below keep the full bench suite in minutes while
preserving every trend.  Set the environment variable
``REPRO_BENCH_FULL=1`` to run closer to paper scale.
"""

from __future__ import annotations

import os
import pickle
import warnings
from pathlib import Path
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.evaluation import format_series_table, run_grid, shape_summary
from repro.evaluation.engine import canonical_token, stable_repr

FULL = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))

#: Trials per sweep point (the paper uses >= 20).
N_TRIALS = 10 if FULL else 3

#: Executor for the sweep grids: "serial" (default) or "process".  The
#: figure points below are closures, which the process executor cannot
#: pickle — "process" is only usable with module-level point functions.
EXECUTOR = os.environ.get("REPRO_BENCH_EXECUTOR", "serial")

#: Optional on-disk cell cache; rerunning a bench recomputes only the
#: cells missing from this directory.
CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE") or None

RESULTS_DIR = Path(__file__).parent / "results"


def _describe_value(value, depth: int = 0, seen=None) -> str:
    """Stable description of a closure cell for cache keying.

    Captured functions are described by qualname *plus a recursive
    description of their own closures* — panels built by a shared
    factory often differ only through state buried one closure level
    down (e.g. a `make` helper capturing the figure's DistributionSpec).
    Memory addresses are stripped from reprs so descriptions are stable
    across processes.  Depth/cycle limits keep the walk bounded.  Best
    effort, not a proof: state that reprs don't expose (default-repr
    objects, exotic callables) is invisible here, so panels relying on
    such state must pass distinct root seeds — as every current bench
    does — or disable the shared cache.
    """
    if seen is None:
        seen = set()
    if depth > 4 or id(value) in seen:
        return "<deep>"
    if callable(value) and hasattr(value, "__qualname__"):
        seen.add(id(value))
        cells = getattr(value, "__closure__", None) or ()
        parts = [_describe_value(c.cell_contents, depth + 1, seen)
                 for c in cells]
        # A bound method's state lives on __self__, not in a closure.
        bound_self = getattr(value, "__self__", None)
        if bound_self is not None:
            parts.append("self=" + _describe_value(bound_self, depth + 1, seen))
        return (f"fn:{getattr(value, '__module__', '')}"
                f".{value.__qualname__}({';'.join(parts)})")
    # Leaves reuse the engine's canonical encoding (process-stable, sorts
    # sets, digests arrays); its strict rejection of default-repr objects
    # falls back to a stripped repr here — tags only gate cache *hits*.
    try:
        return canonical_token(value)
    except Exception:
        try:
            return stable_repr(value)
        except Exception:
            return "<unrepresentable>"


def _cache_tag(point) -> str:
    """Cache tag for a point function: identity plus captured state.

    The qualname alone is not enough — several benches build their
    points from a shared factory (same ``<locals>.point`` qualname) and
    differ only in closed-over values, possibly nested — so the tag is
    the recursive closure description.
    """
    return _describe_value(point)


def run_sweep(point: Callable[[object, object, np.random.Generator], float],
              sweep_values: Sequence, series_values: Sequence,
              n_trials: int = N_TRIALS, seed: int = 0
              ) -> Dict[object, List[float]]:
    """Average ``point(series, x, rng)`` over trials for each grid cell.

    A thin wrapper over :func:`repro.evaluation.run_grid`, so the bench
    grids get the engine's stable cross-process seeding, optional
    parallel fan-out (``REPRO_BENCH_EXECUTOR``) and cell caching
    (``REPRO_BENCH_CACHE``) for free.  Closure-based points (all the
    current figure panels) cannot cross a process boundary; they fall
    back to the serial executor with a warning rather than failing the
    bench.
    """
    executor = EXECUTOR
    if executor == "process":
        try:
            pickle.dumps(point)
        except Exception:
            warnings.warn(f"point {point!r} is not picklable; "
                          "falling back to the serial executor")
            executor = "serial"
    tag = _cache_tag(point)
    result = run_grid(point, "x", sweep_values, "series", series_values,
                      n_trials=n_trials, seed=seed, executor=executor,
                      cache=CACHE_DIR, cache_tag=tag)
    return {series: [stat.mean for stat in result.series[series]]
            for series in series_values}


#: Result files already written this run — the first panel of a bench
#: truncates its file so a rerun never leaves stale (and possibly
#: irreproducible) tables from earlier code stacked above fresh ones;
#: later panels of the same bench append.
_WRITTEN: set = set()


def emit_table(name: str, title: str, x_name: str, x_values: Sequence,
               series: Dict[object, List[float]]) -> str:
    """Print the figure table and persist it under benchmarks/results/."""
    labelled = {f"{k}": v for k, v in series.items()}
    table = format_series_table(x_name, list(x_values), labelled, title=title)
    trends = "\n".join(
        f"  series {label}: {shape_summary(list(x_values), values)}"
        for label, values in labelled.items()
    )
    text = f"\n{table}\n{trends}\n"
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    mode = "a" if name in _WRITTEN else "w"
    _WRITTEN.add(name)
    with open(RESULTS_DIR / f"{name}.txt", mode) as fh:
        fh.write(text)
    return text


def assert_finite(series: Dict[object, List[float]]) -> None:
    """Every swept value must be a finite number."""
    for values in series.values():
        assert np.all(np.isfinite(values)), f"non-finite bench values: {values}"


def assert_trending_down(series: Dict[object, List[float]],
                         slack: float = 0.15, floor: float = 0.05) -> None:
    """End point must not exceed start point by more than the allowance.

    DP runs are noisy at bench scale; we assert the robust end-to-end
    trend rather than per-step monotonicity.  The allowance is
    ``slack * max(|start|, floor)`` so the check stays meaningful when
    values hover near (or below) zero.
    """
    for label, values in series.items():
        allowance = slack * max(abs(values[0]), floor)
        assert values[-1] <= values[0] + allowance + 1e-9, (
            f"series {label} trends up: {values}"
        )


def assert_dimension_insensitive(series: Dict[object, List[float]],
                                 factor: float = 4.0) -> None:
    """Across series (dimensions), mean errors must stay within ``factor``.

    This is the paper's headline log-d claim: d=200 vs d=800 curves
    nearly coincide.  A poly(d) method would blow past any constant
    factor.
    """
    means = [float(np.mean(v)) for v in series.values()]
    lo = max(min(means), 1e-6)
    assert max(means) <= factor * lo, f"dimension sensitivity too strong: {means}"
