"""Figure 10 — Algorithm 5 on regularised logistic regression,
Gaussian features.

Paper setup: ``x ~ N(0, 5)``, latent noise from the logistic
distribution ``(u, s) = (0, 0.5)``, n = 8000, s* = 20; loss is the
ℓ2-regularised logistic loss (the canonical Assumption 4 example).
"""

import numpy as np

from _sparse_figs import logistic_sparse_panels
from repro import (
    DistributionSpec,
    HeavyTailedSparseOptimizer,
    L2Regularized,
    LogisticLoss,
    make_logistic_data,
    sparse_truth,
)

FEATURES = DistributionSpec("gaussian", {"scale": 2.24})
NOISE = DistributionSpec("logistic", {"scale": 0.5})


def _loss():
    return L2Regularized(LogisticLoss(), 0.01)


def test_fig10_sparse_logistic_gaussian(benchmark):
    rng = np.random.default_rng(0)
    w_star = sparse_truth(50, 5, rng, norm_bound=0.5)
    data = make_logistic_data(6000, w_star, FEATURES, NOISE, rng=rng)
    solver = HeavyTailedSparseOptimizer(_loss(), sparsity=5, epsilon=1.0,
                                        delta=1e-5, tau=6.0)
    benchmark.pedantic(
        lambda: solver.fit(data.features, data.labels,
                           rng=np.random.default_rng(1)),
        rounds=1, iterations=1,
    )
    logistic_sparse_panels("fig10", FEATURES, NOISE, seed=100,
                           tau=6.0, l2_penalty=0.01)
