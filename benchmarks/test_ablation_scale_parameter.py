"""Ablation — the Catoni scale ``s`` trade-off of Theorem 2.

Too small a scale truncates aggressively (bias dominates); too large a
scale inflates the exponential-mechanism sensitivity (privacy noise
dominates).  We sweep multipliers around the theory-optimal scale and
check the theory value sits near the bottom of the U-shape.  Catalog
entry: ``ablation_scale_parameter`` (which computes the theory scale
from the DP-FW schedule).
"""

import numpy as np

from _common import FULL, assert_finite, run_catalog_bench
from _scenarios import _l1_linear_data
from repro import HeavyTailedDPFW, L1Ball, SquaredLoss
from repro.experiments import bench


def test_ablation_scale_parameter(benchmark):
    definition = bench("ablation_scale_parameter", full=FULL)
    point = definition.panels[0].point
    base = HeavyTailedDPFW(SquaredLoss(), L1Ball(point.d), epsilon=1.0,
                           tau=5.0)
    assert base.resolve_schedule(point.n).scale == point.theory_scale
    data0 = _l1_linear_data(point.n, point.d, point.features, point.noise,
                            np.random.default_rng(0))
    benchmark.pedantic(
        lambda: base.fit(data0.features, data0.labels,
                         rng=np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    table, = run_catalog_bench("ablation_scale_parameter")
    assert_finite(table)
    curve = table["excess_risk"]
    multipliers = list(definition.panels[0].sweep_values)
    at_theory = curve[multipliers.index(1.0)]
    # The right arm of the U (sensitivity/noise blow-up) is strong at any
    # scale: the theory value must clearly beat a 50x-inflated scale.
    assert at_theory <= curve[-1] * 1.2
    # The left arm (truncation bias) only bites at paper-scale n; at the
    # bench's n the aggressively truncated run can even win a little, so
    # we only require the theory scale to stay comparable to it.
    assert at_theory <= curve[0] * 2.0
