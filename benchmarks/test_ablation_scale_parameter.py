"""Ablation — the Catoni scale ``s`` trade-off of Theorem 2.

Too small a scale truncates aggressively (bias dominates); too large a
scale inflates the exponential-mechanism sensitivity (privacy noise
dominates).  We sweep multipliers around the theory-optimal scale and
check the theory value sits near the bottom of the U-shape.
"""

import numpy as np

from _common import FULL, assert_finite, emit_table, run_sweep
from _scenarios import ScaleParameterAblation, _l1_linear_data
from repro import DistributionSpec, HeavyTailedDPFW, L1Ball, SquaredLoss

LOSS = SquaredLoss()
FEATURES = DistributionSpec("lognormal", {"sigma": 0.6})
NOISE = DistributionSpec("gaussian", {"scale": 0.1})
D = 40
N = 20_000 if FULL else 8000
MULTIPLIERS = [0.02, 0.2, 1.0, 5.0, 50.0]


def test_ablation_scale_parameter(benchmark):
    base = HeavyTailedDPFW(LOSS, L1Ball(D), epsilon=1.0, tau=5.0)
    theory_scale = base.resolve_schedule(N).scale
    data0 = _l1_linear_data(N, D, FEATURES, NOISE, np.random.default_rng(0))
    benchmark.pedantic(
        lambda: base.fit(data0.features, data0.labels,
                         rng=np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    point = ScaleParameterAblation(features=FEATURES, noise=NOISE, d=D, n=N,
                                   theory_scale=theory_scale)
    table = run_sweep(point, MULTIPLIERS, ["excess_risk"], seed=210)
    emit_table("ablation_scale",
               f"Ablation: excess risk vs scale multiplier "
               f"(theory s = {theory_scale:.2f})",
               "s_multiplier", MULTIPLIERS, table)
    assert_finite(table)
    curve = table["excess_risk"]
    at_theory = curve[MULTIPLIERS.index(1.0)]
    # The right arm of the U (sensitivity/noise blow-up) is strong at any
    # scale: the theory value must clearly beat a 50x-inflated scale.
    assert at_theory <= curve[-1] * 1.2
    # The left arm (truncation bias) only bites at paper-scale n; at the
    # bench's n the aggressively truncated run can even win a little, so
    # we only require the theory scale to stay comparable to it.
    assert at_theory <= curve[0] * 2.0
