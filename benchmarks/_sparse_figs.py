"""Shared shape asserts for the sparse-learning figures (7-9 and 10-11).

Every one of these figures has the same three panels — (a) error vs ε,
(b) error vs n, (c) error vs s*, one curve per dimension — defined in
the catalog (:mod:`repro.experiments.catalog`) and run by
:func:`_common.run_catalog_bench`.  This module holds only the shared
qualitative assertions on the returned panels, so the claimed shapes
cannot drift between the linear (Algorithm 3) and logistic
(Algorithm 5) families.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from _common import (
    assert_dimension_insensitive,
    assert_finite,
    assert_trending_down,
)

Panel = Dict[object, List[float]]


def assert_sparse_panels(panels: Sequence[Panel]) -> None:
    """The three-panel shape contract shared by Figures 7-11.

    (a) error falls (slackly) with ε and is dimension-insensitive (the
    headline log-d claim); (b) error falls with n; (c) error grows with
    the true sparsity s* (polynomially, per Theorem 7).
    """
    panel_a, panel_b, panel_c = panels
    assert_finite(panel_a)
    assert_trending_down(panel_a, slack=0.5)
    assert_dimension_insensitive(panel_a, factor=6.0)

    assert_finite(panel_b)
    assert_trending_down(panel_b, slack=0.5)

    assert_finite(panel_c)
    for values in panel_c.values():
        assert values[-1] >= values[0] * 0.8
