"""Shared harness for the sparse-learning figures (7-9: Alg 3, 10-11: Alg 5).

Every one of these figures has the same three panels:
(a) error vs ε, one curve per dimension (n, s* fixed);
(b) error vs n, one curve per dimension (ε = 1, s* fixed);
(c) error vs s*, one curve per dimension (ε = 1, n fixed).

The error metric is the excess empirical risk against the planted
``w*``, exactly as the paper evaluates its sparse experiments.  The
point functions are the :class:`_scenarios.SparseLinearPanel` and
:class:`_scenarios.SparseLogisticPanel` dataclasses, so every panel is
picklable (parallel executors fan out) and code-fingerprinted (the cell
cache invalidates when panel code changes).
"""

from __future__ import annotations

from _common import (
    FULL,
    assert_dimension_insensitive,
    assert_finite,
    assert_trending_down,
    emit_table,
    run_sweep,
)
from _scenarios import SparseLinearPanel, SparseLogisticPanel
from repro import DistributionSpec

D_SERIES = [500, 1000, 2000] if FULL else [50, 150]
EPS_SWEEP = [0.5, 1.0, 2.0, 4.0]
S_STAR_SWEEP = [10, 20, 40] if FULL else [2, 5, 10]


def linear_sparse_panels(fig_name: str, noise_spec: DistributionSpec,
                         feature_spec: DistributionSpec, seed: int,
                         metric: str = "excess") -> None:
    """Run and emit the three Algorithm 3 panels for one noise law.

    ``metric`` is ``"excess"`` (the paper's excess empirical risk) or
    ``"param_error"`` (``||w - w*||_2``) -- the latter is the honest
    choice when the label noise has no finite variance (Figure 8's
    log-logistic c=0.1), where the empirical risk itself is dominated by
    a handful of astronomically large noise draws.
    """
    n_fixed = 50_000 if FULL else 16_000
    n_sweep = [20_000, 50_000, 100_000] if FULL else [8000, 16_000, 32_000]
    s_fixed = 20 if FULL else 5

    point_a = SparseLinearPanel(features=feature_spec, noise=noise_spec,
                                sweep="epsilon", metric=metric,
                                n_fixed=n_fixed, s_fixed=s_fixed)
    panel_a = run_sweep(point_a, EPS_SWEEP, D_SERIES, seed=seed)
    emit_table(fig_name, f"{fig_name}(a): excess risk vs eps "
               f"(n={n_fixed}, s*={s_fixed})", "epsilon", EPS_SWEEP, panel_a)
    assert_finite(panel_a)
    assert_trending_down(panel_a, slack=0.5)
    assert_dimension_insensitive(panel_a, factor=6.0)

    point_b = SparseLinearPanel(features=feature_spec, noise=noise_spec,
                                sweep="n", metric=metric,
                                s_fixed=s_fixed, eps_fixed=1.0)
    panel_b = run_sweep(point_b, n_sweep, D_SERIES, seed=seed + 1)
    emit_table(fig_name, f"{fig_name}(b): excess risk vs n (eps=1)",
               "n", n_sweep, panel_b)
    assert_finite(panel_b)
    assert_trending_down(panel_b, slack=0.5)

    point_c = SparseLinearPanel(features=feature_spec, noise=noise_spec,
                                sweep="s_star", metric=metric,
                                n_fixed=n_fixed, eps_fixed=1.0)
    panel_c = run_sweep(point_c, S_STAR_SWEEP, D_SERIES, seed=seed + 2)
    emit_table(fig_name, f"{fig_name}(c): excess risk vs s* (eps=1)",
               "s*", S_STAR_SWEEP, panel_c)
    assert_finite(panel_c)
    # Error grows with sparsity (polynomially, per Theorem 7).
    for values in panel_c.values():
        assert values[-1] >= values[0] * 0.8


def logistic_sparse_panels(fig_name: str, feature_spec: DistributionSpec,
                           noise_spec: DistributionSpec, seed: int,
                           tau: float, l2_penalty: float = 0.01) -> None:
    """Run and emit the three Algorithm 5 panels for one data law."""
    n_fixed = 8000 if FULL else 6000
    n_sweep = [8000, 16_000, 32_000] if FULL else [4000, 8000, 16_000]
    s_fixed = 20 if FULL else 5

    point_a = SparseLogisticPanel(features=feature_spec, noise=noise_spec,
                                  sweep="epsilon", tau=tau,
                                  l2_penalty=l2_penalty,
                                  n_fixed=n_fixed, s_fixed=s_fixed)
    panel_a = run_sweep(point_a, EPS_SWEEP, D_SERIES, seed=seed)
    emit_table(fig_name, f"{fig_name}(a): excess risk vs eps "
               f"(n={n_fixed}, s*={s_fixed})", "epsilon", EPS_SWEEP, panel_a)
    assert_finite(panel_a)
    assert_trending_down(panel_a, slack=0.5)
    assert_dimension_insensitive(panel_a, factor=6.0)

    point_b = SparseLogisticPanel(features=feature_spec, noise=noise_spec,
                                  sweep="n", tau=tau, l2_penalty=l2_penalty,
                                  s_fixed=s_fixed, eps_fixed=1.0)
    panel_b = run_sweep(point_b, n_sweep, D_SERIES, seed=seed + 1)
    emit_table(fig_name, f"{fig_name}(b): excess risk vs n (eps=1)",
               "n", n_sweep, panel_b)
    assert_finite(panel_b)
    assert_trending_down(panel_b, slack=0.5)

    point_c = SparseLogisticPanel(features=feature_spec, noise=noise_spec,
                                  sweep="s_star", tau=tau,
                                  l2_penalty=l2_penalty,
                                  n_fixed=n_fixed, eps_fixed=1.0)
    panel_c = run_sweep(point_c, S_STAR_SWEEP, D_SERIES, seed=seed + 2)
    emit_table(fig_name, f"{fig_name}(c): excess risk vs s* (eps=1)",
               "s*", S_STAR_SWEEP, panel_c)
    assert_finite(panel_c)
    for values in panel_c.values():
        assert values[-1] >= values[0] * 0.8
