"""Figure 11 — Algorithm 5 on regularised logistic regression,
Laplace features.

Paper setup: ``x ~ Laplace(5)``, latent noise log-gamma with c = 0.5.
"""

import numpy as np

from _sparse_figs import logistic_sparse_panels
from repro import (
    DistributionSpec,
    HeavyTailedSparseOptimizer,
    L2Regularized,
    LogisticLoss,
    make_logistic_data,
    sparse_truth,
)

FEATURES = DistributionSpec("laplace", {"scale": 5.0})
NOISE = DistributionSpec("log_gamma", {"c": 0.5})


def _loss():
    return L2Regularized(LogisticLoss(), 0.01)


def test_fig11_sparse_logistic_laplace(benchmark):
    rng = np.random.default_rng(0)
    w_star = sparse_truth(50, 5, rng, norm_bound=0.5)
    data = make_logistic_data(6000, w_star, FEATURES, NOISE, rng=rng)
    solver = HeavyTailedSparseOptimizer(_loss(), sparsity=5, epsilon=1.0,
                                        delta=1e-5, tau=30.0)
    benchmark.pedantic(
        lambda: solver.fit(data.features, data.labels,
                           rng=np.random.default_rng(1)),
        rounds=1, iterations=1,
    )
    logistic_sparse_panels("fig11", FEATURES, NOISE, seed=110,
                           tau=30.0, l2_penalty=0.01)
