"""Figure 11 — Algorithm 5 on regularised logistic regression,
Laplace features.

Paper setup: ``x ~ Laplace(5)``, latent noise log-gamma with c = 0.5.
Catalog entry: ``fig11_sparse_logistic_laplace``.
"""

import numpy as np

from _common import FULL, run_catalog_bench
from _sparse_figs import assert_sparse_panels
from repro import (
    HeavyTailedSparseOptimizer,
    L2Regularized,
    LogisticLoss,
    make_logistic_data,
    sparse_truth,
)
from repro.experiments import bench


def test_fig11_sparse_logistic_laplace(benchmark):
    point = bench("fig11_sparse_logistic_laplace", full=FULL).panels[0].point
    rng = np.random.default_rng(0)
    w_star = sparse_truth(50, 5, rng, norm_bound=0.5)
    data = make_logistic_data(6000, w_star, point.features, point.noise,
                              rng=rng)
    solver = HeavyTailedSparseOptimizer(
        L2Regularized(LogisticLoss(), point.l2_penalty), sparsity=5,
        epsilon=1.0, delta=1e-5, tau=point.tau)
    benchmark.pedantic(
        lambda: solver.fit(data.features, data.labels,
                           rng=np.random.default_rng(1)),
        rounds=1, iterations=1,
    )
    assert_sparse_panels(run_catalog_bench("fig11_sparse_logistic_laplace"))
