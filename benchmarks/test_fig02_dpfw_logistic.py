"""Figure 2 — Algorithm 1 on logistic regression with log-normal features.

Paper setup: ``x ~ Lognormal(0, 0.6)``, noiseless labels
``y = sign(sigmoid(<x, w*>) - 0.5)``; same three panels as Figure 1.
Grids/seeds/trial counts live in the catalog entry
``fig02_dpfw_logistic`` (panel (a) uses 5 trials and a wider ε range,
panel (b) at least 6 — the noiseless-label logistic excess is small and
noisy at bench scale).
"""

import numpy as np

from _common import (
    FULL,
    assert_dimension_insensitive,
    assert_finite,
    assert_trending_down,
    run_catalog_bench,
)
from _scenarios import LOGISTIC, _logistic_l1_data
from repro import HeavyTailedDPFW, L1Ball
from repro.experiments import bench


def test_fig02_dpfw_logistic(benchmark):
    definition = bench("fig02_dpfw_logistic", full=FULL)
    panel_a_def = definition.panels[0]
    point = panel_a_def.point
    timing_data = _logistic_l1_data(point.n_fixed,
                                    panel_a_def.series_values[0],
                                    point.features, np.random.default_rng(0))
    solver = HeavyTailedDPFW(LOGISTIC, L1Ball(timing_data.dimension),
                             epsilon=1.0, tau=point.tau,
                             schedule_mode="theory")
    benchmark.pedantic(
        lambda: solver.fit(timing_data.features, timing_data.labels,
                           rng=np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    panel_a, panel_b, panel_c = run_catalog_bench("fig02_dpfw_logistic")

    assert_finite(panel_a)
    assert_trending_down(panel_a, slack=0.3)
    assert_dimension_insensitive(panel_a)

    # At bench-scale n the curve is essentially flat (the paper's
    # visible decrease needs n up to 9e4): assert "not clearly up".
    assert_finite(panel_b)
    assert_trending_down(panel_b, slack=0.5)

    assert_finite(panel_c)
    for i in range(len(definition.panels[2].sweep_values)):
        assert panel_c["non-private"][i] <= panel_c["private(eps=1)"][i] + 1e-6
