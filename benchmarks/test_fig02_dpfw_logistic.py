"""Figure 2 — Algorithm 1 on logistic regression with log-normal features.

Paper setup: ``x ~ Lognormal(0, 0.6)``, noiseless labels
``y = sign(sigmoid(<x, w*>) - 0.5)``; same three panels as Figure 1.
"""

import numpy as np

from _common import (
    FULL,
    N_TRIALS,
    assert_dimension_insensitive,
    assert_finite,
    assert_trending_down,
    emit_table,
    run_sweep,
)
from repro import (
    DistributionSpec,
    HeavyTailedDPFW,
    L1Ball,
    LogisticLoss,
    l1_ball_truth,
    make_logistic_data,
)
from repro.baselines import FrankWolfe

LOSS = LogisticLoss()
FEATURES = DistributionSpec("lognormal", {"sigma": 0.6})

D_SERIES = [200, 400, 800] if FULL else [20, 80]
N_FIXED = 10_000 if FULL else 3000
# Wider eps range + extra trials: with noiseless sign labels the
# logistic excess is small and noisy, so the trend needs more span.
EPS_SWEEP = [0.25, 1.0, 4.0, 16.0]
N_SWEEP = [10_000, 30_000, 90_000] if FULL else [2000, 4000, 8000]
D_FIXED = 400 if FULL else 40


def _make(n, d, rng):
    w_star = l1_ball_truth(d, rng)
    return make_logistic_data(n, w_star, FEATURES, None, rng=rng)


def _excess(w, data):
    """Excess vs the ball-constrained empirical optimum.

    The planted ``w*`` is NOT the logistic-risk minimiser over the ball
    (with separable sign labels the risk keeps falling toward the
    boundary), so the reference is computed by non-private Frank-Wolfe,
    exactly as the paper does for its real-data experiments.
    """
    w_opt = FrankWolfe(LOSS, L1Ball(data.dimension), n_iterations=80).fit(
        data.features, data.labels)
    return (LOSS.value(w, data.features, data.labels)
            - LOSS.value(w_opt, data.features, data.labels))


def _fit_private(data, epsilon, rng):
    solver = HeavyTailedDPFW(LOSS, L1Ball(data.dimension), epsilon=epsilon,
                             tau=3.0, schedule_mode="theory")
    return solver.fit(data.features, data.labels, rng=rng).w


def test_fig02_dpfw_logistic(benchmark):
    timing_data = _make(N_FIXED, D_SERIES[0], np.random.default_rng(0))
    benchmark.pedantic(
        lambda: _fit_private(timing_data, 1.0, np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    def point_a(d, eps, rng):
        data = _make(N_FIXED, d, rng)
        return _excess(_fit_private(data, eps, rng), data)

    panel_a = run_sweep(point_a, EPS_SWEEP, D_SERIES, seed=20, n_trials=5)
    emit_table("fig02", "Figure 2(a): excess logistic risk vs epsilon "
               f"(n={N_FIXED})", "epsilon", EPS_SWEEP, panel_a)
    assert_finite(panel_a)
    assert_trending_down(panel_a, slack=0.3)
    assert_dimension_insensitive(panel_a)

    def point_b(d, n, rng):
        data = _make(n, d, rng)
        return _excess(_fit_private(data, 1.0, rng), data)

    # At bench-scale n (<= 8000) the logistic excess-risk-vs-n curve is
    # essentially flat — the paper's visible decrease needs n up to 9e4
    # — and a 3-trial mean swings by ~1.4x on seed luck alone.  Use more
    # trials to tame the variance and assert "not clearly trending up".
    panel_b = run_sweep(point_b, N_SWEEP, D_SERIES, seed=21,
                        n_trials=max(N_TRIALS, 6))
    emit_table("fig02", "Figure 2(b): excess logistic risk vs n (eps=1)",
               "n", N_SWEEP, panel_b)
    assert_finite(panel_b)
    assert_trending_down(panel_b, slack=0.5)

    def point_c(kind, n, rng):
        data = _make(n, D_FIXED, rng)
        if kind == "private(eps=1)":
            w = _fit_private(data, 1.0, rng)
        else:
            w = FrankWolfe(LOSS, L1Ball(D_FIXED), n_iterations=60).fit(
                data.features, data.labels)
        return _excess(w, data)

    panel_c = run_sweep(point_c, N_SWEEP, ["private(eps=1)", "non-private"],
                        seed=22)
    emit_table("fig02", f"Figure 2(c): private vs non-private (d={D_FIXED})",
               "n", N_SWEEP, panel_c)
    assert_finite(panel_c)
    for i in range(len(N_SWEEP)):
        assert panel_c["non-private"][i] <= panel_c["private(eps=1)"][i] + 1e-6
