"""Figure 2 — Algorithm 1 on logistic regression with log-normal features.

Paper setup: ``x ~ Lognormal(0, 0.6)``, noiseless labels
``y = sign(sigmoid(<x, w*>) - 0.5)``; same three panels as Figure 1.
"""

import numpy as np

from _common import (
    FULL,
    N_TRIALS,
    assert_dimension_insensitive,
    assert_finite,
    assert_trending_down,
    emit_table,
    run_sweep,
)
from _scenarios import (
    LOGISTIC,
    LogisticDPFWPanel,
    LogisticPrivateVsNonprivatePanel,
    _logistic_l1_data,
)
from repro import DistributionSpec, HeavyTailedDPFW, L1Ball

FEATURES = DistributionSpec("lognormal", {"sigma": 0.6})

D_SERIES = [200, 400, 800] if FULL else [20, 80]
N_FIXED = 10_000 if FULL else 3000
# Wider eps range + extra trials: with noiseless sign labels the
# logistic excess is small and noisy, so the trend needs more span.
EPS_SWEEP = [0.25, 1.0, 4.0, 16.0]
N_SWEEP = [10_000, 30_000, 90_000] if FULL else [2000, 4000, 8000]
D_FIXED = 400 if FULL else 40


def _fit_private(data, epsilon, rng):
    solver = HeavyTailedDPFW(LOGISTIC, L1Ball(data.dimension),
                             epsilon=epsilon, tau=3.0,
                             schedule_mode="theory")
    return solver.fit(data.features, data.labels, rng=rng).w


def test_fig02_dpfw_logistic(benchmark):
    timing_data = _logistic_l1_data(N_FIXED, D_SERIES[0], FEATURES,
                                    np.random.default_rng(0))
    benchmark.pedantic(
        lambda: _fit_private(timing_data, 1.0, np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    point_a = LogisticDPFWPanel(features=FEATURES, sweep="epsilon",
                                n_fixed=N_FIXED)
    panel_a = run_sweep(point_a, EPS_SWEEP, D_SERIES, seed=20, n_trials=5)
    emit_table("fig02", "Figure 2(a): excess logistic risk vs epsilon "
               f"(n={N_FIXED})", "epsilon", EPS_SWEEP, panel_a)
    assert_finite(panel_a)
    assert_trending_down(panel_a, slack=0.3)
    assert_dimension_insensitive(panel_a)

    # At bench-scale n (<= 8000) the logistic excess-risk-vs-n curve is
    # essentially flat — the paper's visible decrease needs n up to 9e4
    # — and a 3-trial mean swings by ~1.4x on seed luck alone.  Use more
    # trials to tame the variance and assert "not clearly trending up".
    point_b = LogisticDPFWPanel(features=FEATURES, sweep="n", eps_fixed=1.0)
    panel_b = run_sweep(point_b, N_SWEEP, D_SERIES, seed=21,
                        n_trials=max(N_TRIALS, 6))
    emit_table("fig02", "Figure 2(b): excess logistic risk vs n (eps=1)",
               "n", N_SWEEP, panel_b)
    assert_finite(panel_b)
    assert_trending_down(panel_b, slack=0.5)

    point_c = LogisticPrivateVsNonprivatePanel(features=FEATURES,
                                               d_fixed=D_FIXED)
    panel_c = run_sweep(point_c, N_SWEEP, ["private(eps=1)", "non-private"],
                        seed=22)
    emit_table("fig02", f"Figure 2(c): private vs non-private (d={D_FIXED})",
               "n", N_SWEEP, panel_c)
    assert_finite(panel_c)
    for i in range(len(N_SWEEP)):
        assert panel_c["non-private"][i] <= panel_c["private(eps=1)"][i] + 1e-6
