"""Figure 6 — Algorithm 2 (Private LASSO) with Student-t features.

Paper setup: ``x ~ t(10)`` (polynomial tails, finite fourth moment —
exactly Assumption 3's regime), noise ``N(0, 0.1)``.  Same panels as
Figure 5.
"""

import numpy as np

from _common import (
    FULL,
    assert_dimension_insensitive,
    assert_finite,
    assert_trending_down,
    emit_table,
    run_sweep,
)
from repro import (
    DistributionSpec,
    HeavyTailedPrivateLasso,
    L1Ball,
    SquaredLoss,
    l1_ball_truth,
    make_linear_data,
)
from repro.baselines import FrankWolfe

LOSS = SquaredLoss()
FEATURES = DistributionSpec("student_t", {"df": 10.0})
NOISE = DistributionSpec("gaussian", {"scale": 0.1})

D_SERIES = [100, 200, 400] if FULL else [20, 80]
N_FIXED = 100_000 if FULL else 4000
EPS_SWEEP = [0.5, 1.0, 2.0, 4.0]
N_SWEEP = [20_000, 60_000, 180_000] if FULL else [4000, 10_000, 24_000]
D_FIXED = 200 if FULL else 40
DELTA = 1e-5


def _make(n, d, rng):
    return make_linear_data(n, l1_ball_truth(d, rng), FEATURES, NOISE, rng=rng)


def _excess(w, data):
    return (LOSS.value(w, data.features, data.labels)
            - LOSS.value(data.w_star, data.features, data.labels))


def _fit(data, eps, rng):
    solver = HeavyTailedPrivateLasso(L1Ball(data.dimension), epsilon=eps,
                                     delta=DELTA)
    return solver.fit(data.features, data.labels, rng=rng).w


def test_fig06_lasso_student_t(benchmark):
    timing_data = _make(N_FIXED, D_SERIES[0], np.random.default_rng(0))
    benchmark.pedantic(
        lambda: _fit(timing_data, 1.0, np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    def point_a(d, eps, rng):
        data = _make(N_FIXED, d, rng)
        return _excess(_fit(data, eps, rng), data)

    panel_a = run_sweep(point_a, EPS_SWEEP, D_SERIES, seed=60)
    emit_table("fig06", "Figure 6(a): LASSO (t-dist) excess risk vs eps",
               "epsilon", EPS_SWEEP, panel_a)
    assert_finite(panel_a)
    assert_trending_down(panel_a, slack=0.5)
    assert_dimension_insensitive(panel_a, factor=6.0)

    def point_b(d, n, rng):
        data = _make(n, d, rng)
        return _excess(_fit(data, 1.0, rng), data)

    panel_b = run_sweep(point_b, N_SWEEP, D_SERIES, seed=61)
    emit_table("fig06", "Figure 6(b): LASSO (t-dist) excess risk vs n (eps=1)",
               "n", N_SWEEP, panel_b)
    assert_finite(panel_b)
    assert_trending_down(panel_b, slack=0.5)

    def point_c(kind, n, rng):
        data = _make(n, D_FIXED, rng)
        if kind == "private(eps=1)":
            w = _fit(data, 1.0, rng)
        else:
            w = FrankWolfe(LOSS, L1Ball(D_FIXED), n_iterations=60).fit(
                data.features, data.labels)
        return _excess(w, data)

    panel_c = run_sweep(point_c, N_SWEEP, ["private(eps=1)", "non-private"],
                        seed=62)
    emit_table("fig06", f"Figure 6(c): private vs non-private (d={D_FIXED})",
               "n", N_SWEEP, panel_c)
    assert_finite(panel_c)
    for i in range(len(N_SWEEP)):
        assert panel_c["non-private"][i] <= panel_c["private(eps=1)"][i] + 1e-6
