"""Figure 6 — Algorithm 2 (Private LASSO) with Student-t features.

Paper setup: ``x ~ t(10)`` (polynomial tails, finite fourth moment —
exactly Assumption 3's regime), noise ``N(0, 0.1)``.  Same panels as
Figure 5.
"""

import numpy as np

from _common import (
    FULL,
    assert_dimension_insensitive,
    assert_finite,
    assert_trending_down,
    emit_table,
    run_sweep,
)
from _scenarios import (
    L1LinearPanel,
    L1PrivateVsNonprivatePanel,
    _fit_l1_private,
    _l1_linear_data,
)
from repro import DistributionSpec

FEATURES = DistributionSpec("student_t", {"df": 10.0})
NOISE = DistributionSpec("gaussian", {"scale": 0.1})

D_SERIES = [100, 200, 400] if FULL else [20, 80]
N_FIXED = 100_000 if FULL else 4000
EPS_SWEEP = [0.5, 1.0, 2.0, 4.0]
N_SWEEP = [20_000, 60_000, 180_000] if FULL else [4000, 10_000, 24_000]
D_FIXED = 200 if FULL else 40
DELTA = 1e-5


def test_fig06_lasso_student_t(benchmark):
    timing_data = _l1_linear_data(N_FIXED, D_SERIES[0], FEATURES, NOISE,
                                  np.random.default_rng(0))
    benchmark.pedantic(
        lambda: _fit_l1_private("lasso", timing_data, 1.0, 5.0, DELTA,
                                np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    point_a = L1LinearPanel(solver="lasso", features=FEATURES, noise=NOISE,
                            sweep="epsilon", n_fixed=N_FIXED, delta=DELTA)
    panel_a = run_sweep(point_a, EPS_SWEEP, D_SERIES, seed=60)
    emit_table("fig06", "Figure 6(a): LASSO (t-dist) excess risk vs eps",
               "epsilon", EPS_SWEEP, panel_a)
    assert_finite(panel_a)
    assert_trending_down(panel_a, slack=0.5)
    assert_dimension_insensitive(panel_a, factor=6.0)

    point_b = L1LinearPanel(solver="lasso", features=FEATURES, noise=NOISE,
                            sweep="n", eps_fixed=1.0, delta=DELTA)
    panel_b = run_sweep(point_b, N_SWEEP, D_SERIES, seed=61)
    emit_table("fig06", "Figure 6(b): LASSO (t-dist) excess risk vs n (eps=1)",
               "n", N_SWEEP, panel_b)
    assert_finite(panel_b)
    assert_trending_down(panel_b, slack=0.5)

    point_c = L1PrivateVsNonprivatePanel(solver="lasso", features=FEATURES,
                                         noise=NOISE, d_fixed=D_FIXED,
                                         delta=DELTA)
    panel_c = run_sweep(point_c, N_SWEEP, ["private(eps=1)", "non-private"],
                        seed=62)
    emit_table("fig06", f"Figure 6(c): private vs non-private (d={D_FIXED})",
               "n", N_SWEEP, panel_c)
    assert_finite(panel_c)
    for i in range(len(N_SWEEP)):
        assert panel_c["non-private"][i] <= panel_c["private(eps=1)"][i] + 1e-6
