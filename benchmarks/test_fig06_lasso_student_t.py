"""Figure 6 — Algorithm 2 (Private LASSO) with Student-t features.

Paper setup: ``x ~ t(10)`` (polynomial tails, finite fourth moment —
exactly Assumption 3's regime), noise ``N(0, 0.1)``.  Same panels as
Figure 5; grids/seeds/titles live in the catalog entry
``fig06_lasso_student_t``.
"""

import numpy as np

from _common import (
    FULL,
    assert_dimension_insensitive,
    assert_finite,
    assert_trending_down,
    run_catalog_bench,
)
from _scenarios import _fit_l1_private, _l1_linear_data
from repro.experiments import bench


def test_fig06_lasso_student_t(benchmark):
    definition = bench("fig06_lasso_student_t", full=FULL)
    panel_a_def = definition.panels[0]
    point = panel_a_def.point
    timing_data = _l1_linear_data(point.n_fixed, panel_a_def.series_values[0],
                                  point.features, point.noise,
                                  np.random.default_rng(0))
    benchmark.pedantic(
        lambda: _fit_l1_private(point.solver, timing_data, 1.0, point.tau,
                                point.delta, np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    panel_a, panel_b, panel_c = run_catalog_bench("fig06_lasso_student_t")

    assert_finite(panel_a)
    assert_trending_down(panel_a, slack=0.5)
    assert_dimension_insensitive(panel_a, factor=6.0)

    assert_finite(panel_b)
    assert_trending_down(panel_b, slack=0.5)

    assert_finite(panel_c)
    for i in range(len(definition.panels[2].sweep_values)):
        assert panel_c["non-private"][i] <= panel_c["private(eps=1)"][i] + 1e-6
