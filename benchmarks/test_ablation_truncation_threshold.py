"""Ablation — sensitivity of Algorithm 2 to the shrinkage threshold K.

Theorem 5 sets ``K = (n eps)^{1/4} / T^{1/8}``, balancing shrinkage bias
(small K loses signal) against exponential-mechanism noise (sensitivity
grows as K^2).  We sweep multipliers around the schedule and verify the
U-shape: the theory value must beat both a much smaller and a much
larger threshold.
"""

import numpy as np

from _common import FULL, assert_finite, emit_table, run_sweep
from _scenarios import TruncationThresholdAblation, _l1_linear_data
from repro import DistributionSpec, HeavyTailedPrivateLasso, L1Ball

FEATURES = DistributionSpec("lognormal", {"sigma": 0.6})
NOISE = DistributionSpec("gaussian", {"scale": 0.1})
D = 40
N = 30_000 if FULL else 12_000
MULTIPLIERS = [0.05, 0.3, 1.0, 3.0, 20.0]


def test_ablation_truncation_threshold(benchmark):
    base = HeavyTailedPrivateLasso(L1Ball(D), epsilon=1.0, delta=1e-5)
    K_theory = base.resolve_schedule(N).threshold
    data0 = _l1_linear_data(N, D, FEATURES, NOISE, np.random.default_rng(0))
    benchmark.pedantic(
        lambda: base.fit(data0.features, data0.labels,
                         rng=np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    point = TruncationThresholdAblation(features=FEATURES, noise=NOISE, d=D,
                                        n=N, theory_threshold=K_theory)
    table = run_sweep(point, MULTIPLIERS, ["excess_risk"], seed=240)
    emit_table("ablation_threshold",
               f"Ablation: LASSO excess risk vs K multiplier "
               f"(theory K = {K_theory:.2f})",
               "K_multiplier", MULTIPLIERS, table)
    assert_finite(table)
    curve = table["excess_risk"]
    at_theory = curve[MULTIPLIERS.index(1.0)]
    assert at_theory <= curve[0] * 1.2
    assert at_theory <= curve[-1] * 1.2
