"""Ablation — sensitivity of Algorithm 2 to the shrinkage threshold K.

Theorem 5 sets ``K = (n eps)^{1/4} / T^{1/8}``, balancing shrinkage bias
(small K loses signal) against exponential-mechanism noise (sensitivity
grows as K^2).  We sweep multipliers around the schedule and verify the
U-shape: the theory value must beat both a much smaller and a much
larger threshold.  Catalog entry: ``ablation_truncation_threshold``
(which computes the theory K from the Lasso schedule).
"""

import numpy as np

from _common import FULL, assert_finite, run_catalog_bench
from _scenarios import _l1_linear_data
from repro import HeavyTailedPrivateLasso, L1Ball
from repro.experiments import bench


def test_ablation_truncation_threshold(benchmark):
    definition = bench("ablation_truncation_threshold", full=FULL)
    point = definition.panels[0].point
    base = HeavyTailedPrivateLasso(L1Ball(point.d), epsilon=1.0, delta=1e-5)
    assert base.resolve_schedule(point.n).threshold == point.theory_threshold
    data0 = _l1_linear_data(point.n, point.d, point.features, point.noise,
                            np.random.default_rng(0))
    benchmark.pedantic(
        lambda: base.fit(data0.features, data0.labels,
                         rng=np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    table, = run_catalog_bench("ablation_truncation_threshold")
    assert_finite(table)
    curve = table["excess_risk"]
    multipliers = list(definition.panels[0].sweep_values)
    at_theory = curve[multipliers.index(1.0)]
    assert at_theory <= curve[0] * 1.2
    assert at_theory <= curve[-1] * 1.2
