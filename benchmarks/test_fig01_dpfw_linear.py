"""Figure 1 — Algorithm 1 on linear regression with log-normal features.

Paper setup: ``x ~ Lognormal(0, 0.6)``, label noise ``N(0, 0.1)``,
``w*`` in the unit ℓ1 ball.  Three panels:
(a) excess risk vs ε for several d at fixed n;
(b) excess risk vs n for several d at ε = 1;
(c) private vs non-private risk gap vs n at fixed d.
"""

import numpy as np

from _common import (
    FULL,
    assert_dimension_insensitive,
    assert_finite,
    assert_trending_down,
    emit_table,
    run_sweep,
)
from _scenarios import (
    L1LinearPanel,
    L1PrivateVsNonprivatePanel,
    _fit_l1_private,
    _l1_linear_data,
)
from repro import DistributionSpec

FEATURES = DistributionSpec("lognormal", {"sigma": 0.6})
NOISE = DistributionSpec("gaussian", {"scale": 0.1})

D_SERIES = [200, 400, 800] if FULL else [20, 80]
N_FIXED = 10_000 if FULL else 3000
EPS_SWEEP = [0.5, 1.0, 2.0, 4.0]
N_SWEEP = [10_000, 30_000, 90_000] if FULL else [2000, 4000, 8000]
D_FIXED = 400 if FULL else 40


def test_fig01_dpfw_linear(benchmark):
    # Timing sample: one representative private fit.
    timing_rng = np.random.default_rng(0)
    timing_data = _l1_linear_data(N_FIXED, D_SERIES[0], FEATURES, NOISE,
                                  timing_rng)
    benchmark.pedantic(
        lambda: _fit_l1_private("dpfw", timing_data, 1.0, 5.0, 1e-5,
                                np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    # Panel (a): error vs epsilon, one curve per dimension.
    point_a = L1LinearPanel(solver="dpfw", features=FEATURES, noise=NOISE,
                            sweep="epsilon", n_fixed=N_FIXED)
    panel_a = run_sweep(point_a, EPS_SWEEP, D_SERIES, seed=10)
    emit_table("fig01", "Figure 1(a): excess risk vs epsilon "
               f"(n={N_FIXED}, linear, lognormal x)", "epsilon", EPS_SWEEP,
               panel_a)
    assert_finite(panel_a)
    assert_trending_down(panel_a, slack=0.3)
    assert_dimension_insensitive(panel_a)

    # Panel (b): error vs n at eps = 1.
    point_b = L1LinearPanel(solver="dpfw", features=FEATURES, noise=NOISE,
                            sweep="n", eps_fixed=1.0)
    panel_b = run_sweep(point_b, N_SWEEP, D_SERIES, seed=11)
    emit_table("fig01", "Figure 1(b): excess risk vs n (eps=1)", "n", N_SWEEP,
               panel_b)
    assert_finite(panel_b)
    assert_trending_down(panel_b, slack=0.3)

    # Panel (c): private vs non-private vs n at fixed d.
    point_c = L1PrivateVsNonprivatePanel(solver="dpfw", features=FEATURES,
                                         noise=NOISE, d_fixed=D_FIXED)
    panel_c = run_sweep(point_c, N_SWEEP, ["private(eps=1)", "non-private"],
                        seed=12)
    emit_table("fig01", f"Figure 1(c): private vs non-private (d={D_FIXED})",
               "n", N_SWEEP, panel_c)
    assert_finite(panel_c)
    # Non-private must dominate the private fit at every n.
    for i in range(len(N_SWEEP)):
        assert panel_c["non-private"][i] <= panel_c["private(eps=1)"][i] + 1e-6
