"""Figure 1 — Algorithm 1 on linear regression with log-normal features.

Paper setup: ``x ~ Lognormal(0, 0.6)``, label noise ``N(0, 0.1)``,
``w*`` in the unit ℓ1 ball.  Three panels:
(a) excess risk vs ε for several d at fixed n;
(b) excess risk vs n for several d at ε = 1;
(c) private vs non-private risk gap vs n at fixed d.
"""

import numpy as np

from _common import (
    FULL,
    assert_dimension_insensitive,
    assert_finite,
    assert_trending_down,
    emit_table,
    run_sweep,
)
from repro import (
    DistributionSpec,
    HeavyTailedDPFW,
    L1Ball,
    SquaredLoss,
    l1_ball_truth,
    make_linear_data,
)
from repro.baselines import FrankWolfe

LOSS = SquaredLoss()
FEATURES = DistributionSpec("lognormal", {"sigma": 0.6})
NOISE = DistributionSpec("gaussian", {"scale": 0.1})

D_SERIES = [200, 400, 800] if FULL else [20, 80]
N_FIXED = 10_000 if FULL else 3000
EPS_SWEEP = [0.5, 1.0, 2.0, 4.0]
N_SWEEP = [10_000, 30_000, 90_000] if FULL else [2000, 4000, 8000]
D_FIXED = 400 if FULL else 40


def _make(n, d, rng):
    w_star = l1_ball_truth(d, rng)
    return make_linear_data(n, w_star, FEATURES, NOISE, rng=rng)


def _excess(w, data):
    return (LOSS.value(w, data.features, data.labels)
            - LOSS.value(data.w_star, data.features, data.labels))


def _fit_private(data, epsilon, rng):
    solver = HeavyTailedDPFW(LOSS, L1Ball(data.dimension), epsilon=epsilon,
                             tau=5.0, schedule_mode="theory")
    return solver.fit(data.features, data.labels, rng=rng).w


def test_fig01_dpfw_linear(benchmark):
    # Timing sample: one representative private fit.
    timing_rng = np.random.default_rng(0)
    timing_data = _make(N_FIXED, D_SERIES[0], timing_rng)
    benchmark.pedantic(
        lambda: _fit_private(timing_data, 1.0, np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    # Panel (a): error vs epsilon, one curve per dimension.
    def point_a(d, eps, rng):
        data = _make(N_FIXED, d, rng)
        return _excess(_fit_private(data, eps, rng), data)

    panel_a = run_sweep(point_a, EPS_SWEEP, D_SERIES, seed=10)
    emit_table("fig01", "Figure 1(a): excess risk vs epsilon "
               f"(n={N_FIXED}, linear, lognormal x)", "epsilon", EPS_SWEEP,
               panel_a)
    assert_finite(panel_a)
    assert_trending_down(panel_a, slack=0.3)
    assert_dimension_insensitive(panel_a)

    # Panel (b): error vs n at eps = 1.
    def point_b(d, n, rng):
        data = _make(n, d, rng)
        return _excess(_fit_private(data, 1.0, rng), data)

    panel_b = run_sweep(point_b, N_SWEEP, D_SERIES, seed=11)
    emit_table("fig01", "Figure 1(b): excess risk vs n (eps=1)", "n", N_SWEEP,
               panel_b)
    assert_finite(panel_b)
    assert_trending_down(panel_b, slack=0.3)

    # Panel (c): private vs non-private vs n at fixed d.
    def point_c(kind, n, rng):
        data = _make(n, D_FIXED, rng)
        if kind == "private(eps=1)":
            w = _fit_private(data, 1.0, rng)
        else:
            w = FrankWolfe(LOSS, L1Ball(D_FIXED), n_iterations=60).fit(
                data.features, data.labels)
        return _excess(w, data)

    panel_c = run_sweep(point_c, N_SWEEP, ["private(eps=1)", "non-private"],
                        seed=12)
    emit_table("fig01", f"Figure 1(c): private vs non-private (d={D_FIXED})",
               "n", N_SWEEP, panel_c)
    assert_finite(panel_c)
    # Non-private must dominate the private fit at every n.
    for i in range(len(N_SWEEP)):
        assert panel_c["non-private"][i] <= panel_c["private(eps=1)"][i] + 1e-6
