"""Figure 1 — Algorithm 1 on linear regression with log-normal features.

Paper setup: ``x ~ Lognormal(0, 0.6)``, label noise ``N(0, 0.1)``,
``w*`` in the unit ℓ1 ball.  Three panels:
(a) excess risk vs ε for several d at fixed n;
(b) excess risk vs n for several d at ε = 1;
(c) private vs non-private risk gap vs n at fixed d.

The panel grids/seeds/titles live in the catalog entry
``fig01_dpfw_linear`` (`repro.experiments.catalog`); this file times
one representative fit and asserts the figure's qualitative shapes.
"""

import numpy as np

from _common import (
    FULL,
    assert_dimension_insensitive,
    assert_finite,
    assert_trending_down,
    run_catalog_bench,
)
from _scenarios import _fit_l1_private, _l1_linear_data
from repro.experiments import bench


def test_fig01_dpfw_linear(benchmark):
    definition = bench("fig01_dpfw_linear", full=FULL)
    panel_a_def = definition.panels[0]
    point = panel_a_def.point
    # Timing sample: one representative private fit.
    timing_data = _l1_linear_data(point.n_fixed, panel_a_def.series_values[0],
                                  point.features, point.noise,
                                  np.random.default_rng(0))
    benchmark.pedantic(
        lambda: _fit_l1_private(point.solver, timing_data, 1.0, point.tau,
                                point.delta, np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    panel_a, panel_b, panel_c = run_catalog_bench("fig01_dpfw_linear")

    # Panel (a): error vs epsilon, one curve per dimension.
    assert_finite(panel_a)
    assert_trending_down(panel_a, slack=0.3)
    assert_dimension_insensitive(panel_a)

    # Panel (b): error vs n at eps = 1.
    assert_finite(panel_b)
    assert_trending_down(panel_b, slack=0.3)

    # Panel (c): non-private must dominate the private fit at every n.
    assert_finite(panel_c)
    for i in range(len(definition.panels[2].sweep_values)):
        assert panel_c["non-private"][i] <= panel_c["private(eps=1)"][i] + 1e-6
