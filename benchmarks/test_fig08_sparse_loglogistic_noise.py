"""Figure 8 — Algorithm 3 with Gaussian features and log-logistic noise.

Paper setup: ``x ~ N(0, 5)``, noise log-logistic with shape c = 0.1 —
the most extreme tail in the paper (the noise has no finite mean), so
the catalog entry ``fig08_sparse_loglogistic_noise`` reports the
parameter error ``||w - w*||_2`` instead of the (meaningless) excess
empirical risk.
"""

import numpy as np

from _common import FULL, run_catalog_bench
from _sparse_figs import assert_sparse_panels
from repro import HeavyTailedSparseLinearRegression, make_linear_data, \
    sparse_truth
from repro.experiments import bench


def test_fig08_sparse_loglogistic_noise(benchmark):
    point = bench("fig08_sparse_loglogistic_noise", full=FULL).panels[0].point
    assert point.metric == "param_error"  # infinite-mean noise (see above)
    rng = np.random.default_rng(0)
    w_star = sparse_truth(50, 5, rng, norm_bound=0.5)
    data = make_linear_data(8000, w_star, point.features, point.noise,
                            rng=rng)
    solver = HeavyTailedSparseLinearRegression(sparsity=5, epsilon=1.0,
                                               delta=1e-5)
    benchmark.pedantic(
        lambda: solver.fit(data.features, data.labels,
                           rng=np.random.default_rng(1)),
        rounds=1, iterations=1,
    )
    assert_sparse_panels(run_catalog_bench("fig08_sparse_loglogistic_noise"))
