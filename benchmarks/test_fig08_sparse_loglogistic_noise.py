"""Figure 8 — Algorithm 3 with Gaussian features and log-logistic noise.

Paper setup: ``x ~ N(0, 5)``, noise log-logistic with shape c = 0.1 —
the most extreme tail in the paper (the noise has no finite mean).
"""

import numpy as np

from _sparse_figs import linear_sparse_panels
from repro import DistributionSpec, HeavyTailedSparseLinearRegression, \
    make_linear_data, sparse_truth

FEATURES = DistributionSpec("gaussian", {"scale": 2.24})
# Paper noise: log-logistic with c = 0.1 -- it has no finite mean, so
# the empirical excess risk is dominated by a few astronomical noise
# draws and is meaningless as a metric; the bench therefore reports the
# parameter error ||w - w*||_2 (see _sparse_figs.linear_sparse_panels).
NOISE = DistributionSpec("log_logistic", {"c": 0.1})


def test_fig08_sparse_loglogistic_noise(benchmark):
    rng = np.random.default_rng(0)
    w_star = sparse_truth(50, 5, rng, norm_bound=0.5)
    data = make_linear_data(8000, w_star, FEATURES, NOISE, rng=rng)
    solver = HeavyTailedSparseLinearRegression(sparsity=5, epsilon=1.0,
                                               delta=1e-5)
    benchmark.pedantic(
        lambda: solver.fit(data.features, data.labels,
                           rng=np.random.default_rng(1)),
        rounds=1, iterations=1,
    )
    linear_sparse_panels("fig08", NOISE, FEATURES, seed=80,
                         metric="param_error")
