"""Figure 4 — Algorithm 1 on "real" data (Winnipeg, Year Prediction),
logistic regression.

Same protocol as Figure 3 with the logistic loss; labels of the
stand-ins are ±1 from a planted logistic model.
"""

import numpy as np

from _common import FULL, assert_finite, emit_table, run_sweep
from repro import HeavyTailedDPFW, L1Ball, LogisticLoss, load_real_like
from repro.baselines import FrankWolfe

LOSS = LogisticLoss()
N_SWEEP = [20_000, 40_000, 60_000] if FULL else [1500, 3000, 6000]
EPS_SERIES = [0.5, 1.0, 2.0]


def _point_factory(dataset):
    def point(eps, n, rng):
        data = load_real_like(dataset, rng=rng, n_samples=n)
        ball = L1Ball(data.dimension)
        # Best risk along the FW path (see fig03 for the rationale).
        fw = FrankWolfe(LOSS, ball, n_iterations=120, record_history=True)
        fw.fit(data.features, data.labels)
        opt_risk = min(fw.risks_)
        solver = HeavyTailedDPFW(LOSS, ball, epsilon=eps, tau=10.0,
                                 schedule_mode="theory")
        w_priv = solver.fit(data.features, data.labels, rng=rng).w
        return LOSS.value(w_priv, data.features, data.labels) - opt_risk
    return point


def test_fig04_dpfw_real_logistic(benchmark):
    timing_rng = np.random.default_rng(0)
    data = load_real_like("winnipeg", rng=timing_rng, n_samples=N_SWEEP[0])
    solver = HeavyTailedDPFW(LOSS, L1Ball(data.dimension), epsilon=1.0,
                             tau=10.0)
    benchmark.pedantic(
        lambda: solver.fit(data.features, data.labels,
                           rng=np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    for dataset in ("winnipeg", "year_prediction"):
        panel = run_sweep(_point_factory(dataset), N_SWEEP, EPS_SERIES,
                          seed=40 + sum(ord(c) for c in dataset) % 7)
        emit_table("fig04", f"Figure 4 ({dataset}): excess logistic risk vs n",
                   "n", N_SWEEP, panel)
        assert_finite(panel)
        for values in panel.values():
            assert min(values) > -0.05
