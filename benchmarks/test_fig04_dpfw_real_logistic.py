"""Figure 4 — Algorithm 1 on "real" data (Winnipeg, Year Prediction),
logistic regression.

Same protocol as Figure 3 with the logistic loss; labels of the
stand-ins are ±1 from a planted logistic model.  One catalog panel per
dataset (``fig04_dpfw_real_logistic``).
"""

import numpy as np

from _common import FULL, assert_finite, run_catalog_bench
from repro import HeavyTailedDPFW, L1Ball, LogisticLoss, load_real_like
from repro.experiments import bench


def test_fig04_dpfw_real_logistic(benchmark):
    definition = bench("fig04_dpfw_real_logistic", full=FULL)
    n0 = definition.panels[0].sweep_values[0]
    data = load_real_like("winnipeg", rng=np.random.default_rng(0),
                          n_samples=n0)
    solver = HeavyTailedDPFW(LogisticLoss(), L1Ball(data.dimension),
                             epsilon=1.0, tau=10.0)
    benchmark.pedantic(
        lambda: solver.fit(data.features, data.labels,
                           rng=np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    for panel in run_catalog_bench("fig04_dpfw_real_logistic"):
        assert_finite(panel)
        for values in panel.values():
            assert min(values) > -0.05
