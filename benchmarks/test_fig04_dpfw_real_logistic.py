"""Figure 4 — Algorithm 1 on "real" data (Winnipeg, Year Prediction),
logistic regression.

Same protocol as Figure 3 with the logistic loss; labels of the
stand-ins are ±1 from a planted logistic model.
"""

import numpy as np

from _common import FULL, assert_finite, emit_table, run_sweep
from _scenarios import RealDataPanel
from repro import HeavyTailedDPFW, L1Ball, LogisticLoss, load_real_like

LOSS = LogisticLoss()
N_SWEEP = [20_000, 40_000, 60_000] if FULL else [1500, 3000, 6000]
EPS_SERIES = [0.5, 1.0, 2.0]


def test_fig04_dpfw_real_logistic(benchmark):
    timing_rng = np.random.default_rng(0)
    data = load_real_like("winnipeg", rng=timing_rng, n_samples=N_SWEEP[0])
    solver = HeavyTailedDPFW(LOSS, L1Ball(data.dimension), epsilon=1.0,
                             tau=10.0)
    benchmark.pedantic(
        lambda: solver.fit(data.features, data.labels,
                           rng=np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    for dataset in ("winnipeg", "year_prediction"):
        point = RealDataPanel(dataset=dataset, loss="logistic", tau=10.0)
        panel = run_sweep(point, N_SWEEP, EPS_SERIES,
                          seed=40 + sum(ord(c) for c in dataset) % 7)
        emit_table("fig04", f"Figure 4 ({dataset}): excess logistic risk vs n",
                   "n", N_SWEEP, panel)
        assert_finite(panel)
        for values in panel.values():
            assert min(values) > -0.05
