"""Ablation — smoothed Catoni estimation vs naive gradient clipping.

The introduction argues that gradient truncation/clipping (the DP-SGD
and regular DP-FW route) either breaks privacy or loses utility on heavy
tails.  This bench compares, at matched privacy levels, Algorithm 1
against (i) the clipped regular DP-FW of Talwar et al. and (ii) DP-SGD
on heavy-tailed log-normal linear regression.  Catalog entry:
``ablation_catoni_vs_clipping``.
"""

import numpy as np

from _common import FULL, assert_finite, run_catalog_bench
from _scenarios import _l1_linear_data
from repro import HeavyTailedDPFW, L1Ball, SquaredLoss
from repro.experiments import bench


def test_ablation_catoni_vs_clipping(benchmark):
    definition = bench("ablation_catoni_vs_clipping", full=FULL)
    point = definition.panels[0].point
    n0 = definition.panels[0].sweep_values[0]
    data0 = _l1_linear_data(n0, point.d, point.features, point.noise,
                            np.random.default_rng(0))
    solver0 = HeavyTailedDPFW(SquaredLoss(), L1Ball(point.d), epsilon=1.0,
                              tau=5.0)
    benchmark.pedantic(
        lambda: solver0.fit(data0.features, data0.labels,
                            rng=np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    table, = run_catalog_bench("ablation_catoni_vs_clipping")
    assert_finite(table)
    # Honest reading: at these scales the clipped DP-FW is empirically
    # competitive -- the paper's objection to clipping is the *invalid
    # privacy claim* under unbounded gradients and the missing
    # convergence theory, not a guaranteed utility loss.  We assert the
    # robust facts: the Catoni method improves with n and it beats the
    # clipped *SGD* route (the [1]-style baseline the intro names).
    assert table["catoni-dpfw"][-1] <= table["catoni-dpfw"][0] * 1.1
    assert table["catoni-dpfw"][-1] <= table["dp-sgd"][-1] * 1.2
