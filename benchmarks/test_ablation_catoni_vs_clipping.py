"""Ablation — smoothed Catoni estimation vs naive gradient clipping.

The introduction argues that gradient truncation/clipping (the DP-SGD
and regular DP-FW route) either breaks privacy or loses utility on heavy
tails.  This bench compares, at matched privacy levels, Algorithm 1
against (i) the clipped regular DP-FW of Talwar et al. and (ii) DP-SGD
on heavy-tailed log-normal linear regression.
"""

import numpy as np

from _common import FULL, assert_finite, emit_table, run_sweep
from _scenarios import CatoniVsClippingAblation, _l1_linear_data
from repro import DistributionSpec, HeavyTailedDPFW, L1Ball, SquaredLoss

LOSS = SquaredLoss()
FEATURES = DistributionSpec("lognormal", {"sigma": 0.8})  # heavier than Fig 1
NOISE = DistributionSpec("gaussian", {"scale": 0.1})
D = 60
N_SWEEP = [20_000, 60_000] if FULL else [4000, 12_000]
DELTA = 1e-5


def test_ablation_catoni_vs_clipping(benchmark):
    data0 = _l1_linear_data(N_SWEEP[0], D, FEATURES, NOISE,
                            np.random.default_rng(0))
    solver0 = HeavyTailedDPFW(LOSS, L1Ball(D), epsilon=1.0, tau=5.0)
    benchmark.pedantic(
        lambda: solver0.fit(data0.features, data0.labels,
                            rng=np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    point = CatoniVsClippingAblation(features=FEATURES, noise=NOISE, d=D,
                                     delta=DELTA)
    table = run_sweep(point, N_SWEEP,
                      ["catoni-dpfw", "clipped-dpfw", "dp-sgd"], seed=200)
    emit_table("ablation_catoni_vs_clipping",
               "Ablation: Catoni DP-FW vs clipped baselines (excess risk)",
               "n", N_SWEEP, table)
    assert_finite(table)
    # Honest reading: at these scales the clipped DP-FW is empirically
    # competitive -- the paper's objection to clipping is the *invalid
    # privacy claim* under unbounded gradients and the missing
    # convergence theory, not a guaranteed utility loss.  We assert the
    # robust facts: the Catoni method improves with n and it beats the
    # clipped *SGD* route (the [1]-style baseline the intro names).
    assert table["catoni-dpfw"][-1] <= table["catoni-dpfw"][0] * 1.1
    assert table["catoni-dpfw"][-1] <= table["dp-sgd"][-1] * 1.2
