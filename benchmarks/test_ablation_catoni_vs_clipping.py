"""Ablation — smoothed Catoni estimation vs naive gradient clipping.

The introduction argues that gradient truncation/clipping (the DP-SGD
and regular DP-FW route) either breaks privacy or loses utility on heavy
tails.  This bench compares, at matched privacy levels, Algorithm 1
against (i) the clipped regular DP-FW of Talwar et al. and (ii) DP-SGD
on heavy-tailed log-normal linear regression.
"""

import numpy as np

from _common import FULL, assert_finite, emit_table, run_sweep
from repro import (
    DistributionSpec,
    HeavyTailedDPFW,
    L1Ball,
    SquaredLoss,
    l1_ball_truth,
    make_linear_data,
)
from repro.baselines import DPSGD, RegularDPFrankWolfe
from repro.geometry import project_l1_ball

LOSS = SquaredLoss()
FEATURES = DistributionSpec("lognormal", {"sigma": 0.8})  # heavier than Fig 1
NOISE = DistributionSpec("gaussian", {"scale": 0.1})
D = 60
N_SWEEP = [20_000, 60_000] if FULL else [4000, 12_000]
DELTA = 1e-5


def _make(n, rng):
    return make_linear_data(n, l1_ball_truth(D, rng), FEATURES, NOISE, rng=rng)


def _excess(w, data):
    return (LOSS.value(w, data.features, data.labels)
            - LOSS.value(data.w_star, data.features, data.labels))


def test_ablation_catoni_vs_clipping(benchmark):
    data0 = _make(N_SWEEP[0], np.random.default_rng(0))
    solver0 = HeavyTailedDPFW(LOSS, L1Ball(D), epsilon=1.0, tau=5.0)
    benchmark.pedantic(
        lambda: solver0.fit(data0.features, data0.labels,
                            rng=np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    def point(method, n, rng):
        data = _make(n, rng)
        if method == "catoni-dpfw":
            w = HeavyTailedDPFW(LOSS, L1Ball(D), epsilon=1.0, tau=5.0).fit(
                data.features, data.labels, rng=rng).w
        elif method == "clipped-dpfw":
            w = RegularDPFrankWolfe(LOSS, L1Ball(D), epsilon=1.0, delta=DELTA,
                                    lipschitz_bound=5.0,
                                    n_iterations=20).fit(
                data.features, data.labels, rng=rng).w
        else:  # dp-sgd
            w = DPSGD(LOSS, epsilon=1.0, delta=DELTA, clip_norm=5.0,
                      learning_rate=0.05, n_iterations=30,
                      projection=lambda v: project_l1_ball(v, 1.0)).fit(
                data.features, data.labels, rng=rng).w
        return _excess(w, data)

    table = run_sweep(point, N_SWEEP,
                      ["catoni-dpfw", "clipped-dpfw", "dp-sgd"], seed=200)
    emit_table("ablation_catoni_vs_clipping",
               "Ablation: Catoni DP-FW vs clipped baselines (excess risk)",
               "n", N_SWEEP, table)
    assert_finite(table)
    # Honest reading: at these scales the clipped DP-FW is empirically
    # competitive -- the paper's objection to clipping is the *invalid
    # privacy claim* under unbounded gradients and the missing
    # convergence theory, not a guaranteed utility loss.  We assert the
    # robust facts: the Catoni method improves with n and it beats the
    # clipped *SGD* route (the [1]-style baseline the intro names).
    assert table["catoni-dpfw"][-1] <= table["catoni-dpfw"][0] * 1.1
    assert table["catoni-dpfw"][-1] <= table["dp-sgd"][-1] * 1.2
