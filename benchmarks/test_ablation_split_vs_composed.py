"""Ablation — Algorithm 1's data splitting vs full-batch composition.

Algorithm 1 runs each iteration on a fresh disjoint chunk (pure ε-DP by
parallel composition); the alternative reuses the whole dataset every
iteration and pays advanced composition (as Algorithm 2 does).  The
paper explains why its *proof* needs splitting; this bench measures the
empirical trade-off: splitting sees ``n/T`` samples per estimate, while
composition sees all ``n`` but at per-step budget
``eps / (2 sqrt(2 T log(1/delta)))``.
"""

import numpy as np

from _common import FULL, assert_finite, emit_table, run_sweep
from _scenarios import (
    SplitVsComposedAblation,
    _composed_catoni_dpfw,
    _l1_linear_data,
)
from repro import DistributionSpec

FEATURES = DistributionSpec("lognormal", {"sigma": 0.6})
NOISE = DistributionSpec("gaussian", {"scale": 0.1})
D = 40
N_SWEEP = [20_000, 60_000] if FULL else [4000, 12_000]
DELTA = 1e-5


def test_ablation_split_vs_composed(benchmark):
    data0 = _l1_linear_data(N_SWEEP[0], D, FEATURES, NOISE,
                            np.random.default_rng(0))
    benchmark.pedantic(
        lambda: _composed_catoni_dpfw(data0, 1.0, D, DELTA,
                                      np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    point = SplitVsComposedAblation(features=FEATURES, noise=NOISE, d=D,
                                    delta=DELTA)
    table = run_sweep(point, N_SWEEP,
                      ["split (paper, eps-DP)", "composed ((eps,delta)-DP)"],
                      seed=230)
    emit_table("ablation_split",
               "Ablation: data splitting vs advanced composition (excess risk)",
               "n", N_SWEEP, table)
    assert_finite(table)
    # Both must be in a sane range; no formal winner asserted (the paper
    # leaves the composed variant as an open question).
    for values in table.values():
        assert max(values) < 10.0
