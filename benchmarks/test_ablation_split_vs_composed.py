"""Ablation — Algorithm 1's data splitting vs full-batch composition.

Algorithm 1 runs each iteration on a fresh disjoint chunk (pure ε-DP by
parallel composition); the alternative reuses the whole dataset every
iteration and pays advanced composition (as Algorithm 2 does).  The
paper explains why its *proof* needs splitting; this bench measures the
empirical trade-off: splitting sees ``n/T`` samples per estimate, while
composition sees all ``n`` but at per-step budget
``eps / (2 sqrt(2 T log(1/delta)))``.  Catalog entry:
``ablation_split_vs_composed``.
"""

import numpy as np

from _common import FULL, assert_finite, run_catalog_bench
from _scenarios import _composed_catoni_dpfw, _l1_linear_data
from repro.experiments import bench


def test_ablation_split_vs_composed(benchmark):
    definition = bench("ablation_split_vs_composed", full=FULL)
    point = definition.panels[0].point
    n0 = definition.panels[0].sweep_values[0]
    data0 = _l1_linear_data(n0, point.d, point.features, point.noise,
                            np.random.default_rng(0))
    benchmark.pedantic(
        lambda: _composed_catoni_dpfw(data0, 1.0, point.d, point.delta,
                                      np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    table, = run_catalog_bench("ablation_split_vs_composed")
    assert_finite(table)
    # Both must be in a sane range; no formal winner asserted (the paper
    # leaves the composed variant as an open question).
    for values in table.values():
        assert max(values) < 10.0
