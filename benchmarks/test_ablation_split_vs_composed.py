"""Ablation — Algorithm 1's data splitting vs full-batch composition.

Algorithm 1 runs each iteration on a fresh disjoint chunk (pure ε-DP by
parallel composition); the alternative reuses the whole dataset every
iteration and pays advanced composition (as Algorithm 2 does).  The
paper explains why its *proof* needs splitting; this bench measures the
empirical trade-off: splitting sees ``n/T`` samples per estimate, while
composition sees all ``n`` but at per-step budget
``eps / (2 sqrt(2 T log(1/delta)))``.
"""

import math

import numpy as np

from _common import FULL, assert_finite, emit_table, run_sweep
from repro import (
    DistributionSpec,
    HeavyTailedDPFW,
    L1Ball,
    SquaredLoss,
    l1_ball_truth,
    make_linear_data,
)
from repro.core import classic_fw_steps
from repro.estimators import CatoniEstimator
from repro.privacy import ExponentialMechanism

LOSS = SquaredLoss()
FEATURES = DistributionSpec("lognormal", {"sigma": 0.6})
NOISE = DistributionSpec("gaussian", {"scale": 0.1})
D = 40
N_SWEEP = [20_000, 60_000] if FULL else [4000, 12_000]
DELTA = 1e-5


def _make(n, rng):
    return make_linear_data(n, l1_ball_truth(D, rng), FEATURES, NOISE, rng=rng)


def _composed_catoni_dpfw(data, epsilon, rng):
    """Full-batch Catoni DP-FW under advanced composition (ε, δ)-DP."""
    n = data.n_samples
    solver = HeavyTailedDPFW(LOSS, L1Ball(D), epsilon=epsilon, tau=5.0)
    schedule = solver.resolve_schedule(n)
    T = schedule.n_iterations
    catoni = CatoniEstimator(scale=schedule.scale, beta=schedule.beta)
    ball = L1Ball(D)
    eps_step = epsilon / (2.0 * math.sqrt(2.0 * T * math.log(1.0 / DELTA)))
    sensitivity = ball.l1_diameter() * catoni.sensitivity(n)
    mechanism = ExponentialMechanism(epsilon=eps_step, sensitivity=sensitivity)
    steps = classic_fw_steps(T)
    w = ball.initial_point()
    for t in range(T):
        grads = LOSS.per_sample_gradients(w, data.features, data.labels)
        g_tilde = catoni.estimate_columns(grads)
        index = mechanism.select(ball.vertex_scores(g_tilde), rng=rng)
        w = (1.0 - steps[t]) * w + steps[t] * ball.vertex(index)
    return w


def test_ablation_split_vs_composed(benchmark):
    data0 = _make(N_SWEEP[0], np.random.default_rng(0))
    benchmark.pedantic(
        lambda: _composed_catoni_dpfw(data0, 1.0, np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    def point(method, n, rng):
        data = _make(n, rng)
        if method == "split (paper, eps-DP)":
            w = HeavyTailedDPFW(LOSS, L1Ball(D), epsilon=1.0, tau=5.0).fit(
                data.features, data.labels, rng=rng).w
        else:
            w = _composed_catoni_dpfw(data, 1.0, rng)
        return (LOSS.value(w, data.features, data.labels)
                - LOSS.value(data.w_star, data.features, data.labels))

    table = run_sweep(point, N_SWEEP,
                      ["split (paper, eps-DP)", "composed ((eps,delta)-DP)"],
                      seed=230)
    emit_table("ablation_split",
               "Ablation: data splitting vs advanced composition (excess risk)",
               "n", N_SWEEP, table)
    assert_finite(table)
    # Both must be in a sane range; no formal winner asserted (the paper
    # leaves the composed variant as an open question).
    for values in table.values():
        assert max(values) < 10.0
