"""Ablation — Peeling (Algorithm 4) vs dense Laplace release.

Private sparse mean estimation: select-then-release (Peeling, error
~ s log d) against noise-everything-then-threshold (error ~ d).  The
gap should widen as the ambient dimension grows — the core argument for
the paper's high-dimensional design.
"""

import numpy as np

from _common import FULL, assert_finite, emit_table, run_sweep
from _scenarios import PeelingVsDenseAblation
from repro.core import peeling
from repro.estimators import CatoniEstimator, optimal_scale

N = 20_000 if FULL else 5000
S = 5
D_SWEEP = [100, 400, 1600] if FULL else [50, 200, 800]


def _population(d, rng):
    mean = np.zeros(d)
    support = rng.choice(d, size=S, replace=False)
    mean[support] = rng.choice([-0.5, 0.5], size=S)
    x = rng.normal(loc=mean, scale=1.0, size=(N, d))
    # heavy-tailed contamination
    mask = rng.uniform(size=N) < 0.01
    x[mask] *= 50.0
    return mean, x


def test_ablation_peeling_vs_dense(benchmark):
    rng0 = np.random.default_rng(0)
    mean0, x0 = _population(D_SWEEP[0], rng0)
    catoni = CatoniEstimator(scale=optimal_scale(N, 2.0, 0.05))

    def one_peel():
        robust = catoni.estimate_columns(x0)
        return peeling(robust, S, 1.0, 1e-5, catoni.sensitivity(N),
                       rng=np.random.default_rng(1))

    benchmark.pedantic(one_peel, rounds=1, iterations=1)

    point = PeelingVsDenseAblation(n=N, s=S)
    table = run_sweep(point, D_SWEEP, ["peeling", "dense-laplace"], seed=220)
    emit_table("ablation_peeling",
               "Ablation: sparse mean sq. error, Peeling vs dense release",
               "d", D_SWEEP, table)
    assert_finite(table)
    # At the largest dimension Peeling must win decisively.
    assert table["peeling"][-1] < table["dense-laplace"][-1] / 4.0
    # And the dense error must grow much faster with d.
    dense_growth = table["dense-laplace"][-1] / table["dense-laplace"][0]
    peel_growth = max(table["peeling"][-1], 1e-9) / max(table["peeling"][0], 1e-9)
    assert dense_growth > 2.0 * peel_growth
