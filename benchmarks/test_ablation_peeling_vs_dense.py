"""Ablation — Peeling (Algorithm 4) vs dense Laplace release.

Private sparse mean estimation: select-then-release (Peeling, error
~ s log d) against noise-everything-then-threshold (error ~ d).  The
gap should widen as the ambient dimension grows — the core argument for
the paper's high-dimensional design.  Catalog entry:
``ablation_peeling_vs_dense``.
"""

import numpy as np

from _common import FULL, assert_finite, run_catalog_bench
from repro.core import peeling
from repro.estimators import CatoniEstimator, optimal_scale
from repro.experiments import bench


def test_ablation_peeling_vs_dense(benchmark):
    definition = bench("ablation_peeling_vs_dense", full=FULL)
    point = definition.panels[0].point
    d0 = definition.panels[0].sweep_values[0]
    # Timing sample: one robust-estimate + peel at the smallest d.
    rng0 = np.random.default_rng(0)
    mean0 = np.zeros(d0)
    support = rng0.choice(d0, size=point.s, replace=False)
    mean0[support] = rng0.choice([-0.5, 0.5], size=point.s)
    x0 = rng0.normal(loc=mean0, scale=1.0, size=(point.n, d0))
    mask = rng0.uniform(size=point.n) < 0.01  # heavy-tailed contamination
    x0[mask] *= 50.0
    catoni = CatoniEstimator(scale=optimal_scale(point.n, 2.0, 0.05))

    def one_peel():
        robust = catoni.estimate_columns(x0)
        return peeling(robust, point.s, 1.0, 1e-5,
                       catoni.sensitivity(point.n),
                       rng=np.random.default_rng(1))

    benchmark.pedantic(one_peel, rounds=1, iterations=1)

    table, = run_catalog_bench("ablation_peeling_vs_dense")
    assert_finite(table)
    # At the largest dimension Peeling must win decisively.
    assert table["peeling"][-1] < table["dense-laplace"][-1] / 4.0
    # And the dense error must grow much faster with d.
    dense_growth = table["dense-laplace"][-1] / table["dense-laplace"][0]
    peel_growth = max(table["peeling"][-1], 1e-9) / max(table["peeling"][0], 1e-9)
    assert dense_growth > 2.0 * peel_growth
