"""Gate perf regressions against the committed trajectories, drift-proof.

For every suite bench (see record_perf.SUITE) this compares a *fresh*
timing snapshot against the last entry of the committed trajectory in
``benchmarks/perf/`` and fails (exit 1) when either

* the fresh ``run_id`` differs from the committed one — the optimization
  changed results, which the batched-trials contract forbids; or
* the fresh ``total_seconds`` exceeds the committed total by more than
  the noise tolerance (``REPRO_PERF_TOLERANCE``, default 0.5 — i.e.
  fresh may be at most 1.5x the committed total).

Fresh snapshots come from ``--fresh DIR`` (files written by
``record_perf.py --out DIR``) or, when omitted, are measured in-process.
Cell digests are also cross-checked where both sides share them, so a
"speedup" that silently dropped or re-keyed cells cannot pass.

Usage::

    PYTHONPATH=src python benchmarks/record_perf.py --out /tmp/perf
    PYTHONPATH=src python benchmarks/check_perf.py --fresh /tmp/perf
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Optional

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from record_perf import PERF_DIR, SUITE, load_trajectory, measure

DEFAULT_TOLERANCE = 0.5


def check_bench(filename: str, fresh: dict, tolerance: float) -> list:
    """Problems (empty when the fresh snapshot passes the gate)."""
    trajectory = load_trajectory(PERF_DIR / filename)
    if not trajectory:
        return [f"{filename}: no committed trajectory to gate against"]
    committed = trajectory[-1]
    problems = []
    if fresh["run_id"] != committed["run_id"]:
        problems.append(
            f"{filename}: run_id drift — fresh {fresh['run_id']} vs "
            f"committed {committed['run_id']} (results changed; perf is "
            f"never allowed to purchase speed with drift)")
    if fresh["config_digest"] != committed["config_digest"]:
        problems.append(
            f"{filename}: config_digest drift — fresh "
            f"{fresh['config_digest']} vs committed "
            f"{committed['config_digest']}")
    committed_cells = {c["digest"] for c in committed["cells"]}
    fresh_cells = {c["digest"] for c in fresh["cells"]}
    if committed_cells != fresh_cells:
        problems.append(
            f"{filename}: cell digest set changed "
            f"({len(committed_cells)} committed vs {len(fresh_cells)} fresh)")
    budget = committed["total_seconds"] * (1.0 + tolerance)
    if fresh["total_seconds"] > budget:
        problems.append(
            f"{filename}: perf regression — fresh {fresh['total_seconds']}s "
            f"> {budget:.6f}s (committed {committed['total_seconds']}s "
            f"+ {tolerance:.0%} tolerance)")
    return problems


def main(argv: Optional[list] = None) -> int:
    """Gate the whole suite; 0 when every bench passes."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fresh", type=Path, default=None, metavar="DIR",
        help="directory of fresh snapshots from record_perf.py --out; "
             "when omitted, the suite is measured in-process")
    parser.add_argument(
        "--tolerance", type=float,
        default=float(os.environ.get("REPRO_PERF_TOLERANCE",
                                     DEFAULT_TOLERANCE)),
        help="allowed fractional slowdown over the committed total "
             "(default %(default)s, env REPRO_PERF_TOLERANCE)")
    args = parser.parse_args(argv)

    core = None
    failures = []
    for filename, bench in SUITE.items():
        if args.fresh is not None:
            path = args.fresh / filename
            if not path.exists():
                failures.append(f"{filename}: missing fresh snapshot "
                                f"under {args.fresh}")
                continue
            fresh = json.loads(path.read_text())["trajectory"][-1]
        else:
            if core is None:
                from repro.service import ServiceCore
                core = ServiceCore()
            fresh = measure(core, bench)
        problems = check_bench(filename, fresh, args.tolerance)
        if problems:
            failures.extend(problems)
        else:
            committed = load_trajectory(PERF_DIR / filename)[-1]
            print(f"[perf] OK {filename}: {fresh['total_seconds']}s vs "
                  f"committed {committed['total_seconds']}s, run_id "
                  f"{fresh['run_id']} reproduced")
    for problem in failures:
        print(f"[perf] FAIL {problem}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
