"""Figure 3 — Algorithm 1 on "real" data (Blog, Twitter), linear regression.

The paper plots excess empirical risk vs n for several ε on the UCI Blog
Feedback and Twitter datasets; ``w*`` is computed by non-private
Frank–Wolfe.  We run the identical pipeline on the synthetic stand-ins
(see DESIGN.md §4) at subsampled row counts.  The paper's own
observation — real-data curves are noticeably less stable than the
synthetic ones — is visible here too, so the shape assertions are the
loosest of the suite.
"""

import numpy as np

from _common import FULL, assert_finite, emit_table, run_sweep
from _scenarios import RealDataPanel
from repro import HeavyTailedDPFW, L1Ball, SquaredLoss, load_real_like

LOSS = SquaredLoss()
N_SWEEP = [20_000, 40_000, 60_000] if FULL else [1500, 3000, 6000]
EPS_SERIES = [0.5, 1.0, 2.0]


def test_fig03_dpfw_real_linear(benchmark):
    timing_rng = np.random.default_rng(0)
    data = load_real_like("blog", rng=timing_rng, n_samples=N_SWEEP[0])
    solver = HeavyTailedDPFW(LOSS, L1Ball(data.dimension), epsilon=1.0,
                             tau=10.0)
    benchmark.pedantic(
        lambda: solver.fit(data.features, data.labels,
                           rng=np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    for dataset in ("blog", "twitter"):
        point = RealDataPanel(dataset=dataset, loss="squared", tau=10.0)
        panel = run_sweep(point, N_SWEEP, EPS_SERIES,
                          seed=30 + sum(ord(c) for c in dataset) % 7)
        emit_table("fig03", f"Figure 3 ({dataset}): excess risk vs n per eps",
                   "n", N_SWEEP, panel)
        assert_finite(panel)
        # Excess risk vs the (approximate) non-private optimum is
        # non-negative up to optimisation/evaluation slack.
        for values in panel.values():
            assert min(values) > -0.05
