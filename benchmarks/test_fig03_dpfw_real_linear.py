"""Figure 3 — Algorithm 1 on "real" data (Blog, Twitter), linear regression.

The paper plots excess empirical risk vs n for several ε on the UCI Blog
Feedback and Twitter datasets; ``w*`` is computed by non-private
Frank–Wolfe.  We run the identical pipeline on the synthetic stand-ins
(see DESIGN.md §4) at subsampled row counts.  The paper's own
observation — real-data curves are noticeably less stable than the
synthetic ones — is visible here too, so the shape assertions are the
loosest of the suite.  One catalog panel per dataset
(``fig03_dpfw_real_linear``).
"""

import numpy as np

from _common import FULL, assert_finite, run_catalog_bench
from repro import HeavyTailedDPFW, L1Ball, SquaredLoss, load_real_like
from repro.experiments import bench


def test_fig03_dpfw_real_linear(benchmark):
    definition = bench("fig03_dpfw_real_linear", full=FULL)
    n0 = definition.panels[0].sweep_values[0]
    data = load_real_like("blog", rng=np.random.default_rng(0), n_samples=n0)
    solver = HeavyTailedDPFW(SquaredLoss(), L1Ball(data.dimension),
                             epsilon=1.0, tau=10.0)
    benchmark.pedantic(
        lambda: solver.fit(data.features, data.labels,
                           rng=np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    for panel in run_catalog_bench("fig03_dpfw_real_linear"):
        assert_finite(panel)
        # Excess risk vs the (approximate) non-private optimum is
        # non-negative up to optimisation/evaluation slack.
        for values in panel.values():
            assert min(values) > -0.05
