"""Backward-compatible shim: scenarios live in :mod:`repro.experiments`.

The scenario dataclasses behind every figure/ablation/extension bench
moved from this file into ``repro.experiments.panels`` so that the named
catalog (``repro.experiments.catalog``) and the CLI (``python -m
repro``) can address them without the bench harness on ``sys.path``.
Import from the package in new code; this module re-exports everything
(including the shared data/fit helpers the bench timing sections use)
for existing imports and historical scripts.
"""

from repro.experiments.panels import *  # noqa: F401,F403
