"""Extension — Theorem 3: Algorithm 1 on the non-convex biweight loss.

The paper proves (Theorem 3) that Heavy-tailed DP-FW attains
``~O(1/(n eps)^{1/4})`` for robust regression with the redescending
Tukey biweight loss under Assumption 2, but runs no experiment for it.
This bench fills that gap: linear model with heavy-tailed symmetric
noise, biweight loss, error vs n and vs ε, with the convex squared-loss
run as a reference (whose Theorem 2 rate is faster, matching the
measured ordering).  Catalog entry: ``ext_robust_regression``.
"""

import numpy as np

from _common import FULL, assert_finite, assert_trending_down, \
    run_catalog_bench
from _scenarios import _l1_linear_data
from repro import BiweightLoss, HeavyTailedDPFW, L1Ball
from repro.experiments import bench


def test_ext_robust_regression(benchmark):
    definition = bench("ext_robust_regression", full=FULL)
    point = definition.panels[0].point
    n0 = definition.panels[0].sweep_values[0]
    data0 = _l1_linear_data(n0, point.d, point.features, point.noise,
                            np.random.default_rng(0))
    solver0 = HeavyTailedDPFW(BiweightLoss(c=point.biweight_c),
                              L1Ball(point.d), epsilon=1.0, tau=point.tau)
    benchmark.pedantic(
        lambda: solver0.fit(data0.features, data0.labels,
                            rng=np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    table, table_eps = run_catalog_bench("ext_robust_regression")
    assert_finite(table)
    assert_trending_down(table, slack=0.4)
    assert_finite(table_eps)
    assert_trending_down(table_eps, slack=0.4)
