"""Extension — Theorem 3: Algorithm 1 on the non-convex biweight loss.

The paper proves (Theorem 3) that Heavy-tailed DP-FW attains
``~O(1/(n eps)^{1/4})`` for robust regression with the redescending
Tukey biweight loss under Assumption 2, but runs no experiment for it.
This bench fills that gap: linear model with heavy-tailed symmetric
noise, biweight loss, error vs n and vs ε, with the convex squared-loss
run as a reference (whose Theorem 2 rate is faster, matching the
measured ordering).
"""

import numpy as np

from _common import FULL, assert_finite, assert_trending_down, emit_table, run_sweep
from _scenarios import RobustRegressionExtension, _l1_linear_data
from repro import BiweightLoss, DistributionSpec, HeavyTailedDPFW, L1Ball

D = 40
N_SWEEP = [20_000, 60_000] if FULL else [4000, 16_000]
EPS_SWEEP = [0.5, 1.0, 2.0, 4.0]
FEATURES = DistributionSpec("lognormal", {"sigma": 0.6})
# Symmetric zero-mean heavy noise (Assumption 2 wants symmetric xi):
NOISE = DistributionSpec("student_t", {"df": 3.0})
BIWEIGHT = BiweightLoss(c=2.0)


def test_ext_robust_regression(benchmark):
    data0 = _l1_linear_data(N_SWEEP[0], D, FEATURES, NOISE,
                            np.random.default_rng(0))
    solver0 = HeavyTailedDPFW(BIWEIGHT, L1Ball(D), epsilon=1.0, tau=3.0)
    benchmark.pedantic(
        lambda: solver0.fit(data0.features, data0.labels,
                            rng=np.random.default_rng(1)),
        rounds=1, iterations=1,
    )

    point = RobustRegressionExtension(features=FEATURES, noise=NOISE, d=D,
                                      sweep="n", eps_fixed=1.0)
    table = run_sweep(point, N_SWEEP, ["biweight", "squared"], seed=300)
    emit_table("ext_robust_regression",
               "Extension (Thm 3): parameter error vs n, biweight vs squared "
               "loss under t(3) noise", "n", N_SWEEP, table)
    assert_finite(table)
    assert_trending_down(table, slack=0.4)

    point_eps = RobustRegressionExtension(features=FEATURES, noise=NOISE,
                                          d=D, sweep="epsilon",
                                          n_fixed=N_SWEEP[0])
    table_eps = run_sweep(point_eps, EPS_SWEEP, ["biweight"], seed=301)
    emit_table("ext_robust_regression",
               "Extension (Thm 3): parameter error vs eps (biweight loss)",
               "epsilon", EPS_SWEEP, table_eps)
    assert_finite(table_eps)
    assert_trending_down(table_eps, slack=0.4)
