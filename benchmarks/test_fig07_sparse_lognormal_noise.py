"""Figure 7 — Algorithm 3 with Gaussian features and log-normal noise.

Paper setup: ``x ~ N(0, 5)``, noise ``Lognormal(0, 0.5)``, n = 5e4,
s* = 20; panels (a) error vs ε per d, (b) error vs n per d,
(c) error vs s* per d — all from the catalog entry
``fig07_sparse_lognormal_noise``.
"""

import numpy as np

from _common import FULL, run_catalog_bench
from _sparse_figs import assert_sparse_panels
from repro import HeavyTailedSparseLinearRegression, make_linear_data, \
    sparse_truth
from repro.experiments import bench


def test_fig07_sparse_lognormal_noise(benchmark):
    point = bench("fig07_sparse_lognormal_noise", full=FULL).panels[0].point
    rng = np.random.default_rng(0)
    w_star = sparse_truth(50, 5, rng, norm_bound=0.5)
    data = make_linear_data(8000, w_star, point.features, point.noise,
                            rng=rng)
    solver = HeavyTailedSparseLinearRegression(sparsity=5, epsilon=1.0,
                                               delta=1e-5)
    benchmark.pedantic(
        lambda: solver.fit(data.features, data.labels,
                           rng=np.random.default_rng(1)),
        rounds=1, iterations=1,
    )
    assert_sparse_panels(run_catalog_bench("fig07_sparse_lognormal_noise"))
