"""Figure 7 — Algorithm 3 with Gaussian features and log-normal noise.

Paper setup: ``x ~ N(0, 5)``, noise ``Lognormal(0, 0.5)``, n = 5e4,
s* = 20; panels (a) error vs ε per d, (b) error vs n per d,
(c) error vs s* per d.
"""

import numpy as np

from _sparse_figs import linear_sparse_panels
from repro import DistributionSpec, HeavyTailedSparseLinearRegression, \
    make_linear_data, sparse_truth

FEATURES = DistributionSpec("gaussian", {"scale": 2.24})  # N(0, 5): var 5
NOISE = DistributionSpec("lognormal", {"sigma": 0.5})


def test_fig07_sparse_lognormal_noise(benchmark):
    rng = np.random.default_rng(0)
    w_star = sparse_truth(50, 5, rng, norm_bound=0.5)
    data = make_linear_data(8000, w_star, FEATURES, NOISE, rng=rng)
    solver = HeavyTailedSparseLinearRegression(sparsity=5, epsilon=1.0,
                                               delta=1e-5)
    benchmark.pedantic(
        lambda: solver.fit(data.features, data.labels,
                           rng=np.random.default_rng(1)),
        rounds=1, iterations=1,
    )
    linear_sparse_panels("fig07", NOISE, FEATURES, seed=70)
