"""DP-SCO over the probability simplex (the paper's other polytope).

Section 4 motivates the polytope setting with "LASSO and minimization
over probability simplex".  This example runs Algorithm 1 over the
simplex: learning a convex mixture of heavy-tailed signals — e.g. a
portfolio-style aggregation problem where the weights must be a
probability vector and the returns are heavy-tailed.

Run with:  python examples/simplex_estimation.py
"""

import numpy as np

from repro import DistributionSpec, HeavyTailedDPFW, Simplex, SquaredLoss
from repro.baselines import FrankWolfe


def main() -> None:
    rng = np.random.default_rng(21)
    n, d = 40_000, 30

    # True mixture weights on the simplex (sparse-ish: 4 active assets).
    w_star = np.zeros(d)
    active = rng.choice(d, size=4, replace=False)
    w_star[active] = rng.dirichlet(np.ones(4))

    # Heavy-tailed "signal matrix": lognormal columns with distinct means.
    X = rng.lognormal(mean=0.0, sigma=0.8, size=(n, d))
    y = X @ w_star + 0.05 * rng.normal(size=n)

    loss = SquaredLoss()
    simplex = Simplex(d)

    w_fw = FrankWolfe(loss, simplex, n_iterations=150).fit(X, y)
    risk = lambda w: loss.value(w, X, y)

    print(f"risk at w*              : {risk(w_star):.5f}")
    print(f"risk non-private FW     : {risk(w_fw):.5f}")
    for eps in (0.5, 2.0, 8.0):
        solver = HeavyTailedDPFW(loss, simplex, epsilon=eps, tau=20.0)
        result = solver.fit(X, y, rng=rng)
        feasible = simplex.contains(result.w, tol=1e-8)
        top = np.argsort(result.w)[-4:]
        overlap = len(set(top.tolist()) & set(active.tolist()))
        print(f"risk private (eps={eps:>3g}) : {risk(result.w):.5f}   "
              f"feasible={feasible}  top-4 overlap={overlap}/4")


if __name__ == "__main__":
    main()
