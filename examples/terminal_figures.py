"""Render paper-style figure panels directly in the terminal.

Re-runs a small version of Figure 1(b) (excess risk vs n for two
dimensions) and draws it with the library's ASCII plotter, overlaying
the Theorem 2 rate fitted through the first measured point — a quick
visual check that the measured decay follows the predicted
``(n eps)^{-1/3}`` shape.

Run with:  python examples/terminal_figures.py
"""

import numpy as np

from repro import (
    DistributionSpec,
    HeavyTailedDPFW,
    L1Ball,
    SquaredLoss,
    l1_ball_truth,
    make_linear_data,
)
from repro.evaluation import ascii_plot
from repro.rng import spawn_rngs
from repro.theory import theorem2_rate


def measure(n: int, d: int, n_trials: int = 4, seed: int = 0) -> float:
    loss = SquaredLoss()
    errors = []
    for rng in spawn_rngs(seed + d, n_trials):
        w_star = l1_ball_truth(d, rng)
        data = make_linear_data(
            n, w_star,
            DistributionSpec("lognormal", {"sigma": 0.6}),
            DistributionSpec("gaussian", {"scale": 0.1}), rng=rng,
        )
        solver = HeavyTailedDPFW(loss, L1Ball(d), epsilon=1.0, tau=5.0)
        result = solver.fit(data.features, data.labels, rng=rng)
        errors.append(loss.value(result.w, data.features, data.labels)
                      - loss.value(w_star, data.features, data.labels))
    return float(np.mean(errors))


def main() -> None:
    sample_sizes = [3000, 6000, 12_000, 24_000]
    series = {}
    for d in (20, 80):
        series[f"d={d}"] = [measure(n, d) for n in sample_sizes]

    # Theorem 2 curve anchored at the first d=20 measurement.
    anchor = series["d=20"][0]
    raw = [theorem2_rate(n, 1.0, 20, 40, tau=5.0) for n in sample_sizes]
    series["thm2 rate"] = [anchor * r / raw[0] for r in raw]

    print(ascii_plot(sample_sizes, series, width=60, height=14,
                     title="Figure 1(b) at toy scale: excess risk vs n (eps=1)"))
    print()
    for label, values in series.items():
        print(f"  {label:>10}: " + "  ".join(f"{v:.4f}" for v in values))


if __name__ == "__main__":
    main()
