"""Private sparse recovery with heavy-tailed label noise (Algorithm 3).

Plants an s*-sparse signal, corrupts the labels with log-normal noise,
and runs the truncated DP-IHT method at several privacy levels.  Prints
support-recovery precision/recall and parameter error, plus the
non-private IHT reference.

Run with:  python examples/sparse_recovery.py
"""

import numpy as np

from repro import (
    DistributionSpec,
    HeavyTailedSparseLinearRegression,
    SquaredLoss,
    make_linear_data,
)
from repro.baselines import IterativeHardThresholding
from repro.evaluation import parameter_error, support_recovery


def main() -> None:
    rng = np.random.default_rng(3)
    n, d, s_star = 100_000, 100, 8

    # Equal-magnitude planted support: the cleanest recovery target.
    w_star = np.zeros(d)
    support = rng.choice(d, size=s_star, replace=False)
    w_star[support] = rng.choice([-1.0, 1.0], size=s_star) * 0.25

    data = make_linear_data(
        n, w_star,
        DistributionSpec("gaussian", {"scale": 1.0}),
        DistributionSpec("lognormal", {"sigma": 0.5}), rng=rng,
    )

    print(f"n={n}, d={d}, s*={s_star}, ||w*||_2={np.linalg.norm(w_star):.3f}")
    print()
    header = f"{'method':>28} | {'precision':>9} | {'recall':>7} | {'l2 error':>9}"
    print(header)
    print("-" * len(header))

    iht = IterativeHardThresholding(SquaredLoss(), sparsity=s_star,
                                    learning_rate=0.3, n_iterations=100)
    w_iht = iht.fit(data.features, data.labels)
    rec = support_recovery(w_iht, w_star)
    print(f"{'non-private IHT':>28} | {rec['precision']:>9.2f} | "
          f"{rec['recall']:>7.2f} | {parameter_error(w_iht, w_star):>9.4f}")

    for eps in (0.5, 2.0, 8.0):
        # The Theorem 7 threshold schedule targets heavy-tailed *features*;
        # with Gaussian features a modest fixed K loses no signal and cuts
        # the Peeling sensitivity sharply (see the truncation ablation).
        solver = HeavyTailedSparseLinearRegression(
            sparsity=s_star, epsilon=eps, delta=1e-5, expansion=1,
            threshold=3.0)
        result = solver.fit(data.features, data.labels, rng=rng)
        rec = support_recovery(result.w, w_star)
        label = f"Alg 3 (eps={eps:g})"
        print(f"{label:>28} | {rec['precision']:>9.2f} | "
              f"{rec['recall']:>7.2f} | {parameter_error(result.w, w_star):>9.4f}")


if __name__ == "__main__":
    main()
