"""Tour of the privacy substrate: mechanisms, composition, accounting.

Shows how the library's DP building blocks fit together — the same
pieces the paper's algorithms are assembled from.

Run with:  python examples/privacy_accounting.py
"""

import numpy as np

from repro.privacy import (
    ExponentialMechanism,
    GaussianMechanism,
    LaplaceMechanism,
    PrivacyAccountant,
    PrivacyBudget,
    advanced_composition_step,
    report_noisy_max,
)


def main() -> None:
    rng = np.random.default_rng(0)

    # Mechanisms -----------------------------------------------------------
    laplace = LaplaceMechanism(epsilon=1.0, sensitivity=0.02)
    print(f"Laplace: scale={laplace.scale:.3f}, one draw on 3.0 -> "
          f"{laplace.randomize(np.array(3.0), rng=rng):.3f}")

    gaussian = GaussianMechanism(epsilon=1.0, delta=1e-5, sensitivity=0.02)
    print(f"Gaussian: sigma={gaussian.sigma:.4f}")

    scores = np.array([1.0, 3.0, 2.5, -1.0])
    expo = ExponentialMechanism(epsilon=2.0, sensitivity=0.5)
    print(f"Exponential: probabilities={np.round(expo.probabilities(scores), 3)}"
          f" -> selected index {expo.select(scores, rng=rng)}")
    print(f"Report-noisy-max: index "
          f"{report_noisy_max(scores, epsilon=2.0, sensitivity=0.5, rng=rng)}")
    print()

    # Composition ----------------------------------------------------------
    total = PrivacyBudget(1.0, 1e-5)
    T = 25
    step = advanced_composition_step(total, T)
    print(f"target {total}; per-step budget for T={T} adaptive rounds: {step}")
    print(f"basic composition would need per-step eps={total.epsilon / T:.4f} "
          f"-- advanced composition allows {step.epsilon:.4f}")
    print()

    # Accounting -----------------------------------------------------------
    accountant = PrivacyAccountant(cap=PrivacyBudget(2.0, 1e-4))
    accountant.spend(PrivacyBudget(1.0), "exponential",
                     note="DP-FW over disjoint chunks")
    accountant.spend(PrivacyBudget(0.5, 1e-5), "peeling",
                     note="private top-s selection")
    print(accountant.summary())
    print(f"remaining under cap: {accountant.remaining()}")


if __name__ == "__main__":
    main()
