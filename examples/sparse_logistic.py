"""Private sparse logistic regression over the ℓ0 ball (Algorithm 5).

The Figure 10 setting: ℓ2-regularised logistic loss, Gaussian features,
heavy-tailed latent noise.  Algorithm 5 estimates each gradient
coordinate with the smoothed Catoni estimator and selects the support
privately with Peeling.

Run with:  python examples/sparse_logistic.py
"""

import numpy as np

from repro import (
    DistributionSpec,
    HeavyTailedSparseOptimizer,
    L2Regularized,
    LogisticLoss,
    make_logistic_data,
)
from repro.evaluation import classification_accuracy, support_recovery


def main() -> None:
    rng = np.random.default_rng(11)
    n, d, s_star = 40_000, 150, 6

    w_star = np.zeros(d)
    support = rng.choice(d, size=s_star, replace=False)
    w_star[support] = rng.choice([-1.0, 1.0], size=s_star) * 0.4

    data = make_logistic_data(
        n, w_star,
        DistributionSpec("gaussian", {"scale": 1.0}),
        DistributionSpec("logistic", {"scale": 0.5}), rng=rng,
    )
    train, test = data.split(0.8, rng=rng)
    loss = L2Regularized(LogisticLoss(), 0.01)

    print(f"n={train.n_samples} train / {test.n_samples} test, d={d}, s*={s_star}")
    print()
    for eps in (2.0, 8.0, 32.0):
        # Logistic gradients are bounded by |x| per coordinate, so a small
        # explicit Catoni scale keeps the sensitivity (hence the Peeling
        # noise) low without meaningful truncation bias.
        solver = HeavyTailedSparseOptimizer(
            loss, sparsity=s_star, epsilon=eps, delta=1e-5, tau=2.0,
            expansion=1, n_iterations=12, scale=5.0,
        )
        result = solver.fit(train.features, train.labels, rng=rng)
        rec = support_recovery(result.w, w_star)
        acc = classification_accuracy(result.w, test.features, test.labels)
        print(f"eps={eps:>5g}: support F1={rec['f1']:.2f}  "
              f"test accuracy={acc:.3f}  "
              f"risk={loss.value(result.w, test.features, test.labels):.4f}  "
              f"({result.advertised_budget})")

    base_acc = classification_accuracy(w_star, test.features, test.labels)
    print(f"\noracle w* test accuracy: {base_acc:.3f}")


if __name__ == "__main__":
    main()
