"""Fan a figure-style sweep grid out over threads and worker processes.

Demonstrates the experiment engine behind ``sweep()`` (architecture:
``docs/engine.md``):

* every (series, sweep, trial) cell is an independently seeded job, so
  the ``thread`` and ``process`` executors reproduce the ``serial``
  executor bit-for-bit while using all cores;
* an on-disk cell cache makes an immediate re-run near-instant — only
  missing cells are recomputed;
* cache keys include a fingerprint of the point function's bytecode,
  so editing the point below would invalidate its cached cells
  automatically.

The point function must be picklable for the *process* executor — a
module-level function like ``noisy_quadratic``, or a
``Scenario``/``PointSpec`` dataclass (``repro.evaluation.scenarios``).
The ``thread`` executor has no such requirement (threads share the
interpreter) and shines when the point is dominated by BLAS calls,
which release the GIL.
"""

import tempfile
import time

import numpy as np

from repro.evaluation import PointSpec, ResultCache, run_grid


def noisy_quadratic(series, x, rng, scale=1.0):
    """A stand-in for one figure cell: O(ms) of real numpy work."""
    dim = int(series)
    samples = rng.normal(size=(int(x), dim))
    w = scale * rng.normal(size=dim) / np.sqrt(dim)
    return float(np.mean((samples @ w) ** 2))


#: The same point as a picklable scenario: parameters ride along as
#: dataclass fields, and both field edits and code edits re-key the
#: cell cache.
POINT = PointSpec.of(noisy_quadratic, scale=1.0)


def timed(label, **kwargs):
    start = time.perf_counter()
    result = run_grid(POINT, "n", [1000, 2000, 4000, 8000],
                      "d", [64, 128], n_trials=6, seed=2026, **kwargs)
    elapsed = time.perf_counter() - start
    print(f"{label:>28}: {elapsed:6.2f}s")
    return result, elapsed


def main():
    serial, t_serial = timed("serial executor")
    threads, t_threads = timed("thread executor", executor="thread",
                               max_workers=4)
    procs, t_procs = timed("process executor", executor="process",
                           chunksize=2)
    for d in (64, 128):
        assert serial.means(d).tolist() == threads.means(d).tolist(), \
            "executors must agree bit-for-bit"
        assert serial.means(d).tolist() == procs.means(d).tolist(), \
            "executors must agree bit-for-bit"
    print(f"{'serial/thread ratio':>28}: {t_serial / t_threads:6.2f}x "
          "(identical results; BLAS releases the GIL)")
    print(f"{'serial/process ratio':>28}: {t_serial / t_procs:6.2f}x "
          "(identical results, same seeds; gains scale with core count)")

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        timed("cold cache", cache=cache)
        _, t_warm = timed("warm cache", cache=cache)
        print(f"{'cache hits':>28}: {cache.hits} cells "
              f"(re-run took {t_warm:.3f}s)")

        # A different parameterisation is a different fingerprint: the
        # warm cache is not fooled, the cells are recomputed.
        rescaled = PointSpec.of(noisy_quadratic, scale=2.0)
        misses_before = cache.misses
        run_grid(rescaled, "n", [1000, 2000, 4000, 8000], "d", [64, 128],
                 n_trials=6, seed=2026, cache=cache)
        print(f"{'after scale=2.0 edit':>28}: {cache.misses - misses_before} "
              "misses (code-aware keys retire stale cells)")

    print()
    print(serial.format_table(title="mean squared projection vs n"))


if __name__ == "__main__":
    main()
