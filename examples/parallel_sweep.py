"""Fan a figure-style sweep grid out over worker processes.

Demonstrates the experiment engine behind ``sweep()``:

* every (series, sweep, trial) cell is an independently seeded job, so
  the ``process`` executor reproduces the ``serial`` executor
  bit-for-bit while using all cores;
* an on-disk cell cache makes an immediate re-run near-instant — only
  missing cells are recomputed.

The point function must be module-level (picklable) for the process
executor; closures and lambdas only work with the serial executor.
"""

import tempfile
import time

import numpy as np

from repro.evaluation import ResultCache, run_grid


def noisy_quadratic(series, x, rng):
    """A stand-in for one figure cell: O(ms) of real numpy work."""
    dim = int(series)
    samples = rng.normal(size=(int(x), dim))
    w = rng.normal(size=dim) / np.sqrt(dim)
    return float(np.mean((samples @ w) ** 2))


def timed(label, **kwargs):
    start = time.perf_counter()
    result = run_grid(noisy_quadratic, "n", [1000, 2000, 4000, 8000],
                      "d", [64, 128], n_trials=6, seed=2026, **kwargs)
    elapsed = time.perf_counter() - start
    print(f"{label:>28}: {elapsed:6.2f}s")
    return result, elapsed


def main():
    serial, t_serial = timed("serial executor")
    procs, t_procs = timed("process executor", executor="process",
                           chunksize=2)
    for d in (64, 128):
        assert serial.means(d).tolist() == procs.means(d).tolist(), \
            "executors must agree bit-for-bit"
    print(f"{'serial/process ratio':>28}: {t_serial / t_procs:6.2f}x "
          "(identical results, same seeds; gains scale with core count)")

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        timed("cold cache", cache=cache)
        _, t_warm = timed("warm cache", cache=cache)
        print(f"{'cache hits':>28}: {cache.hits} cells "
              f"(re-run took {t_warm:.3f}s)")

    print()
    print(serial.format_table(title="mean squared projection vs n"))


if __name__ == "__main__":
    main()
