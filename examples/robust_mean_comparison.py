"""Robust and private mean estimation on heavy-tailed samples.

Walks through the paper's statistical engine:

1. the smoothed Catoni estimator (eqs. 1-5) vs empirical / trimmed /
   median-of-means baselines on log-normal data with planted outliers;
2. the ε-DP dense private mean (poly-d error) vs the (ε, δ)-DP sparse
   private mean built on Peeling (log-d error);
3. the Theorem 9 lower bound evaluated on the same configuration.

Run with:  python examples/robust_mean_comparison.py
"""

import numpy as np

from repro.estimators import (
    CatoniEstimator,
    PrivateSparseMeanEstimator,
    empirical_mean,
    median_of_means,
    optimal_scale,
    private_mean_catoni_laplace,
    trimmed_mean,
)
from repro.lower_bound import lower_bound_rate


def scalar_demo(rng: np.random.Generator) -> None:
    n, truth = 20_000, float(np.exp(0.18))  # E Lognormal(0, .6)
    x = rng.lognormal(mean=0.0, sigma=0.6, size=n)
    x[:5] = 1e7  # a handful of gross outliers

    catoni = CatoniEstimator(scale=optimal_scale(n, np.exp(0.72), 0.05))
    print("scalar mean estimation (lognormal + 5 outliers of 1e7):")
    print(f"  truth           : {truth:.4f}")
    print(f"  empirical mean  : {empirical_mean(x):.4f}")  # destroyed
    print(f"  trimmed mean    : {trimmed_mean(x, 0.05):.4f}")
    print(f"  median-of-means : {median_of_means(x, 40, rng=rng):.4f}")
    print(f"  smoothed Catoni : {catoni.estimate(x):.4f}")
    print()


def private_demo(rng: np.random.Generator) -> None:
    n, d, s = 20_000, 400, 5
    mean = np.zeros(d)
    mean[:s] = 0.8
    x = rng.normal(loc=mean, scale=1.0, size=(n, d))

    dense = private_mean_catoni_laplace(x, epsilon=1.0, second_moment=2.0,
                                        rng=rng)
    sparse = PrivateSparseMeanEstimator(sparsity=s, epsilon=1.0, delta=1e-5,
                                        second_moment=2.0).estimate(x, rng=rng)
    print(f"private mean estimation (n={n}, d={d}, {s}-sparse mean):")
    print(f"  dense eps-DP (Laplace on all d)  error^2: "
          f"{np.sum((dense - mean) ** 2):.4f}")
    print(f"  sparse (eps,delta)-DP (Peeling)  error^2: "
          f"{np.sum((sparse - mean) ** 2):.4f}")
    bound = lower_bound_rate(n, 1.0, 1e-5, d, s, tau=2.0)
    print(f"  Theorem 9 lower-bound rate               : {bound:.6f}")


def main() -> None:
    rng = np.random.default_rng(5)
    scalar_demo(rng)
    private_demo(rng)


if __name__ == "__main__":
    main()
