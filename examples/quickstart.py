"""Quickstart: private linear regression on heavy-tailed data.

Generates the paper's Figure 1 setting (log-normal features, unit ℓ1
ball), fits the ε-DP Heavy-tailed Frank–Wolfe solver (Algorithm 1) and
compares its excess empirical risk against the non-private optimum.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    DistributionSpec,
    HeavyTailedDPFW,
    L1Ball,
    SquaredLoss,
    l1_ball_truth,
    make_linear_data,
)
from repro.baselines import FrankWolfe


def main() -> None:
    rng = np.random.default_rng(7)
    n, d = 30_000, 100

    # 1. Heavy-tailed data: x ~ Lognormal(0, 0.6), y = <w*, x> + N(0, 0.1).
    w_star = l1_ball_truth(d, rng)
    data = make_linear_data(
        n, w_star,
        feature_spec=DistributionSpec("lognormal", {"sigma": 0.6}),
        noise_spec=DistributionSpec("gaussian", {"scale": 0.1}),
        rng=rng,
    )
    loss = SquaredLoss()
    ball = L1Ball(d)

    # 2. Non-private reference (Frank-Wolfe over the l1 ball).
    w_fw = FrankWolfe(loss, ball, n_iterations=100).fit(data.features, data.labels)

    # 3. The paper's Algorithm 1 at eps = 1 (pure DP).
    solver = HeavyTailedDPFW(loss, ball, epsilon=1.0, tau=5.0)
    result = solver.fit(data.features, data.labels, rng=rng)

    risk_at = lambda w: loss.value(w, data.features, data.labels)
    print(f"risk at w*            : {risk_at(w_star):.5f}")
    print(f"risk non-private FW   : {risk_at(w_fw):.5f}")
    print(f"risk private (eps=1)  : {risk_at(result.w):.5f}")
    print(f"excess risk (private) : {risk_at(result.w) - risk_at(w_star):.5f}")
    print()
    print(f"iterations run        : {result.n_iterations}")
    print(f"Catoni scale s        : {result.metadata['scale']:.2f}")
    print(f"privacy guarantee     : {result.advertised_budget}")
    print(f"ledger                : {result.accountant.summary()}")


if __name__ == "__main__":
    main()
