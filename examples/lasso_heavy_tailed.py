"""Heavy-tailed private LASSO: Algorithm 1 vs Algorithm 2 vs non-private.

Reproduces the comparison behind Figures 1 and 5 on one dataset: the
pure-DP Frank-Wolfe with Catoni gradients (Alg 1) against the
(ε, δ)-DP shrunken-data Frank-Wolfe (Alg 2), with the non-private
optimum as the floor.  The paper's own observation — Algorithm 2's
better *rate* does not always beat Algorithm 1 at moderate n because of
hidden constants — is usually visible here.

Run with:  python examples/lasso_heavy_tailed.py
"""

import numpy as np

from repro import (
    DistributionSpec,
    HeavyTailedDPFW,
    HeavyTailedPrivateLasso,
    L1Ball,
    SquaredLoss,
    l1_ball_truth,
    make_linear_data,
)
from repro.baselines import FrankWolfe
from repro.evaluation import format_series_table


def main() -> None:
    rng = np.random.default_rng(1)
    d = 80
    loss = SquaredLoss()
    ball = L1Ball(d)
    sample_sizes = [5000, 15_000, 45_000]

    rows = {"Alg 1 (eps=1)": [], "Alg 2 (eps=1, delta=1e-5)": [],
            "non-private FW": []}
    for n in sample_sizes:
        w_star = l1_ball_truth(d, rng)
        data = make_linear_data(
            n, w_star,
            DistributionSpec("lognormal", {"sigma": 0.6}),
            DistributionSpec("gaussian", {"scale": 0.1}), rng=rng,
        )
        excess = lambda w: (loss.value(w, data.features, data.labels)
                            - loss.value(w_star, data.features, data.labels))

        alg1 = HeavyTailedDPFW(loss, ball, epsilon=1.0, tau=5.0)
        rows["Alg 1 (eps=1)"].append(
            excess(alg1.fit(data.features, data.labels, rng=rng).w))

        alg2 = HeavyTailedPrivateLasso(ball, epsilon=1.0, delta=1e-5)
        rows["Alg 2 (eps=1, delta=1e-5)"].append(
            excess(alg2.fit(data.features, data.labels, rng=rng).w))

        fw = FrankWolfe(loss, ball, n_iterations=100)
        rows["non-private FW"].append(excess(fw.fit(data.features, data.labels)))

    print(format_series_table("n", sample_sizes, rows,
                              title="Excess empirical risk (lognormal x, d=80)"))


if __name__ == "__main__":
    main()
