"""End-to-end smoke harness: ``PYTHONPATH=src python -m repro.server.smoke``.

Boots a real :class:`~repro.server.ReproServer` on an ephemeral port
against the committed ``benchmarks/results`` + ``benchmarks/baselines``
stores and a throwaway cell cache, then drives every endpoint over
actual HTTP:

* ``GET /catalog`` lists every catalog bench;
* ``GET /records/fig05`` is byte-identical to the committed
  ``benchmarks/results/fig05.json`` and a conditional re-request with
  its ETag returns ``304 Not Modified`` with an empty body;
* eight simultaneous cold ``POST /run`` s of one bench all succeed with
  the committed baseline's ``run_id``, while ``GET /stats`` proves the
  single-flight guarantee: the flights-led counter equals the bench's
  cell count — one engine computation per digest, however many clients
  asked;
* ``GET /cells/<digest>`` serves a cell the run populated, honours
  ``If-None-Match``, and unknown records/cells/resources 404.

The CI ``serve`` job runs this from the repo root and fails on any
assertion; it exits 0 printing ``[smoke] ok``.
"""

from __future__ import annotations

import asyncio
import json
import sys
import tempfile
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..service import ServiceCore
from .http import ReproServer

#: The bench the concurrent cold ``POST /run`` storm computes: the
#: cheapest catalog entry (one panel, five cells at laptop scale).
_BENCH = "ablation_truncation_threshold"
_CLIENTS = 8


def _request(url: str, *, method: str = "GET", body: Optional[bytes] = None,
             headers: Optional[Dict[str, str]] = None
             ) -> Tuple[int, Dict[str, str], bytes]:
    """One HTTP exchange; non-2xx statuses return instead of raising."""
    request = urllib.request.Request(url, data=body, method=method,
                                     headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return (response.status,
                    {k.lower(): v for k, v in response.headers.items()},
                    response.read())
    except urllib.error.HTTPError as exc:
        with exc:
            return (exc.code,
                    {k.lower(): v for k, v in exc.headers.items()},
                    exc.read())


def _start_server(core: ServiceCore) -> ReproServer:
    """Run a server on a daemon-thread event loop; return it once bound."""
    server = ReproServer(core)
    started = threading.Event()

    def runner():
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()

    threading.Thread(target=runner, daemon=True).start()
    if not started.wait(timeout=30):
        raise RuntimeError("server failed to start within 30s")
    return server


def main() -> int:
    """Drive every endpoint against the committed stores; 0 on success."""
    results = Path("benchmarks/results")
    baselines = Path("benchmarks/baselines")
    assert results.is_dir(), "run from the repo root (benchmarks/results)"
    with tempfile.TemporaryDirectory(prefix="repro-smoke-cache-") as cache:
        core = ServiceCore(results_dir=results, baselines_dir=baselines,
                           cache=cache)
        server = _start_server(core)
        base = f"http://{server.host}:{server.port}"

        # -- catalog --------------------------------------------------------
        status, headers, body = _request(f"{base}/catalog")
        assert status == 200, f"/catalog -> {status}"
        catalog = json.loads(body)
        names = [entry["name"] for entry in catalog["benches"]]
        assert _BENCH in names, f"{_BENCH} missing from /catalog"
        assert all(entry["has_record"] for entry in catalog["benches"]), \
            "committed records missing for some benches"
        print(f"[smoke] GET /catalog ok ({len(names)} benches)")

        # -- records + ETag round trip -------------------------------------
        status, headers, body = _request(f"{base}/records/fig05")
        assert status == 200, f"/records/fig05 -> {status}"
        committed = (results / "fig05.json").read_bytes()
        assert body == committed, "served fig05 record != committed bytes"
        etag = headers["etag"]
        run_id = json.loads(committed)["run_id"]
        assert etag == f'"{run_id}"', f"record ETag {etag} != run_id"
        status, _, body = _request(f"{base}/records/fig05",
                                   headers={"If-None-Match": etag})
        assert status == 304 and body == b"", \
            f"conditional /records/fig05 -> {status} with {len(body)} bytes"
        print("[smoke] GET /records/fig05 byte-identical; ETag 304 ok")

        # -- concurrent cold POST /run: single-flight ----------------------
        baseline_record = json.loads((baselines / f"{_BENCH}.json")
                                     .read_text())
        n_cells = sum(len(panel["cells"])
                      for panel in baseline_record["panels"])
        post = json.dumps({"name": _BENCH}).encode()

        def run_once(_):
            return _request(f"{base}/run", method="POST", body=post,
                            headers={"Content-Type": "application/json"})

        with ThreadPoolExecutor(max_workers=_CLIENTS) as pool:
            responses = list(pool.map(run_once, range(_CLIENTS)))
        run_ids = set()
        for status, headers, body in responses:
            assert status == 200, f"POST /run -> {status}: {body!r}"
            run_ids.add(json.loads(body)["run_id"])
        assert run_ids == {baseline_record["run_id"]}, (
            f"served run_ids {run_ids} != committed baseline "
            f"{baseline_record['run_id']}")
        status, _, body = _request(f"{base}/stats")
        assert status == 200, f"/stats -> {status}"
        stats = json.loads(body)
        led = stats["flight"]["led"]
        assert led == n_cells, (
            f"single-flight violated: {led} flights led for {n_cells} cold "
            f"cells under {_CLIENTS} concurrent requests")
        print(f"[smoke] POST /run x{_CLIENTS} coalesced: led={led} "
              f"(= {n_cells} cells), coalesced={stats['flight']['coalesced']}, "
              f"run_id={run_ids.pop()}")

        # -- cells ----------------------------------------------------------
        digest = baseline_record["panels"][0]["cells"][0]["digest"]
        status, headers, body = _request(f"{base}/cells/{digest}")
        assert status == 200, f"/cells/{digest} -> {status}"
        payload = json.loads(body)
        assert payload["digest"] == digest and payload["values"], \
            f"bad cell payload {payload}"
        status, _, body = _request(
            f"{base}/cells/{digest}",
            headers={"If-None-Match": headers["etag"]})
        assert status == 304 and body == b"", f"conditional cell -> {status}"
        print(f"[smoke] GET /cells/{digest[:12]}… ok; ETag 304 ok")

        # -- error paths -----------------------------------------------------
        assert _request(f"{base}/records/no-such-record")[0] == 404
        assert _request(f"{base}/cells/{'0' * 32}")[0] == 404
        assert _request(f"{base}/cells/../../etc/passwd")[0] == 404
        assert _request(f"{base}/nope")[0] == 404
        assert _request(f"{base}/run", method="POST",
                        body=b"not json")[0] == 400
        assert _request(f"{base}/run", method="POST",
                        body=json.dumps({"name": "nope"}).encode())[0] == 404
        print("[smoke] error paths ok (404/400)")

    print("[smoke] ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
