"""``python -m repro serve`` — the HTTP face of the service core.

A stdlib-only asyncio HTTP/1.1 server (no third-party dependencies)
exposing one :class:`~repro.service.ServiceCore` to concurrent clients:

========================  ==================================================
``GET /catalog``          every catalog bench + record status (JSON)
``GET /records/<name>``   a run-record manifest, byte-identical to its
                          committed file; ETag = ``run_id``, 304-aware
``GET /cells/<digest>``   one cached cell's raw trial values; ETag =
                          digest, 304-aware
``GET /stats``            live cache hit/miss + single-flight counters
``POST /run``             run a catalog bench through the core's engine;
                          concurrent cold requests coalesce single-flight
========================  ==================================================

Cache hits are served concurrently at memory speed; cold cells are
computed once per digest no matter how many clients ask (the core's
:class:`~repro.evaluation.SingleFlight` map), with later requesters
awaiting the same in-flight future.
"""

from .http import ReproServer, serve

__all__ = ["ReproServer", "serve"]
