"""The asyncio HTTP/1.1 implementation behind ``python -m repro serve``.

Deliberately minimal and dependency-free: ``asyncio.start_server`` for
the listener, one short-lived connection per request (``Connection:
close``), and a small router over the service core.  Blocking work —
record loads, cell reads, and above all ``POST /run``'s engine
computations — runs on a dedicated thread pool via
``run_in_executor``, so the event loop keeps serving cache hits while a
cold bench computes.  Coalescing needs no server-side bookkeeping: the
core's shared :class:`~repro.evaluation.SingleFlight` map already
guarantees one computation per cell digest across however many threads
``POST /run`` occupies.

Conditional requests: every stable resource carries a strong ``ETag``
(records use ``run_id`` — content identity by construction; cells use
the digest that *is* their name), and a matching ``If-None-Match``
short-circuits to ``304 Not Modified`` with an empty body.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from ..exceptions import ReproError, ResultsError
from ..registry import UnknownNameError
from ..results import manifest_text
from ..service import ServiceCore, catalog_payload, run_payload, stats_payload

#: Upper bound on request head + body bytes; a repro client never needs
#: more, and an unbounded read is a trivial memory DoS.
_MAX_BODY = 1 << 20
_MAX_HEAD = 1 << 16


def _json_bytes(payload: object) -> bytes:
    """Compact, sorted, strict-JSON response body bytes."""
    return (json.dumps(payload, sort_keys=True, allow_nan=False)
            + "\n").encode("utf-8")


class _HttpError(Exception):
    """An error response to be rendered as ``{"error": ...}`` JSON."""

    def __init__(self, status: int, reason: str, message: str):
        super().__init__(message)
        self.status = status
        self.reason = reason
        self.message = message


class ReproServer:
    """One service core behind an asyncio HTTP listener.

    ``port=0`` binds an ephemeral port; read the bound address back
    from :attr:`port` after :meth:`start` (the smoke harness and tests
    rely on this).  ``max_workers`` bounds the blocking-work pool — and
    therefore how many ``POST /run`` computations plus disk reads can
    be in flight at once; coalescing keeps the engine work per cold
    digest at one regardless.
    """

    def __init__(self, core: ServiceCore, host: str = "127.0.0.1",
                 port: int = 0, max_workers: int = 16):
        self.core = core
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool = ThreadPoolExecutor(max_workers=max_workers,
                                        thread_name_prefix="repro-serve")

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and resolve the actual port.

        The stream limit is set explicitly: ``readuntil`` raises once a
        head exceeds it, and the default 64 KiB limit coincided with
        ``_MAX_HEAD`` — which made the size check in ``_read_head``
        unreachable and surfaced oversized heads as unhandled
        ``LimitOverrunError`` instead of a 431 response.
        """
        self._server = await asyncio.start_server(self._handle, self.host,
                                                  self.port, limit=_MAX_BODY)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Serve until cancelled (the ``python -m repro serve`` loop)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Stop the listener and release the worker pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._pool.shutdown(wait=False)

    # -- request plumbing ----------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        """Parse one request, route it, write one response, close."""
        try:
            try:
                method, path, headers = await self._read_head(reader)
                body = await self._read_body(reader, headers)
                status, reason, payload, ctype, etag = await self._route(
                    method, path, headers, body)
            except _HttpError as exc:
                status, reason = exc.status, exc.reason
                payload = _json_bytes({"error": exc.message})
                ctype, etag = "application/json", None
            except (ConnectionError, asyncio.IncompleteReadError):
                return
            self._write_response(writer, status, reason, payload, ctype, etag)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_head(self, reader: asyncio.StreamReader):
        """The request line and headers, minimally validated."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.LimitOverrunError, ValueError):
            # The head outgrew the stream limit before its terminator
            # arrived; an unhandled overrun would tear the connection
            # down with no response at all.
            raise _HttpError(431, "Request Header Fields Too Large",
                             "request head too large")
        if len(head) > _MAX_HEAD:
            raise _HttpError(431, "Request Header Fields Too Large",
                             "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(400, "Bad Request",
                             f"malformed request line {lines[0]!r}")
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _HttpError(400, "Bad Request",
                                 f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        return parts[0], parts[1], headers

    async def _read_body(self, reader: asyncio.StreamReader,
                         headers: Dict[str, str]) -> bytes:
        """The request body, bounded by Content-Length."""
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "Bad Request", "bad Content-Length")
        if length < 0 or length > _MAX_BODY:
            raise _HttpError(413, "Payload Too Large",
                             f"request body of {length} bytes refused")
        return await reader.readexactly(length) if length else b""

    def _write_response(self, writer: asyncio.StreamWriter, status: int,
                        reason: str, payload: bytes, ctype: str,
                        etag: Optional[str]) -> None:
        """One complete ``Connection: close`` HTTP/1.1 response."""
        head = [f"HTTP/1.1 {status} {reason}",
                f"Content-Type: {ctype}",
                f"Content-Length: {len(payload)}",
                "Connection: close"]
        if etag is not None:
            head.append(f"ETag: {etag}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(payload)

    async def _in_pool(self, fn, *args):
        """Run blocking work on the dedicated pool, off the event loop."""
        return await asyncio.get_running_loop().run_in_executor(
            self._pool, fn, *args)

    # -- routing -------------------------------------------------------------

    @staticmethod
    def _not_modified(headers: Dict[str, str], etag: str) -> bool:
        """Does the request's ``If-None-Match`` match this ETag?

        RFC 9110 §13.1.2 mandates *weak* comparison for If-None-Match:
        ``W/"x"`` and ``"x"`` match.  Proxies legitimately weaken tags
        they forward, so comparing with the ``W/`` prefix attached
        would silently disable 304s behind such a proxy.
        """
        candidates = headers.get("if-none-match", "")
        if not candidates:
            return False
        if candidates.strip() == "*":
            return True

        def opaque(tag: str) -> str:
            return tag[2:] if tag.startswith("W/") else tag

        return opaque(etag) in [opaque(c.strip())
                                for c in candidates.split(",")]

    async def _route(self, method: str, path: str, headers: Dict[str, str],
                     body: bytes) -> Tuple[int, str, bytes, str,
                                           Optional[str]]:
        """Dispatch one request; returns (status, reason, body, type, etag)."""
        path = path.split("?", 1)[0]
        if method == "HEAD":
            # Same status line and headers as GET, body withheld —
            # curl -I and cache validators probe ETags this way.
            status, reason, payload, ctype, etag = await self._route(
                "GET", path, headers, body)
            return status, reason, b"", ctype, etag
        if method == "GET":
            if path == "/catalog":
                return await self._get_catalog(headers)
            if path == "/stats":
                payload = _json_bytes(stats_payload(self.core))
                return 200, "OK", payload, "application/json", None
            if path.startswith("/records/"):
                return await self._get_record(path[len("/records/"):],
                                              headers)
            if path.startswith("/cells/"):
                return await self._get_cell(path[len("/cells/"):], headers)
            raise _HttpError(404, "Not Found", f"unknown resource {path!r}")
        if method == "POST":
            if path == "/run":
                return await self._post_run(headers, body)
            raise _HttpError(404, "Not Found", f"unknown resource {path!r}")
        raise _HttpError(405, "Method Not Allowed",
                         f"method {method!r} not supported")

    async def _get_catalog(self, headers: Dict[str, str]):
        """``GET /catalog`` — the bench listing, ETagged by content."""
        payload = _json_bytes(await self._in_pool(catalog_payload, self.core))
        etag = '"' + hashlib.blake2b(payload, digest_size=8).hexdigest() + '"'
        if self._not_modified(headers, etag):
            return 304, "Not Modified", b"", "application/json", etag
        return 200, "OK", payload, "application/json", etag

    async def _get_record(self, name: str, headers: Dict[str, str]):
        """``GET /records/<name>`` — the manifest, byte-identical to disk."""
        try:
            record = await self._in_pool(self.core.load_record, name)
        except ResultsError as exc:
            raise _HttpError(404, "Not Found", str(exc))
        etag = f'"{record.run_id}"'
        if self._not_modified(headers, etag):
            return 304, "Not Modified", b"", "application/json", etag
        body = manifest_text(record).encode("utf-8")
        return 200, "OK", body, "application/json", etag

    async def _get_cell(self, digest: str, headers: Dict[str, str]):
        """``GET /cells/<digest>`` — one cached cell's raw trial values."""
        etag = f'"{digest}"'
        if self._not_modified(headers, etag):
            # A cell's content is its name; the digest alone proves
            # freshness, no disk read needed.
            return 304, "Not Modified", b"", "application/json", etag
        values = await self._in_pool(self.core.cell_values, digest)
        if values is None:
            raise _HttpError(404, "Not Found",
                             f"no cached cell with digest {digest!r}")
        return (200, "OK", _json_bytes({"digest": digest, "values": values}),
                "application/json", etag)

    async def _post_run(self, headers: Dict[str, str], body: bytes):
        """``POST /run`` — compute a catalog bench through the core.

        Body: ``{"name": <bench>, "full": bool?, "n_trials": int?,
        "executor": str?}``.  Concurrent cold requests for the same
        entry coalesce onto one engine computation per cell digest.
        """
        try:
            request = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, "Bad Request", f"body is not JSON: {exc}")
        if not isinstance(request, dict) or not isinstance(
                request.get("name"), str):
            raise _HttpError(400, "Bad Request",
                             'body must be {"name": "<bench name>", ...}')
        name = request["name"]
        full = request.get("full", False)
        if not isinstance(full, bool):
            # bool() of a truthy non-bool would silently run the wrong
            # grid scale; name the bad field at the route instead.
            raise _HttpError(400, "Bad Request", "full must be a boolean")
        n_trials = request.get("n_trials")
        if n_trials is not None and (isinstance(n_trials, bool)
                                     or not isinstance(n_trials, int)
                                     or n_trials <= 0):
            raise _HttpError(400, "Bad Request",
                             "n_trials must be a positive integer")
        executor = request.get("executor", "serial")
        if executor not in ("serial", "thread", "process", "fleet"):
            raise _HttpError(400, "Bad Request",
                             f"unknown executor {executor!r}")

        def compute():
            return self.core.run_bench(name, full=full, n_trials=n_trials,
                                       executor=executor,
                                       demote_unpicklable=True)

        try:
            run = await self._in_pool(compute)
        except UnknownNameError as exc:
            raise _HttpError(404, "Not Found", str(exc))
        except (ReproError, ValueError, TypeError) as exc:
            raise _HttpError(500, "Internal Server Error", str(exc))
        payload = _json_bytes(run_payload(self.core, run))
        return (200, "OK", payload, "application/json",
                f'"{run.record.run_id}"')


async def _serve_async(core: ServiceCore, host: str, port: int) -> None:
    """Start a server, announce the address, and serve until cancelled."""
    server = ReproServer(core, host=host, port=port)
    await server.start()
    print(f"[serve] listening on http://{server.host}:{server.port} "
          f"(Ctrl-C to stop)", flush=True)
    try:
        await server.serve_forever()
    finally:
        await server.close()


def serve(core: ServiceCore, host: str = "127.0.0.1",
          port: int = 8321) -> int:
    """Blocking entry point for ``python -m repro serve``."""
    try:
        asyncio.run(_serve_async(core, host, port))
    except KeyboardInterrupt:
        print("[serve] stopped")
    return 0
