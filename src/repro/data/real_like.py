"""Synthetic stand-ins for the paper's four UCI datasets.

The paper evaluates Algorithm 1 on Blog Feedback (n=60021, d=281),
Twitter (n=583249, d=77), Winnipeg (n=325834, d=175) and Year Prediction
(n=515345, d=90), all from the UCI repository.  This environment has no
network access, so — per the reproduction substitution rule — we ship
generators that produce datasets with

* the same ``(n, d)`` shapes (scalable down for fast benches),
* heavy-tailed, strongly skewed marginals (log-normal scale mixtures
  with occasional extreme outliers, mimicking count-like web data),
* correlated columns (a low-rank factor structure, as real tabular data
  has), and
* a planted linear (Blog/Twitter) or logistic (Winnipeg/Year Prediction)
  signal plus label noise.

The experiments that use these datasets only probe error-versus-``(n,
eps)`` trends of the private solvers on a *fixed*, heavy-tailed design —
behaviour these generators preserve.  Absolute risk values will differ
from the paper's; EXPERIMENTS.md records the shape comparison only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .._validation import check_positive_int
from ..registry import DATA, DATASETS
from ..rng import SeedLike, ensure_rng
from .synthetic import RegressionData, l1_ball_truth


@dataclass(frozen=True)
class RealDatasetSpec:
    """Shape and task metadata for one of the paper's UCI datasets."""

    name: str
    n_samples: int
    dimension: int
    task: str  # "linear" or "logistic"
    skew: float  # log-normal sigma of the column scale mixture
    outlier_fraction: float  # fraction of entries boosted by a Pareto factor


#: The four datasets of Figures 3 and 4 with the paper's exact (n, d).
REAL_DATASETS: Dict[str, RealDatasetSpec] = {
    "blog": RealDatasetSpec("blog", 60021, 281, "linear", 0.9, 0.01),
    "twitter": RealDatasetSpec("twitter", 583249, 77, "linear", 1.1, 0.02),
    "winnipeg": RealDatasetSpec("winnipeg", 325834, 175, "logistic", 0.7, 0.01),
    "year_prediction": RealDatasetSpec("year_prediction", 515345, 90, "logistic", 0.8, 0.01),
}

for _spec in REAL_DATASETS.values():
    DATASETS.register(_spec.name, _spec)


def _heavy_tailed_design(n: int, d: int, spec: RealDatasetSpec,
                         rng: np.random.Generator) -> np.ndarray:
    """Low-rank-plus-noise design with log-normal scales and outliers."""
    rank = max(2, d // 10)
    factors = rng.normal(size=(n, rank))
    loadings = rng.normal(size=(rank, d)) / np.sqrt(rank)
    base = factors @ loadings + 0.5 * rng.normal(size=(n, d))
    # Column-wise log-normal scale mixture: some features are wildly
    # larger than others, as in raw web/count data.
    column_scales = rng.lognormal(mean=0.0, sigma=spec.skew, size=d)
    X = np.abs(base) * column_scales  # non-negative, skewed marginals
    # Sparse multiplicative outliers: a small fraction of entries are
    # boosted by a Pareto factor, producing the heavy upper tail.
    mask = rng.uniform(size=(n, d)) < spec.outlier_fraction
    X = X * np.where(mask, 1.0 + rng.pareto(1.5, size=(n, d)), 1.0)
    # Robust per-column rescaling (divide by the 90th percentile of |x|),
    # the standard preprocessing step real pipelines apply.  Tails stay
    # heavy -- the Pareto outliers survive any quantile-based scaling --
    # but risks become O(1), keeping the experiments comparable across
    # datasets.
    scales = np.quantile(np.abs(X), 0.9, axis=0)
    X = X / np.maximum(scales, 1e-12)
    return X


def load_real_like(name: str, rng: SeedLike = None,
                   n_samples: int | None = None) -> RegressionData:
    """Generate the stand-in for one of the paper's UCI datasets.

    Parameters
    ----------
    name:
        One of ``"blog"``, ``"twitter"``, ``"winnipeg"``,
        ``"year_prediction"``.
    n_samples:
        Optional row-count override (the full paper sizes are hundreds of
        thousands of rows; benches use a few thousand).  The dimension is
        always the paper's.

    Returns
    -------
    RegressionData
        For logistic tasks, labels are in ``{-1, +1}``.  ``w_star`` is
        the *planted* signal — the paper instead computes the optimum by
        a non-private solver, which the harness also supports.
    """
    if name not in DATASETS:
        raise ValueError(f"unknown dataset {name!r}; choose from "
                         f"{sorted(DATASETS.names())}")
    spec = DATASETS.get(name)
    rng = ensure_rng(rng)
    n = spec.n_samples if n_samples is None else check_positive_int(n_samples, "n_samples")
    d = spec.dimension

    X = _heavy_tailed_design(n, d, spec, rng)
    w_star = l1_ball_truth(d, rng)
    signal = X @ w_star
    if spec.task == "linear":
        noise = rng.lognormal(mean=0.0, sigma=0.5, size=n)
        noise -= np.exp(0.125)  # centre: E Lognormal(0, .5^2) = e^{.125}
        y = signal + noise
    else:
        latent = signal + rng.logistic(scale=0.5, size=n)
        y = np.where(latent > 0, 1.0, -1.0)
    return RegressionData(features=X, labels=y, w_star=w_star)


@DATA.register("real_like")
def _make_real_like(rng: SeedLike = None, *, dataset: str,
                    n: int | None = None) -> RegressionData:
    """Registry adapter: a real-like dataset by name at ``n`` rows."""
    return load_real_like(dataset, rng=rng, n_samples=n)
