"""Data substrate: heavy-tailed samplers and the Section 6 generators."""

from .distributions import (
    DistributionSpec,
    gaussian,
    laplace,
    log_gamma,
    log_gamma_mean,
    log_logistic,
    logistic,
    lognormal,
    lognormal_moments,
    pareto,
    student_t,
    student_t_second_moment,
)
from .moments import (
    coordinate_second_moment,
    gradient_second_moment,
    kurtosis_report,
    pairwise_fourth_moment,
    response_fourth_moment,
)
from .real_like import REAL_DATASETS, RealDatasetSpec, load_real_like
from .synthetic import (
    RegressionData,
    l1_ball_truth,
    make_linear_data,
    make_logistic_data,
    sparse_truth,
)

__all__ = [
    "DistributionSpec",
    "REAL_DATASETS",
    "RealDatasetSpec",
    "RegressionData",
    "coordinate_second_moment",
    "gaussian",
    "gradient_second_moment",
    "kurtosis_report",
    "l1_ball_truth",
    "laplace",
    "load_real_like",
    "log_gamma",
    "log_gamma_mean",
    "log_logistic",
    "logistic",
    "lognormal",
    "lognormal_moments",
    "make_linear_data",
    "make_logistic_data",
    "pairwise_fourth_moment",
    "pareto",
    "response_fourth_moment",
    "sparse_truth",
    "student_t",
    "student_t_second_moment",
]
