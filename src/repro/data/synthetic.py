"""Synthetic data generators reproducing Section 6.1 of the paper.

Two model families:

* **Linear**: ``y = <w*, x> + iota`` with heavy-tailed features and/or
  noise; ``w*`` lives in the unit ℓ1 ball (polytope experiments) or is
  ``s*``-sparse in the unit ℓ2 ball (sparse experiments).
* **Logistic**: ``y = sign(sigmoid(z) - 0.5)`` with
  ``z = <x, w*> + zeta`` — note the paper's deterministic thresholding of
  the sigmoid, i.e. ``y = sign(z)`` with ties broken to ``+1``.

Ground-truth generators follow the paper exactly: for the sparse case,
``w*`` is drawn from ``N(0, 100)``, a random ``(d - s*)``-subset is
zeroed, and the vector is projected onto the unit ℓ2 ball.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._validation import check_positive, check_positive_int
from ..geometry.projections import project_l2_ball
from ..rng import SeedLike, ensure_rng
from .distributions import DistributionSpec


@dataclass(frozen=True)
class RegressionData:
    """A generated dataset plus its ground truth."""

    features: np.ndarray
    labels: np.ndarray
    w_star: np.ndarray

    @property
    def n_samples(self) -> int:
        """Number of rows."""
        return self.features.shape[0]

    @property
    def dimension(self) -> int:
        """Number of columns."""
        return self.features.shape[1]

    def split(self, train_fraction: float, rng: SeedLike = None
              ) -> tuple["RegressionData", "RegressionData"]:
        """Random train/evaluation split preserving the ground truth."""
        if not 0 < train_fraction < 1:
            raise ValueError(f"train_fraction must be in (0,1), got {train_fraction}")
        rng = ensure_rng(rng)
        n = self.n_samples
        perm = rng.permutation(n)
        cut = int(round(train_fraction * n))
        if cut == 0 or cut == n:
            raise ValueError("split produced an empty part; adjust train_fraction")
        train_idx, eval_idx = perm[:cut], perm[cut:]
        make = lambda idx: RegressionData(self.features[idx], self.labels[idx], self.w_star)
        return make(train_idx), make(eval_idx)


def l1_ball_truth(dimension: int, rng: SeedLike = None, radius: float = 1.0
                  ) -> np.ndarray:
    """Random ``w*`` with ``||w*||_1 <= radius`` (polytope experiments).

    Drawn uniformly in direction (random signs and Dirichlet magnitudes)
    then scaled to lie strictly inside the ball so the optimum is not a
    vertex artefact.
    """
    check_positive_int(dimension, "dimension")
    check_positive(radius, "radius")
    rng = ensure_rng(rng)
    magnitudes = rng.dirichlet(np.ones(dimension))
    signs = rng.choice((-1.0, 1.0), size=dimension)
    return 0.9 * radius * signs * magnitudes


def sparse_truth(dimension: int, sparsity: int, rng: SeedLike = None,
                 norm_bound: float = 1.0) -> np.ndarray:
    """The paper's sparse ``w*``: ``N(0, 100)`` entries, random support, ℓ2-projected.

    "we sample a w from the normal distribution with mean = 0 and
    scale = 100 and set random (d - s*) elements to 0.  After that we
    project the vector to the unit ℓ2-norm ball" — Section 6.1.
    """
    check_positive_int(dimension, "dimension")
    check_positive_int(sparsity, "sparsity")
    if sparsity > dimension:
        raise ValueError(f"sparsity {sparsity} exceeds dimension {dimension}")
    rng = ensure_rng(rng)
    w = rng.normal(loc=0.0, scale=100.0, size=dimension)
    zero_out = rng.choice(dimension, size=dimension - sparsity, replace=False)
    w[zero_out] = 0.0
    return project_l2_ball(w, norm_bound)


def make_linear_data(n_samples: int, w_star: np.ndarray,
                     feature_spec: DistributionSpec,
                     noise_spec: Optional[DistributionSpec] = None,
                     rng: SeedLike = None,
                     center_noise: bool = True) -> RegressionData:
    """Generate ``y = <w*, x> + iota`` with the given feature/noise laws.

    Parameters
    ----------
    noise_spec:
        ``None`` means noiseless.  When given, the noise is centred (see
        :meth:`DistributionSpec.centered_sample`) unless
        ``center_noise=False`` — the paper's heavy-tailed noise figures
        use skewed laws whose raw mean would shift every label.
    """
    check_positive_int(n_samples, "n_samples")
    w_star = np.asarray(w_star, dtype=float)
    rng = ensure_rng(rng)
    X = feature_spec.sample(rng, (n_samples, w_star.size))
    y = X @ w_star
    if noise_spec is not None:
        if center_noise:
            y = y + noise_spec.centered_sample(rng, n_samples)
        else:
            y = y + noise_spec.sample(rng, n_samples)
    return RegressionData(features=X, labels=y, w_star=w_star)


def make_logistic_data(n_samples: int, w_star: np.ndarray,
                       feature_spec: DistributionSpec,
                       noise_spec: Optional[DistributionSpec] = None,
                       rng: SeedLike = None) -> RegressionData:
    """Generate the paper's logistic labels ``y = sign(sigmoid(z) - 0.5)``.

    ``z = <x, w*> + zeta``; since ``sigmoid(z) > 0.5`` iff ``z > 0`` the
    labels equal ``sign(z)`` (zeros mapped to ``+1``), exactly as in
    Section 6.1.
    """
    check_positive_int(n_samples, "n_samples")
    w_star = np.asarray(w_star, dtype=float)
    rng = ensure_rng(rng)
    X = feature_spec.sample(rng, (n_samples, w_star.size))
    z = X @ w_star
    if noise_spec is not None:
        z = z + noise_spec.centered_sample(rng, n_samples)
    y = np.where(z > 0, 1.0, -1.0)
    return RegressionData(features=X, labels=y, w_star=w_star)


# ---------------------------------------------------------------------------
# Registry adapters — the Section 6 model families as addressable data
# generators (``DATA.get(name)(rng, **kwargs) -> RegressionData``), the
# vocabulary of declarative experiment specs.  Distribution arguments
# accept a DistributionSpec, a name, or a ``{"name": ..., **params}``
# mapping (the TOML form); ``noise=None`` means noiseless.
# ---------------------------------------------------------------------------

from ..registry import DATA


def _spec_or_none(value) -> Optional[DistributionSpec]:
    return None if value is None else DistributionSpec.of(value)


@DATA.register("l1_linear")
def _make_l1_linear(rng: SeedLike = None, *, n: int, d: int, features,
                    noise=None, radius: float = 1.0) -> RegressionData:
    """Linear data with an ℓ1-ball ``w*`` (the Figures 1, 5, 6 recipe)."""
    rng = ensure_rng(rng)
    w_star = l1_ball_truth(d, rng, radius=radius)
    return make_linear_data(n, w_star, DistributionSpec.of(features),
                            _spec_or_none(noise), rng=rng)


@DATA.register("l1_logistic")
def _make_l1_logistic(rng: SeedLike = None, *, n: int, d: int, features,
                      noise=None, radius: float = 1.0) -> RegressionData:
    """Sign-label logistic data with an ℓ1-ball ``w*`` (Figure 2 recipe)."""
    rng = ensure_rng(rng)
    w_star = l1_ball_truth(d, rng, radius=radius)
    return make_logistic_data(n, w_star, DistributionSpec.of(features),
                              _spec_or_none(noise), rng=rng)


@DATA.register("sparse_linear")
def _make_sparse_linear(rng: SeedLike = None, *, n: int, d: int, s_star: int,
                        features, noise=None,
                        norm_bound: float = 0.5) -> RegressionData:
    """Linear data with the paper's sparse ``w*`` (Figures 7-9 recipe)."""
    rng = ensure_rng(rng)
    w_star = sparse_truth(d, s_star, rng, norm_bound=norm_bound)
    return make_linear_data(n, w_star, DistributionSpec.of(features),
                            _spec_or_none(noise), rng=rng)


@DATA.register("sparse_logistic")
def _make_sparse_logistic(rng: SeedLike = None, *, n: int, d: int,
                          s_star: int, features, noise=None,
                          norm_bound: float = 0.5) -> RegressionData:
    """Logistic data with the paper's sparse ``w*`` (Figures 10-11 recipe)."""
    rng = ensure_rng(rng)
    w_star = sparse_truth(d, s_star, rng, norm_bound=norm_bound)
    return make_logistic_data(n, w_star, DistributionSpec.of(features),
                              _spec_or_none(noise), rng=rng)
