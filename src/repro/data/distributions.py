"""Heavy-tailed samplers used in the paper's experiments (Section 6).

Each sampler takes an explicit :class:`numpy.random.Generator` and a
shape, and is accompanied where available by the closed-form moments the
assumptions reference, so tests can verify the generated data actually
has the claimed tail behaviour.

The paper's experiments draw features and noises from:

* ``Lognormal(0, 0.6)`` — Figures 1, 2, 5 (features);
* Student-t with 10 degrees of freedom — Figure 6 (features);
* ``Lognormal(0, 0.5)`` — Figures 7, 10 (noise);
* log-logistic with shape ``c = 0.1`` — Figure 8 (noise);
* log-gamma with shape ``c = 0.5`` — Figures 9, 11 (noise);
* logistic with ``(u, s) = (0, 0.5)`` — Figure 10 (noise);
* ``Laplace(scale 5)`` and ``N(0, 5)`` — Figures 7-11 (features).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np
from scipy import special

from .._validation import check_positive
from ..registry import DISTRIBUTIONS
from ..rng import SeedLike, ensure_rng

ShapeLike = Union[int, Tuple[int, ...]]


@DISTRIBUTIONS.register("lognormal")
def lognormal(rng: SeedLike, shape: ShapeLike, mu: float = 0.0,
              sigma: float = 0.6) -> np.ndarray:
    """Log-normal samples; the paper's default feature distribution.

    ``Lognormal(mu, sigma^2)`` has density
    ``exp(-(ln w - mu)^2 / (2 sigma^2)) / (w sigma sqrt(2 pi))``; all
    moments exist but grow like ``exp(k^2 sigma^2 / 2)`` — a classic
    "moderately heavy" tail.
    """
    check_positive(sigma, "sigma")
    return ensure_rng(rng).lognormal(mean=mu, sigma=sigma, size=shape)


def lognormal_moments(mu: float = 0.0, sigma: float = 0.6) -> Tuple[float, float]:
    """``(mean, second raw moment)`` of ``Lognormal(mu, sigma^2)``."""
    mean = math.exp(mu + sigma**2 / 2.0)
    second = math.exp(2.0 * mu + 2.0 * sigma**2)
    return mean, second


@DISTRIBUTIONS.register("student_t")
def student_t(rng: SeedLike, shape: ShapeLike, df: float = 10.0) -> np.ndarray:
    """Student-t samples (Figure 6 features).

    For ``df = 10`` the fourth moment exists (Assumption 3 holds) but the
    tails are polynomial — moments of order ``>= df`` diverge.
    """
    check_positive(df, "df")
    return ensure_rng(rng).standard_t(df, size=shape)


def student_t_second_moment(df: float = 10.0) -> float:
    """``E X^2 = df / (df - 2)`` for ``df > 2``."""
    if df <= 2:
        raise ValueError("the second moment only exists for df > 2")
    return df / (df - 2.0)


@DISTRIBUTIONS.register("log_logistic")
def log_logistic(rng: SeedLike, shape: ShapeLike, c: float = 0.1) -> np.ndarray:
    """Log-logistic samples with shape ``c`` (Figure 8 noise).

    PDF ``c w^{-c-1} (1 + w^{-c})^{-2}`` on ``w > 0`` (the scipy ``fisk``
    parameterisation).  For ``c <= 1`` even the *mean* is infinite — the
    most extreme tail in the paper's experiments.  Sampled by inverse CDF:
    ``W = (U / (1-U))^{1/c}``.
    """
    check_positive(c, "c")
    u = ensure_rng(rng).uniform(size=shape)
    return (u / (1.0 - u)) ** (1.0 / c)


@DISTRIBUTIONS.register("log_gamma")
def log_gamma(rng: SeedLike, shape: ShapeLike, c: float = 0.5) -> np.ndarray:
    """Log-gamma samples with shape ``c`` (Figures 9 and 11 noise).

    PDF ``exp(c w - e^w) / Gamma(c)`` on the real line: the *left* tail is
    heavy-ish and the distribution is strongly skewed.  Generated as
    ``log(Gamma(c, 1))``.
    """
    check_positive(c, "c")
    return np.log(ensure_rng(rng).gamma(shape=c, scale=1.0, size=shape))


def log_gamma_mean(c: float = 0.5) -> float:
    """``E log Gamma(c, 1) = digamma(c)``."""
    check_positive(c, "c")
    return float(special.digamma(c))


@DISTRIBUTIONS.register("logistic")
def logistic(rng: SeedLike, shape: ShapeLike, loc: float = 0.0,
             scale: float = 0.5) -> np.ndarray:
    """Logistic-distribution samples (Figure 10 latent noise)."""
    check_positive(scale, "scale")
    return ensure_rng(rng).logistic(loc=loc, scale=scale, size=shape)


@DISTRIBUTIONS.register("laplace")
def laplace(rng: SeedLike, shape: ShapeLike, scale: float = 5.0) -> np.ndarray:
    """Laplace samples (Figure 11 features, ``Laplace(5)`` in the paper)."""
    check_positive(scale, "scale")
    return ensure_rng(rng).laplace(loc=0.0, scale=scale, size=shape)


@DISTRIBUTIONS.register("gaussian")
def gaussian(rng: SeedLike, shape: ShapeLike, scale: float = 1.0) -> np.ndarray:
    """Gaussian samples; ``N(0, 5)`` are the Figures 7-10 features.

    The paper writes ``N(0, 5)``; we follow the scale (standard
    deviation) reading, which its ``s* = 20``/``n = 5e4`` error levels
    are consistent with.
    """
    check_positive(scale, "scale")
    return ensure_rng(rng).normal(loc=0.0, scale=scale, size=shape)


@DISTRIBUTIONS.register("pareto")
def pareto(rng: SeedLike, shape: ShapeLike, tail_index: float = 2.5) -> np.ndarray:
    """Pareto samples with the given tail index (``P(X > t) ~ t^-a``).

    Not used by the paper's figures, but the canonical "only low moments
    exist" distribution; the test-suite uses it to probe the estimators
    under a pure power-law tail (finite second moment iff ``a > 2``).
    """
    check_positive(tail_index, "tail_index")
    return ensure_rng(rng).pareto(tail_index, size=shape) + 1.0


@dataclass(frozen=True)
class DistributionSpec:
    """A named, parameterised sampler — the unit the sweep configs use.

    Examples
    --------
    >>> spec = DistributionSpec("lognormal", {"sigma": 0.6})
    >>> x = spec.sample(np.random.default_rng(0), (100, 5))
    """

    name: str
    params: dict = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.name not in DISTRIBUTIONS:
            # ValueError (not the registry's KeyError) for backward
            # compatibility with existing callers and tests.
            raise ValueError(
                f"unknown distribution {self.name!r}; choose from "
                f"{sorted(DISTRIBUTIONS.names())}"
            )
        if self.params is None:
            object.__setattr__(self, "params", {})

    @classmethod
    def of(cls, spec: "Union[DistributionSpec, str, dict]"
           ) -> "DistributionSpec":
        """Coerce a name, a ``{"name": ..., **params}`` mapping, or a spec.

        The mapping form is what TOML/dict experiment specs naturally
        produce (``{name = "lognormal", sigma = 0.6}``); a bare name
        uses the sampler's default parameters.
        """
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, str):
            return cls(spec, {})
        try:
            params = dict(spec)
        except TypeError:
            raise TypeError(
                f"distribution spec must be a DistributionSpec, a name, or "
                f"a mapping with a 'name' key, got {spec!r}") from None
        try:
            name = params.pop("name")
        except KeyError:
            raise TypeError(f"distribution mapping {spec!r} is missing its "
                            "'name' key") from None
        return cls(name, params)

    def sample(self, rng: SeedLike, shape: ShapeLike) -> np.ndarray:
        """Draw samples of the requested shape."""
        sampler = DISTRIBUTIONS.get(self.name)
        return sampler(ensure_rng(rng), shape, **self.params)

    def centered_sample(self, rng: SeedLike, shape: ShapeLike,
                        center_estimate_size: int = 200_000) -> np.ndarray:
        """Samples shifted to (approximately) zero mean.

        Heavy-tailed *noise* in a regression model should be centred or it
        biases the intercept; the shift is estimated once from a large
        auxiliary draw (deterministic given the rng), except for
        distributions with known means where the closed form is used.
        """
        rng = ensure_rng(rng)
        if self.name == "gaussian" or self.name == "laplace" or self.name == "logistic":
            shift = self.params.get("loc", 0.0)
        elif self.name == "lognormal":
            shift = lognormal_moments(self.params.get("mu", 0.0),
                                      self.params.get("sigma", 0.6))[0]
        elif self.name == "log_gamma":
            shift = log_gamma_mean(self.params.get("c", 0.5))
        else:
            aux = self.sample(rng, center_estimate_size)
            shift = float(np.median(aux))  # median: robust to infinite means
        return self.sample(rng, shape) - shift
