"""Empirical moment diagnostics for heavy-tailed data.

The paper's assumptions are stated in terms of coordinate moments:
Assumption 1 needs ``E[(grad_j ell)^2] <= tau``; Assumption 3 needs
``E[(x_j x_k)^2] <= M`` and ``E[y^4] <= M``.  These helpers estimate the
relevant quantities from data so that experiments can (a) set ``tau``
honestly and (b) report when an assumption is empirically violated —
the paper's own explanation for the instability of its real-data plots.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_dataset, check_matrix


def coordinate_second_moment(values: np.ndarray) -> float:
    """``max_j mean(values[:, j]^2)`` — the empirical ``tau`` of Assumption 1."""
    v = check_matrix(values, "values")
    return float(np.max(np.mean(v**2, axis=0)))


def gradient_second_moment(loss, w: np.ndarray, X: np.ndarray,
                           y: np.ndarray) -> float:
    """Empirical ``tau`` for a loss at a specific point ``w``."""
    grads = loss.per_sample_gradients(w, X, y)
    return coordinate_second_moment(grads)


def pairwise_fourth_moment(X: np.ndarray, max_pairs: int = 10_000,
                           rng=None) -> float:
    """Estimate ``max_{j,k} E[(x_j x_k)^2]`` — the ``M`` of Assumption 3.

    For large ``d`` the full ``d^2`` scan is subsampled to ``max_pairs``
    random pairs (plus all diagonal pairs, which usually dominate).
    """
    from ..rng import ensure_rng

    X = check_matrix(X, "X")
    n, d = X.shape
    diag = np.mean(X**4, axis=0)
    best = float(np.max(diag))
    total_pairs = d * (d - 1) // 2
    if total_pairs == 0:
        return best
    rng = ensure_rng(rng)
    n_draw = min(max_pairs, total_pairs)
    js = rng.integers(0, d, size=n_draw)
    ks = rng.integers(0, d, size=n_draw)
    keep = js != ks
    if keep.any():
        cross = np.mean((X[:, js[keep]] * X[:, ks[keep]]) ** 2, axis=0)
        best = max(best, float(np.max(cross)))
    return best


def response_fourth_moment(y: np.ndarray) -> float:
    """``E[y^4]`` — the response half of Assumption 3."""
    y = np.asarray(y, dtype=float)
    return float(np.mean(y**4))


def kurtosis_report(X: np.ndarray, y: np.ndarray) -> dict:
    """Summary of tail heaviness used by examples and EXPERIMENTS.md.

    Returns per-dataset diagnostics: max coordinate kurtosis, the
    Assumption 1/3 moment estimates and the largest single-entry
    magnitude relative to the column standard deviation (an outlier
    severity score).
    """
    X, y = check_dataset(X, y)
    column_std = np.std(X, axis=0)
    column_std = np.where(column_std > 0, column_std, 1.0)
    centered = X - np.mean(X, axis=0)
    fourth = np.mean(centered**4, axis=0)
    kurt = fourth / np.maximum(column_std**4, 1e-300)
    return {
        "max_coordinate_kurtosis": float(np.max(kurt)),
        "tau_hat": coordinate_second_moment(X),
        "M_hat": pairwise_fourth_moment(X),
        "y_fourth_moment": response_fourth_moment(y),
        "max_outlier_sigmas": float(np.max(np.abs(centered) / column_std)),
    }
