"""The ``python -m repro`` command line: run, list, and cache maintenance.

Subcommands
-----------

``run <scenario-or-spec.toml>``
    Run a catalog bench by name (``python -m repro run
    fig05_lasso_lognormal`` reproduces the committed
    ``benchmarks/results`` table bit-identically) or a declarative
    TOML :class:`~repro.evaluation.spec.ExperimentSpec` by path.
    ``--executor``/``--cache``/``--trials`` control execution exactly
    like the bench environment knobs.

``list``
    Every registered component (solvers, losses, distributions,
    datasets, data generators, estimators, metrics) and every catalog
    scenario.

``cache stats`` / ``cache prune``
    Inspect or garbage-collect a cell cache directory: ``prune``
    deletes every cell whose digest no current catalog grid claims
    (at laptop or paper scale, default trial counts), bounding cache
    growth across code-fingerprint turnover.  Spec-file cells are
    *not* claimed by the catalog — prune treats them as orphans.

Exit status is 0 on success, 2 for usage errors (argparse), and 1 for
resolution failures (unknown names print the registered menu).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional

from .evaluation import ExperimentSpec, ResultCache, format_panel_block
from .experiments import bench, bench_names, claimed_digests
from .registry import ALL_REGISTRIES, UnknownNameError

#: Executor names the CLI accepts (the engine's built-in trio).
_EXECUTORS = ("serial", "thread", "process")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run, enumerate, and maintain the paper's experiments.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run a catalog bench by name or a spec by .toml path")
    run.add_argument("target",
                     help="catalog scenario name (see `list`) or a path to "
                          "an ExperimentSpec TOML file")
    run.add_argument("--executor", choices=_EXECUTORS,
                     default=os.environ.get("REPRO_BENCH_EXECUTOR", "serial"),
                     help="grid executor (default: $REPRO_BENCH_EXECUTOR or "
                          "serial)")
    run.add_argument("--cache", metavar="DIR",
                     default=os.environ.get("REPRO_BENCH_CACHE") or None,
                     help="cell cache directory (default: $REPRO_BENCH_CACHE)")
    run.add_argument("--trials", type=int, default=None, metavar="N",
                     help="override trials per cell (changes the statistics "
                          "and cache keys; results files are not written)")
    run.add_argument("--full", action="store_true",
                     help="paper-scale grids (hours) instead of laptop scale")
    run.add_argument("--max-workers", type=int, default=None, metavar="N",
                     help="pool size for thread/process executors")
    run.add_argument("--results-dir", default=None, metavar="DIR",
                     help="where to write the bench results table (default: "
                          "benchmarks/results when it exists)")

    sub.add_parser("list", help="registered components + catalog scenarios")

    cache = sub.add_parser("cache", help="cell cache maintenance")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (("stats", "count cached cells and orphans"),
                            ("prune", "delete cells no catalog grid claims")):
        sub_parser = cache_sub.add_parser(name, help=help_text)
        sub_parser.add_argument(
            "--cache", metavar="DIR",
            default=os.environ.get("REPRO_BENCH_CACHE") or None,
            help="cell cache directory (default: $REPRO_BENCH_CACHE)")
    cache_sub.choices["prune"].add_argument(
        "--dry-run", action="store_true",
        help="report what would be deleted without deleting")
    return parser


# ---------------------------------------------------------------------------
# run
# ---------------------------------------------------------------------------

def _print_cache_stats(cache: Optional[ResultCache]) -> None:
    """One machine-greppable line: how the cell cache behaved this run."""
    if cache is not None:
        print(f"[cache] hits={cache.hits} misses={cache.misses} "
              f"dir={cache.directory}")


def _default_results_dir() -> Optional[Path]:
    """``benchmarks/results`` when run from the repo root, else nothing."""
    candidate = Path("benchmarks")
    return candidate / "results" if candidate.is_dir() else None


def _run_bench(args: argparse.Namespace) -> int:
    """Run one catalog bench; write its results table like the benches do."""
    definition = bench(args.target, full=args.full)
    cache = ResultCache(args.cache) if args.cache else None
    results_dir = (Path(args.results_dir) if args.results_dir
                   else _default_results_dir())
    write = args.trials is None and results_dir is not None
    if args.trials is not None and args.results_dir:
        print("[run] --trials overrides the bench statistics; not writing "
              "the results table", file=sys.stderr)
        write = False
    blocks = []
    for panel in definition.panels:
        series = panel.run(executor=args.executor, cache=cache,
                           n_trials=args.trials,
                           max_workers=args.max_workers)
        text = format_panel_block(panel.title, panel.x_name,
                                  panel.sweep_values, series)
        print(text)
        blocks.append(text)
    if write:
        # Replace (never stack onto) any stale table, and only once the
        # whole bench has succeeded.
        results_dir.mkdir(parents=True, exist_ok=True)
        out_path = results_dir / f"{definition.result_stem}.txt"
        out_path.write_text("".join(blocks))
        print(f"[run] wrote {out_path}")
    _print_cache_stats(cache)
    return 0


def _run_spec(args: argparse.Namespace, path: Path) -> int:
    """Run a TOML experiment spec and print its table."""
    spec = ExperimentSpec.from_toml(path)
    cache = ResultCache(args.cache) if args.cache else None
    result = spec.run(executor=args.executor, cache=cache,
                      n_trials=args.trials, max_workers=args.max_workers)
    series = {label: [stat.mean for stat in stats]
              for label, stats in result.series.items()}
    trials = spec.n_trials if args.trials is None else args.trials
    title = (f"{spec.name}: {spec.metric} ({spec.solver} on {spec.data}, "
             f"{trials} trials, seed {spec.seed})")
    print(format_panel_block(title, spec.sweep.name, spec.sweep.values,
                             series))
    _print_cache_stats(cache)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    path = Path(args.target)
    if args.target.endswith(".toml") or path.is_file():
        if not path.is_file():
            print(f"error: spec file {args.target!r} does not exist",
                  file=sys.stderr)
            return 1
        return _run_spec(args, path)
    return _run_bench(args)


# ---------------------------------------------------------------------------
# list
# ---------------------------------------------------------------------------

def _cmd_list(_: argparse.Namespace) -> int:
    print("catalog scenarios (python -m repro run <name>):")
    for name in bench_names():
        definition = bench(name)
        panels = len(definition.panels)
        print(f"  {name}  ({panels} panel{'s' if panels != 1 else ''} -> "
              f"results/{definition.result_stem}.txt)")
    for section, registry in ALL_REGISTRIES:
        print(f"\n{section}:")
        for name in registry.names():
            print(f"  {name}")
    return 0


# ---------------------------------------------------------------------------
# cache stats / prune
# ---------------------------------------------------------------------------

def _cache_dir(args: argparse.Namespace) -> Optional[Path]:
    if not args.cache:
        print("error: no cache directory (pass --cache DIR or set "
              "REPRO_BENCH_CACHE)", file=sys.stderr)
        return None
    path = Path(args.cache)
    if not path.is_dir():
        print(f"error: cache directory {path} does not exist",
              file=sys.stderr)
        return None
    return path


def _scan_cache(path: Path) -> Dict[str, List[Path]]:
    """Split a cache directory's cell files into claimed and orphaned."""
    claimed = claimed_digests()
    split: Dict[str, List[Path]] = {"claimed": [], "orphaned": []}
    for cell in sorted(path.glob("*.json")):
        key = "claimed" if cell.stem in claimed else "orphaned"
        split[key].append(cell)
    return split

def _cmd_cache_stats(args: argparse.Namespace) -> int:
    path = _cache_dir(args)
    if path is None:
        return 1
    split = _scan_cache(path)
    total = split["claimed"] + split["orphaned"]
    size = sum(cell.stat().st_size for cell in total)
    print(f"[cache] dir={path} cells={len(total)} bytes={size} "
          f"claimed={len(split['claimed'])} orphaned={len(split['orphaned'])}")
    return 0


def _cmd_cache_prune(args: argparse.Namespace) -> int:
    path = _cache_dir(args)
    if path is None:
        return 1
    split = _scan_cache(path)
    for cell in split["orphaned"]:
        if not args.dry_run:
            cell.unlink()
    verb = "would delete" if args.dry_run else "deleted"
    print(f"[prune] dir={path} kept={len(split['claimed'])} "
          f"{verb}={len(split['orphaned'])}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "cache":
            if args.cache_command == "stats":
                return _cmd_cache_stats(args)
            return _cmd_cache_prune(args)
    except UnknownNameError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (ValueError, TypeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled command {args.command!r}")
