"""The ``python -m repro`` command line: run, diff, list, maintenance.

Subcommands
-----------

``run <scenario-or-spec.toml>``
    Run a catalog bench by name (``python -m repro run
    fig05_lasso_lognormal`` reproduces the committed
    ``benchmarks/results`` table bit-identically, and writes the
    provenance-stamped ``fig05.json`` run record next to it) or a
    declarative TOML :class:`~repro.evaluation.spec.ExperimentSpec` by
    path (``--record PATH`` captures its record too).
    ``--executor``/``--cache``/``--trials`` control execution exactly
    like the bench environment knobs.

``diff <run-a> <run-b>`` / ``diff <run-a> --against-catalog <name>``
    Mechanically compare two run records, separating value drift from
    provenance drift (code fingerprints, seeds, grid shape).  Exit
    codes: 0 identical, 1 value drift, 2 incompatible provenance, 3
    error (unreadable/corrupt record, or an invalid diff invocation
    such as naming zero or two comparison targets).
    ``--against-catalog`` resolves the second record from the
    committed baselines directory
    (``benchmarks/baselines/<name>.json`` by default).

``results list`` / ``results show``
    Inspect a run-record store directory: every record's name, id and
    shape, or one record's full provenance and tables (``--json``
    prints the raw manifest).

``list``
    Every registered component (solvers, losses, distributions,
    datasets, data generators, estimators, metrics) and every catalog
    scenario.  ``--json`` emits the machine-readable listing (the
    server's ``GET /catalog`` payload plus the registries).

``serve``
    Serve the catalog, run records, and cached cells over HTTP and
    accept ``POST /run`` compute requests — concurrent cold requests
    for the same bench coalesce onto one engine computation per cell
    digest (see :mod:`repro.server`).  ``--broker HOST:PORT`` routes
    fleet-executor requests to the networked fleet.

``broker`` / ``fleet-worker``
    The networked fleet backend (see :mod:`repro.fleet.net`): a TCP
    broker server speaking the fleet's lease/heartbeat/complete
    protocol, and real worker processes that lease digest-keyed cells
    from it, compute through the unchanged engine job path, and
    complete with bit-identical values.  ``python -m repro run <bench>
    --executor fleet --broker HOST:PORT`` coordinates a run across
    them.  ``broker --journal PATH`` (or ``$REPRO_FLEET_JOURNAL``)
    write-ahead logs every broker mutation so a killed broker restarts
    into the exact pre-crash state and the in-flight run resumes;
    coordinators and workers ride out the downtime by reconnecting
    under seeded backoff.

``cache stats`` / ``cache prune``
    Inspect or garbage-collect a cell cache directory: ``prune``
    deletes every cell whose digest no current catalog grid claims
    (at laptop or paper scale, default trial counts) *and* no committed
    baseline record references — a cell a baseline pins stays put even
    after the code that produced it changes.  Spec-file cells are
    neither catalog-claimed nor (normally) baseline-pinned — prune
    treats them as orphans.

Exit status is 0 on success, 2 for usage errors (argparse), and 1 for
resolution failures (unknown names print the registered menu); ``diff``
uses the drift codes above.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from .evaluation import ExperimentSpec, ResultCache
from .exceptions import ResultsError
from .experiments import bench, bench_names
from .fleet import FleetOptions
from .registry import ALL_REGISTRIES, UnknownNameError
from .results import (
    ResultsStore,
    baseline_digests,
    diff_records,
    load_record,
    save_record,
)
from .service import (
    ServiceCore,
    cache_stats_payload,
    list_payload,
    record_store_entry,
)

#: Executor names the CLI accepts: the engine's built-in pools plus
#: the fault-tolerant work-queue executor (:mod:`repro.fleet`).
_EXECUTORS = ("serial", "thread", "process", "fleet")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run, enumerate, and maintain the paper's experiments.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run a catalog bench by name or a spec by .toml path")
    run.add_argument("target",
                     help="catalog scenario name (see `list`) or a path to "
                          "an ExperimentSpec TOML file")
    run.add_argument("--executor", choices=_EXECUTORS,
                     default=os.environ.get("REPRO_BENCH_EXECUTOR", "serial"),
                     help="grid executor (default: $REPRO_BENCH_EXECUTOR or "
                          "serial)")
    run.add_argument("--cache", metavar="DIR",
                     default=os.environ.get("REPRO_BENCH_CACHE") or None,
                     help="cell cache directory (default: $REPRO_BENCH_CACHE)")
    run.add_argument("--trials", type=int, default=None, metavar="N",
                     help="override trials per cell (changes the statistics "
                          "and cache keys; results files are not written)")
    run.add_argument("--full", action="store_true",
                     help="paper-scale grids (hours) instead of laptop scale")
    run.add_argument("--max-workers", type=int, default=None, metavar="N",
                     help="pool size for thread/process/fleet executors")
    run.add_argument("--broker", metavar="HOST:PORT",
                     default=os.environ.get("REPRO_FLEET_BROKER") or None,
                     help="socket broker address for --executor fleet: "
                          "cells are computed by real `python -m repro "
                          "fleet-worker` processes instead of the "
                          "in-process simulation (default: "
                          "$REPRO_FLEET_BROKER)")
    run.add_argument("--results-dir", default=None, metavar="DIR",
                     help="where to write the bench results table and run "
                          "record (default: benchmarks/results when it "
                          "exists)")
    run.add_argument("--record", default=None, metavar="PATH",
                     help="write the run record to this explicit path "
                          "(spec runs only record when this is given)")

    diff = sub.add_parser(
        "diff", help="compare two run records: value vs provenance drift")
    diff.add_argument("run_a", help="path to the first run record")
    diff.add_argument("run_b", nargs="?", default=None,
                      help="path to the second run record")
    diff.add_argument("--against-catalog", default=None, metavar="NAME",
                      help="compare run-a against the committed baseline "
                           "record of this catalog bench instead of run-b")
    diff.add_argument("--baselines", default=None, metavar="DIR",
                      help="committed baseline records directory (default: "
                           "benchmarks/baselines)")
    diff.add_argument("--json", action="store_true",
                      help="emit the full diff as JSON instead of the "
                           "human-readable summary")

    results = sub.add_parser("results", help="run-record store inspection")
    results_sub = results.add_subparsers(dest="results_command", required=True)
    results_list = results_sub.add_parser(
        "list", help="every run record in a store directory")
    results_list.add_argument("--dir", default=None, metavar="DIR",
                              help="record store directory (default: "
                                   "benchmarks/results)")
    results_show = results_sub.add_parser(
        "show", help="one record's provenance and tables")
    results_show.add_argument("record", help="path to a run record")
    results_show.add_argument("--json", action="store_true",
                              help="print the raw manifest JSON")

    list_parser = sub.add_parser(
        "list", help="registered components + catalog scenarios")
    list_parser.add_argument("--json", action="store_true",
                             help="machine-readable listing (the same "
                                  "payload the server's GET /catalog "
                                  "serves, plus the registries)")

    serve = sub.add_parser(
        "serve", help="serve catalog, records, and cells over HTTP "
                      "(coalesced compute)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8321,
                       help="port to listen on (default: 8321; 0 picks an "
                            "ephemeral port)")
    serve.add_argument("--results-dir", default=None, metavar="DIR",
                       help="run-record store served at /records "
                            "(default: benchmarks/results when it exists)")
    serve.add_argument("--baselines", default=None, metavar="DIR",
                       help="committed baseline records directory (default: "
                            "benchmarks/baselines when it exists)")
    serve.add_argument("--cache", metavar="DIR",
                       default=os.environ.get("REPRO_BENCH_CACHE") or None,
                       help="cell cache backing /cells and POST /run "
                            "(default: $REPRO_BENCH_CACHE)")
    serve.add_argument("--broker", metavar="HOST:PORT",
                       default=os.environ.get("REPRO_FLEET_BROKER") or None,
                       help="socket broker address: POST /run requests with "
                            '"executor": "fleet" compute on the networked '
                            "fleet (default: $REPRO_FLEET_BROKER)")

    sub.add_parser(
        "broker", add_help=False,
        help="serve a fleet broker over TCP, crash-safe with --journal "
             "(python -m repro broker --help)")
    sub.add_parser(
        "fleet-worker", add_help=False,
        help="lease and compute fleet cells from a socket broker "
             "(python -m repro fleet-worker --help)")

    cache = sub.add_parser("cache", help="cell cache maintenance")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (("stats", "count cached cells and orphans"),
                            ("prune", "delete cells no catalog grid claims "
                                      "and no baseline record references")):
        sub_parser = cache_sub.add_parser(name, help=help_text)
        sub_parser.add_argument(
            "--cache", metavar="DIR",
            default=os.environ.get("REPRO_BENCH_CACHE") or None,
            help="cell cache directory (default: $REPRO_BENCH_CACHE)")
        sub_parser.add_argument(
            "--baselines", metavar="DIR", default=None,
            help="committed baseline records whose cells are kept "
                 "(default: benchmarks/baselines when it exists)")
    cache_sub.choices["prune"].add_argument(
        "--dry-run", action="store_true",
        help="report what would be deleted without deleting")
    cache_sub.choices["stats"].add_argument(
        "--json", action="store_true",
        help="machine-readable stats (shares the server's serializers)")
    return parser


# ---------------------------------------------------------------------------
# run
# ---------------------------------------------------------------------------

def _print_cache_stats(cache: Optional[ResultCache]) -> None:
    """One machine-greppable line: how the cell cache behaved this run."""
    if cache is not None:
        print(f"[cache] hits={cache.hits} misses={cache.misses} "
              f"dir={cache.directory}")


def _print_fleet_stats(core: ServiceCore) -> None:
    """One machine-greppable line: what the work-queue fleet did this run."""
    stats = core.fleet_stats
    if stats.active():
        recovery = ""
        if stats.reconnects or stats.replayed:
            # Only fleet runs that actually rode out broker downtime
            # grow the line — healthy runs stay byte-stable.
            recovery = (f" reconnects={stats.reconnects} "
                        f"replayed={stats.replayed}")
        print(f"[fleet] leased={stats.leased} completed={stats.completed} "
              f"retried={stats.retried} dead={stats.dead} "
              f"duplicates={stats.duplicates} expired={stats.expired}"
              f"{recovery}")


def _fleet_options(args: argparse.Namespace) -> FleetOptions:
    """The fleet configuration one CLI invocation asks for.

    ``--broker`` only means anything under ``--executor fleet``; an
    ambient ``REPRO_FLEET_BROKER`` with any other executor is silently
    unused, exactly like ``REPRO_BENCH_CACHE`` without a cache consumer.
    """
    broker = getattr(args, "broker", None)
    if broker and getattr(args, "executor", "fleet") == "fleet":
        return FleetOptions(broker=broker)
    return FleetOptions()


def _default_results_dir() -> Optional[Path]:
    """``benchmarks/results`` when run from the repo root, else nothing."""
    candidate = Path("benchmarks")
    return candidate / "results" if candidate.is_dir() else None


def _default_baselines_dir() -> Optional[Path]:
    """``benchmarks/baselines`` when run from the repo root, else nothing."""
    candidate = Path("benchmarks") / "baselines"
    return candidate if candidate.is_dir() else None


def _save_record(record, *, results_dir: Optional[Path],
                 explicit: Optional[str]) -> None:
    """Persist a finalized run record and report where it landed.

    ``explicit`` (``--record PATH``) wins over the results directory;
    with neither, nothing is written.
    """
    if explicit:
        target = save_record(record, Path(explicit))
    elif results_dir is not None:
        target = ResultsStore(results_dir).save(record)
    else:
        return
    print(f"[record] wrote {target} run_id={record.run_id}")


def _run_bench(args: argparse.Namespace) -> int:
    """Run one catalog bench; write its results table and run record.

    A thin adapter: execution, recording, and caching all happen inside
    :meth:`repro.service.ServiceCore.run_bench` (the same path the
    benches and ``POST /run`` use); this function only owns the CLI's
    write policy and output.
    """
    results_dir = (Path(args.results_dir) if args.results_dir
                   else _default_results_dir())
    write = args.trials is None and results_dir is not None
    if args.trials is not None and args.results_dir:
        print("[run] --trials overrides the bench statistics; not writing "
              "the results table", file=sys.stderr)
        write = False
    core = ServiceCore(results_dir=results_dir, cache=args.cache or None,
                       fleet=_fleet_options(args))
    run = core.run_bench(args.target, full=args.full, n_trials=args.trials,
                         executor=args.executor,
                         max_workers=args.max_workers)
    for block in run.blocks:
        print(block)
    if write:
        # Replace (never stack onto) any stale table, and only once the
        # whole bench has succeeded.
        results_dir.mkdir(parents=True, exist_ok=True)
        out_path = results_dir / f"{run.definition.result_stem}.txt"
        out_path.write_text("".join(run.blocks))
        print(f"[run] wrote {out_path}")
        _save_record(run.record, results_dir=results_dir,
                     explicit=args.record)
    elif args.record:
        # --trials overrides change the statistics and digests; an
        # explicit --record still captures them (clearly not a
        # baseline), but nothing lands in the shared results dir.
        _save_record(run.record, results_dir=None, explicit=args.record)
    _print_cache_stats(core.cache)
    _print_fleet_stats(core)
    return 0


def _run_spec(args: argparse.Namespace, path: Path) -> int:
    """Run a TOML experiment spec; print its table, optionally record it."""
    spec = ExperimentSpec.from_toml(path)
    core = ServiceCore(cache=args.cache or None, fleet=_fleet_options(args))
    run = core.run_spec(spec, executor=args.executor, n_trials=args.trials,
                        max_workers=args.max_workers)
    print(run.block)
    if args.record:
        _save_record(run.record, results_dir=None, explicit=args.record)
    _print_cache_stats(core.cache)
    _print_fleet_stats(core)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    path = Path(args.target)
    if args.target.endswith(".toml") or path.is_file():
        if not path.is_file():
            print(f"error: spec file {args.target!r} does not exist",
                  file=sys.stderr)
            return 1
        return _run_spec(args, path)
    return _run_bench(args)


# ---------------------------------------------------------------------------
# list
# ---------------------------------------------------------------------------

def _cmd_list(args: argparse.Namespace) -> int:
    if getattr(args, "json", False):
        core = ServiceCore(results_dir=_default_results_dir())
        print(json.dumps(list_payload(core), indent=1, sort_keys=True))
        return 0
    print("catalog scenarios (python -m repro run <name>):")
    for name in bench_names():
        definition = bench(name)
        panels = len(definition.panels)
        print(f"  {name}  ({panels} panel{'s' if panels != 1 else ''} -> "
              f"results/{definition.result_stem}.txt)")
    for section, registry in ALL_REGISTRIES:
        print(f"\n{section}:")
        for name in registry.names():
            print(f"  {name}")
    return 0


# ---------------------------------------------------------------------------
# diff
# ---------------------------------------------------------------------------

def _cmd_diff(args: argparse.Namespace) -> int:
    """Compare two run records; exit 0/1/2 by drift class, 3 on errors."""
    if (args.run_b is None) == (args.against_catalog is None):
        print("error: pass exactly one of <run-b> or --against-catalog NAME",
              file=sys.stderr)
        return 3
    if args.against_catalog is not None:
        baselines = (Path(args.baselines) if args.baselines
                     else _default_baselines_dir())
        if baselines is None:
            print("error: no baselines directory (pass --baselines DIR or "
                  "run from the repo root)", file=sys.stderr)
            return 3
        path_b = baselines / f"{args.against_catalog}.json"
        label_b = f"baseline {path_b}"
    else:
        path_b = Path(args.run_b)
        label_b = str(path_b)
    try:
        record_a = load_record(args.run_a)
        record_b = load_record(path_b)
    except ResultsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    diff = diff_records(record_a, record_b, a_label=str(args.run_a),
                        b_label=label_b)
    if args.json:
        print(json.dumps(diff.to_dict(), indent=1, sort_keys=True))
    else:
        print(diff.format_summary())
    return diff.exit_code


# ---------------------------------------------------------------------------
# results list / show
# ---------------------------------------------------------------------------

def _cmd_results_list(args: argparse.Namespace) -> int:
    """Enumerate every run record in a store directory."""
    directory = Path(args.dir) if args.dir else _default_results_dir()
    if directory is None or not directory.is_dir():
        print("error: no record store directory (pass --dir DIR)",
              file=sys.stderr)
        return 1
    paths = ServiceCore(results_dir=directory).store().runs()
    if not paths:
        print(f"[results] dir={directory} runs=0")
        return 0
    for path in paths:
        try:
            record = load_record(path)
        except ResultsError as exc:
            print(f"  {path.name}: UNREADABLE ({exc})", file=sys.stderr)
            continue
        print(f"  {path.name}  name={record.name} kind={record.kind} "
              f"run_id={record.run_id} panels={len(record.panels)} "
              f"cells={record.n_cells()} executor={record.executor} "
              f"v{record.package_version}")
    return 0


def _cmd_results_show(args: argparse.Namespace) -> int:
    """Print one record's provenance header and its rebuilt tables."""
    try:
        record = load_record(args.record)
    except ResultsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(record.to_dict(), indent=1, sort_keys=True))
        return 0
    print(f"run record {args.record}")
    print(f"  name={record.name} kind={record.kind} full={record.full}")
    print(f"  run_id={record.run_id} config_digest={record.config_digest}")
    print(f"  schema={record.schema_version} engine={record.engine_version} "
          f"package={record.package_version} executor={record.executor}")
    for i, panel in enumerate(record.panels):
        print(f"  panel[{i}] seed={panel.seed} trials={panel.n_trials} "
              f"cells={len(panel.cells)} "
              f"fingerprint={panel.point_fingerprint[:16]}…")
    print(record.format_tables(), end="")
    return 0


# ---------------------------------------------------------------------------
# cache stats / prune
# ---------------------------------------------------------------------------

def _cache_dir(args: argparse.Namespace) -> Optional[Path]:
    if not args.cache:
        print("error: no cache directory (pass --cache DIR or set "
              "REPRO_BENCH_CACHE)", file=sys.stderr)
        return None
    path = Path(args.cache)
    if not path.is_dir():
        print(f"error: cache directory {path} does not exist",
              file=sys.stderr)
        return None
    return path


def _resolve_baselines(args: argparse.Namespace):
    """The baselines directory to honour: ``(path_or_None, ok)``.

    An explicitly passed ``--baselines`` that does not exist is an
    error (the caller asked for pins that cannot be read); an absent
    default is merely "no baselines here" and returns ``(None, True)``.
    """
    if args.baselines:
        path = Path(args.baselines)
        if not path.is_dir():
            print(f"error: baselines directory {path} does not exist",
                  file=sys.stderr)
            return None, False
        return path, True
    return _default_baselines_dir(), True


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    path = _cache_dir(args)
    if path is None:
        return 1
    baselines, ok = _resolve_baselines(args)
    if not ok:
        return 1
    core = ServiceCore(baselines_dir=baselines)
    # Load each baseline record once: it feeds both the keep-set below
    # and the store-size report.
    baseline_runs = (ResultsStore(baselines).runs()
                     if baselines is not None else [])
    baseline_records = [load_record(p) for p in baseline_runs]
    keep = set().union(*(r.cell_digests() for r in baseline_records)) \
        if baseline_records else set()
    split = core.scan_cache(path, keep)
    record_entries = []
    if baselines is not None:
        cells = sum(r.n_cells() for r in baseline_records)
        record_entries.append(record_store_entry(baselines, baseline_runs,
                                                 cells=cells))
    results_dir = _default_results_dir()
    if results_dir is not None and results_dir.is_dir():
        runs = ResultsStore(results_dir).runs()
        if runs:
            record_entries.append(record_store_entry(results_dir, runs))
    if args.json:
        print(json.dumps(cache_stats_payload(path, split, record_entries,
                                             fleet=core.fleet_stats),
                         indent=1, sort_keys=True))
        return 0
    total = split["claimed"] + split["baseline"] + split["orphaned"]
    size = sum(cell.stat().st_size for cell in total)
    print(f"[cache] dir={path} cells={len(total)} bytes={size} "
          f"claimed={len(split['claimed'])} "
          f"baseline={len(split['baseline'])} "
          f"orphaned={len(split['orphaned'])}")
    for entry in record_entries:
        cells_part = (f"cells={entry['cells']} " if "cells" in entry else "")
        print(f"[records] dir={entry['dir']} runs={entry['runs']} "
              f"{cells_part}bytes={entry['bytes']}")
    return 0


def _cmd_cache_prune(args: argparse.Namespace) -> int:
    path = _cache_dir(args)
    if path is None:
        return 1
    baselines, ok = _resolve_baselines(args)
    if not ok:
        return 1
    if baselines is None:
        # Pruning without a keep-set would delete exactly the cells the
        # committed baselines promise to pin — say so out loud instead
        # of silently downgrading (e.g. when run outside the repo root).
        print("[prune] warning: no baselines directory found (pass "
              "--baselines DIR or run from the repo root); "
              "baseline-pinned cells are NOT protected in this run",
              file=sys.stderr)
        keep = set()
    else:
        keep = baseline_digests(baselines)
    core = ServiceCore(baselines_dir=baselines)
    split = core.prune_cache(path, keep, dry_run=args.dry_run)
    verb = "would delete" if args.dry_run else "deleted"
    kept = len(split["claimed"]) + len(split["baseline"])
    print(f"[prune] dir={path} kept={kept} {verb}={len(split['orphaned'])} "
          f"(catalog={len(split['claimed'])}, "
          f"baseline={len(split['baseline'])})")
    return 0


# ---------------------------------------------------------------------------
# serve
# ---------------------------------------------------------------------------

def _cmd_serve(args: argparse.Namespace) -> int:
    """Boot the HTTP server over one service core; blocks until Ctrl-C."""
    # Imported lazily: the asyncio server machinery is dead weight for
    # every other subcommand.
    from .server import serve as serve_forever
    results_dir = (Path(args.results_dir) if args.results_dir
                   else _default_results_dir())
    baselines = (Path(args.baselines) if args.baselines
                 else _default_baselines_dir())
    core = ServiceCore(results_dir=results_dir, baselines_dir=baselines,
                       cache=args.cache or None, fleet=_fleet_options(args))
    return serve_forever(core, host=args.host, port=args.port)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    argv = sys.argv[1:] if argv is None else list(argv)
    # The networked-fleet processes own their argument surfaces (they
    # are long-running daemons, not catalog commands); dispatch before
    # the main parser so their --help and defaults live in one place.
    if argv[:1] == ["broker"]:
        from .fleet.net.server import main as broker_main
        return broker_main(argv[1:])
    if argv[:1] == ["fleet-worker"]:
        from .fleet.net.worker import main as worker_main
        return worker_main(argv[1:])
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "diff":
            return _cmd_diff(args)
        if args.command == "results":
            if args.results_command == "list":
                return _cmd_results_list(args)
            return _cmd_results_show(args)
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "cache":
            if args.cache_command == "stats":
                return _cmd_cache_stats(args)
            return _cmd_cache_prune(args)
    except UnknownNameError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (ValueError, TypeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled command {args.command!r}")
