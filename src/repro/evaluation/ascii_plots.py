"""Dependency-free ASCII line plots for sweep results.

The environment has no plotting stack, so the examples and benches can
render figure panels directly in the terminal: one character column per
x-value bucket, one marker per series.  Deliberately simple — good
enough to eyeball the monotone/flat/growing shapes the paper's figures
communicate.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

_MARKERS = "ox+*#@%&"


def _scale(value: float, low: float, high: float, cells: int) -> int:
    """Map ``value`` in [low, high] to a row index in [0, cells-1]."""
    if high <= low:
        return 0
    fraction = (value - low) / (high - low)
    return min(cells - 1, max(0, int(round(fraction * (cells - 1)))))


def ascii_plot(x_values: Sequence[float], series: Dict[str, Sequence[float]],
               width: int = 64, height: int = 16, title: str = "",
               logy: bool = False) -> str:
    """Render series as an ASCII scatter-line plot.

    Parameters
    ----------
    x_values:
        Common x coordinates.
    series:
        Mapping ``label -> y values`` (same length as ``x_values``).
    logy:
        Plot ``log10(y)``; non-positive values are dropped from the plot
        (noted in the legend).
    """
    labels = list(series)
    if not labels:
        raise ValueError("series is empty")
    for label in labels:
        if len(series[label]) != len(x_values):
            raise ValueError(
                f"series {label!r} has {len(series[label])} values for "
                f"{len(x_values)} x points"
            )

    def transform(y: float) -> float:
        """Map a data value onto the (possibly log) plotting axis."""
        return math.log10(y) if logy else y

    points = []  # (col, row-value, marker-index)
    all_y: List[float] = []
    dropped = 0
    xs = [float(x) for x in x_values]
    x_low, x_high = min(xs), max(xs)
    for mi, label in enumerate(labels):
        for x, y in zip(xs, series[label]):
            y = float(y)
            if logy and y <= 0:
                dropped += 1
                continue
            ty = transform(y)
            col = _scale(x, x_low, x_high, width)
            points.append((col, ty, mi))
            all_y.append(ty)
    if not all_y:
        raise ValueError("no plottable points (all dropped by logy)")
    y_low, y_high = min(all_y), max(all_y)

    grid = [[" "] * width for _ in range(height)]
    for col, ty, mi in points:
        row = height - 1 - _scale(ty, y_low, y_high, height)
        grid[row][col] = _MARKERS[mi % len(_MARKERS)]

    def fmt(v: float) -> str:
        """Render an axis-space value back in data units for labels."""
        return f"{10**v:.3g}" if logy else f"{v:.3g}"

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{fmt(y_high):>9} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 9 + " |" + "".join(row) + "|")
    lines.append(f"{fmt(y_low):>9} +" + "-" * width + "+")
    lines.append(" " * 11 + f"{x_values[0]!s:<{width // 2}}{x_values[-1]!s:>{width // 2}}")
    legend = "   ".join(f"{_MARKERS[i % len(_MARKERS)]} {label}"
                        for i, label in enumerate(labels))
    lines.append(" " * 11 + legend)
    if dropped:
        lines.append(" " * 11 + f"({dropped} non-positive points dropped by logy)")
    return "\n".join(lines)
