"""Repeated-trial experiment runner.

The paper repeats every experiment at least 20 times and reports the
average; :class:`ExperimentRunner` reproduces that protocol with fully
deterministic seed fan-out (one root seed spawns one independent
generator per trial).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from .._validation import check_positive_int
from ..rng import SeedLike

#: A trial function maps ``rng -> metric value`` (or a dict of metrics).
TrialFn = Callable[[np.random.Generator], float]


@dataclass(frozen=True)
class TrialStats:
    """Mean / spread summary of one metric across trials."""

    mean: float
    std: float
    minimum: float
    maximum: float
    n_trials: int

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "TrialStats":
        """Summarise raw per-trial metric values (must be non-empty)."""
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            raise ValueError("cannot summarise zero trials")
        return cls(mean=float(arr.mean()), std=float(arr.std(ddof=0)),
                   minimum=float(arr.min()), maximum=float(arr.max()),
                   n_trials=int(arr.size))

    @property
    def stderr(self) -> float:
        """Standard error of the mean, from the sample standard deviation.

        ``std`` is the population (``ddof=0``) figure for backward
        compatibility; the standard error uses the unbiased sample
        estimator (``ddof=1``), i.e. ``std * sqrt(n/(n-1)) / sqrt(n)``
        which simplifies to ``std / sqrt(n - 1)``.  A single trial
        carries no spread information, so ``n_trials == 1`` returns 0.0
        rather than NaN.
        """
        if self.n_trials < 2:
            return 0.0
        return self.std / np.sqrt(self.n_trials - 1)


@dataclass
class ExperimentRunner:
    """Runs a trial function ``n_trials`` times with independent seeds.

    Parameters
    ----------
    n_trials:
        Number of repetitions (the paper uses >= 20; benches use fewer).
    seed:
        Root seed; each trial gets a generator spawned from it.
    """

    n_trials: int = 20
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        check_positive_int(self.n_trials, "n_trials")

    def run(self, trial: TrialFn) -> TrialStats:
        """Average a scalar-valued trial function across trials."""
        from .engine import run_trial_values
        return TrialStats.from_values(
            run_trial_values(trial, self.n_trials, self.seed))

    def run_multi(self, trial: Callable[[np.random.Generator], Dict[str, float]]
                  ) -> Dict[str, TrialStats]:
        """Average a dict-valued trial function, key by key."""
        from .engine import run_trial_outcomes
        collected: Dict[str, List[float]] = {}
        for outcome in run_trial_outcomes(trial, self.n_trials, self.seed):
            for key, value in outcome.items():
                collected.setdefault(key, []).append(float(value))
        return {key: TrialStats.from_values(vals) for key, vals in collected.items()}
