"""Parallel, cache-aware experiment engine.

Every figure panel in the paper is a (series × sweep × trial) grid of
independent stochastic experiments.  This module materialises each grid
cell as a :class:`TrialJob` — an independently seeded, picklable unit of
work — and fans the jobs out over a pluggable executor (serial
in-process, a :class:`concurrent.futures.ThreadPoolExecutor` for points
whose hot loops release the GIL, or a
:class:`concurrent.futures.ProcessPoolExecutor` pool), optionally
short-circuiting cells whose trial values are already present in an
on-disk :class:`ResultCache`.  Point functions are best written as
:class:`~repro.evaluation.scenarios.Scenario` dataclasses: picklable
(so the process executor can fan out) and code-fingerprinted (so the
cache invalidates when their code changes).

Seeding is the load-bearing correctness property.  Cell seeds are derived
from a *stable digest* of the cell coordinates (``hashlib.blake2b`` over a
canonical encoding of the series/sweep names and values) combined with
the root :class:`numpy.random.SeedSequence`.  The builtin :func:`hash` is
never used: it is salted per process (``PYTHONHASHSEED``), which is
exactly the bug that made the old ``sweep()`` non-reproducible across
processes.  Because seeds depend only on the root seed and the cell's
coordinates — never on grid *indices* or execution order — all three
executors produce bit-identical results, and the cache stays sound when
a grid is extended with new sweep values.

Cache keys additionally fold in a *code fingerprint* of the point
callable (:func:`~repro.evaluation.scenarios.point_fingerprint`): a
digest of its bytecode, constants, and configuration.  Seeds never
depend on the fingerprint — editing point code invalidates the affected
cache cells but leaves the random draws of recomputed cells unchanged.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import tempfile
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..rng import GridSeed, SeedLike, spawn_rngs
from .runner import TrialStats
from .sweeps import SweepResult

#: point(series_value, sweep_value, rng) -> scalar error.
PointFn = Callable[[object, object, np.random.Generator], float]

#: A trial function maps ``rng -> metric value`` (or a dict of metrics).
TrialFn = Callable[[np.random.Generator], float]


# ---------------------------------------------------------------------------
# Stable digests — the fix for the process-salted hash() seeding bug.
# ---------------------------------------------------------------------------

def stable_repr(value: object) -> str:
    """``repr`` with memory addresses stripped, for process-stable keys.

    Only the default-repr ``at 0x...`` address pattern is stripped —
    a hex literal that is part of the value's state (``Spec(0xff)``)
    must survive, or distinct values would collide.
    """
    return re.sub(r" at 0x[0-9a-f]+", " at 0x", repr(value))


def canonical_token(value: object) -> str:
    """A stable, type-tagged text encoding of one coordinate value.

    Two values map to the same token iff they would label the same grid
    cell: the encoding is independent of the process (unlike ``hash``),
    tags the type so ``1`` and ``"1"`` stay distinct, and round-trips
    floats exactly via ``float.hex``.  Free-form payloads (strings,
    reprs) are length-prefixed so that no choice of value can mimic the
    token separators — tokens decode unambiguously, hence never collide.

    Objects are admitted only if their type defines a ``__repr__`` of
    its own: the inherited default repr is just a per-process memory
    address, which would silently reintroduce the cross-process seeding
    bug this module exists to fix.  Any address that still appears
    inside a custom repr (e.g. an embedded sub-object) is stripped.
    """
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, bool):
        return f"b:{value}"
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, float):
        return f"f:{value.hex()}"
    if isinstance(value, str):
        return f"s:{len(value)}:{value}"
    if isinstance(value, (tuple, list)):
        return "t:[" + ",".join(canonical_token(v) for v in value) + "]"
    if isinstance(value, (set, frozenset)):
        # Iteration order is hash-salted for str members; sort by token.
        return "S:{" + ",".join(sorted(canonical_token(v) for v in value)) + "}"
    if isinstance(value, np.ndarray):
        # repr() elides large arrays ('...'), which would collide distinct
        # coordinates; digest the full buffer instead.
        body = hashlib.blake2b(np.ascontiguousarray(value).tobytes(),
                               digest_size=8).hexdigest()
        return f"a:{value.dtype}:{value.shape}:{body}"
    if type(value).__repr__ is object.__repr__:
        raise TypeError(
            f"cannot derive a stable seed token for {type(value).__name__!r}: "
            f"its repr is the default per-process memory address; use an "
            f"int/float/str coordinate or a type with a meaningful __repr__")
    text = stable_repr(value)
    return f"r:{len(text)}:{text}"


def cell_seed_words(series_name: str, series_value: object,
                    sweep_name: str, sweep_value: object) -> Tuple[int, int]:
    """Two 32-bit spawn-key words stably derived from a cell's coordinates."""
    payload = "\x1f".join([
        canonical_token(series_name), canonical_token(series_value),
        canonical_token(sweep_name), canonical_token(sweep_value),
    ])
    digest = hashlib.blake2b(payload.encode("utf-8"), digest_size=8).digest()
    return (int.from_bytes(digest[:4], "little"),
            int.from_bytes(digest[4:], "little"))


def _normalize_root(seed: GridSeed) -> np.random.SeedSequence:
    """Root seed for a grid: an ``int`` or an explicit ``SeedSequence``.

    Anything else (``None``, a ``Generator``, a float, …) is rejected:
    the engine's reproducibility and cache-key guarantees only hold for
    seeds that can be re-stated exactly in a fresh process.
    """
    if isinstance(seed, (bool, np.bool_)):
        raise TypeError(f"unsupported root seed type {type(seed).__name__!r}; "
                        "pass an int or a numpy.random.SeedSequence")
    if isinstance(seed, (int, np.integer)):
        return np.random.SeedSequence(int(seed))
    if isinstance(seed, np.random.SeedSequence):
        return seed
    raise TypeError(f"unsupported root seed type {type(seed).__name__!r}; "
                    "pass an int or a numpy.random.SeedSequence")


# ---------------------------------------------------------------------------
# TrialJob — one independently seeded grid cell.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TrialJob:
    """One (series, sweep) cell of a figure panel: ``n_trials`` repeats.

    Jobs are frozen, picklable value objects — everything a worker
    process needs (coordinates, trial count, and the exact seed material)
    travels with the job, so results cannot depend on which executor or
    process runs them.
    """

    series_index: int
    sweep_index: int
    series_value: object
    sweep_value: object
    n_trials: int
    entropy: object
    spawn_key: Tuple[int, ...]
    digest: str

    @classmethod
    def create(cls, *, series_index: int, sweep_index: int,
               series_value: object, sweep_value: object, n_trials: int,
               root: np.random.SeedSequence, sweep_name: str,
               series_name: str, cache_tag: str = "",
               code_token: str = "") -> "TrialJob":
        """Build a job with digest-derived seed material for one cell.

        ``code_token`` (normally the point callable's
        :func:`~repro.evaluation.scenarios.point_fingerprint`) enters
        the cache digest only — never the seed material — so editing
        point code retires stale cache cells without perturbing the
        random draws of the recomputed ones.  An empty token reproduces
        the pre-fingerprint digests, keeping code-agnostic callers (and
        their warm caches) stable.
        """
        words = cell_seed_words(series_name, series_value,
                                sweep_name, sweep_value)
        spawn_key = tuple(int(k) for k in root.spawn_key) + words
        components = [
            canonical_token(cache_tag),
            canonical_token(root.entropy if not isinstance(root.entropy, np.ndarray)
                            else root.entropy.tolist()),
            canonical_token(tuple(int(k) for k in root.spawn_key)),
            canonical_token(series_name), canonical_token(series_value),
            canonical_token(sweep_name), canonical_token(sweep_value),
            canonical_token(n_trials),
        ]
        if code_token:
            components.append("code=" + canonical_token(code_token))
        digest = hashlib.blake2b("\x1f".join(components).encode("utf-8"),
                                 digest_size=16).hexdigest()
        return cls(series_index=series_index, sweep_index=sweep_index,
                   series_value=series_value, sweep_value=sweep_value,
                   n_trials=n_trials, entropy=root.entropy,
                   spawn_key=spawn_key, digest=digest)

    def seed_sequence(self) -> np.random.SeedSequence:
        """The cell's root :class:`~numpy.random.SeedSequence`."""
        return np.random.SeedSequence(entropy=self.entropy,
                                      spawn_key=self.spawn_key)

    def execute(self, point: PointFn) -> List[float]:
        """Run all trials of this cell and return the raw trial values."""
        rngs = spawn_rngs(self.seed_sequence(), self.n_trials)
        return [float(point(self.series_value, self.sweep_value, rng))
                for rng in rngs]


def build_jobs(sweep_name: str, sweep_values: Sequence[object],
               series_name: str, series_values: Sequence[object],
               n_trials: int, seed: GridSeed, cache_tag: str = "",
               code_token: str = "") -> List[TrialJob]:
    """Materialise every grid cell of a panel as an independent job.

    Series values must be unique: they key the result's ``series``
    mapping, and a duplicate would silently interleave two copies of
    the curve into one list.  (Duplicate *sweep* values are harmless —
    equal coordinates get equal seeds and equal results.)

    ``code_token`` is folded into each job's cache digest (see
    :meth:`TrialJob.create`); it does not influence seeds.
    """
    if len(set(series_values)) != len(list(series_values)):
        raise ValueError(f"series_values must be unique, got {list(series_values)!r}")
    root = _normalize_root(seed)
    jobs: List[TrialJob] = []
    for si, series_value in enumerate(series_values):
        for xi, sweep_value in enumerate(sweep_values):
            jobs.append(TrialJob.create(
                series_index=si, sweep_index=xi, series_value=series_value,
                sweep_value=sweep_value, n_trials=n_trials, root=root,
                sweep_name=sweep_name, series_name=series_name,
                cache_tag=cache_tag, code_token=code_token))
    return jobs


# ---------------------------------------------------------------------------
# Trial helpers shared with ExperimentRunner.
# ---------------------------------------------------------------------------

def run_trial_values(trial: TrialFn, n_trials: int, seed: SeedLike) -> List[float]:
    """Scalar trial values from ``n_trials`` independently seeded repeats."""
    return [float(trial(rng)) for rng in spawn_rngs(seed, n_trials)]


def run_trial_outcomes(trial: Callable[[np.random.Generator], Dict[str, float]],
                       n_trials: int, seed: SeedLike) -> List[Dict[str, float]]:
    """Dict-valued trial outcomes from ``n_trials`` independent repeats."""
    return [dict(trial(rng)) for rng in spawn_rngs(seed, n_trials)]


# ---------------------------------------------------------------------------
# Executors.
# ---------------------------------------------------------------------------

def _execute_payload(payload: Tuple[PointFn, TrialJob]) -> List[float]:
    """Module-level job entry point (must be picklable for process pools)."""
    point, job = payload
    return job.execute(point)


class SerialExecutor:
    """Runs jobs one after another in the calling process.

    ``run`` yields each cell's values as soon as that cell finishes, so
    the caller can persist completed work before a later cell fails.
    """

    def run(self, payloads: Sequence[Tuple[PointFn, TrialJob]]):
        """Yield each cell's trial values as it completes, in order."""
        for payload in payloads:
            yield _execute_payload(payload)


class ProcessExecutor:
    """Fans jobs out over a :class:`ProcessPoolExecutor` worker pool.

    Because each job carries its own seed material, results are
    bit-identical to :class:`SerialExecutor` regardless of worker count,
    chunking, or scheduling order.

    Parameters
    ----------
    max_workers:
        Pool size; ``None`` uses the ``ProcessPoolExecutor`` default
        (the machine's CPU count).
    chunksize:
        Jobs handed to a worker per IPC round-trip.  Raising it
        amortises pickling overhead when individual cells are cheap.
    """

    def __init__(self, max_workers: Optional[int] = None, chunksize: int = 1):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.max_workers = max_workers
        self.chunksize = chunksize

    def run(self, payloads: Sequence[Tuple[PointFn, TrialJob]]):
        """Yield each cell's trial values as the worker pool streams them."""
        if not payloads:
            return
        point = payloads[0][0]
        try:
            pickle.dumps(point)
        except Exception as exc:
            raise TypeError(
                "the process executor needs a picklable point function — "
                "a module-level function or a Scenario/PointSpec dataclass "
                "(repro.evaluation.scenarios), not a closure or lambda; "
                "use executor='serial' or 'thread' for closure-based "
                "points") from exc
        # Yield results as pool.map streams them (in submission order) so
        # the caller can cache completed cells before a later one fails;
        # the pool stays open for exactly as long as the generator runs.
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            yield from pool.map(_execute_payload, payloads,
                                chunksize=self.chunksize)


class ThreadExecutor:
    """Fans jobs out over a :class:`ThreadPoolExecutor` in-process pool.

    The right executor for point functions dominated by BLAS or other C
    kernels that release the GIL (matrix products, numpy reductions):
    threads share the interpreter, so there is no pickling requirement —
    closures and lambdas work — and no per-job IPC cost.  Pure-Python
    hot loops serialise on the GIL and should use
    :class:`ProcessExecutor` instead.

    Because each job carries its own seed material, results are
    bit-identical to :class:`SerialExecutor` and :class:`ProcessExecutor`
    regardless of worker count or scheduling order.

    Parameters
    ----------
    max_workers:
        Pool size; ``None`` uses the ``ThreadPoolExecutor`` default
        (``min(32, cpu_count + 4)``).
    """

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers

    def run(self, payloads: Sequence[Tuple[PointFn, TrialJob]]):
        """Yield each cell's trial values as ``pool.map`` streams them."""
        if not payloads:
            return
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            yield from pool.map(_execute_payload, payloads)


ExecutorLike = Union[str, SerialExecutor, ThreadExecutor, ProcessExecutor]


def get_executor(executor: ExecutorLike = "serial",
                 max_workers: Optional[int] = None, chunksize: int = 1
                 ) -> Union[SerialExecutor, ThreadExecutor, ProcessExecutor]:
    """Resolve an executor spec to an executor instance.

    ``executor`` is ``"serial"``, ``"thread"``, ``"process"``, or any
    object with a ``run(payloads)`` method (returned unchanged).
    ``chunksize`` only applies to the process pool — threads share the
    interpreter, so there is nothing to amortise.
    """
    if isinstance(executor, str):
        if executor == "serial":
            return SerialExecutor()
        if executor == "thread":
            return ThreadExecutor(max_workers=max_workers)
        if executor == "process":
            return ProcessExecutor(max_workers=max_workers, chunksize=chunksize)
        raise ValueError(f"unknown executor {executor!r}; "
                         "expected 'serial', 'thread', or 'process'")
    if hasattr(executor, "run"):
        return executor
    raise TypeError(f"executor must be a name or provide .run(), "
                    f"got {type(executor).__name__!r}")


# ---------------------------------------------------------------------------
# On-disk result cache.
# ---------------------------------------------------------------------------

class ResultCache:
    """Per-cell trial-value cache keyed by the job digest.

    Each cell is one small JSON file named after the job's digest, which
    covers the root seed, the cell coordinates, the trial count, and the
    caller's ``cache_tag`` — so a hit is guaranteed to be the same
    experiment.  Raw trial values (not summaries) are stored, so cached
    cells reproduce :class:`TrialStats` bit-for-bit.  Writes are atomic
    (temp file + rename) to stay safe under concurrent bench runs.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, digest: str) -> Path:
        return self.directory / f"{digest}.json"

    def get(self, job: TrialJob) -> Optional[List[float]]:
        """Cached trial values for ``job``, or ``None`` on a miss."""
        path = self._path(job.digest)
        try:
            with open(path) as fh:
                values = json.load(fh)
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            # Missing, unreadable, or binary-corrupt files are all
            # misses to recompute, never fatal.
            self.misses += 1
            return None
        try:
            if not isinstance(values, list) or len(values) != job.n_trials:
                raise ValueError("wrong shape")
            values = [float(v) for v in values]
        except (TypeError, ValueError):
            # Any malformed payload (wrong length, nulls, strings) is a
            # miss to recompute, like a missing or unparseable file.
            self.misses += 1
            return None
        self.hits += 1
        return values

    def put(self, job: TrialJob, values: Sequence[float]) -> None:
        """Atomically persist the trial values for ``job``."""
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump([float(v) for v in values], fh)
            os.replace(tmp, self._path(job.digest))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise


CacheLike = Union[None, str, Path, ResultCache]


def _resolve_cache(cache: CacheLike) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


# ---------------------------------------------------------------------------
# run_grid — the engine's front door.
# ---------------------------------------------------------------------------

def run_grid(point: PointFn, sweep_name: str, sweep_values: Sequence[object],
             series_name: str, series_values: Sequence[object], *,
             n_trials: int = 5, seed: GridSeed = 0,
             executor: ExecutorLike = "serial",
             max_workers: Optional[int] = None, chunksize: int = 1,
             cache: CacheLike = None, cache_tag: str = "",
             code_tag: Optional[str] = None) -> SweepResult:
    """Evaluate ``point`` over the sweep × series grid with repeats.

    The grid is materialised as :class:`TrialJob` s, cached cells are
    loaded from ``cache``, and only the missing cells are dispatched to
    ``executor``.  The result is identical for every executor and for
    every cache state, because all randomness is fixed by the job seeds.

    Parameters
    ----------
    point:
        ``point(series_value, sweep_value, rng) -> scalar``.  Must be
        picklable — a module-level function or a
        :class:`~repro.evaluation.scenarios.Scenario` — for the process
        executor; the serial and thread executors take any callable.
    executor:
        ``"serial"``, ``"thread"``, ``"process"``, or any object whose
        ``run(payloads)`` returns an iterable of trial-value lists in
        payload order (streaming generators preserve partial progress).
    cache:
        ``None``, a directory path, or a :class:`ResultCache`.
    cache_tag:
        Distinguishes different point functions that share a root seed
        and grid; include it whenever a cache directory is shared.
    code_tag:
        Code component of the cache key.  ``None`` (default) derives it
        from ``point`` via
        :func:`~repro.evaluation.scenarios.point_fingerprint`, so
        editing the point's code (or a scenario's fields) invalidates
        exactly its cached cells.  Pass ``""`` to opt out and key cells
        by coordinates alone, or a fixed string to manage versioning by
        hand.  Never affects seeds or results — only cache reuse.
    """
    if code_tag is None:
        from .scenarios import point_fingerprint
        code_tag = point_fingerprint(point)
    jobs = build_jobs(sweep_name, sweep_values, series_name, series_values,
                      n_trials, seed, cache_tag=cache_tag,
                      code_token=code_tag)
    store = _resolve_cache(cache)
    values_by_job: Dict[int, List[float]] = {}
    pending: List[Tuple[int, TrialJob]] = []
    for index, job in enumerate(jobs):
        hit = store.get(job) if store is not None else None
        if hit is not None:
            values_by_job[index] = hit
        else:
            pending.append((index, job))
    if pending:
        runner = get_executor(executor, max_workers=max_workers,
                              chunksize=chunksize)
        fresh = runner.run([(point, job) for _, job in pending])
        # Consume as the executor streams: each finished cell is cached
        # immediately, so an interrupt or a failing later cell never
        # discards completed work.
        for (index, job), values in zip(pending, fresh):
            values_by_job[index] = list(values)
            if store is not None:
                store.put(job, values)

    result = SweepResult(sweep_name=sweep_name, series_name=series_name,
                         sweep_values=list(sweep_values))
    for index, job in enumerate(jobs):
        stats = TrialStats.from_values(values_by_job[index])
        result.series.setdefault(job.series_value, []).append(stats)
    return result
