"""Evaluation harness: metrics, repeated-trial runner, sweeps, tables."""

from .ascii_plots import ascii_plot
from .metrics import (
    classification_accuracy,
    excess_empirical_risk,
    mean_squared_estimation_error,
    parameter_error,
    relative_risk_gap,
    support_recovery,
)
from .runner import ExperimentRunner, TrialStats
from .sweeps import SweepResult, sweep
from .tables import format_series_table, markdown_table, shape_summary

__all__ = [
    "ExperimentRunner",
    "ascii_plot",
    "SweepResult",
    "TrialStats",
    "classification_accuracy",
    "excess_empirical_risk",
    "format_series_table",
    "markdown_table",
    "mean_squared_estimation_error",
    "parameter_error",
    "relative_risk_gap",
    "shape_summary",
    "support_recovery",
    "sweep",
]
