"""Evaluation harness: metrics, engine, scenarios, runner, sweeps, tables."""

from .ascii_plots import ascii_plot
from .engine import (
    ENGINE_VERSION,
    EvictionPolicy,
    ProcessExecutor,
    ResultCache,
    SerialExecutor,
    SingleFlight,
    ThreadExecutor,
    TrialJob,
    build_jobs,
    get_executor,
    run_grid,
)
from .scenarios import (
    FingerprintError,
    PointSpec,
    Scenario,
    batch_method,
    module_token,
    point_fingerprint,
)
from .spec import AxisSpec, ExperimentSpec, SpecScenario
from .metrics import (
    classification_accuracy,
    excess_empirical_risk,
    mean_squared_estimation_error,
    parameter_error,
    relative_risk_gap,
    support_recovery,
)
from .runner import ExperimentRunner, TrialStats
from .sweeps import SweepResult, sweep
from .tables import (
    format_panel_block,
    format_series_table,
    markdown_table,
    shape_summary,
)

__all__ = [
    "AxisSpec",
    "ENGINE_VERSION",
    "EvictionPolicy",
    "ExperimentRunner",
    "ExperimentSpec",
    "FingerprintError",
    "PointSpec",
    "SpecScenario",
    "ProcessExecutor",
    "ResultCache",
    "Scenario",
    "SerialExecutor",
    "SingleFlight",
    "SweepResult",
    "ThreadExecutor",
    "TrialJob",
    "TrialStats",
    "ascii_plot",
    "batch_method",
    "build_jobs",
    "classification_accuracy",
    "excess_empirical_risk",
    "format_panel_block",
    "format_series_table",
    "get_executor",
    "markdown_table",
    "mean_squared_estimation_error",
    "module_token",
    "parameter_error",
    "point_fingerprint",
    "relative_risk_gap",
    "run_grid",
    "shape_summary",
    "support_recovery",
    "sweep",
]
