"""Figure-series formatting helpers shared by the benchmark harness."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_series_table(x_name: str, x_values: Sequence,
                        series: Dict[str, Sequence[float]],
                        title: str = "", float_format: str = "{:.5f}") -> str:
    """Aligned text table: one row per x value, one column per series.

    Parameters
    ----------
    series:
        Mapping ``label -> values`` with ``len(values) == len(x_values)``.
    """
    labels = list(series)
    for label in labels:
        if len(series[label]) != len(x_values):
            raise ValueError(
                f"series {label!r} has {len(series[label])} values for "
                f"{len(x_values)} x points"
            )
    widths = [max(len(x_name), 12)] + [max(len(label), 10) for label in labels]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(
        name.rjust(width) for name, width in zip([x_name] + labels, widths)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for i, x in enumerate(x_values):
        cells = [str(x).rjust(widths[0])]
        for j, label in enumerate(labels):
            cells.append(float_format.format(series[label][i]).rjust(widths[j + 1]))
        lines.append(" | ".join(cells))
    return "\n".join(lines)


def shape_summary(x_values: Sequence, values: Sequence[float]) -> str:
    """One-line trend summary: first -> last value plus the ratio."""
    first, last = float(values[0]), float(values[-1])
    ratio = last / first if first not in (0.0,) else float("inf")
    direction = "down" if last < first else "up"
    return (f"{x_values[0]} -> {x_values[-1]}: {first:.5f} -> {last:.5f} "
            f"({direction}, x{ratio:.3f})")


def markdown_table(headers: Iterable[str], rows: Iterable[Sequence]) -> str:
    """Small GitHub-markdown table renderer for EXPERIMENTS.md snippets."""
    headers = list(headers)
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def format_panel_block(title: str, x_name: str, x_values: Sequence,
                       series: Dict[object, Sequence[float]]) -> str:
    """One bench results-file block: the panel table plus trend lines.

    This is the exact text the figure benches append to
    ``benchmarks/results/*.txt`` (and print); the CLI uses the same
    function, so ``python -m repro run <bench>`` reproduces a committed
    table byte for byte.  Series labels are stringified, as the bench
    tables always did.
    """
    labelled = {f"{k}": v for k, v in series.items()}
    table = format_series_table(x_name, list(x_values), labelled, title=title)
    trends = "\n".join(
        f"  series {label}: {shape_summary(list(x_values), list(values))}"
        for label, values in labelled.items()
    )
    return f"\n{table}\n{trends}\n"
