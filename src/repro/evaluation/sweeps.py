"""Parameter sweeps — the (x-axis, series) structure of the paper's figures.

Every panel in Figures 1–11 is "error versus one swept variable, one
curve per value of a second variable".  :func:`sweep` captures exactly
that: it evaluates a point function on the product of the sweep values
and the series values and returns a :class:`SweepResult` whose
``format_table`` output is what the benches print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..rng import SeedLike
from .runner import ExperimentRunner, TrialStats

#: point(series_value, sweep_value, rng) -> scalar error.
PointFn = Callable[[object, object, np.random.Generator], float]


@dataclass
class SweepResult:
    """The data behind one figure panel.

    Attributes
    ----------
    sweep_name, series_name:
        Axis labels (e.g. ``"epsilon"`` and ``"d"``).
    sweep_values:
        The x-axis values.
    series:
        Mapping from series value (e.g. a dimension) to the list of
        per-x :class:`TrialStats`.
    """

    sweep_name: str
    series_name: str
    sweep_values: List[object]
    series: Dict[object, List[TrialStats]] = field(default_factory=dict)

    def means(self, series_value: object) -> np.ndarray:
        """Mean-error curve for one series."""
        return np.array([stat.mean for stat in self.series[series_value]])

    def format_table(self, title: str = "", float_format: str = "{:.5f}"
                     ) -> str:
        """Render the panel as the aligned text table the benches print."""
        header_cells = [f"{self.sweep_name:>12}"] + [
            f"{self.series_name}={value!s:>8}" for value in self.series
        ]
        lines = []
        if title:
            lines.append(title)
        lines.append(" | ".join(header_cells))
        lines.append("-" * len(lines[-1]))
        for i, x in enumerate(self.sweep_values):
            cells = [f"{x!s:>12}"]
            for value in self.series:
                cells.append(f"{float_format.format(self.series[value][i].mean):>{len(f'{self.series_name}={value!s:>8}')}}")
            lines.append(" | ".join(cells))
        return "\n".join(lines)

    def is_decreasing(self, series_value: object, slack: float = 0.0) -> bool:
        """Whether the mean curve decreases from first to last x (with slack).

        The benches' shape checks use end-point comparison rather than
        full monotonicity because individual DP runs are noisy.
        """
        curve = self.means(series_value)
        return bool(curve[-1] <= curve[0] * (1.0 + slack) - 0.0)


def sweep(point: PointFn, sweep_name: str, sweep_values: Sequence[object],
          series_name: str, series_values: Sequence[object],
          n_trials: int = 5, seed: SeedLike = 0) -> SweepResult:
    """Evaluate ``point`` over the sweep × series grid with repeats.

    Seeds are derived per grid cell so that (a) every cell is independent
    and (b) rerunning a sweep with the same root seed is reproducible.
    """
    result = SweepResult(sweep_name=sweep_name, series_name=series_name,
                         sweep_values=list(sweep_values))
    for series_value in series_values:
        stats_list: List[TrialStats] = []
        for i, sweep_value in enumerate(sweep_values):
            cell_seed = np.random.SeedSequence(
                entropy=seed if isinstance(seed, int) else 0,
                spawn_key=(hash(str(series_value)) & 0xFFFF, i),
            )
            runner = ExperimentRunner(n_trials=n_trials, seed=cell_seed)
            stats_list.append(
                runner.run(lambda rng, sv=series_value, xv=sweep_value: point(sv, xv, rng))
            )
        result.series[series_value] = stats_list
    return result
