"""Parameter sweeps — the (x-axis, series) structure of the paper's figures.

Every panel in Figures 1–11 is "error versus one swept variable, one
curve per value of a second variable".  :func:`sweep` captures exactly
that: it evaluates a point function on the product of the sweep values
and the series values and returns a :class:`SweepResult` whose
``format_table`` output is what the benches print.

:func:`sweep` is a thin wrapper over :mod:`repro.evaluation.engine`,
which owns seeding (stable digests of the cell coordinates — never the
process-salted builtin ``hash``), parallel execution, and caching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..rng import GridSeed
from .runner import TrialStats

#: point(series_value, sweep_value, rng) -> scalar error.
PointFn = Callable[[object, object, np.random.Generator], float]


@dataclass
class SweepResult:
    """The data behind one figure panel.

    Attributes
    ----------
    sweep_name, series_name:
        Axis labels (e.g. ``"epsilon"`` and ``"d"``).
    sweep_values:
        The x-axis values.
    series:
        Mapping from series value (e.g. a dimension) to the list of
        per-x :class:`TrialStats`.
    """

    sweep_name: str
    series_name: str
    sweep_values: List[object]
    series: Dict[object, List[TrialStats]] = field(default_factory=dict)

    def means(self, series_value: object) -> np.ndarray:
        """Mean-error curve for one series."""
        return np.array([stat.mean for stat in self.series[series_value]])

    def format_table(self, title: str = "", float_format: str = "{:.5f}"
                     ) -> str:
        """Render the panel as the aligned text table the benches print."""
        header_cells = [f"{self.sweep_name:>12}"] + [
            f"{self.series_name}={value!s:>8}" for value in self.series
        ]
        lines = []
        if title:
            lines.append(title)
        lines.append(" | ".join(header_cells))
        lines.append("-" * len(lines[-1]))
        for i, x in enumerate(self.sweep_values):
            cells = [f"{x!s:>12}"]
            for value in self.series:
                cells.append(f"{float_format.format(self.series[value][i].mean):>{len(f'{self.series_name}={value!s:>8}')}}")
            lines.append(" | ".join(cells))
        return "\n".join(lines)

    def is_decreasing(self, series_value: object, slack: float = 0.0) -> bool:
        """Whether the mean curve decreases from first to last x (with slack).

        The benches' shape checks use end-point comparison rather than
        full monotonicity because individual DP runs are noisy.  The
        allowance is ``slack * |curve[0]|`` for a meaningfully nonzero
        start and plain ``slack`` (an absolute allowance) when the start
        is zero up to floating dust (|start| < 1e-9), so a zero or
        negative baseline still gets headroom instead of a silently
        tighter — or inverted — check.
        """
        curve = self.means(series_value)
        start, end = float(curve[0]), float(curve[-1])
        base = abs(start)
        allowance = slack * base if base >= 1e-9 else slack
        return bool(end <= start + allowance)


def sweep(point: PointFn, sweep_name: str, sweep_values: Sequence[object],
          series_name: str, series_values: Sequence[object],
          n_trials: int = 5, seed: GridSeed = 0, *,
          executor: object = "serial", max_workers: Optional[int] = None,
          chunksize: int = 1, cache: object = None, cache_tag: str = "",
          code_tag: Optional[str] = None) -> SweepResult:
    """Evaluate ``point`` over the sweep × series grid with repeats.

    Seeds are derived per grid cell from a stable digest of the cell
    coordinates plus the root seed, so that (a) every cell is independent
    and (b) rerunning a sweep with the same root seed is reproducible —
    including across processes with different ``PYTHONHASHSEED``.
    ``seed`` must be an ``int`` or a :class:`numpy.random.SeedSequence`;
    other types raise :class:`TypeError` rather than being silently
    replaced.

    The keyword-only arguments are forwarded to
    :func:`repro.evaluation.engine.run_grid`; the defaults reproduce the
    historical serial, uncached behaviour.
    """
    from .engine import run_grid
    return run_grid(point, sweep_name, sweep_values, series_name,
                    series_values, n_trials=n_trials, seed=seed,
                    executor=executor, max_workers=max_workers,
                    chunksize=chunksize, cache=cache, cache_tag=cache_tag,
                    code_tag=code_tag)
