"""Evaluation metrics: excess risk, parameter error, support recovery.

The paper's measurement is the excess population risk
``L_D(w) - L_D(w*)`` approximated by the empirical risk on the dataset
("since it is impossible to precisely evaluate the population risk
function, here we will use the empirical risk to approximate it" —
Section 6.2); the sparse experiments additionally look at parameter
estimation error, for which support-recovery diagnostics are provided.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import check_dataset, check_vector
from ..losses.base import Loss


def excess_empirical_risk(loss: Loss, w: np.ndarray, w_star: np.ndarray,
                          X: np.ndarray, y: np.ndarray) -> float:
    """``L_hat(w) - L_hat(w*)`` on the given evaluation batch.

    Can be (slightly) negative when ``w*`` is a planted parameter rather
    than the empirical minimiser; callers that need a non-negative series
    should pass the empirical optimum as ``w_star``.
    """
    X, y = check_dataset(X, y)
    w = check_vector(w, "w", dim=X.shape[1])
    w_star = check_vector(w_star, "w_star", dim=X.shape[1])
    return loss.value(w, X, y) - loss.value(w_star, X, y)


def parameter_error(w: np.ndarray, w_star: np.ndarray, order: int = 2) -> float:
    """``||w - w*||`` in the requested norm (2 by default)."""
    w = check_vector(w, "w")
    w_star = check_vector(w_star, "w_star", dim=w.size)
    return float(np.linalg.norm(w - w_star, ord=order))


def support_recovery(w: np.ndarray, w_star: np.ndarray, *,
                     tol: float = 1e-10) -> dict:
    """Precision/recall/F1 of the recovered support against ``supp(w*)``."""
    w = check_vector(w, "w")
    w_star = check_vector(w_star, "w_star", dim=w.size)
    estimated = set(np.nonzero(np.abs(w) > tol)[0].tolist())
    truth = set(np.nonzero(np.abs(w_star) > tol)[0].tolist())
    overlap = len(estimated & truth)
    precision = overlap / len(estimated) if estimated else (1.0 if not truth else 0.0)
    recall = overlap / len(truth) if truth else 1.0
    f1 = (2 * precision * recall / (precision + recall)
          if precision + recall > 0 else 0.0)
    return {"precision": precision, "recall": recall, "f1": f1,
            "estimated_size": len(estimated), "true_size": len(truth)}


def classification_accuracy(w: np.ndarray, X: np.ndarray,
                            y: np.ndarray) -> float:
    """Sign-agreement accuracy for ±1 labels (logistic experiments)."""
    X, y = check_dataset(X, y)
    w = check_vector(w, "w", dim=X.shape[1])
    predictions = np.where(X @ w > 0, 1.0, -1.0)
    return float(np.mean(predictions == y))


def mean_squared_estimation_error(estimate: np.ndarray,
                                  truth: np.ndarray) -> float:
    """``||estimate - truth||_2^2`` — the risk metric of Theorem 9."""
    estimate = check_vector(estimate, "estimate")
    truth = check_vector(truth, "truth", dim=estimate.size)
    return float(np.sum((estimate - truth) ** 2))


def relative_risk_gap(loss: Loss, w_private: np.ndarray,
                      w_nonprivate: np.ndarray, X: np.ndarray, y: np.ndarray,
                      w_star: Optional[np.ndarray] = None) -> float:
    """``(L(w_priv) - L(w_nonpriv)) / max(L(w_nonpriv) - L(w*), eps_mach)``.

    Panel (c) of Figures 1/2/5/6 plots "the difference of empirical risk
    between private and non-private" — the absolute gap
    ``L(w_priv) - L(w_nonpriv)``; this relative form is additionally
    provided for scale-free reporting in EXPERIMENTS.md.
    """
    gap = loss.value(w_private, X, y) - loss.value(w_nonprivate, X, y)
    if w_star is None:
        return gap
    denom = max(loss.value(w_nonprivate, X, y) - loss.value(w_star, X, y), 1e-12)
    return gap / denom


# ---------------------------------------------------------------------------
# Registry adapters — metrics as addressable data for experiment specs.
# Each takes ``(w, data)`` (a fitted parameter and the
# :class:`~repro.data.RegressionData` it was fitted on) plus optional
# keywords supplied by the spec's ``metric_kwargs``.
# ---------------------------------------------------------------------------

from ..registry import METRICS


@METRICS.register("excess_risk")
def _excess_risk_metric(w: np.ndarray, data, *, loss="squared") -> float:
    """Excess empirical risk against the planted ``w*``.

    ``loss`` is a registered loss name or mapping (see
    :func:`repro.losses.resolve_loss`); the paper's headline metric.
    """
    from ..losses.base import resolve_loss
    return excess_empirical_risk(resolve_loss(loss), w, data.w_star,
                                 data.features, data.labels)


@METRICS.register("param_error")
def _param_error_metric(w: np.ndarray, data, *, order: int = 2) -> float:
    """Parameter error ``||w - w*||`` in the requested norm."""
    return parameter_error(w, data.w_star, order=order)


@METRICS.register("accuracy")
def _accuracy_metric(w: np.ndarray, data) -> float:
    """Sign-agreement accuracy on ±1 labels (logistic experiments)."""
    return classification_accuracy(w, data.features, data.labels)


@METRICS.register("support_f1")
def _support_f1_metric(w: np.ndarray, data, *, tol: float = 1e-10) -> float:
    """F1 score of the recovered support against ``supp(w*)``."""
    return float(support_recovery(w, data.w_star, tol=tol)["f1"])
