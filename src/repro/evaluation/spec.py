"""Declarative experiment specs: registry names in, picklable scenarios out.

An :class:`ExperimentSpec` describes one experiment grid as plain data —
a solver name plus kwargs, a data-generator name plus kwargs, sweep and
series axes, a metric — with every name resolved through
:mod:`repro.registry`.  Because the description is data, a new paper
variant is a dict (or a TOML file: ``python -m repro run spec.toml``),
not a code change:

.. code-block:: toml

    name = "lasso_lognormal_eps"
    solver = "private_lasso"
    data = "l1_linear"
    metric = "excess_risk"
    n_trials = 3
    seed = 50

    [solver_kwargs]
    delta = 1e-5

    [data_kwargs]
    n = 4000
    features = {name = "lognormal", sigma = 0.6}
    noise = {name = "gaussian", scale = 0.1}

    [sweep]
    name = "epsilon"
    target = "solver.epsilon"
    values = [0.5, 1.0, 2.0, 4.0]

    [series]
    name = "d"
    target = "data.d"
    values = [20, 80]

Validation happens at construction: unknown solver/data/metric names
raise :class:`~repro.registry.UnknownNameError` listing the registered
menu, axis targets must name a keyword their adapter accepts, and all
kwargs must be JSON-serialisable (the canonical form the scenario's
cache fingerprint hashes).  :meth:`ExperimentSpec.to_scenario` then
packs the spec into a :class:`SpecScenario` — a frozen, picklable
:class:`~repro.evaluation.scenarios.Scenario` that resolves the names
inside each worker — so spec-driven grids get the engine's process
fan-out and code-aware caching exactly like the hand-written panels.
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from .engine import CacheLike, ExecutorLike, run_grid
from .scenarios import Scenario
from .sweeps import SweepResult

#: The two places an axis value can land: a solver kwarg or a data kwarg.
_TARGET_SECTIONS = ("solver", "data")


def _canonical_json(mapping: Mapping) -> str:
    """Canonical JSON text of a kwargs mapping (sorted keys, no spaces).

    JSON is the frozen carrier: hashable, picklable, byte-stable for
    equal content — so two specs with equal kwargs produce equal
    scenarios, equal cache fingerprints, and equal pickles — and it
    round-trips every TOML-expressible value type the specs use.
    """
    try:
        return json.dumps(dict(mapping), sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise TypeError(f"spec kwargs must be JSON-serialisable plain data "
                        f"(numbers, strings, bools, lists, tables); got "
                        f"{mapping!r}") from exc


def _accepted_keywords(fn) -> Optional[Tuple[str, ...]]:
    """Configuration keywords ``fn`` accepts, or ``None`` for ``**kwargs``.

    Only *keyword-only* parameters count: adapters receive their
    payload (``data``/``rng``/``w``) positionally and declare every
    spec-settable knob after ``*``, so the positional parameter names
    are reserved — a spec kwarg or axis target naming one would either
    crash mid-grid with "multiple values for argument" or silently
    shadow the payload.
    """
    try:
        parameters = inspect.signature(fn).parameters.values()
    except (TypeError, ValueError):  # builtins without introspectable sigs
        return None
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters):
        return None
    return tuple(p.name for p in parameters
                 if p.kind is inspect.Parameter.KEYWORD_ONLY)


def _check_keywords(fn, keys, owner: str) -> None:
    """Reject kwarg names the registered adapter cannot accept."""
    accepted = _accepted_keywords(fn)
    if accepted is None:
        return
    unknown = sorted(set(keys) - set(accepted))
    if unknown:
        raise ValueError(
            f"{owner} does not accept keyword(s) {', '.join(map(repr, unknown))}; "
            f"accepted: {', '.join(accepted) or '(none)'}")


@dataclass(frozen=True)
class AxisSpec:
    """One grid axis: a display name, a target kwarg, and its values.

    ``target`` is ``"solver.<kwarg>"`` or ``"data.<kwarg>"`` — the
    keyword of the registered adapter this axis drives.  ``name`` is
    the axis label used in tables and (for the engine) in cell seeds.
    """

    name: str
    target: str
    values: Tuple[object, ...]

    @classmethod
    def of(cls, spec: "AxisSpec | Mapping") -> "AxisSpec":
        """Coerce a mapping ``{name, target, values}`` into an axis."""
        if isinstance(spec, cls):
            return spec
        try:
            mapping = dict(spec)
        except TypeError:
            raise TypeError(f"axis spec must be an AxisSpec or a mapping "
                            f"with name/target/values, got {spec!r}") from None
        unknown = sorted(set(mapping) - {"name", "target", "values"})
        if unknown:
            raise ValueError(f"unknown axis key(s) {', '.join(unknown)}; "
                             "an axis has name, target and values")
        missing = sorted({"name", "target", "values"} - set(mapping))
        if missing:
            raise ValueError(f"axis spec {mapping!r} is missing "
                             f"{', '.join(missing)}")
        return cls(name=str(mapping["name"]), target=str(mapping["target"]),
                   values=tuple(mapping["values"]))

    def __post_init__(self) -> None:
        """Validate the target format and that values are non-empty."""
        section, _, key = self.target.partition(".")
        if section not in _TARGET_SECTIONS or not key:
            raise ValueError(
                f"axis target must be 'solver.<kwarg>' or 'data.<kwarg>', "
                f"got {self.target!r}")
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")

    @property
    def section(self) -> str:
        """``"solver"`` or ``"data"`` — where the axis value lands."""
        return self.target.partition(".")[0]

    @property
    def key(self) -> str:
        """The adapter keyword the axis drives."""
        return self.target.partition(".")[2]

    def to_dict(self) -> Dict[str, object]:
        """The axis as the plain mapping :meth:`of` accepts."""
        return {"name": self.name, "target": self.target,
                "values": list(self.values)}


@dataclass(frozen=True)
class SpecScenario(Scenario):
    """A picklable scenario compiled from an :class:`ExperimentSpec`.

    Fields carry registry *names* plus canonical-JSON kwargs, so the
    instance pickles by value, travels to worker processes, and
    fingerprints stably (editing a registered adapter's name or the
    spec's kwargs invalidates exactly the affected cache cells).  Name
    resolution happens inside :meth:`__call__` — i.e. in the worker —
    against the same registries that validated the spec.
    """

    solver: str = ""
    data: str = ""
    metric: str = "excess_risk"
    solver_kwargs_json: str = "{}"
    data_kwargs_json: str = "{}"
    metric_kwargs_json: str = "{}"
    sweep_target: str = ""
    series_target: str = ""

    def __call__(self, series_value, sweep_value, rng) -> float:
        """Generate data, fit the solver, evaluate the metric — one trial."""
        from ..registry import DATA, METRICS, SOLVERS
        kwargs = {"solver": json.loads(self.solver_kwargs_json),
                  "data": json.loads(self.data_kwargs_json)}
        for target, value in ((self.series_target, series_value),
                              (self.sweep_target, sweep_value)):
            section, _, key = target.partition(".")
            kwargs[section][key] = value
        data = DATA.get(self.data)(rng, **kwargs["data"])
        w = SOLVERS.get(self.solver)(data, rng, **kwargs["solver"])
        metric = METRICS.get(self.metric)
        return float(metric(w, data, **json.loads(self.metric_kwargs_json)))


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative experiment: registry names, kwargs, axes, metric.

    All names are validated against the registries at construction (a
    typo fails immediately, listing the menu), axis targets are checked
    against the adapters' accepted keywords, and kwargs must be plain
    JSON-expressible data.  ``sweep``/``series`` accept
    :class:`AxisSpec` instances or plain mappings; the kwargs fields
    accept any mapping and are stored as plain dicts.
    """

    name: str
    solver: str
    data: str
    sweep: AxisSpec
    series: AxisSpec
    metric: str = "excess_risk"
    solver_kwargs: Dict[str, object] = field(default_factory=dict)
    data_kwargs: Dict[str, object] = field(default_factory=dict)
    metric_kwargs: Dict[str, object] = field(default_factory=dict)
    n_trials: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        """Coerce field forms and fail fast on anything unresolvable."""
        from ..registry import DATA, METRICS, SOLVERS
        object.__setattr__(self, "sweep", AxisSpec.of(self.sweep))
        object.__setattr__(self, "series", AxisSpec.of(self.series))
        for fname in ("solver_kwargs", "data_kwargs", "metric_kwargs"):
            object.__setattr__(self, fname, dict(getattr(self, fname)))
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"spec name must be a non-empty string, "
                             f"got {self.name!r}")
        if not isinstance(self.n_trials, int) or self.n_trials < 1:
            raise ValueError(f"n_trials must be a positive int, "
                             f"got {self.n_trials!r}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise TypeError(f"seed must be an int, got {self.seed!r}")
        if len(set(self.series.values)) != len(self.series.values):
            raise ValueError(
                f"series values must be unique, got {list(self.series.values)!r}")
        solver = SOLVERS.get(self.solver)  # raises UnknownNameError w/ menu
        data = DATA.get(self.data)
        metric = METRICS.get(self.metric)
        if self.sweep.target == self.series.target:
            raise ValueError(
                f"sweep and series both target {self.sweep.target!r}; the "
                f"sweep value would silently overwrite the series value in "
                f"every cell — give each axis its own kwarg")
        axis_keys = {"solver": [], "data": []}
        for axis in (self.sweep, self.series):
            axis_keys[axis.section].append(axis.key)
        _check_keywords(solver, list(self.solver_kwargs) + axis_keys["solver"],
                        f"solver {self.solver!r}")
        _check_keywords(data, list(self.data_kwargs) + axis_keys["data"],
                        f"data generator {self.data!r}")
        _check_keywords(metric, self.metric_kwargs, f"metric {self.metric!r}")
        for axis, role in ((self.sweep, "sweep"), (self.series, "series")):
            owner_kwargs = (self.solver_kwargs if axis.section == "solver"
                            else self.data_kwargs)
            if axis.key in owner_kwargs:
                raise ValueError(
                    f"{role} axis target {axis.target!r} collides with the "
                    f"fixed {axis.section}_kwargs entry {axis.key!r}; an "
                    f"axis must drive a free keyword")
        # Canonicalise now so an unserialisable value fails here, not in
        # a worker process mid-grid.
        for mapping in (self.solver_kwargs, self.data_kwargs,
                        self.metric_kwargs):
            _canonical_json(mapping)

    # -- construction from plain data ---------------------------------------

    _FIELDS = ("name", "solver", "data", "sweep", "series", "metric",
               "solver_kwargs", "data_kwargs", "metric_kwargs", "n_trials",
               "seed")

    @classmethod
    def from_dict(cls, mapping: Mapping) -> "ExperimentSpec":
        """Build and validate a spec from its plain-dict form."""
        data = dict(mapping)
        unknown = sorted(set(data) - set(cls._FIELDS))
        if unknown:
            raise ValueError(
                f"unknown spec key(s) {', '.join(unknown)}; a spec has "
                f"{', '.join(cls._FIELDS)}")
        missing = sorted({"name", "solver", "data", "sweep", "series"}
                         - set(data))
        if missing:
            raise ValueError(f"spec is missing required key(s) "
                             f"{', '.join(missing)}")
        return cls(**data)

    @classmethod
    def from_toml(cls, path) -> "ExperimentSpec":
        """Load and validate a spec from a TOML file."""
        import tomllib
        with open(path, "rb") as fh:
            return cls.from_dict(tomllib.load(fh))

    def to_dict(self) -> Dict[str, object]:
        """The spec's canonical plain-dict form (JSON/TOML-expressible).

        Round-trips: ``ExperimentSpec.from_dict(spec.to_dict()) == spec``.
        """
        return {
            "name": self.name,
            "solver": self.solver,
            "data": self.data,
            "sweep": self.sweep.to_dict(),
            "series": self.series.to_dict(),
            "metric": self.metric,
            "solver_kwargs": dict(self.solver_kwargs),
            "data_kwargs": dict(self.data_kwargs),
            "metric_kwargs": dict(self.metric_kwargs),
            "n_trials": self.n_trials,
            "seed": self.seed,
        }

    # -- execution -----------------------------------------------------------

    def to_scenario(self) -> SpecScenario:
        """Compile the spec into a picklable, fingerprinted scenario."""
        return SpecScenario(
            solver=self.solver, data=self.data, metric=self.metric,
            solver_kwargs_json=_canonical_json(self.solver_kwargs),
            data_kwargs_json=_canonical_json(self.data_kwargs),
            metric_kwargs_json=_canonical_json(self.metric_kwargs),
            sweep_target=self.sweep.target, series_target=self.series.target)

    def run(self, *, executor: ExecutorLike = "serial",
            cache: CacheLike = None, n_trials: Optional[int] = None,
            max_workers: Optional[int] = None,
            chunksize: int = 1, flight=None, on_cell=None) -> SweepResult:
        """Evaluate the spec's grid through the engine.

        Axis names label the grid (and enter cell seeds); the executor,
        cache, and ``flight`` (single-flight coalescing) knobs forward
        to :func:`~repro.evaluation.run_grid` unchanged, so spec runs
        parallelise, cache, and coalesce like any scenario grid.
        ``n_trials`` overrides the spec's trial count.  ``on_cell`` is
        the engine's per-cell observation hook — ``python -m repro run
        spec.toml --record`` uses it to assemble the run's provenance
        record.
        """
        return run_grid(
            self.to_scenario(), self.sweep.name, list(self.sweep.values),
            self.series.name, list(self.series.values),
            n_trials=self.n_trials if n_trials is None else n_trials,
            seed=self.seed, executor=executor, max_workers=max_workers,
            chunksize=chunksize, cache=cache, flight=flight,
            on_cell=on_cell)
