"""Picklable, code-fingerprinted scenarios for the experiment engine.

The engine's parallel executors need point functions that can cross a
process boundary, and its on-disk cache needs keys that change when the
point *code* changes.  Closures satisfy neither: they cannot be pickled,
and their bytecode is invisible to a repr-based cache tag.  This module
provides both halves of the fix:

* :class:`Scenario` / :class:`PointSpec` — frozen, module-level
  dataclasses implementing the engine's point protocol
  ``scenario(series_value, sweep_value, rng) -> float``.  Instances are
  plain picklable values, so every executor (serial, thread, process)
  can run them, and their dataclass fields enumerate exactly the state
  that parameterises the experiment.

* :func:`point_fingerprint` — a stable digest of a point callable's
  compiled code (bytecode, consts, names, recursively through nested and
  same-module helper functions) plus its configuration (dataclass
  fields, closure cells, partial arguments).  :func:`~.engine.run_grid`
  folds this fingerprint into every job digest, so editing a point
  function's body invalidates exactly the cache cells it produced.

Fingerprints derive from CPython bytecode, which changes across
interpreter versions; that only retires cache entries early (a
recompute), never corrupts them.  Seeds never depend on fingerprints —
editing code changes *which* cached cells are reused, not the random
draws of a recomputed cell.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import importlib
import types
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from .engine import canonical_token, stable_repr


class FingerprintError(Exception):
    """A fingerprint *configuration* error that must not degrade silently.

    Most introspection failures inside :func:`point_fingerprint` fall
    back to stable placeholder tokens (lossy caching, never corrupt
    results).  Errors of this type — e.g. a ``code_hash_modules`` entry
    that does not import — are caller mistakes: swallowing them would
    silently disable the invalidation the caller explicitly asked for,
    so they propagate.
    """

#: Recursion budget for the code walk: a fingerprint follows nested code
#: objects and same-module helper functions at most this many levels
#: deep.  Cycles are cut by a seen-set, so the limit only bounds cost;
#: a chain deeper than this degrades to a *stable* ``<deep>`` token,
#: which means edits beyond the horizon stop invalidating — keep it
#: comfortably above any real helper nesting.
_MAX_CODE_DEPTH = 8


# ---------------------------------------------------------------------------
# Code fingerprinting — the cache sees the code it is caching.
# ---------------------------------------------------------------------------

def _const_token(value: object, depth: int, seen: set) -> str:
    """Token for one ``co_consts`` entry, recursing into nested code."""
    if isinstance(value, types.CodeType):
        return _code_token(value, depth, seen)
    return _value_token(value, depth, seen)


def _code_token(code: types.CodeType, depth: int = 0,
                seen: Optional[set] = None) -> str:
    """Canonical text of a compiled code object.

    Covers the executable surface — bytecode, constants (recursing into
    nested code objects, e.g. inner ``lambda`` s and comprehensions),
    referenced names, and the argument layout — while deliberately
    excluding ``co_filename`` and line numbers, so moving a function or
    reformatting around it does not invalidate caches.
    """
    if seen is None:
        seen = set()
    if depth > _MAX_CODE_DEPTH or id(code) in seen:
        return "code:<deep>"
    seen.add(id(code))
    consts = ",".join(_const_token(c, depth + 1, seen) for c in code.co_consts)
    return ("code:{name}|argc={argc},{kwonly},{flags}|{bytecode}|"
            "names={names}|vars={varnames}|free={freevars}|consts=[{consts}]"
            ).format(name=code.co_name, argc=code.co_argcount,
                     kwonly=code.co_kwonlyargcount,
                     flags=code.co_flags & 0x0F,  # CO_VARARGS/KEYWORDS etc.
                     bytecode=code.co_code.hex(),
                     names=",".join(code.co_names),
                     varnames=",".join(code.co_varnames),
                     freevars=",".join(code.co_freevars), consts=consts)


def _function_token(fn: Callable, depth: int = 0,
                    seen: Optional[set] = None) -> str:
    """Token for a Python function: its code, state, and direct helpers.

    Beyond the function's own code object this walks (depth-limited,
    cycle-safe):

    * default argument values and closure cell contents — the state a
      closure actually captures;
    * global names the bytecode references that resolve to functions
      *defined in the same module* — so editing a helper like
      ``_make_data`` next to a scenario's ``__call__`` still invalidates
      the cells that used it;
    * global names that resolve to plain *values* (module-level
      constants, config singletons), tokenised best-effort.

    Referenced classes, modules, and functions from *other* modules
    enter by name only: hashing the transitive closure of the whole
    package would retire every cache on any library edit.  The token
    also embeds ``__module__.__qualname__``, so renaming a function or
    its module conservatively invalidates (a recompute, never a stale
    hit).
    """
    if seen is None:
        seen = set()
    if depth > _MAX_CODE_DEPTH or id(fn) in seen:
        return "fn:<deep>"
    seen.add(id(fn))
    code = fn.__code__
    parts = [f"{getattr(fn, '__module__', '')}.{getattr(fn, '__qualname__', '')}",
             _code_token(code, depth, seen)]
    for default in (fn.__defaults__ or ()):
        parts.append("default=" + _value_token(default, depth + 1, seen))
    kwdefaults = fn.__kwdefaults__ or {}
    for key in sorted(kwdefaults):
        parts.append(f"kwdefault:{key}="
                     + _value_token(kwdefaults[key], depth + 1, seen))
    for cell in (fn.__closure__ or ()):
        try:
            contents = cell.cell_contents
        except ValueError:  # empty cell (still being defined)
            parts.append("cell=<empty>")
            continue
        parts.append("cell=" + _value_token(contents, depth + 1, seen))
    module = getattr(fn, "__module__", None)
    for name in sorted(set(code.co_names)):
        if name not in fn.__globals__:
            continue  # builtin or attribute name; co_names covers it
        target = fn.__globals__[name]
        if isinstance(target, types.FunctionType):
            if getattr(target, "__module__", None) == module:
                parts.append(f"global:{name}="
                             + _function_token(target, depth + 1, seen))
        elif not isinstance(target, (type, types.ModuleType)):
            parts.append(f"global:{name}="
                         + _value_token(target, depth + 1, seen))
    return "(" + ";".join(parts) + ")"


def _value_token(value: object, depth: int = 0,
                 seen: Optional[set] = None) -> str:
    """Best-effort stable token for arbitrary captured state.

    Unlike :func:`~.engine.canonical_token` this never raises.  Seeds
    never flow through it — only cache keys do — so lossiness here
    cannot corrupt a freshly computed result; its cost is cache
    accuracy: an over-specific token forfeits hits (spurious
    recomputes), an under-specific one can collide across a code edit
    and serve a stale cell (see :func:`point_fingerprint` for the
    documented coverage boundary).  Callables are resolved through
    their code, dataclasses through their fields, and anything else
    falls back to an address-stripped repr.
    """
    if seen is None:
        seen = set()
    if depth > _MAX_CODE_DEPTH + 2 or id(value) in seen:
        return "<deep>"
    if isinstance(value, types.FunctionType):
        return _function_token(value, depth, seen)
    if isinstance(value, types.MethodType):
        seen.add(id(value))
        return ("method:" + _function_token(value.__func__, depth, seen)
                + "@" + _value_token(value.__self__, depth + 1, seen))
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        seen.add(id(value))
        fields = ",".join(
            f"{f.name}={_value_token(getattr(value, f.name), depth + 1, seen)}"
            for f in dataclasses.fields(value))
        return f"dc:{type(value).__module__}.{type(value).__qualname__}({fields})"
    try:
        return canonical_token(value)
    except Exception:
        try:
            return stable_repr(value)
        except Exception:
            return "<unrepresentable>"


def module_token(module_name: str) -> str:
    """Canonical text of a library module's executable surface.

    Covers every function the module defines (via
    :func:`_function_token`, so defaults, module constants and
    same-module helpers are included) and every method of every class
    it defines — keyed by qualified name, in sorted order, so the token
    is stable across processes.  Code merely *imported into* the module
    is excluded: it belongs to (and is tracked by) its defining module.

    Raises :class:`FingerprintError` when the module cannot be
    imported — a misspelled ``code_hash_modules`` entry must fail
    loudly, not silently stop invalidating.
    """
    try:
        module = importlib.import_module(module_name)
    except Exception as exc:
        raise FingerprintError(
            f"code_hash_modules entry {module_name!r} cannot be imported: "
            f"{exc}") from exc
    parts = [f"mod:{module_name}"]
    for name in sorted(vars(module)):
        attr = vars(module)[name]
        if isinstance(attr, types.FunctionType):
            if getattr(attr, "__module__", None) == module_name:
                parts.append(f"{name}=" + _function_token(attr))
        elif isinstance(attr, type):
            if getattr(attr, "__module__", None) != module_name:
                continue
            for method_name in sorted(vars(attr)):
                method = vars(attr)[method_name]
                if isinstance(method, (staticmethod, classmethod)):
                    method = method.__func__
                elif isinstance(method, property):
                    # Property bodies are code too: an edited getter
                    # must invalidate like an edited method.
                    for role, accessor in (("get", method.fget),
                                           ("set", method.fset),
                                           ("del", method.fdel)):
                        if isinstance(accessor, types.FunctionType):
                            parts.append(f"{name}.{method_name}.{role}="
                                         + _function_token(accessor))
                    continue
                elif isinstance(method, functools.cached_property):
                    method = method.func
                if isinstance(method, types.FunctionType):
                    parts.append(f"{name}.{method_name}="
                                 + _function_token(method))
    return "(" + ";".join(parts) + ")"


def point_fingerprint(point: Callable) -> str:
    """Stable hex digest of a point callable's code and configuration.

    The digest covers the compiled body (via :func:`_code_token`) and
    the configuration the call can see — dataclass fields for
    :class:`Scenario` objects, every method its class defines, captured
    cells for closures, bound ``functools.partial`` arguments,
    ``__self__`` state for bound methods, and same-module helper
    functions and constants.  Editing any of these invalidates the warm
    cache.  Reformatting, or moving code *within* its module, does not;
    renaming a function or its module conservatively does (an early
    recompute, never a stale hit).

    Coverage is best-effort in the other direction: code in *other*
    modules enters by name only, and state that defeats introspection
    (opaque non-repr objects, helper chains beyond the depth budget)
    degrades to a stable placeholder that edits cannot perturb.  A
    cache shared across such edits can serve stale cells — when in
    doubt, separate experiments with ``cache_tag`` or distinct root
    seeds, exactly as for any out-of-band dependency (library versions,
    data files).

    Scenarios can widen the boundary explicitly: a
    :attr:`Scenario.code_hash_modules` entry folds the named module's
    entire executable surface (every function and method it defines,
    via :func:`module_token`) into the digest, so edits to that library
    module invalidate the scenario's warm cells too.  A module name
    that does not import raises :class:`FingerprintError` — the one
    failure this function refuses to degrade, because the caller asked
    for that invalidation by name.
    """
    try:
        payload = _point_token(point)
    except Exception:
        try:
            payload = "opaque:" + stable_repr(point)
        except Exception:
            payload = "opaque:<unrepresentable>"
    for module_name in (getattr(point, "code_hash_modules", None) or ()):
        payload += f"|module:{module_name}=" + module_token(module_name)
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=8).hexdigest()


def _point_token(point: Callable) -> str:
    """Dispatch a callable to the richest token its type supports."""
    if isinstance(point, functools.partial):
        inner = _point_token(point.func)
        args = ",".join(_value_token(a) for a in point.args)
        kwargs = ",".join(f"{k}={_value_token(point.keywords[k])}"
                          for k in sorted(point.keywords))
        return f"partial:({inner})[{args}][{kwargs}]"
    if isinstance(point, (types.FunctionType, types.MethodType)):
        return _value_token(point)
    call = type(point).__call__
    call_fn = getattr(call, "__func__", call)
    if isinstance(call_fn, types.FunctionType):
        # Hash every method the class hierarchy defines, not just
        # __call__: a scenario calling ``self._helper(...)`` must see
        # edits to the helper's body too (co_names cannot resolve
        # attribute lookups the way it resolves module globals).
        state = _value_token(point)
        methods, seen_names = [], set()
        for klass in type(point).__mro__:
            if klass is object:
                continue
            for name in sorted(vars(klass)):
                if name in seen_names:
                    continue
                attr = vars(klass)[name]
                if isinstance(attr, (staticmethod, classmethod)):
                    attr = attr.__func__
                if isinstance(attr, types.FunctionType):
                    seen_names.add(name)
                    methods.append(f"{name}=" + _function_token(attr))
        return (f"callable:{type(point).__qualname__}|{state}|"
                + ";".join(methods))
    return "builtin:" + stable_repr(point)


# ---------------------------------------------------------------------------
# The scenario protocol.
# ---------------------------------------------------------------------------

class batch_method:
    """Declare a scenario's batched-trials fast path (docs/engine.md).

    Decorator for a ``batch_point(self, series_value, sweep_value,
    rngs) -> list[float]`` method.  The engine dispatches whole cells
    through it (see :meth:`repro.evaluation.engine.TrialJob.execute`);
    the contract is strict bit-identity with the scalar ``__call__``
    loop, so the batched path carries no cache identity.

    The decorator is what keeps that promise structural rather than
    conventional: it wraps the function in a non-function descriptor,
    and :func:`point_fingerprint`'s method walk hashes only plain
    functions — so adding or editing a ``batch_method`` never retires
    warm cells, changes job digests, or moves a ``run_id``.  (The
    fingerprint machinery itself sits inside its own walk via
    :meth:`Scenario.fingerprint`, so exclusion *must* happen at the
    declaration site: a name-based skip inside the walk would move
    every committed fingerprint.)  Instance lookup binds like an
    ordinary method; class lookup returns the raw function.
    """

    def __init__(self, fn: Callable):
        functools.update_wrapper(self, fn)
        self._fn = fn

    def __get__(self, obj: object, objtype: Optional[type] = None):
        """Bind to ``obj`` like a plain method; unwrap on class access."""
        if obj is None:
            return self._fn
        return types.MethodType(self._fn, obj)


@dataclass(frozen=True)
class Scenario:
    """Base class for picklable point functions.

    A scenario is a frozen dataclass whose fields fully determine one
    experiment family; subclasses implement the engine's point protocol

    ``__call__(series_value, sweep_value, rng) -> float``

    where ``series_value`` selects the curve (e.g. a dimension),
    ``sweep_value`` is the x-axis coordinate, and ``rng`` is the
    trial's independently seeded :class:`numpy.random.Generator` — the
    only source of randomness the call may use.  The call must be a
    pure function of ``(fields, series_value, sweep_value, rng)``: no
    hidden module state, so that any executor on any host reproduces
    the same value from the same job.

    Because instances are plain dataclass values they pickle by field,
    which is what lets the process executor fan a grid out across
    workers, and what lets :func:`point_fingerprint` key the cache by
    the fields plus the bytecode of every method the class defines.

    The fingerprint's normal boundary stops at the scenario's own
    module: library code it calls enters by name only.  Scenarios whose
    results hinge on specific library modules can opt in to deeper
    invalidation by naming them in ``code_hash_modules`` — e.g.
    ``code_hash_modules=("repro.estimators.catoni",)`` retires the
    scenario's warm cache cells whenever any function or method of
    ``repro.estimators.catoni`` changes.  The field is keyword-only (it
    never participates in subclasses' positional field order) and, like
    every field, is part of the fingerprint itself.

    **Batched trials.**  A scenario may additionally implement

    ``batch_point(series_value, sweep_value, rngs) -> list[float]``

    to execute a whole grid cell in one call (``rngs`` is the cell's
    list of per-trial Generators, in trial order).  When present,
    :meth:`~repro.evaluation.engine.TrialJob.execute` dispatches the
    cell through it on every executor.  The contract is strict
    bit-identity with the scalar loop: trial ``k`` must consume
    ``rngs[k]`` with exactly the draws, in exactly the order, of
    ``self(series_value, sweep_value, rngs[k])``, and must return the
    same float.  Because of that contract the batched path carries no
    cache identity: declare it with the :class:`batch_method` decorator,
    which keeps it out of the fingerprint's method walk, so opting a
    scenario in (or editing its batched path) never invalidates warm
    cells, changes job digests, or moves a ``run_id``.  Module-level
    helpers referenced only from a ``batch_method`` body stay outside
    the fingerprint for the same reason (the walk starts from hashed
    methods).  The method is deliberately not defined on this base
    class: the engine detects it with ``getattr``, so scenarios without
    it keep the plain scalar loop.  See docs/engine.md ("Batched
    trials") for the protocol and when to opt in.
    """

    #: Library modules whose executable surface is folded into the
    #: cache fingerprint (see :func:`module_token`); () hashes none.
    code_hash_modules: Tuple[str, ...] = field(default=(), kw_only=True)

    def __call__(self, series_value: object, sweep_value: object,
                 rng) -> float:
        """Evaluate one trial of one grid cell; subclasses must override."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement "
            "__call__(series_value, sweep_value, rng)")

    def fingerprint(self) -> str:
        """The scenario's cache fingerprint (fields + method bytecode)."""
        return point_fingerprint(self)


@dataclass(frozen=True)
class PointSpec(Scenario):
    """A module-level point function bound to frozen keyword parameters.

    The lightweight alternative to subclassing :class:`Scenario`: wrap
    any module-level function of signature
    ``fn(series_value, sweep_value, rng, **params)`` together with its
    parameter values.  Like every scenario, the instance is picklable
    (the function travels by reference, the parameters by value) and
    the call contract is ``spec(series_value, sweep_value, rng) ->
    float``.

    ``params`` is stored as a sorted tuple of ``(name, value)`` pairs so
    two specs built from the same keywords compare, hash, pickle, and
    fingerprint identically; build instances with :meth:`of`.
    """

    fn: Callable = None  # type: ignore[assignment]
    params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def of(cls, fn: Callable, **params: object) -> "PointSpec":
        """Bind ``fn`` to keyword ``params`` as a picklable point."""
        if fn is None or not callable(fn):
            raise TypeError(f"fn must be callable, got {fn!r}")
        return cls(fn=fn, params=tuple(sorted(params.items())))

    def __call__(self, series_value: object, sweep_value: object,
                 rng) -> float:
        """Evaluate ``fn(series_value, sweep_value, rng, **params)``."""
        return self.fn(series_value, sweep_value, rng, **dict(self.params))
