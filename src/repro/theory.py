"""The paper's theoretical rates as evaluable functions.

Each theorem's headline excess-risk bound is exposed as a plain function
of the problem parameters, constants-free (the Big-O constant is an
explicit argument defaulting to 1).  The benches and EXPERIMENTS.md use
these to compare measured errors against the predicted *scaling*; the
test-suite checks the internal consistency relations the paper states
(e.g. Theorem 5's rate beats Theorem 2's for LASSO, the Theorem 8 upper
bound dominates the Theorem 9 lower bound by exactly ``~sqrt(s*)``).
"""

from __future__ import annotations

import math

from ._validation import check_positive, check_positive_int, check_probability


def _log_term(value: float) -> float:
    """``log(max(value, e))`` — keeps the rates monotone and positive."""
    return math.log(max(value, math.e))


def theorem2_rate(n: int, epsilon: float, dimension: int, n_vertices: int,
                  smoothness: float = 1.0, tau: float = 1.0,
                  diameter: float = 2.0, failure_probability: float = 0.05,
                  constant: float = 1.0) -> float:
    """Theorem 2 (Algorithm 1): ``||W||_1 (alpha tau log(n|V|d/zeta))^{1/3} / (n eps)^{1/3}``."""
    check_positive_int(n, "n")
    check_positive(epsilon, "epsilon")
    zeta = check_probability(failure_probability, "failure_probability",
                             allow_zero=False, allow_one=False)
    log_term = _log_term(n * n_vertices * dimension / zeta)
    return (constant * diameter
            * (smoothness * tau * log_term) ** (1.0 / 3.0)
            / (n * epsilon) ** (1.0 / 3.0))


def theorem3_rate(n: int, epsilon: float, dimension: int,
                  smoothness: float = 1.0, failure_probability: float = 0.05,
                  constant: float = 1.0) -> float:
    """Theorem 3 (robust regression): ``lambda_max log^{1/4}(dn/zeta) / (n eps)^{1/4}``."""
    check_positive_int(n, "n")
    check_positive(epsilon, "epsilon")
    zeta = check_probability(failure_probability, "failure_probability",
                             allow_zero=False, allow_one=False)
    log_term = _log_term(dimension * n / zeta)
    return constant * smoothness * log_term ** 0.25 / (n * epsilon) ** 0.25


def theorem5_rate(n: int, epsilon: float, delta: float, dimension: int,
                  smoothness: float = 1.0, failure_probability: float = 0.05,
                  constant: float = 1.0) -> float:
    """Theorem 5 (Algorithm 2, LASSO):
    ``lambda_max^{1/5} (sqrt(log 1/delta) log(dn/zeta))^{4/5} / (n eps)^{2/5}``."""
    check_positive_int(n, "n")
    check_positive(epsilon, "epsilon")
    check_positive(delta, "delta")
    zeta = check_probability(failure_probability, "failure_probability",
                             allow_zero=False, allow_one=False)
    log_term = math.sqrt(_log_term(1.0 / delta)) * _log_term(dimension * n / zeta)
    return (constant * smoothness ** 0.2 * log_term ** 0.8
            / (n * epsilon) ** 0.4)


def theorem7_rate(n: int, epsilon: float, delta: float, dimension: int,
                  sparsity: int, fourth_moment: float = 1.0,
                  gamma: float = 1.0, mu: float = 1.0,
                  failure_probability: float = 0.05,
                  constant: float = 1.0) -> float:
    """Theorem 7 (Algorithm 3):
    ``M gamma^4 s*^2 log n log^2(d/zeta) log(1/delta) / (mu^7 n eps)``."""
    check_positive_int(n, "n")
    check_positive_int(sparsity, "sparsity")
    check_positive(epsilon, "epsilon")
    check_positive(delta, "delta")
    zeta = check_probability(failure_probability, "failure_probability",
                             allow_zero=False, allow_one=False)
    numerator = (fourth_moment * gamma**4 * sparsity**2 * _log_term(n)
                 * _log_term(dimension / zeta) ** 2 * _log_term(1.0 / delta))
    return constant * numerator / (mu**7 * n * epsilon)


def theorem8_rate(n: int, epsilon: float, delta: float, dimension: int,
                  sparsity: int, tau: float = 1.0, gamma: float = 1.0,
                  mu: float = 1.0, failure_probability: float = 0.05,
                  constant: float = 1.0) -> float:
    """Theorem 8 (Algorithm 5):
    ``tau gamma^4 s*^{3/2} log n log(d/zeta) sqrt(log 1/delta) / (mu^5 n eps)``."""
    check_positive_int(n, "n")
    check_positive_int(sparsity, "sparsity")
    check_positive(epsilon, "epsilon")
    check_positive(delta, "delta")
    zeta = check_probability(failure_probability, "failure_probability",
                             allow_zero=False, allow_one=False)
    numerator = (tau * gamma**4 * sparsity**1.5 * _log_term(n)
                 * _log_term(dimension / zeta)
                 * math.sqrt(_log_term(1.0 / delta)))
    return constant * numerator / (mu**5 * n * epsilon)


def theorem9_rate(n: int, epsilon: float, delta: float, dimension: int,
                  sparsity: int, tau: float = 1.0,
                  constant: float = 1.0) -> float:
    """Theorem 9 lower bound: ``tau min{s* log d, log 1/delta} / (n eps)``."""
    check_positive_int(n, "n")
    check_positive_int(sparsity, "sparsity")
    check_positive(epsilon, "epsilon")
    check_positive(delta, "delta")
    numerator = tau * min(sparsity * _log_term(dimension), _log_term(1.0 / delta))
    return constant * numerator / (n * epsilon)


def upper_to_lower_gap(n: int, epsilon: float, delta: float, dimension: int,
                       sparsity: int, tau: float = 1.0) -> float:
    """The Theorem 8 / Theorem 9 ratio — the paper's ``~sqrt(s*)`` gap.

    With all conditioning constants set to 1 and ``s* log d`` the active
    branch of the min, the ratio reduces to
    ``sqrt(s*) * log n * sqrt(log 1/delta)`` — the gap Remark 4 and the
    conclusion discuss.
    """
    upper = theorem8_rate(n, epsilon, delta, dimension, sparsity, tau)
    lower = theorem9_rate(n, epsilon, delta, dimension, sparsity, tau)
    return upper / lower
