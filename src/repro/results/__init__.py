"""Provenance-stamped results store and run-record diffing.

* :mod:`repro.results.record` — the versioned manifest data model
  (:class:`RunRecord` / :class:`PanelRecord` / :class:`CellRecord`) and
  the :class:`RunRecorder` the engine wiring feeds.
* :mod:`repro.results.store` — atomic on-disk persistence
  (:class:`ResultsStore`, :func:`load_record`) and the committed-
  baseline keep-set (:func:`baseline_digests`).
* :mod:`repro.results.diff` — mechanical run comparison
  (:func:`diff_records`) separating value drift (exit 1) from
  provenance drift (exit 2).

``python -m repro run <bench>`` writes a record next to the bench's
text table; ``python -m repro diff`` compares two of them, and
``python -m repro results list/show`` inspects a store directory.
"""

from ..exceptions import ResultsError, UnknownSchemaError
from .diff import DiffEntry, RunDiff, diff_records
from .record import (
    PANEL_PROVENANCE_KEYS,
    RUN_PROVENANCE_KEYS,
    SCHEMA_VERSION,
    CellRecord,
    PanelRecord,
    RunRecord,
    RunRecorder,
    cell_capture,
    compute_config_digest,
    compute_run_id,
)
from .store import (
    ResultsStore,
    baseline_digests,
    load_record,
    manifest_text,
    save_record,
)

__all__ = [
    "PANEL_PROVENANCE_KEYS",
    "RUN_PROVENANCE_KEYS",
    "SCHEMA_VERSION",
    "CellRecord",
    "DiffEntry",
    "PanelRecord",
    "ResultsError",
    "ResultsStore",
    "RunDiff",
    "RunRecord",
    "RunRecorder",
    "UnknownSchemaError",
    "baseline_digests",
    "cell_capture",
    "compute_config_digest",
    "compute_run_id",
    "diff_records",
    "load_record",
    "manifest_text",
    "save_record",
]
