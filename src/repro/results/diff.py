"""Mechanical comparison of two run records: value vs provenance drift.

:func:`diff_records` walks two :class:`~repro.results.RunRecord`\\ s and
classifies every difference:

* **provenance drift** — the runs are not the same experiment: a
  different grid shape or axis values, root seed, trial count, point
  code fingerprint, cell digest, engine version, bench name, kind, or
  scale.  Comparing their values would be meaningless, so provenance
  drift dominates the verdict (exit code 2).
* **value drift** — same experiment (provenance identical for the
  panel), different numbers: any per-cell stat that is not
  bit-for-bit equal.  Exit code 1.
* **notes** — environment metadata that cannot affect results
  (executor, package version) and cosmetic labels (titles, axis display
  names).  Never changes the exit code.

Exit codes: ``0`` identical, ``1`` value drift only, ``2`` provenance
drift.  (Errors — unreadable or corrupt records — are the CLI's
exit ``3``, and argparse usage mistakes are its usual ``2``.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .record import (
    PANEL_PROVENANCE_KEYS,
    RUN_PROVENANCE_KEYS,
    PanelRecord,
    RunRecord,
)

#: Run-level fields whose difference makes two runs incomparable —
#: the same set ``config_digest`` hashes, imported so the classifier
#: and the digest cannot drift apart.
_RUN_PROVENANCE_FIELDS = RUN_PROVENANCE_KEYS

#: Run-level fields recorded as environment metadata only.
_RUN_NOTE_FIELDS = ("executor", "package_version", "result_stem")

#: Panel fields that are part of the reproducibility contract (they
#: enter cell seeds or cache digests) — again ``config_digest``'s set.
_PANEL_PROVENANCE_FIELDS = PANEL_PROVENANCE_KEYS

#: Panel fields that only label the human-readable table.
_PANEL_NOTE_FIELDS = ("title", "x_name")

#: The per-cell stats compared bit-for-bit for value drift.
_STAT_FIELDS = ("mean", "std", "minimum", "maximum", "n_trials")


@dataclass(frozen=True)
class DiffEntry:
    """One observed difference between two records."""

    severity: str  # "provenance" | "value" | "note"
    location: str  # e.g. "run" or "panel[0] cell (series=20, x=0.5)"
    field: str
    a: object
    b: object

    def to_dict(self) -> Dict[str, object]:
        """The entry's JSON payload."""
        return {"severity": self.severity, "location": self.location,
                "field": self.field, "a": self.a, "b": self.b}

    def format(self) -> str:
        """One human-readable report line."""
        return f"{self.location}: {self.field}: {self.a!r} != {self.b!r}"


@dataclass
class RunDiff:
    """The classified outcome of comparing two run records."""

    a: RunRecord
    b: RunRecord
    a_label: str = "a"
    b_label: str = "b"
    entries: List[DiffEntry] = field(default_factory=list)

    def _by_severity(self, severity: str) -> List[DiffEntry]:
        """The entries of one severity, in discovery order."""
        return [entry for entry in self.entries
                if entry.severity == severity]

    @property
    def provenance_drift(self) -> bool:
        """Whether the runs describe different experiments."""
        return bool(self._by_severity("provenance"))

    @property
    def value_drift(self) -> bool:
        """Whether any comparable cell's stats differ."""
        return bool(self._by_severity("value"))

    @property
    def identical(self) -> bool:
        """No provenance and no value drift (notes do not count)."""
        return not (self.provenance_drift or self.value_drift)

    @property
    def exit_code(self) -> int:
        """``0`` identical, ``1`` value drift, ``2`` provenance drift."""
        if self.provenance_drift:
            return 2
        return 1 if self.value_drift else 0

    def to_dict(self) -> Dict[str, object]:
        """The full diff as JSON-expressible data (``--json`` output)."""
        return {
            "a": {"label": self.a_label, "run_id": self.a.run_id,
                  "name": self.a.name, "config_digest": self.a.config_digest},
            "b": {"label": self.b_label, "run_id": self.b.run_id,
                  "name": self.b.name, "config_digest": self.b.config_digest},
            "identical": self.identical,
            "provenance_drift": self.provenance_drift,
            "value_drift": self.value_drift,
            "exit_code": self.exit_code,
            "entries": [entry.to_dict() for entry in self.entries],
        }

    def format_summary(self) -> str:
        """The human-readable drift report the CLI prints."""
        lines = [
            f"a: {self.a_label}  (name={self.a.name} run_id={self.a.run_id} "
            f"config={self.a.config_digest})",
            f"b: {self.b_label}  (name={self.b.name} run_id={self.b.run_id} "
            f"config={self.b.config_digest})",
        ]
        provenance = self._by_severity("provenance")
        values = self._by_severity("value")
        notes = self._by_severity("note")
        if provenance:
            lines.append(f"provenance drift ({len(provenance)}):")
            lines.extend(f"  {entry.format()}" for entry in provenance)
        else:
            lines.append("provenance: identical "
                         "(grids, seeds, trials, fingerprints, digests)")
        if values:
            lines.append(f"value drift ({len(values)} stat(s)):")
            lines.extend(f"  {entry.format()}" for entry in values)
        elif not provenance:
            lines.append(f"values: identical "
                         f"({self.a.n_cells()} cells bit-for-bit)")
        if notes:
            lines.append(f"notes ({len(notes)}, non-drift):")
            lines.extend(f"  {entry.format()}" for entry in notes)
        verdict = {0: "identical", 1: "VALUE DRIFT",
                   2: "INCOMPATIBLE PROVENANCE"}[self.exit_code]
        lines.append(f"verdict: {verdict} (exit {self.exit_code})")
        return "\n".join(lines)


def _diff_cells(a: PanelRecord, b: PanelRecord, where: str,
                out: List[DiffEntry]) -> None:
    """Compare one panel's cells pairwise (grids already known equal)."""
    for cell_a, cell_b in zip(a.cells, b.cells):
        cell_where = (f"{where} cell ({a.series_name}="
                      f"{cell_a.series_value!r}, {a.sweep_name}="
                      f"{cell_a.sweep_value!r})")
        if (cell_a.series_value != cell_b.series_value
                or cell_a.sweep_value != cell_b.sweep_value):
            out.append(DiffEntry("provenance", cell_where, "coordinates",
                                 [cell_a.series_value, cell_a.sweep_value],
                                 [cell_b.series_value, cell_b.sweep_value]))
            continue
        if cell_a.digest != cell_b.digest:
            out.append(DiffEntry("provenance", cell_where, "digest",
                                 cell_a.digest, cell_b.digest))
        for stat in _STAT_FIELDS:
            value_a = getattr(cell_a.stats, stat)
            value_b = getattr(cell_b.stats, stat)
            if value_a != value_b:
                out.append(DiffEntry("value", cell_where, f"stats.{stat}",
                                     value_a, value_b))


def diff_records(a: RunRecord, b: RunRecord, a_label: str = "a",
                 b_label: str = "b") -> RunDiff:
    """Classify every difference between two run records.

    Panels are paired by position.  A panel whose grid axes differ is
    reported as provenance drift and its cells are not compared (the
    cells do not correspond); a panel whose provenance matches has
    every cell stat compared bit-for-bit.
    """
    diff = RunDiff(a=a, b=b, a_label=a_label, b_label=b_label)
    out = diff.entries
    for name in _RUN_PROVENANCE_FIELDS:
        if getattr(a, name) != getattr(b, name):
            out.append(DiffEntry("provenance", "run", name,
                                 getattr(a, name), getattr(b, name)))
    for name in _RUN_NOTE_FIELDS:
        if getattr(a, name) != getattr(b, name):
            out.append(DiffEntry("note", "run", name,
                                 getattr(a, name), getattr(b, name)))
    if len(a.panels) != len(b.panels):
        out.append(DiffEntry("provenance", "run", "panel_count",
                             len(a.panels), len(b.panels)))
    for i, (panel_a, panel_b) in enumerate(zip(a.panels, b.panels)):
        where = f"panel[{i}]"
        for name in _PANEL_NOTE_FIELDS:
            if getattr(panel_a, name) != getattr(panel_b, name):
                out.append(DiffEntry("note", where, name,
                                     getattr(panel_a, name),
                                     getattr(panel_b, name)))
        cells_comparable = True
        for name in _PANEL_PROVENANCE_FIELDS:
            value_a, value_b = getattr(panel_a, name), getattr(panel_b, name)
            if isinstance(value_a, tuple):
                value_a, value_b = list(value_a), list(value_b)
            if value_a != value_b:
                out.append(DiffEntry("provenance", where, name,
                                     value_a, value_b))
                # Any provenance mismatch — not just grid shape — makes
                # per-cell value comparison meaningless: a changed
                # fingerprint or seed is *expected* to move every
                # value, and reporting the wall of drifted stats would
                # bury the one line that explains it.
                cells_comparable = False
        if cells_comparable:
            _diff_cells(panel_a, panel_b, where, out)
    return diff
