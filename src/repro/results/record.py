"""Versioned run records: the provenance-stamped result of one run.

A :class:`RunRecord` is the structured counterpart of a bench's text
table: a JSON-expressible manifest carrying everything needed to decide
whether two runs are *the same experiment* (schema version, bench/spec
name, per-panel grid axes, root seeds, trial counts, point code
fingerprints, per-cell job digests, engine and package versions, the
executor that ran it) plus the per-cell :class:`TrialStats` the tables
print.  Records are built through a :class:`RunRecorder` wired into
:meth:`repro.experiments.catalog.PanelDef.run`, so the pytest benches
and ``python -m repro run`` emit identical records for free.

Identity and integrity
----------------------

``run_id`` is a stable digest of the record's canonical JSON payload —
*excluding* the executor and package version, which are recorded as
environment metadata but (by the engine's bit-identity guarantee) can
never change the results.  Two runs of the same experiment producing
the same values therefore share a ``run_id`` no matter which executor
produced them.  Loading recomputes the digest and refuses a manifest
whose content no longer matches its ``run_id`` — a truncated or
hand-edited record fails loudly instead of quietly feeding a drifted
baseline to ``python -m repro diff``.

``config_digest`` covers only the provenance half (axes, seeds, trial
counts, fingerprints, cell digests — no stats): two records with equal
``config_digest`` are mechanically comparable, and any value
difference between them is genuine drift.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from ..exceptions import ResultsError, UnknownSchemaError
from ..evaluation.runner import TrialStats

#: The manifest layout this build writes and reads.  Bump on any
#: incompatible change to the payload structure; readers refuse other
#: versions (:class:`~repro.exceptions.UnknownSchemaError`).
SCHEMA_VERSION = 1

#: Payload keys that never enter ``run_id``: ``run_id`` itself plus the
#: environment metadata that cannot influence results (executors are
#: bit-identical; the package version only matters when values actually
#: change, which the stats digest already captures; per-cell wall-times
#: describe the machine that ran the cells, not the experiment; fleet
#: telemetry — lease/retry counters and dead letters — describes how
#: the work-queue run went, not what was computed).
_RUN_ID_EXCLUDED = ("run_id", "executor", "package_version", "timings",
                    "fleet")

#: The two provenance kinds a record can describe.
_KINDS = ("bench", "spec")


def _jsonify(value: object, where: str) -> object:
    """Normalise ``value`` into plain JSON-expressible data.

    NumPy scalars become Python scalars, tuples become lists, and
    anything JSON cannot carry (objects, arrays, non-string dict keys)
    raises :class:`ResultsError` naming the offending location — a run
    record must round-trip bytes-for-bytes through its file.
    """
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float) and not np.isfinite(value):
        raise ResultsError(f"{where}: non-finite float {value!r}; strict "
                           f"JSON cannot carry NaN/Infinity")
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonify(v, where) for v in value]
    if isinstance(value, Mapping):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise ResultsError(f"{where}: mapping keys must be strings, "
                                   f"got {key!r}")
            out[key] = _jsonify(item, where)
        return out
    raise ResultsError(f"{where}: value {value!r} of type "
                       f"{type(value).__name__} is not JSON-expressible; "
                       f"run records only carry plain data")


def canonical_json(payload: object) -> str:
    """The canonical byte-stable JSON text of a record payload.

    Strict JSON only: a payload carrying NaN/Infinity (e.g. a diverged
    trial's stats) raises :class:`ResultsError` instead of emitting the
    bare ``NaN`` token that non-Python JSON parsers reject.
    """
    try:
        return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                          allow_nan=False)
    except ValueError as exc:
        raise ResultsError(
            f"run record payload contains non-finite floats (NaN/Infinity), "
            f"which strict JSON cannot carry: {exc}") from exc


def compute_run_id(payload: Mapping) -> str:
    """The run id a payload *should* carry: a digest of its content.

    Environment metadata (:data:`_RUN_ID_EXCLUDED`) is left out, so the
    id identifies the experiment and its values, not the machinery that
    happened to execute it.
    """
    trimmed = {key: value for key, value in payload.items()
               if key not in _RUN_ID_EXCLUDED}
    return hashlib.blake2b(canonical_json(trimmed).encode("utf-8"),
                           digest_size=8).hexdigest()


#: The run-level payload keys whose difference makes two runs a
#: different experiment.  Shared by ``config_digest`` and the diff
#: classifier (:mod:`repro.results.diff`), so the two can never
#: disagree about what counts as provenance.
RUN_PROVENANCE_KEYS = ("kind", "name", "full", "engine_version")

#: The panel payload keys that are part of the reproducibility contract
#: (they enter cell seeds or cache digests) — exactly what
#: ``config_digest`` covers, together with the cells' coordinates and
#: digests.  Cosmetic labels (``title``, ``x_name``) are excluded, as
#: are the stats: two records with equal ``config_digest`` are the same
#: experiment, whatever their values.  Shared with the diff classifier
#: like :data:`RUN_PROVENANCE_KEYS`.
PANEL_PROVENANCE_KEYS = ("sweep_name", "series_name", "sweep_values",
                         "series_values", "seed", "n_trials",
                         "point_fingerprint")


def compute_config_digest(payload: Mapping) -> str:
    """The provenance digest a payload *should* carry.

    Covers the run identity (:data:`RUN_PROVENANCE_KEYS`) and every
    panel's :data:`PANEL_PROVENANCE_KEYS` plus cell coordinates and
    digests — never the stats.  Deliberate edits to a manifest must
    re-stamp ``config_digest`` (this function) and then ``run_id``
    (:func:`compute_run_id`), in that order.
    """
    panels = []
    for panel in payload["panels"]:
        entry = {key: panel[key] for key in PANEL_PROVENANCE_KEYS}
        entry["cells"] = [{"series_value": cell["series_value"],
                           "sweep_value": cell["sweep_value"],
                           "digest": cell["digest"]}
                          for cell in panel["cells"]]
        panels.append(entry)
    head = {key: payload[key] for key in RUN_PROVENANCE_KEYS}
    head["panels"] = panels
    return hashlib.blake2b(canonical_json(head).encode("utf-8"),
                           digest_size=8).hexdigest()


def cell_capture():
    """A fresh ``(cells, on_cell)`` pair for the engine's observation hook.

    ``on_cell`` appends each ``(TrialJob, trial values, elapsed)``
    triple to ``cells`` as :func:`repro.evaluation.run_grid` walks the
    grid in job order (``elapsed`` is ``None`` for cells the engine did
    not compute — cache hits and coalesced flights); hand ``cells`` to
    :meth:`RunRecorder.add_panel`.  Every recording call site uses this
    one helper so bench and spec records capture identically.
    """
    cells: List[tuple] = []
    return cells, (lambda job, values, elapsed=None:
                   cells.append((job, values, elapsed)))


# ---------------------------------------------------------------------------
# Payload validation helpers.
# ---------------------------------------------------------------------------

def _get(payload: Mapping, key: str, types, where: str):
    """Fetch ``payload[key]`` with a type check, or raise :class:`ResultsError`."""
    if key not in payload:
        raise ResultsError(f"{where}: missing key {key!r}")
    value = payload[key]
    if isinstance(value, bool) and bool not in (
            types if isinstance(types, tuple) else (types,)):
        raise ResultsError(f"{where}: key {key!r} must be "
                           f"{getattr(types, '__name__', types)}, got a bool")
    if not isinstance(value, types):
        raise ResultsError(
            f"{where}: key {key!r} has type {type(value).__name__}, "
            f"expected {getattr(types, '__name__', types)}")
    return value


def _stats_to_dict(stats: TrialStats) -> Dict[str, object]:
    """The JSON form of one cell's :class:`TrialStats`."""
    return {"mean": float(stats.mean), "std": float(stats.std),
            "min": float(stats.minimum), "max": float(stats.maximum),
            "n_trials": int(stats.n_trials)}


def _stats_from_dict(payload: Mapping, where: str) -> TrialStats:
    """Rebuild (and validate) one cell's :class:`TrialStats`."""
    if not isinstance(payload, Mapping):
        raise ResultsError(f"{where}: stats must be a mapping, "
                           f"got {type(payload).__name__}")
    unknown = sorted(set(payload) - {"mean", "std", "min", "max", "n_trials"})
    if unknown:
        raise ResultsError(f"{where}: unknown stats key(s) "
                           f"{', '.join(map(repr, unknown))}")
    return TrialStats(
        mean=float(_get(payload, "mean", (int, float), where)),
        std=float(_get(payload, "std", (int, float), where)),
        minimum=float(_get(payload, "min", (int, float), where)),
        maximum=float(_get(payload, "max", (int, float), where)),
        n_trials=_get(payload, "n_trials", int, where))


# ---------------------------------------------------------------------------
# The record dataclasses.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CellRecord:
    """One grid cell of a recorded panel: coordinates, digest, stats.

    ``digest`` is the engine's cache digest for the cell's
    :class:`~repro.evaluation.TrialJob` — it covers the root seed, the
    coordinates, the trial count, and the point's code fingerprint, so
    equal digests mean "the very same computation".
    """

    series_value: object
    sweep_value: object
    digest: str
    stats: TrialStats

    def to_dict(self) -> Dict[str, object]:
        """The cell's JSON payload."""
        return {"series_value": self.series_value,
                "sweep_value": self.sweep_value,
                "digest": self.digest,
                "stats": _stats_to_dict(self.stats)}

    @classmethod
    def from_dict(cls, payload: Mapping, where: str) -> "CellRecord":
        """Rebuild a cell from its payload, validating every field."""
        if not isinstance(payload, Mapping):
            raise ResultsError(f"{where}: cell must be a mapping, "
                               f"got {type(payload).__name__}")
        if "series_value" not in payload or "sweep_value" not in payload:
            raise ResultsError(f"{where}: missing cell coordinate key(s)")
        return cls(series_value=payload["series_value"],
                   sweep_value=payload["sweep_value"],
                   digest=_get(payload, "digest", str, where),
                   stats=_stats_from_dict(payload.get("stats"), where))


@dataclass(frozen=True)
class PanelRecord:
    """One recorded (series × sweep × trial) grid and its provenance.

    ``sweep_name``/``series_name`` are the engine axis names that enter
    every cell seed (the reproducibility contract); ``x_name`` and
    ``title`` are the human-readable labels the text table prints.
    """

    title: str
    x_name: str
    sweep_name: str
    series_name: str
    sweep_values: Tuple[object, ...]
    series_values: Tuple[object, ...]
    seed: object
    n_trials: int
    point_fingerprint: str
    cells: Tuple[CellRecord, ...]

    def to_dict(self) -> Dict[str, object]:
        """The panel's JSON payload."""
        return {"title": self.title, "x_name": self.x_name,
                "sweep_name": self.sweep_name,
                "series_name": self.series_name,
                "sweep_values": list(self.sweep_values),
                "series_values": list(self.series_values),
                "seed": self.seed, "n_trials": self.n_trials,
                "point_fingerprint": self.point_fingerprint,
                "cells": [cell.to_dict() for cell in self.cells]}

    def mean_series(self) -> Dict[object, List[float]]:
        """``series value -> mean curve`` in sweep order, like the tables."""
        by_series: Dict[object, List[float]] = {
            value: [] for value in self.series_values}
        for cell in self.cells:
            by_series[cell.series_value].append(cell.stats.mean)
        return by_series

    @classmethod
    def from_dict(cls, payload: Mapping, where: str) -> "PanelRecord":
        """Rebuild a panel from its payload, validating the grid shape."""
        if not isinstance(payload, Mapping):
            raise ResultsError(f"{where}: panel must be a mapping, "
                               f"got {type(payload).__name__}")
        sweep_values = tuple(_get(payload, "sweep_values", list, where))
        series_values = tuple(_get(payload, "series_values", list, where))
        raw_cells = _get(payload, "cells", list, where)
        expected = len(sweep_values) * len(series_values)
        if len(raw_cells) != expected:
            raise ResultsError(
                f"{where}: grid is {len(series_values)} series x "
                f"{len(sweep_values)} sweep values = {expected} cells, but "
                f"the record carries {len(raw_cells)}")
        cells = tuple(CellRecord.from_dict(cell, f"{where} cell[{i}]")
                      for i, cell in enumerate(raw_cells))
        # The writer emits cells in series-major grid order; anything
        # else (a permuted or mislabelled hand edit) would silently
        # print curves against the wrong coordinates, so enforce the
        # exact correspondence here.
        expected_coords = [(s, x) for s in series_values
                           for x in sweep_values]
        actual_coords = [(c.series_value, c.sweep_value) for c in cells]
        for i, (actual, wanted) in enumerate(zip(actual_coords,
                                                 expected_coords)):
            if actual != wanted:
                raise ResultsError(
                    f"{where} cell[{i}]: coordinates {actual!r} do not match "
                    f"the declared grid axes (expected {wanted!r} in "
                    f"series-major order)")
        if "seed" not in payload:
            raise ResultsError(f"{where}: missing key 'seed'")
        return cls(title=_get(payload, "title", str, where),
                   x_name=_get(payload, "x_name", str, where),
                   sweep_name=_get(payload, "sweep_name", str, where),
                   series_name=_get(payload, "series_name", str, where),
                   sweep_values=sweep_values, series_values=series_values,
                   seed=payload["seed"],
                   n_trials=_get(payload, "n_trials", int, where),
                   point_fingerprint=_get(payload, "point_fingerprint", str,
                                          where),
                   cells=cells)


@dataclass(frozen=True)
class RunRecord:
    """A complete provenance-stamped run: panels plus run-level metadata.

    Instances are immutable value objects; build them with
    :meth:`build` (which computes the digests) or :meth:`from_dict`
    (which *verifies* them).  Equal records compare equal, so a
    write/read round trip can be asserted with ``==``.
    """

    schema_version: int
    kind: str
    name: str
    result_stem: str
    package_version: str
    engine_version: int
    executor: str
    full: bool
    config_digest: str
    run_id: str
    panels: Tuple[PanelRecord, ...]
    #: Per-panel, per-cell compute wall-times in seconds (``None`` for
    #: cells served from cache).  Environment metadata like ``executor``:
    #: excluded from ``run_id``/``config_digest``, advisory only, and
    #: never shape-validated — a record without timings is complete.
    timings: Optional[Tuple[Tuple[Optional[float], ...], ...]] = None
    #: Fleet-run telemetry (``{"counters": ..., "dead_letters": ...}``)
    #: stamped by runs on the work-queue executor.  Environment metadata
    #: like ``timings``: excluded from ``run_id``, advisory only,
    #: emitted only when present — non-fleet records are unchanged.
    fleet: Optional[Dict[str, object]] = None

    @classmethod
    def build(cls, *, kind: str, name: str, result_stem: str,
              executor: str, full: bool, panels: Iterable[PanelRecord],
              timings: Optional[Iterable] = None,
              fleet: Optional[Mapping] = None) -> "RunRecord":
        """Assemble a record, computing ``config_digest`` and ``run_id``."""
        from .. import __version__
        from ..evaluation.engine import ENGINE_VERSION
        if kind not in _KINDS:
            raise ResultsError(f"record kind must be one of "
                               f"{', '.join(_KINDS)}, got {kind!r}")
        panels = tuple(panels)
        if not panels:
            raise ResultsError("a run record needs at least one panel")
        if timings is not None:
            timings = tuple(tuple(None if t is None else float(t)
                                  for t in panel) for panel in timings)
        if fleet is not None:
            fleet = _jsonify(fleet, "fleet telemetry")
        record = cls(schema_version=SCHEMA_VERSION, kind=kind, name=name,
                     result_stem=result_stem, package_version=__version__,
                     engine_version=ENGINE_VERSION, executor=executor,
                     full=bool(full), config_digest="", run_id="",
                     panels=panels, timings=timings, fleet=fleet)
        object.__setattr__(record, "config_digest",
                           compute_config_digest(record.to_dict()))
        object.__setattr__(record, "run_id",
                           compute_run_id(record.to_dict()))
        return record

    def to_dict(self) -> Dict[str, object]:
        """The record's full JSON payload (the on-disk manifest).

        The ``timings`` key is emitted only when present, so records
        written before cell timing existed round-trip byte-for-byte.
        """
        payload = {"schema_version": self.schema_version, "kind": self.kind,
                   "name": self.name, "result_stem": self.result_stem,
                   "package_version": self.package_version,
                   "engine_version": self.engine_version,
                   "executor": self.executor, "full": self.full,
                   "config_digest": self.config_digest, "run_id": self.run_id,
                   "panels": [panel.to_dict() for panel in self.panels]}
        if self.timings is not None:
            payload["timings"] = [list(panel) for panel in self.timings]
        if self.fleet is not None:
            payload["fleet"] = self.fleet
        return payload

    def cell_digests(self) -> set:
        """Every cell cache digest the record references."""
        return {cell.digest for panel in self.panels for cell in panel.cells}

    def n_cells(self) -> int:
        """Total grid cells across all panels."""
        return sum(len(panel.cells) for panel in self.panels)

    def format_tables(self) -> str:
        """The text-table blocks this run printed, rebuilt from the record.

        Byte-identical to the committed ``benchmarks/results/*.txt``
        content for bench records — the record carries everything the
        tables do.
        """
        from ..evaluation.tables import format_panel_block
        return "".join(
            format_panel_block(panel.title, panel.x_name,
                               list(panel.sweep_values), panel.mean_series())
            for panel in self.panels)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RunRecord":
        """Rebuild a record from a manifest payload, verifying everything.

        The schema version is checked first (a future version refuses
        with :class:`~repro.exceptions.UnknownSchemaError` — no
        best-effort parse), then every field is validated, and finally
        the stored ``run_id`` must equal the recomputed content digest,
        so hand-edited or silently corrupted manifests fail loudly.
        """
        if not isinstance(payload, Mapping):
            raise ResultsError(f"run record payload must be a mapping, "
                               f"got {type(payload).__name__}")
        version = _get(payload, "schema_version", int, "run record")
        if version != SCHEMA_VERSION:
            raise UnknownSchemaError(
                f"run record declares schema version {version}; this build "
                f"reads version {SCHEMA_VERSION} only — refusing a "
                f"best-effort parse of an unknown manifest layout")
        kind = _get(payload, "kind", str, "run record")
        if kind not in _KINDS:
            raise ResultsError(f"run record kind must be one of "
                               f"{', '.join(_KINDS)}, got {kind!r}")
        raw_panels = _get(payload, "panels", list, "run record")
        panels = tuple(PanelRecord.from_dict(panel, f"panel[{i}]")
                       for i, panel in enumerate(raw_panels))
        timings = None
        if "timings" in payload:
            # Advisory environment metadata: types are checked so the
            # manifest stays machine-readable, but the shape is *not*
            # matched against the grid — timings never gate a load the
            # way the integrity digests do.
            raw_timings = _get(payload, "timings", list, "run record")
            rows = []
            for i, row in enumerate(raw_timings):
                if not isinstance(row, list):
                    raise ResultsError(
                        f"run record timings[{i}] must be a list, got "
                        f"{type(row).__name__}")
                for t in row:
                    if t is not None and (isinstance(t, bool)
                                          or not isinstance(t, (int, float))):
                        raise ResultsError(
                            f"run record timings[{i}] entries must be "
                            f"seconds or null, got {t!r}")
                rows.append(tuple(None if t is None else float(t)
                                  for t in row))
            timings = tuple(rows)
        fleet = None
        if "fleet" in payload:
            # Advisory like timings: the shape of the telemetry never
            # gates a load, only its top-level type is checked.
            fleet = dict(_get(payload, "fleet", dict, "run record"))
        record = cls(
            schema_version=version, kind=kind,
            name=_get(payload, "name", str, "run record"),
            result_stem=_get(payload, "result_stem", str, "run record"),
            package_version=_get(payload, "package_version", str,
                                 "run record"),
            engine_version=_get(payload, "engine_version", int, "run record"),
            executor=_get(payload, "executor", str, "run record"),
            full=_get(payload, "full", bool, "run record"),
            config_digest=_get(payload, "config_digest", str, "run record"),
            run_id=_get(payload, "run_id", str, "run record"),
            panels=panels, timings=timings, fleet=fleet)
        if not panels:
            raise ResultsError("run record carries no panels")
        expected_config = compute_config_digest(record.to_dict())
        if record.config_digest != expected_config:
            raise ResultsError(
                f"run record integrity check failed: stored config_digest "
                f"{record.config_digest!r} does not match the recomputed "
                f"provenance digest {expected_config!r} — the manifest was "
                f"hand-edited or corrupted (re-stamp with "
                f"repro.results.compute_config_digest if deliberate)")
        expected = compute_run_id(record.to_dict())
        if record.run_id != expected:
            raise ResultsError(
                f"run record integrity check failed: stored run_id "
                f"{record.run_id!r} does not match the content digest "
                f"{expected!r} — the manifest was hand-edited or corrupted "
                f"(recompute the id with repro.results.compute_run_id if "
                f"the edit was deliberate)")
        return record


# ---------------------------------------------------------------------------
# RunRecorder — the write path the engine wiring uses.
# ---------------------------------------------------------------------------

class RunRecorder:
    """Collects per-panel cell results into one :class:`RunRecord`.

    A recorder is handed to :meth:`repro.experiments.catalog.PanelDef.run`
    (or any :func:`~repro.evaluation.run_grid` caller using the
    ``on_cell`` hook): each panel appends its grid provenance and
    per-cell stats, and :meth:`finalize` seals the record.  All values
    are normalised to plain JSON data on the way in, so a grid whose
    coordinates cannot be recorded fails at record time, not at load
    time.
    """

    def __init__(self, *, kind: str, name: str, result_stem: str,
                 executor: str = "serial", full: bool = False):
        if kind not in _KINDS:
            raise ResultsError(f"record kind must be one of "
                               f"{', '.join(_KINDS)}, got {kind!r}")
        self.kind = kind
        self.name = name
        self.result_stem = result_stem
        self.executor = executor
        self.full = bool(full)
        self._panels: List[PanelRecord] = []
        self._timings: List[Tuple[Optional[float], ...]] = []
        self._fleet: Optional[Mapping] = None

    def add_panel(self, *, title: str, x_name: str, sweep_name: str,
                  series_name: str, sweep_values, series_values, seed,
                  n_trials: int, point_fingerprint: str, cells) -> None:
        """Append one executed panel.

        ``cells`` is the engine's ``on_cell`` capture: an iterable of
        ``(TrialJob, trial values, elapsed)`` triples in job order
        (bare ``(TrialJob, trial values)`` pairs are accepted too, with
        unknown elapsed times).
        """
        where = f"panel {title!r}"
        cell_records = []
        elapsed_row = []
        for job, values, *rest in cells:
            cell_records.append(CellRecord(
                series_value=_jsonify(job.series_value, where),
                sweep_value=_jsonify(job.sweep_value, where),
                digest=job.digest,
                stats=TrialStats.from_values(values)))
            elapsed_row.append(rest[0] if rest else None)
        self._panels.append(PanelRecord(
            title=title, x_name=x_name, sweep_name=sweep_name,
            series_name=series_name,
            sweep_values=tuple(_jsonify(list(sweep_values), where)),
            series_values=tuple(_jsonify(list(series_values), where)),
            seed=_jsonify(seed, where), n_trials=int(n_trials),
            point_fingerprint=point_fingerprint, cells=tuple(cell_records)))
        self._timings.append(tuple(elapsed_row))

    def set_fleet(self, payload: Optional[Mapping]) -> None:
        """Attach fleet-run telemetry (counters, dead letters) to the record.

        Called by the service tier after a work-queue run settles;
        ``None`` (the default state) leaves the record without a
        ``fleet`` key, so non-fleet records are byte-identical to
        records written before the fleet existed.
        """
        self._fleet = payload

    def finalize(self) -> RunRecord:
        """Seal the collected panels into an immutable :class:`RunRecord`.

        Timings are stamped only when at least one cell was actually
        computed during this run — a fully cache-served replay yields a
        record byte-identical to one recorded before timing existed.
        """
        timed = any(t is not None for row in self._timings for t in row)
        return RunRecord.build(kind=self.kind, name=self.name,
                               result_stem=self.result_stem,
                               executor=self.executor, full=self.full,
                               panels=self._panels,
                               timings=self._timings if timed else None,
                               fleet=self._fleet)
