"""On-disk persistence for run records, next to the text tables.

A :class:`ResultsStore` is a directory of ``<stem>.json`` manifests —
``benchmarks/results/`` by convention, so every bench's structured
record sits next to its ``<stem>.txt`` table.  Writes are atomic (temp
file + rename, like the engine's cell cache) and byte-deterministic:
the same run always produces the same file, so records can be committed
and re-generated without churn.

Committed *baseline* records live in a separate directory
(``benchmarks/baselines/``, named by catalog entry) that runs never
write to; ``python -m repro diff <run> --against-catalog <name>`` reads
them, and :func:`baseline_digests` feeds ``cache prune``'s keep-set so
a cell referenced by a committed baseline is never garbage-collected.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import List, Union

from ..exceptions import ResultsError
from .record import RunRecord


def manifest_text(record: RunRecord) -> str:
    """The exact on-disk manifest text of ``record``.

    Pretty-printed with sorted keys and a trailing newline — the one
    serialisation shared by :func:`save_record` and the HTTP server's
    ``GET /records/<name>`` body, so a served record is byte-identical
    to its committed file.
    """
    try:
        return json.dumps(record.to_dict(), indent=1, sort_keys=True,
                          allow_nan=False) + "\n"
    except ValueError as exc:
        raise ResultsError(
            f"run record {record.name!r} contains non-finite floats "
            f"(NaN/Infinity), which strict JSON cannot carry: {exc}") from exc


def save_record(record: RunRecord, path: Union[str, Path]) -> Path:
    """Atomically write one record manifest to an exact path.

    The JSON is pretty-printed with sorted keys, so equal records
    serialise to equal bytes and committed records diff cleanly.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = manifest_text(record)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path


def load_record(path: Union[str, Path]) -> RunRecord:
    """Load and fully validate one run-record manifest.

    Unreadable files, truncated or non-JSON content, structural
    problems, unknown schema versions, and integrity failures all raise
    :class:`~repro.exceptions.ResultsError` (or its
    :class:`~repro.exceptions.UnknownSchemaError` subclass) naming the
    file — there is no partial or best-effort load.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ResultsError(f"cannot read run record {path}: {exc}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ResultsError(
            f"run record {path} is not valid JSON ({exc}); the file is "
            f"truncated or corrupt") from exc
    try:
        return RunRecord.from_dict(payload)
    except ResultsError as exc:
        raise type(exc)(f"{path}: {exc}") from exc


class ResultsStore:
    """A directory of run-record manifests, one ``<stem>.json`` per run.

    The stem defaults to the record's ``result_stem`` so a bench record
    lands next to its text table (``fig05.json`` beside ``fig05.txt``)
    and a rerun replaces it, exactly like the table.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)

    def path_for(self, stem: str) -> Path:
        """The manifest path for a record stem."""
        return self.directory / f"{stem}.json"

    def save(self, record: RunRecord, stem: str = None) -> Path:
        """Atomically persist ``record``; returns the manifest path.

        The JSON is pretty-printed with sorted keys, so equal records
        serialise to equal bytes and committed records diff cleanly.
        An existing manifest with the same ``run_id`` is left untouched:
        ``run_id`` covers provenance and values but not environment
        metadata (executor, package version), so e.g. a
        ``REPRO_BENCH_EXECUTOR=thread`` rerun of a bench — bit-identical
        by the engine's contract — never churns the committed
        serial-run record's bytes.
        """
        target = self.path_for(record.result_stem if stem is None else stem)
        if target.exists():
            try:
                if load_record(target).run_id == record.run_id:
                    return target
            except ResultsError:
                pass  # unreadable/stale manifest: fall through and replace
        return save_record(record, target)

    def load(self, stem_or_path: Union[str, Path]) -> RunRecord:
        """Load a record by stem (``"fig05"``) or by explicit path."""
        candidate = Path(stem_or_path)
        if candidate.suffix == ".json" and candidate.exists():
            return load_record(candidate)
        return load_record(self.path_for(str(stem_or_path)))

    def runs(self) -> List[Path]:
        """Every manifest path in the store, sorted by name."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*.json"))


def baseline_digests(directory: Union[str, Path]) -> set:
    """Every cell digest referenced by any record under ``directory``.

    This is ``cache prune``'s baseline keep-set.  A record that fails
    to load raises rather than being skipped: silently ignoring a
    corrupt baseline would let prune delete exactly the cells the
    baseline was protecting.
    """
    digests: set = set()
    store = ResultsStore(directory)
    for path in store.runs():
        digests.update(load_record(path).cell_digests())
    return digests
