"""``ServiceCore`` — catalog, record store, cell cache, and engine in one.

Before this layer existed, every entry point assembled the platform by
hand: the CLI built its own ``ResultCache`` and ``RunRecorder``, the
pytest benches re-derived executors and wrote records through their own
store, and nothing could serve results to concurrent clients.  The core
composes those pieces once and exposes a small method surface:

* compute tier — :meth:`ServiceCore.run_bench` /
  :meth:`ServiceCore.run_spec` execute catalog benches and TOML specs
  through the engine, always against the core's cache and its shared
  :class:`~repro.evaluation.SingleFlight` map, so concurrent callers
  coalesce onto one computation per cell digest;
* query tier — :meth:`ServiceCore.load_record`,
  :meth:`ServiceCore.cell_values`, :meth:`ServiceCore.catalog_entries`
  answer read requests from the committed stores without computing;
* maintenance — :meth:`ServiceCore.scan_cache` and
  :meth:`ServiceCore.prune_cache` split and garbage-collect cell files
  (shard-aware, legacy-flat-aware) for ``cache stats`` / ``cache
  prune``.

Everything above it — :mod:`repro.cli`, ``benchmarks/_common``, and
:mod:`repro.server` — is an adapter over these methods.
"""

from __future__ import annotations

import pickle
import re
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..evaluation import (
    ExperimentSpec,
    ResultCache,
    SingleFlight,
    format_panel_block,
)
from ..evaluation.scenarios import point_fingerprint
from ..exceptions import ResultsError
from ..experiments import bench, bench_names, bench_recorder
from ..fleet import FleetOptions, FleetStats, create_fleet_executor
from ..experiments.catalog import BenchDef, claimed_digests
from ..results import (
    ResultsStore,
    RunRecord,
    RunRecorder,
    baseline_digests,
    cell_capture,
)

#: Job digests are 32 lowercase hex chars (blake2b, ``digest_size=16``);
#: anything else is refused before it can touch the filesystem.
_DIGEST_RE = re.compile(r"^[0-9a-f]{8,128}$")


@dataclass(frozen=True)
class BenchRun:
    """The full outcome of one catalog bench run through the core.

    Carries everything any client renders: the resolved
    :class:`~repro.experiments.catalog.BenchDef`, the sealed
    provenance record, the per-panel text-table blocks (byte-identical
    to the committed ``benchmarks/results/*.txt`` content), the
    per-panel ``series -> mean curve`` mappings, and the executor that
    actually ran each panel.
    """

    definition: BenchDef
    record: RunRecord
    blocks: Tuple[str, ...]
    panels: Tuple[Dict[object, List[float]], ...]
    executors: Tuple[str, ...]


@dataclass(frozen=True)
class SpecRun:
    """The outcome of one TOML-spec run through the core.

    ``block`` is the printed table, ``series`` the mean curves, and
    ``record`` the sealed provenance record (built for every run; the
    caller decides whether to persist it).
    """

    spec: ExperimentSpec
    record: RunRecord
    block: str
    series: Dict[object, List[float]]
    trials: int


@dataclass
class ServiceCore:
    """One composed compute/query tier shared by CLI, benches, server.

    Parameters are all optional: a core without a cache computes
    uncached, a core without a results directory cannot answer record
    queries but still runs benches.  The :class:`SingleFlight` map is
    created per core (or injected for tests) and shared by every grid
    the core runs — that sharing *is* the coalescing guarantee.
    """

    results_dir: Optional[Path] = None
    baselines_dir: Optional[Path] = None
    cache: Optional[ResultCache] = None
    flight: SingleFlight = field(default_factory=SingleFlight)
    #: Configuration applied to every ``executor="fleet"`` run this
    #: core performs (pool size, lease policy, injected faults).
    fleet: FleetOptions = field(default_factory=FleetOptions)
    #: Core-lifetime fleet counters, accumulated across every fleet run
    #: and surfaced by ``/stats`` and ``cache stats --json``.
    fleet_stats: FleetStats = field(default_factory=FleetStats)

    def __post_init__(self):
        """Normalise path-like and directory-like constructor arguments."""
        if self.results_dir is not None:
            self.results_dir = Path(self.results_dir)
        if self.baselines_dir is not None:
            self.baselines_dir = Path(self.baselines_dir)
        if self.cache is not None and not isinstance(self.cache, ResultCache):
            self.cache = ResultCache(self.cache)

    # -- query tier ----------------------------------------------------------

    def store(self) -> Optional[ResultsStore]:
        """The run-record store over ``results_dir``, if one is configured."""
        if self.results_dir is None:
            return None
        return ResultsStore(self.results_dir)

    def catalog_entries(self) -> List[BenchDef]:
        """Every catalog bench definition at laptop scale, sorted by name."""
        return [bench(name) for name in bench_names()]

    def load_record(self, name: str) -> RunRecord:
        """A stored run record by stem (``fig05``) or catalog name.

        A catalog bench name resolves through its ``result_stem``, so
        ``GET /records/fig05_lasso_lognormal`` and ``GET /records/fig05``
        serve the same manifest.  Raises
        :class:`~repro.exceptions.ResultsError` when no store is
        configured or the record does not exist.
        """
        store = self.store()
        if store is None:
            raise ResultsError("no results directory configured")
        stem = name
        if not store.path_for(stem).exists() and name in bench_names():
            stem = bench(name).result_stem
        return store.load(stem)

    def cell_values(self, digest: str) -> Optional[object]:
        """The cached raw trial values for one cell digest, or ``None``.

        The digest is validated as hex before it is used in a path —
        a traversal attempt (``../``) can never reach the filesystem.
        """
        if self.cache is None or not _DIGEST_RE.match(digest):
            return None
        return self.cache.read_values(digest)

    # -- compute tier --------------------------------------------------------

    def _resolve_executor(self, point, executor: str) -> str:
        """Demote the process executor to serial for unpicklable points."""
        if executor == "process":
            try:
                pickle.dumps(point)
            except Exception:
                warnings.warn(f"point {point!r} is not picklable; "
                              "falling back to the serial executor")
                return "serial"
        return executor

    def run_bench(self, name: str, *, full: bool = False,
                  n_trials: Optional[int] = None, executor: str = "serial",
                  max_workers: Optional[int] = None, chunksize: int = 1,
                  demote_unpicklable: bool = False) -> BenchRun:
        """Run one catalog bench through the engine; seal its record.

        The one bench execution path behind ``python -m repro run``,
        ``run_catalog_bench``, and ``POST /run`` — all three therefore
        produce identical tables and records (equal ``run_id``) for the
        same entry.  ``demote_unpicklable`` enables the benches'
        per-panel process→serial fallback; a record whose panels ran on
        different executors is labelled ``"mixed"``.  Nothing is
        persisted here — callers own their write policy.
        """
        definition = bench(name, full=full)
        resolved = tuple(
            self._resolve_executor(panel.point, executor)
            if demote_unpicklable else executor
            for panel in definition.panels)
        # Record the executor that actually runs, not the requested
        # knob: a demoted panel must not claim a process-pool run that
        # never happened.
        label = resolved[0] if len(set(resolved)) == 1 else "mixed"
        recorder = bench_recorder(definition, executor=label, full=full)
        # One fleet instance spans every panel of the run, so its
        # counters and dead letters describe exactly this record.
        # ``fleet.broker`` picks the transport: the in-process
        # simulation, or the networked coordinator over a socket broker.
        runner = (create_fleet_executor(self.fleet)
                  if executor == "fleet" else None)
        blocks, panels = [], []
        for panel, panel_executor in zip(definition.panels, resolved):
            series = panel.run(executor=runner if runner is not None
                               else panel_executor, cache=self.cache,
                               n_trials=n_trials, max_workers=max_workers,
                               chunksize=chunksize, recorder=recorder,
                               flight=self.flight)
            blocks.append(format_panel_block(panel.title, panel.x_name,
                                             panel.sweep_values, series))
            panels.append(series)
        if runner is not None:
            self.fleet_stats.merge(runner.stats)
            recorder.set_fleet(runner.record_payload())
        return BenchRun(definition=definition, record=recorder.finalize(),
                        blocks=tuple(blocks), panels=tuple(panels),
                        executors=resolved)

    def run_spec(self, spec: ExperimentSpec, *, executor: str = "serial",
                 n_trials: Optional[int] = None,
                 max_workers: Optional[int] = None) -> SpecRun:
        """Run one declarative spec through the engine; seal its record."""
        trials = spec.n_trials if n_trials is None else n_trials
        recorder = RunRecorder(kind="spec", name=spec.name,
                               result_stem=spec.name, executor=executor,
                               full=False)
        cells, on_cell = cell_capture()
        runner = (create_fleet_executor(self.fleet)
                  if executor == "fleet" else None)
        result = spec.run(executor=runner if runner is not None else executor,
                          cache=self.cache, n_trials=n_trials,
                          max_workers=max_workers, flight=self.flight,
                          on_cell=on_cell)
        if runner is not None:
            self.fleet_stats.merge(runner.stats)
            recorder.set_fleet(runner.record_payload())
        series = {label: [stat.mean for stat in stats]
                  for label, stats in result.series.items()}
        title = (f"{spec.name}: {spec.metric} ({spec.solver} on {spec.data}, "
                 f"{trials} trials, seed {spec.seed})")
        recorder.add_panel(
            title=title, x_name=spec.sweep.name, sweep_name=spec.sweep.name,
            series_name=spec.series.name, sweep_values=spec.sweep.values,
            series_values=spec.series.values, seed=spec.seed, n_trials=trials,
            point_fingerprint=point_fingerprint(spec.to_scenario()),
            cells=cells)
        block = format_panel_block(title, spec.sweep.name, spec.sweep.values,
                                   series)
        return SpecRun(spec=spec, record=recorder.finalize(), block=block,
                       series=series, trials=trials)

    # -- maintenance ---------------------------------------------------------

    def baseline_keep(self) -> set:
        """Cell digests pinned by committed baseline records (may be empty)."""
        if self.baselines_dir is None:
            return set()
        return baseline_digests(self.baselines_dir)

    def scan_cache(self, directory: Union[str, Path],
                   baseline: set) -> Dict[str, List[Path]]:
        """Split cell files into catalog-claimed, baseline-pinned, orphaned.

        Walks both the sharded (``ab/<digest>.json``) and legacy flat
        layouts via :meth:`~repro.evaluation.ResultCache.iter_cells`.
        A cell counts as ``claimed`` when a current catalog grid
        produces its digest; failing that, as ``baseline`` when a
        committed baseline record references it; anything else is an
        orphan.
        """
        claimed = claimed_digests()
        split: Dict[str, List[Path]] = {"claimed": [], "baseline": [],
                                        "orphaned": []}
        for cell in ResultCache(directory).iter_cells():
            if cell.stem in claimed:
                split["claimed"].append(cell)
            elif cell.stem in baseline:
                split["baseline"].append(cell)
            else:
                split["orphaned"].append(cell)
        return split

    def prune_cache(self, directory: Union[str, Path], baseline: set,
                    dry_run: bool = False) -> Dict[str, List[Path]]:
        """Delete orphaned cells (unless ``dry_run``); return the split."""
        split = self.scan_cache(directory, baseline)
        if not dry_run:
            for cell in split["orphaned"]:
                cell.unlink()
        return split
