"""The service core: one compute/query tier behind every entry point.

:class:`ServiceCore` owns the four pieces every client used to wire by
hand — catalog lookup, the run-record store, the cell
:class:`~repro.evaluation.ResultCache`, and the engine (with a shared
:class:`~repro.evaluation.SingleFlight` coalescing map) — and exposes
them as methods.  ``python -m repro`` (:mod:`repro.cli`), the pytest
benches (``benchmarks/_common``), and the HTTP server
(:mod:`repro.server`) are all thin clients of this one tier, which is
what makes their outputs bit-identical by construction: a bench run, a
CLI run, and a served ``POST /run`` of the same catalog entry produce
run records with equal ``run_id``.

:mod:`repro.service.serializers` holds the JSON payload builders shared
by the server's responses and the CLI's ``--json`` flags, so scripts
parse one schema no matter which surface produced it.
"""

from .core import BenchRun, ServiceCore, SpecRun
from .serializers import (
    cache_stats_payload,
    catalog_payload,
    fleet_counters,
    list_payload,
    record_store_entry,
    record_summary,
    run_payload,
    stats_payload,
)

__all__ = [
    "BenchRun",
    "ServiceCore",
    "SpecRun",
    "cache_stats_payload",
    "catalog_payload",
    "fleet_counters",
    "list_payload",
    "record_store_entry",
    "record_summary",
    "run_payload",
    "stats_payload",
]
