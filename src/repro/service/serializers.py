"""JSON payload builders shared by the HTTP server and the CLI ``--json``.

One schema per resource, whichever surface serves it: ``GET /catalog``
and ``python -m repro list --json`` emit :func:`catalog_payload` /
:func:`list_payload`; ``GET /stats`` and ``python -m repro cache stats
--json`` emit :func:`stats_payload` / :func:`cache_stats_payload`;
``POST /run`` emits :func:`run_payload`.  Scripts parse one shape, and
the two surfaces cannot drift apart.

Record *bodies* deliberately have no builder here: the server streams
:func:`repro.results.manifest_text` so a served record is byte-identical
to its committed file.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

from ..evaluation import ResultCache, SingleFlight
from ..fleet import FleetStats
from ..registry import ALL_REGISTRIES
from ..results import RunRecord
from .core import BenchRun, ServiceCore


def catalog_payload(core: ServiceCore) -> Dict[str, object]:
    """The catalog resource: every bench, its panels, and record status."""
    store = core.store()
    entries = []
    for definition in core.catalog_entries():
        record_path = (store.path_for(definition.result_stem)
                       if store is not None else None)
        entries.append({
            "name": definition.name,
            "result_stem": definition.result_stem,
            "panels": len(definition.panels),
            "titles": [panel.title for panel in definition.panels],
            "has_record": bool(record_path is not None
                               and record_path.exists()),
        })
    return {"benches": entries}


def list_payload(core: ServiceCore) -> Dict[str, object]:
    """``python -m repro list --json``: catalog plus every registry."""
    payload = catalog_payload(core)
    payload["registries"] = {section: list(registry.names())
                             for section, registry in ALL_REGISTRIES}
    return payload


def record_summary(record: RunRecord) -> Dict[str, object]:
    """The compact identity block shared by run responses and listings."""
    return {"name": record.name, "kind": record.kind,
            "result_stem": record.result_stem, "run_id": record.run_id,
            "config_digest": record.config_digest,
            "executor": record.executor, "full": record.full,
            "panels": len(record.panels), "cells": record.n_cells(),
            "package_version": record.package_version,
            "engine_version": record.engine_version}


def cache_counters(cache: Optional[ResultCache]) -> Dict[str, object]:
    """The live hit/miss counters of a core's cell cache (may be absent)."""
    if cache is None:
        return {"configured": False, "hits": 0, "misses": 0}
    return {"configured": True, "hits": cache.hits, "misses": cache.misses,
            "dir": str(cache.directory)}


def flight_counters(flight: SingleFlight) -> Dict[str, int]:
    """The single-flight coalescing counters: flights led vs joined."""
    return {"led": flight.led, "coalesced": flight.coalesced}


def fleet_counters(stats: FleetStats) -> Dict[str, int]:
    """The work-queue executor's counters (leased/completed/retried/dead)."""
    return stats.as_dict()


def stats_payload(core: ServiceCore) -> Dict[str, object]:
    """``GET /stats``: live cache, coalescing, and fleet counters."""
    return {"cache": cache_counters(core.cache),
            "flight": flight_counters(core.flight),
            "fleet": fleet_counters(core.fleet_stats)}


def run_payload(core: ServiceCore, run: BenchRun) -> Dict[str, object]:
    """``POST /run``'s response: what ran, its identity, live counters."""
    payload = record_summary(run.record)
    payload["executors"] = list(run.executors)
    payload["stats"] = stats_payload(core)
    return payload


def cache_stats_payload(directory: Path, split: Dict[str, List[Path]],
                        records: List[Dict[str, object]],
                        fleet: Optional[FleetStats] = None
                        ) -> Dict[str, object]:
    """``cache stats --json``: the scan split plus record-store sizes.

    ``records`` entries come from :func:`record_store_entry` — one per
    reported store directory, mirroring the human ``[records]`` lines.
    ``fleet`` (when given) adds the work-queue executor counters under
    a ``"fleet"`` key, matching the server's ``GET /stats`` shape.
    """
    cells = split["claimed"] + split["baseline"] + split["orphaned"]
    payload = {
        "dir": str(directory),
        "cells": len(cells),
        "bytes": sum(cell.stat().st_size for cell in cells),
        "claimed": len(split["claimed"]),
        "baseline": len(split["baseline"]),
        "orphaned": len(split["orphaned"]),
        "records": records,
    }
    if fleet is not None:
        payload["fleet"] = fleet_counters(fleet)
    return payload


def record_store_entry(directory: Path, runs: List[Path],
                       cells: Optional[int] = None) -> Dict[str, object]:
    """One record-store line of ``cache stats``, as data."""
    entry: Dict[str, object] = {
        "dir": str(directory),
        "runs": len(runs),
        "bytes": sum(path.stat().st_size for path in runs),
    }
    if cells is not None:
        entry["cells"] = cells
    return entry
