"""Shared argument-validation helpers.

These functions raise :class:`repro.exceptions.ConfigurationError` (a
``ValueError`` subclass) with messages that name the offending parameter,
so every public entry point reports mistakes the same way.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from .exceptions import ConfigurationError, DataShapeError


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is a finite, strictly positive number."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{name} must be a finite positive number, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number ``>= 0``."""
    value = float(value)
    if not np.isfinite(value) or value < 0:
        raise ConfigurationError(f"{name} must be a finite non-negative number, got {value!r}")
    return value


def check_probability(value: float, name: str, *, allow_zero: bool = True,
                      allow_one: bool = True) -> float:
    """Validate that ``value`` lies in [0, 1] (bounds optionally open)."""
    value = float(value)
    low_ok = value > 0 or (allow_zero and value == 0)
    high_ok = value < 1 or (allow_one and value == 1)
    if not np.isfinite(value) or not (low_ok and high_ok):
        raise ConfigurationError(f"{name} must be a probability in [0, 1], got {value!r}")
    return value


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is an integer ``>= 1``."""
    if int(value) != value or int(value) < 1:
        raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")
    return int(value)


def check_vector(x: np.ndarray, name: str, *, dim: Optional[int] = None) -> np.ndarray:
    """Coerce ``x`` to a float 1-D array, optionally of a required length."""
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 1:
        raise DataShapeError(f"{name} must be a 1-D array, got shape {arr.shape}")
    if dim is not None and arr.shape[0] != dim:
        raise DataShapeError(f"{name} must have length {dim}, got {arr.shape[0]}")
    if not np.all(np.isfinite(arr)):
        raise ConfigurationError(f"{name} contains non-finite entries")
    return arr


def check_matrix(x: np.ndarray, name: str) -> np.ndarray:
    """Coerce ``x`` to a float 2-D array with finite entries."""
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 2:
        raise DataShapeError(f"{name} must be a 2-D array, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ConfigurationError(f"{name} contains non-finite entries")
    return arr


def check_dataset(features: np.ndarray, labels: np.ndarray,
                  name: str = "dataset") -> Tuple[np.ndarray, np.ndarray]:
    """Validate an ``(X, y)`` pair: 2-D features, matching 1-D labels."""
    X = check_matrix(features, f"{name}.features")
    y = check_vector(labels, f"{name}.labels")
    if X.shape[0] != y.shape[0]:
        raise DataShapeError(
            f"{name}: features have {X.shape[0]} rows but labels have {y.shape[0]} entries"
        )
    if X.shape[0] == 0:
        raise ConfigurationError(f"{name} is empty")
    return X, y


def check_in_choices(value: str, name: str, choices: Sequence[str]) -> str:
    """Validate a string option against an allowed set."""
    if value not in choices:
        raise ConfigurationError(f"{name} must be one of {sorted(choices)}, got {value!r}")
    return value
