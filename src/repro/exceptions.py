"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from privacy-accounting
violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """An algorithm or mechanism received an invalid parameter.

    Raised for non-positive privacy budgets, empty datasets, mismatched
    shapes and similar caller mistakes.  Inherits from :class:`ValueError`
    so generic validation code keeps working.
    """


class PrivacyBudgetError(ReproError, RuntimeError):
    """A privacy accountant was asked to exceed its allotted budget."""


class NotFittedError(ReproError, RuntimeError):
    """A result attribute was requested before ``fit`` was called."""


class DataShapeError(ConfigurationError):
    """Feature/label arrays have incompatible or unexpected shapes."""
