"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from privacy-accounting
violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """An algorithm or mechanism received an invalid parameter.

    Raised for non-positive privacy budgets, empty datasets, mismatched
    shapes and similar caller mistakes.  Inherits from :class:`ValueError`
    so generic validation code keeps working.
    """


class PrivacyBudgetError(ReproError, RuntimeError):
    """A privacy accountant was asked to exceed its allotted budget."""


class NotFittedError(ReproError, RuntimeError):
    """A result attribute was requested before ``fit`` was called."""


class DataShapeError(ConfigurationError):
    """Feature/label arrays have incompatible or unexpected shapes."""


class ResultsError(ReproError, ValueError):
    """A run record could not be built, stored, or loaded.

    Raised for truncated or hand-edited manifests, structurally invalid
    payloads, integrity-check failures (a record's ``run_id`` no longer
    matches its content), and non-serialisable run data.  Inherits from
    :class:`ValueError` so generic CLI error handling keeps working.
    """


class UnknownSchemaError(ResultsError):
    """A run record declares a schema version this build cannot read.

    Loading refuses outright — there is no best-effort parse of a
    future manifest layout, because a silently misread provenance field
    would defeat the point of recording provenance at all.
    """
