"""Plain (projected) gradient descent — the simplest non-private reference."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from .._validation import check_dataset, check_positive, check_positive_int, check_vector
from ..losses.base import Loss


@dataclass
class GradientDescent:
    """Full-batch (projected) gradient descent.

    Parameters
    ----------
    projection:
        Optional feasibility map applied after each step.
    tol:
        Early-stop when the gradient ℓ2 norm falls below ``tol``.
    """

    loss: Loss
    learning_rate: float = 0.1
    n_iterations: int = 200
    projection: Optional[Callable[[np.ndarray], np.ndarray]] = None
    tol: float = 0.0
    record_history: bool = False

    def __post_init__(self) -> None:
        check_positive(self.learning_rate, "learning_rate")
        check_positive_int(self.n_iterations, "n_iterations")

    def fit(self, X: np.ndarray, y: np.ndarray,
            w0: Optional[np.ndarray] = None) -> np.ndarray:
        """Minimise the empirical risk; returns the final iterate."""
        X, y = check_dataset(X, y)
        d = X.shape[1]
        w = np.zeros(d) if w0 is None else check_vector(w0, "w0", dim=d).copy()
        if self.projection is not None:
            w = self.projection(w)
        iterates: List[np.ndarray] = [w.copy()]
        risks: List[float] = [self.loss.value(w, X, y)]
        for _ in range(self.n_iterations):
            gradient = self.loss.gradient(w, X, y)
            if self.tol > 0 and float(np.linalg.norm(gradient)) < self.tol:
                break
            w = w - self.learning_rate * gradient
            if self.projection is not None:
                w = self.projection(w)
            if self.record_history:
                iterates.append(w.copy())
                risks.append(self.loss.value(w, X, y))
        if self.record_history:
            self.iterates_ = iterates
            self.risks_ = risks
        return w


from ..losses.base import resolve_loss
from ..registry import SOLVERS


@SOLVERS.register("gradient_descent")
def _fit_gradient_descent(data, rng=None, *, loss="squared",
                          learning_rate: float = 0.1,
                          n_iterations: int = 200) -> np.ndarray:
    """Registry adapter: plain (non-private) gradient descent.

    ``rng`` is accepted for the common solver signature and ignored.
    """
    solver = GradientDescent(resolve_loss(loss), learning_rate=learning_rate,
                             n_iterations=n_iterations)
    return solver.fit(data.features, data.labels)
