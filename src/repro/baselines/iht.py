"""Non-private iterative hard thresholding (Jain, Tewari, Kar 2014).

The non-private reference for Algorithms 3 and 5: full-batch gradient
descent followed by projection onto the ℓ0 ball.  The sparse benches
use it both as the "non-private" series and to compute a near-optimal
``w*`` on finite data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .._validation import check_dataset, check_positive, check_positive_int, check_vector
from ..geometry.projections import hard_threshold, project_l2_ball
from ..losses.base import Loss


@dataclass
class IterativeHardThresholding:
    """Full-batch IHT: ``w <- H_s(w - eta * grad L(w))``.

    Parameters
    ----------
    sparsity:
        The projection sparsity ``s``.
    project_radius:
        Optional ℓ2-ball radius applied after thresholding (``None``
        disables the projection; Algorithm 3's analysis keeps iterates in
        the unit ball).
    """

    loss: Loss
    sparsity: int
    learning_rate: float = 0.5
    n_iterations: int = 100
    project_radius: Optional[float] = None
    record_history: bool = False

    def __post_init__(self) -> None:
        check_positive_int(self.sparsity, "sparsity")
        check_positive(self.learning_rate, "learning_rate")
        check_positive_int(self.n_iterations, "n_iterations")

    def fit(self, X: np.ndarray, y: np.ndarray,
            w0: Optional[np.ndarray] = None) -> np.ndarray:
        """Minimise the empirical risk over the ℓ0 ball."""
        X, y = check_dataset(X, y)
        d = X.shape[1]
        w = np.zeros(d) if w0 is None else check_vector(w0, "w0", dim=d).copy()
        w = hard_threshold(w, self.sparsity)
        iterates: List[np.ndarray] = [w.copy()]
        risks: List[float] = [self.loss.value(w, X, y)]
        for _ in range(self.n_iterations):
            gradient = self.loss.gradient(w, X, y)
            w = hard_threshold(w - self.learning_rate * gradient, self.sparsity)
            if self.project_radius is not None:
                w = project_l2_ball(w, self.project_radius)
            if self.record_history:
                iterates.append(w.copy())
                risks.append(self.loss.value(w, X, y))
        if self.record_history:
            self.iterates_ = iterates
            self.risks_ = risks
        return w


from ..losses.base import resolve_loss
from ..registry import SOLVERS


@SOLVERS.register("iht")
def _fit_iht(data, rng=None, *, loss="squared", sparsity: int,
             learning_rate: float = 0.5, n_iterations: int = 100,
             project_radius: Optional[float] = None) -> np.ndarray:
    """Registry adapter: non-private iterative hard thresholding.

    ``rng`` is accepted for the common solver signature and ignored.
    """
    solver = IterativeHardThresholding(
        resolve_loss(loss), sparsity=sparsity, learning_rate=learning_rate,
        n_iterations=n_iterations, project_radius=project_radius)
    return solver.fit(data.features, data.labels)
