"""Baselines: non-private references and the regular-data DP methods.

The paper's figures compare Heavy-tailed DP-FW / DP-IHT against
non-private Frank–Wolfe and IHT; the ablations additionally compare
against the regular-data DP-FW of Talwar et al. (clipped gradients) and
gradient-clipping DP-SGD (Abadi et al.), the approaches the introduction
argues break down on heavy tails.
"""

from .dp_fw_regular import RegularDPFrankWolfe
from .dp_sgd import DPSGD
from .frank_wolfe import FrankWolfe
from .gradient_descent import GradientDescent
from .iht import IterativeHardThresholding

__all__ = [
    "DPSGD",
    "FrankWolfe",
    "GradientDescent",
    "IterativeHardThresholding",
    "RegularDPFrankWolfe",
]
