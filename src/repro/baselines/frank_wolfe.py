"""Non-private Frank–Wolfe (Jaggi 2013).

Serves two roles in the reproduction:

* the *non-private reference curve* in Figures 1(c), 2(c), 5(c), 6(c);
* the solver the paper uses to compute ``w* = argmin_W L(w)`` on the
  real-data experiments ("we use the non-private Frank-Wolfe algorithm
  to get the optimal parameter" — Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .._validation import check_dataset, check_positive_int, check_vector
from ..geometry.polytope import Polytope
from ..losses.base import Loss
from ..core.hyperparams import classic_fw_steps


@dataclass
class FrankWolfe:
    """Deterministic Frank–Wolfe over a vertex polytope.

    Parameters
    ----------
    loss, polytope:
        Objective and constraint set.
    n_iterations:
        Iteration count ``T``; the classic ``2/(t+2)`` step schedule
        gives the standard ``O(1/T)`` primal rate for smooth convex
        losses.
    """

    loss: Loss
    polytope: Polytope
    n_iterations: int = 100
    record_history: bool = False

    def __post_init__(self) -> None:
        check_positive_int(self.n_iterations, "n_iterations")

    def fit(self, X: np.ndarray, y: np.ndarray,
            w0: Optional[np.ndarray] = None) -> np.ndarray:
        """Minimise the empirical risk; returns the final iterate.

        When ``record_history`` is set, the iterate path is stored on
        ``self.iterates_`` and risks on ``self.risks_``.
        """
        X, y = check_dataset(X, y)
        d = X.shape[1]
        w = (self.polytope.initial_point() if w0 is None
             else check_vector(w0, "w0", dim=d).copy())
        steps = classic_fw_steps(self.n_iterations)
        iterates: List[np.ndarray] = [w.copy()]
        risks: List[float] = [self.loss.value(w, X, y)]
        for t in range(self.n_iterations):
            gradient = self.loss.gradient(w, X, y)
            _, vertex = self.polytope.linear_minimizer(gradient)
            w = (1.0 - steps[t]) * w + steps[t] * vertex
            if self.record_history:
                iterates.append(w.copy())
                risks.append(self.loss.value(w, X, y))
        if self.record_history:
            self.iterates_ = iterates
            self.risks_ = risks
        return w


from ..geometry.polytope import L1Ball
from ..losses.base import resolve_loss
from ..registry import SOLVERS


@SOLVERS.register("frank_wolfe")
def _fit_frank_wolfe(data, rng=None, *, loss="squared",
                     n_iterations: int = 100,
                     l1_radius: float = 1.0) -> np.ndarray:
    """Registry adapter: non-private Frank–Wolfe on the ℓ1 ball.

    ``rng`` is accepted for the common solver signature and ignored —
    the method is deterministic.
    """
    solver = FrankWolfe(resolve_loss(loss),
                        L1Ball(data.dimension, radius=l1_radius),
                        n_iterations=n_iterations)
    return solver.fit(data.features, data.labels)
