"""DP Frank–Wolfe for regular (bounded-gradient) data — Talwar et al. 2015.

The method the paper generalises: assumes the loss is ℓ1-Lipschitz (its
gradient has bounded ℓ∞ norm, enforced here by clipping per-sample
gradients entry-wise at ``lipschitz_bound``) and selects Frank–Wolfe
vertices with the exponential mechanism at per-iteration budget
``eps / (2 sqrt(2 T log(1/delta)))`` over the *full* dataset, composing
by the advanced composition theorem.

On heavy-tailed data the clipping bound is either violated (breaking the
DP guarantee) or must be set so large that the mechanism's noise swamps
the signal — the failure mode motivating the paper.  The ablation bench
``test_ablation_catoni_vs_clipping`` measures this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .._validation import check_dataset, check_positive, check_vector
from ..core.hyperparams import classic_fw_steps
from ..core.result import FitResult
from ..geometry.polytope import Polytope
from ..losses.base import Loss
from ..privacy.accountant import PrivacyAccountant
from ..privacy.budget import PrivacyBudget
from ..privacy.mechanisms import ExponentialMechanism
from ..rng import SeedLike, ensure_rng


@dataclass
class RegularDPFrankWolfe:
    """(ε, δ)-DP Frank–Wolfe with entry-wise gradient clipping.

    Parameters
    ----------
    lipschitz_bound:
        Entry-wise clip level ``L``: per-sample gradients are clipped to
        ``[-L, L]`` per coordinate, making the score sensitivity
        ``||W||_1 * L / n`` regardless of the data's tails.
    """

    loss: Loss
    polytope: Polytope
    epsilon: float
    delta: float
    lipschitz_bound: float = 1.0
    n_iterations: int = 50
    record_history: bool = False

    def __post_init__(self) -> None:
        check_positive(self.epsilon, "epsilon")
        check_positive(self.delta, "delta")
        check_positive(self.lipschitz_bound, "lipschitz_bound")

    def fit(self, X: np.ndarray, y: np.ndarray,
            w0: Optional[np.ndarray] = None, rng: SeedLike = None) -> FitResult:
        """Run clipped DP-FW on ``(X, y)``."""
        X, y = check_dataset(X, y)
        n, d = X.shape
        rng = ensure_rng(rng)
        T = self.n_iterations
        steps = classic_fw_steps(T)
        eps_step = self.epsilon / (2.0 * math.sqrt(2.0 * T * math.log(1.0 / self.delta)))
        diameter = self.polytope.l1_diameter()
        # One sample change moves the clipped mean gradient by at most
        # 2L/n per coordinate, hence the score by diameter * L / n
        # (||v||_1 <= diameter/2 and the gradient gap is <= 2L/n).
        sensitivity = diameter * self.lipschitz_bound / n
        mechanism = ExponentialMechanism(epsilon=eps_step, sensitivity=sensitivity)

        accountant = PrivacyAccountant()
        accountant.spend(PrivacyBudget(self.epsilon, self.delta), "exponential",
                         note=f"advanced composition over {T} iterations")

        w = (self.polytope.initial_point() if w0 is None
             else check_vector(w0, "w0", dim=d).copy())
        iterates: List[np.ndarray] = [w.copy()] if self.record_history else []
        risks: List[float] = [self.loss.value(w, X, y)] if self.record_history else []
        for t in range(T):
            grads = self.loss.per_sample_gradients(w, X, y)
            clipped = np.clip(grads, -self.lipschitz_bound, self.lipschitz_bound)
            g_bar = clipped.mean(axis=0)
            scores = self.polytope.vertex_scores(g_bar)
            index = mechanism.select(scores, rng=rng)
            vertex = self.polytope.vertex(index)
            w = (1.0 - steps[t]) * w + steps[t] * vertex
            if self.record_history:
                iterates.append(w.copy())
                risks.append(self.loss.value(w, X, y))

        return FitResult(
            w=w, n_iterations=T, accountant=accountant,
            advertised_budget=PrivacyBudget(self.epsilon, self.delta),
            iterates=iterates, risks=risks,
            metadata={"algorithm": "regular_dp_fw",
                      "lipschitz_bound": self.lipschitz_bound,
                      "per_iteration_epsilon": eps_step},
        )


from ..geometry.polytope import L1Ball
from ..losses.base import resolve_loss
from ..registry import SOLVERS


@SOLVERS.register("regular_dp_fw")
def _fit_regular_dp_fw(data, rng: SeedLike = None, *, loss="squared",
                       epsilon: float = 1.0, delta: float = 1e-5,
                       lipschitz_bound: float = 1.0, n_iterations: int = 50,
                       l1_radius: float = 1.0) -> np.ndarray:
    """Registry adapter: clipped-gradient DP Frank–Wolfe (Talwar et al.)."""
    solver = RegularDPFrankWolfe(
        resolve_loss(loss), L1Ball(data.dimension, radius=l1_radius),
        epsilon=epsilon, delta=delta, lipschitz_bound=lipschitz_bound,
        n_iterations=n_iterations)
    return solver.fit(data.features, data.labels, rng=rng).w
