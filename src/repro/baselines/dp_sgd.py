"""Gradient-clipping DP-SGD (Abadi et al. 2016).

The introduction's "one potential approach is truncating or trimming the
gradient, such as in [1]. However, there is no existing convergence
result based on their algorithm" — we implement it as an honest
comparator: per-sample ℓ2 gradient clipping, Gaussian noise calibrated
by advanced composition over the iterations, optional projection onto a
constraint set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from .._validation import check_dataset, check_positive, check_positive_int, check_vector
from ..core.result import FitResult
from ..estimators.truncation import clip_l2
from ..losses.base import Loss
from ..privacy.accountant import PrivacyAccountant
from ..privacy.budget import PrivacyBudget
from ..rng import SeedLike, ensure_rng


@dataclass
class DPSGD:
    """(ε, δ)-DP projected SGD with per-sample ℓ2 gradient clipping.

    Parameters
    ----------
    clip_norm:
        Per-sample gradient clip ``C``; the batch mean gradient then has
        ℓ2 sensitivity ``2C / batch_size``.
    projection:
        Optional feasibility map applied after every step (e.g.
        ``lambda w: project_l1_ball(w, 1.0)``).
    batch_size:
        ``None`` runs full-batch gradient descent.
    """

    loss: Loss
    epsilon: float
    delta: float
    clip_norm: float = 1.0
    learning_rate: float = 0.1
    n_iterations: int = 50
    batch_size: Optional[int] = None
    projection: Optional[Callable[[np.ndarray], np.ndarray]] = None
    record_history: bool = False

    def __post_init__(self) -> None:
        check_positive(self.epsilon, "epsilon")
        check_positive(self.delta, "delta")
        check_positive(self.clip_norm, "clip_norm")
        check_positive(self.learning_rate, "learning_rate")
        check_positive_int(self.n_iterations, "n_iterations")

    def noise_multiplier(self) -> float:
        """Gaussian sigma (relative to sensitivity) from advanced composition.

        Each of the ``T`` steps runs the Gaussian mechanism at
        ``eps' = eps / (2 sqrt(2 T log(2/delta)))`` and
        ``delta' = delta / (2T)`` so the composed guarantee is
        ``(eps, delta)``.
        """
        T = self.n_iterations
        eps_step = self.epsilon / (2.0 * math.sqrt(2.0 * T * math.log(2.0 / self.delta)))
        delta_step = self.delta / (2.0 * T)
        return math.sqrt(2.0 * math.log(1.25 / delta_step)) / eps_step

    def fit(self, X: np.ndarray, y: np.ndarray,
            w0: Optional[np.ndarray] = None, rng: SeedLike = None) -> FitResult:
        """Run DP-SGD on ``(X, y)``."""
        X, y = check_dataset(X, y)
        n, d = X.shape
        rng = ensure_rng(rng)
        w = np.zeros(d) if w0 is None else check_vector(w0, "w0", dim=d).copy()
        if self.projection is not None:
            w = self.projection(w)
        batch = n if self.batch_size is None else min(self.batch_size, n)
        sigma_rel = self.noise_multiplier()
        sensitivity = 2.0 * self.clip_norm / batch
        sigma = sigma_rel * sensitivity

        accountant = PrivacyAccountant()
        accountant.spend(PrivacyBudget(self.epsilon, self.delta), "gaussian",
                         note=f"advanced composition over {self.n_iterations} steps")

        iterates: List[np.ndarray] = [w.copy()] if self.record_history else []
        risks: List[float] = [self.loss.value(w, X, y)] if self.record_history else []
        for _ in range(self.n_iterations):
            idx = rng.choice(n, size=batch, replace=False) if batch < n else np.arange(n)
            grads = self.loss.per_sample_gradients(w, X[idx], y[idx])
            clipped = clip_l2(grads, self.clip_norm)
            noisy_grad = clipped.mean(axis=0) + rng.normal(scale=sigma, size=d)
            w = w - self.learning_rate * noisy_grad
            if self.projection is not None:
                w = self.projection(w)
            if self.record_history:
                iterates.append(w.copy())
                risks.append(self.loss.value(w, X, y))

        return FitResult(
            w=w, n_iterations=self.n_iterations, accountant=accountant,
            advertised_budget=PrivacyBudget(self.epsilon, self.delta),
            iterates=iterates, risks=risks,
            metadata={"algorithm": "dp_sgd", "clip_norm": self.clip_norm,
                      "sigma": sigma},
        )


from ..geometry.projections import project_l1_ball
from ..losses.base import resolve_loss
from ..registry import SOLVERS


@SOLVERS.register("dp_sgd")
def _fit_dp_sgd(data, rng: SeedLike = None, *, loss="squared",
                epsilon: float = 1.0, delta: float = 1e-5,
                clip_norm: float = 1.0, learning_rate: float = 0.1,
                n_iterations: int = 50, batch_size: Optional[int] = None,
                l1_radius: Optional[float] = None) -> np.ndarray:
    """Registry adapter: gradient-clipping DP-SGD (Abadi et al.).

    ``l1_radius`` (when given) adds per-step projection onto the ℓ1
    ball, matching the constrained experiments of the ablations.
    """
    projection = (None if l1_radius is None
                  else lambda v: project_l1_ball(v, l1_radius))
    solver = DPSGD(resolve_loss(loss), epsilon=epsilon, delta=delta,
                   clip_norm=clip_norm, learning_rate=learning_rate,
                   n_iterations=n_iterations, batch_size=batch_size,
                   projection=projection)
    return solver.fit(data.features, data.labels, rng=rng).w
