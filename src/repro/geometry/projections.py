"""Euclidean projections and sparse projections.

The paper's algorithms need three projections:

* ℓ2 ball — step 7 of Algorithm 3 (``Pi_W`` onto the unit ball);
* ℓ1 ball — used to generate feasible ``w*`` and initial points for the
  polytope experiments (Duchi-Shalev-Shwartz-Singer-Chandra algorithm);
* ℓ0 "projection" (hard thresholding) — the non-private reference for
  the Peeling step, and the non-private IHT baseline.

All functions return fresh arrays and never modify their input.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_non_negative, check_positive, check_vector


def project_l2_ball(point: np.ndarray, radius: float = 1.0) -> np.ndarray:
    """Euclidean projection onto ``{w : ||w||_2 <= radius}``."""
    check_positive(radius, "radius")
    w = check_vector(point, "point")
    norm = float(np.linalg.norm(w))
    if norm <= radius:
        return w.copy()
    return w * (radius / norm)


def project_l1_ball(point: np.ndarray, radius: float = 1.0) -> np.ndarray:
    """Euclidean projection onto ``{w : ||w||_1 <= radius}``.

    Implements the ``O(d log d)`` sort-based algorithm of Duchi et al.
    (2008): project ``|w|`` onto the simplex of radius ``radius`` and
    restore signs.
    """
    check_positive(radius, "radius")
    w = check_vector(point, "point")
    if np.abs(w).sum() <= radius:
        return w.copy()
    return np.sign(w) * project_simplex(np.abs(w), radius)


def project_simplex(point: np.ndarray, radius: float = 1.0) -> np.ndarray:
    """Euclidean projection onto ``{w >= 0 : sum w = radius}``."""
    check_positive(radius, "radius")
    v = check_vector(point, "point")
    u = np.sort(v)[::-1]
    cumulative = np.cumsum(u) - radius
    indices = np.arange(1, v.size + 1)
    mask = u - cumulative / indices > 0
    if not mask.any():
        # All mass at a single coordinate (can only happen via numerics).
        out = np.zeros_like(v)
        out[int(np.argmax(v))] = radius
        return out
    rho = int(np.nonzero(mask)[0][-1])
    theta = cumulative[rho] / (rho + 1.0)
    return np.maximum(v - theta, 0.0)


def hard_threshold(point: np.ndarray, sparsity: int) -> np.ndarray:
    """Keep the ``sparsity`` largest-magnitude entries, zero the rest.

    This is the Euclidean projection onto the (non-convex) ℓ0 ball
    ``{w : ||w||_0 <= s}`` — the non-private counterpart of Peeling.
    Ties are broken by (stable) index order, matching ``argpartition``.
    """
    w = check_vector(point, "point")
    if sparsity < 0 or int(sparsity) != sparsity:
        raise ValueError(f"sparsity must be a non-negative integer, got {sparsity!r}")
    s = int(sparsity)
    if s == 0:
        return np.zeros_like(w)
    if s >= w.size:
        return w.copy()
    keep = np.argpartition(np.abs(w), w.size - s)[w.size - s:]
    out = np.zeros_like(w)
    out[keep] = w[keep]
    return out


def support(point: np.ndarray, *, tol: float = 0.0) -> np.ndarray:
    """Indices of the (numerically) non-zero coordinates of ``point``."""
    w = check_vector(point, "point")
    check_non_negative(tol, "tol")
    return np.nonzero(np.abs(w) > tol)[0]


def restrict_to_support(point: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Zero every coordinate of ``point`` outside ``indices`` (``v_S`` in the paper)."""
    w = check_vector(point, "point")
    idx = np.asarray(indices, dtype=int)
    if idx.size and (idx.min() < 0 or idx.max() >= w.size):
        raise IndexError("support indices out of range")
    out = np.zeros_like(w)
    out[idx] = w[idx]
    return out
