"""Constraint-set substrate: polytopes, linear oracles, projections."""

from .polytope import Hypercube, L1Ball, Polytope, Simplex, hypercube
from .projections import (
    hard_threshold,
    project_l1_ball,
    project_l2_ball,
    project_simplex,
    restrict_to_support,
    support,
)

__all__ = [
    "Hypercube",
    "L1Ball",
    "Polytope",
    "Simplex",
    "hard_threshold",
    "hypercube",
    "project_l1_ball",
    "project_l2_ball",
    "project_simplex",
    "restrict_to_support",
    "support",
]
