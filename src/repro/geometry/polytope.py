"""Vertex-represented polytopes and linear minimisation oracles.

Frank–Wolfe methods (Algorithms 1 and 2 of the paper) only interact with
the constraint set through two operations: enumerate its vertices (the
candidate set of the exponential mechanism) and minimise a linear
function over it.  A :class:`Polytope` packages both, together with the
ℓ1 diameter ``||W||_1`` that appears in every sensitivity bound.

For the ℓ1 ball and the simplex the vertex sets are structured
(``±e_j`` and ``e_j``), so :class:`L1Ball` and :class:`Simplex` avoid
materialising a dense vertex matrix and score vertices directly from the
gradient — the ``O(d)`` trick that makes the high-dimensional
experiments feasible.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .._validation import check_matrix, check_positive, check_positive_int, check_vector


class Polytope:
    """A polytope given as the convex hull of an explicit vertex matrix.

    Parameters
    ----------
    vertices:
        ``(n_vertices, d)`` array; the constraint set is its convex hull.
    """

    def __init__(self, vertices: np.ndarray):
        self._vertices = check_matrix(vertices, "vertices")
        if self._vertices.shape[0] == 0:
            raise ValueError("a polytope needs at least one vertex")

    @property
    def dimension(self) -> int:
        """Ambient dimension ``d``."""
        return self._vertices.shape[1]

    @property
    def n_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return self._vertices.shape[0]

    @property
    def vertices(self) -> np.ndarray:
        """A read-only view of the vertex matrix."""
        view = self._vertices.view()
        view.flags.writeable = False
        return view

    def vertex(self, index: int) -> np.ndarray:
        """Return vertex ``index`` as a fresh array."""
        return self._vertices[index].copy()

    def l1_diameter(self) -> float:
        """``max_{u,v in V} ||u - v||_1`` — the ``||W||_1`` of the paper.

        Computed over vertices, which is exact because the ℓ1 norm is
        convex and therefore maximised at extreme points.
        """
        V = self._vertices
        if V.shape[0] == 1:
            return 0.0
        diffs = np.abs(V[:, None, :] - V[None, :, :]).sum(axis=2)
        return float(diffs.max())

    def vertex_scores(self, gradient: np.ndarray) -> np.ndarray:
        """Scores ``u(v) = -<v, g>`` for every vertex (Algorithm 1 step 6)."""
        g = check_vector(gradient, "gradient", dim=self.dimension)
        return -self._vertices @ g

    def linear_minimizer(self, gradient: np.ndarray) -> Tuple[int, np.ndarray]:
        """Exact linear minimisation oracle: ``argmin_{v in V} <v, g>``."""
        scores = self.vertex_scores(gradient)
        index = int(np.argmax(scores))
        return index, self.vertex(index)

    def initial_point(self) -> np.ndarray:
        """A canonical feasible starting point (the vertex centroid)."""
        return self._vertices.mean(axis=0)

    def contains(self, point: np.ndarray, *, tol: float = 1e-8) -> bool:
        """Membership test by solving the convex-combination least squares.

        Exact for the structured subclasses (which override it); for a
        generic vertex polytope we solve a small nonnegative least squares
        via scipy and check the residual.
        """
        from scipy.optimize import nnls

        p = check_vector(point, "point", dim=self.dimension)
        # Augment with the sum-to-one constraint: find lambda >= 0 with
        # V^T lambda = p, 1^T lambda = 1.
        A = np.vstack([self._vertices.T, np.ones(self.n_vertices)])
        b = np.concatenate([p, [1.0]])
        _, residual = nnls(A, b)
        return bool(residual <= tol * max(1.0, float(np.linalg.norm(b))))


class L1Ball(Polytope):
    """The scaled ℓ1 ball ``{w : ||w||_1 <= radius}``.

    Vertices are ``±radius * e_j``; scoring and minimisation run in
    ``O(d)`` without materialising the ``2d x d`` vertex matrix.
    Vertex indices are laid out as ``j`` for ``+radius*e_j`` and
    ``d + j`` for ``-radius*e_j``.
    """

    def __init__(self, dimension: int, radius: float = 1.0):
        self._dim = check_positive_int(dimension, "dimension")
        self._radius = check_positive(radius, "radius")

    @property
    def dimension(self) -> int:
        return self._dim

    @property
    def radius(self) -> float:
        """The ℓ1 radius of the ball."""
        return self._radius

    @property
    def n_vertices(self) -> int:
        return 2 * self._dim

    @property
    def vertices(self) -> np.ndarray:
        eye = np.eye(self._dim)
        return np.vstack([self._radius * eye, -self._radius * eye])

    def vertex(self, index: int) -> np.ndarray:
        if not 0 <= index < 2 * self._dim:
            raise IndexError(f"vertex index {index} out of range [0, {2 * self._dim})")
        v = np.zeros(self._dim)
        if index < self._dim:
            v[index] = self._radius
        else:
            v[index - self._dim] = -self._radius
        return v

    def l1_diameter(self) -> float:
        return 2.0 * self._radius

    def vertex_scores(self, gradient: np.ndarray) -> np.ndarray:
        g = check_vector(gradient, "gradient", dim=self._dim)
        return np.concatenate([-self._radius * g, self._radius * g])

    def linear_minimizer(self, gradient: np.ndarray) -> Tuple[int, np.ndarray]:
        g = check_vector(gradient, "gradient", dim=self._dim)
        j = int(np.argmax(np.abs(g)))
        index = j + self._dim if g[j] > 0 else j
        return index, self.vertex(index)

    def initial_point(self) -> np.ndarray:
        """The origin — the centre of the ℓ1 ball."""
        return np.zeros(self._dim)

    def contains(self, point: np.ndarray, *, tol: float = 1e-8) -> bool:
        p = check_vector(point, "point", dim=self._dim)
        return bool(np.abs(p).sum() <= self._radius * (1 + tol))


class Simplex(Polytope):
    """The scaled probability simplex ``{w >= 0 : sum w = radius}``.

    Vertices are ``radius * e_j``.
    """

    def __init__(self, dimension: int, radius: float = 1.0):
        self._dim = check_positive_int(dimension, "dimension")
        self._radius = check_positive(radius, "radius")

    @property
    def dimension(self) -> int:
        return self._dim

    @property
    def radius(self) -> float:
        """The common coordinate sum of all points in the simplex."""
        return self._radius

    @property
    def n_vertices(self) -> int:
        return self._dim

    @property
    def vertices(self) -> np.ndarray:
        return self._radius * np.eye(self._dim)

    def vertex(self, index: int) -> np.ndarray:
        if not 0 <= index < self._dim:
            raise IndexError(f"vertex index {index} out of range [0, {self._dim})")
        v = np.zeros(self._dim)
        v[index] = self._radius
        return v

    def l1_diameter(self) -> float:
        if self._dim == 1:
            return 0.0
        return 2.0 * self._radius

    def vertex_scores(self, gradient: np.ndarray) -> np.ndarray:
        g = check_vector(gradient, "gradient", dim=self._dim)
        return -self._radius * g

    def linear_minimizer(self, gradient: np.ndarray) -> Tuple[int, np.ndarray]:
        g = check_vector(gradient, "gradient", dim=self._dim)
        index = int(np.argmin(g))
        return index, self.vertex(index)

    def initial_point(self) -> np.ndarray:
        """The barycentre ``radius/d * (1, ..., 1)``."""
        return np.full(self._dim, self._radius / self._dim)

    def contains(self, point: np.ndarray, *, tol: float = 1e-8) -> bool:
        p = check_vector(point, "point", dim=self._dim)
        non_negative = bool(np.all(p >= -tol * self._radius))
        sums = abs(float(p.sum()) - self._radius) <= tol * max(1.0, self._radius)
        return non_negative and sums


class Hypercube(Polytope):
    """The ℓ∞ ball ``[-radius, radius]^d`` as a lazy vertex polytope.

    Vertex ``m`` has coordinate ``j`` equal to ``+radius`` when bit
    ``j`` of ``m`` is set and ``-radius`` otherwise — the same layout
    (and the same float values) as the nested-comprehension
    construction this class replaced, but built by a vectorized numpy
    bit-pattern expansion, and only on demand: :meth:`vertex_scores`,
    :meth:`vertex`, ``dimension`` and ``n_vertices`` never materialize
    the ``2^d x d`` vertex matrix at all.  Generic :class:`Polytope`
    operations that genuinely need the matrix (``l1_diameter``,
    ``contains``, ...) trigger a one-time cached construction.
    """

    def __init__(self, dimension: int, radius: float = 1.0):
        check_positive_int(dimension, "dimension")
        check_positive(radius, "radius")
        if dimension > 16:
            raise ValueError(
                "hypercube vertex enumeration is limited to d <= 16")
        self._dim = dimension
        self._radius = float(radius)
        self._corner_cache: np.ndarray = None  # type: ignore[assignment]

    @property
    def dimension(self) -> int:
        return self._dim

    @property
    def n_vertices(self) -> int:
        return 2 ** self._dim

    @property
    def _vertices(self) -> np.ndarray:
        """The dense corner matrix, built on first use and cached."""
        if self._corner_cache is None:
            masks = np.arange(2 ** self._dim)[:, None]
            bits = (masks >> np.arange(self._dim)) & 1
            self._corner_cache = np.where(bits == 1, self._radius,
                                          -self._radius)
        return self._corner_cache

    def vertex(self, index: int) -> np.ndarray:
        if not 0 <= index < 2 ** self._dim:
            raise IndexError(
                f"vertex index {index} out of range [0, {2 ** self._dim})")
        bits = (index >> np.arange(self._dim)) & 1
        return np.where(bits == 1, self._radius, -self._radius)

    def vertex_scores(self, gradient: np.ndarray) -> np.ndarray:
        """Scores ``-<v, g>`` for all ``2^d`` corners, matrix-free.

        Accumulates each coordinate's two possible contributions
        (``±radius * g_j``) along its own axis of a ``(2,) * d`` tensor
        and flattens — ``O(d 2^d)`` work and ``O(2^d)`` memory instead
        of the ``O(2^d x d)`` dense score product.  Axis ``d - 1 - j``
        carries bit ``j`` so the flattened order matches the vertex
        index layout.
        """
        g = check_vector(gradient, "gradient", dim=self._dim)
        scores = np.zeros((2,) * self._dim)
        for j in range(self._dim):
            shape = [1] * self._dim
            shape[self._dim - 1 - j] = 2
            contrib = np.array([self._radius * g[j], -self._radius * g[j]])
            scores = scores + contrib.reshape(shape)
        return scores.reshape(-1)


def hypercube(dimension: int, radius: float = 1.0) -> Polytope:
    """The ℓ∞ ball ``[-radius, radius]^d`` as an explicit vertex polytope.

    Only sensible for small ``d`` (``2^d`` vertices); used in tests and
    as an example of a generic polytope constraint.  Returns a
    :class:`Hypercube`, whose corner matrix is constructed lazily from
    numpy bit patterns and whose ``vertex_scores`` never materializes
    it.
    """
    return Hypercube(dimension, radius)
