"""Name registries: solvers, losses, distributions, datasets, metrics.

Every component an experiment references — the solver it fits, the loss
it optimises, the distribution its data is drawn from, the metric it
reports — is *addressable data*: registered under a short stable name
and resolved through a :class:`Registry`.  This is what lets a new
paper variant be a declarative spec (:mod:`repro.evaluation.spec`) or a
catalog entry (:mod:`repro.experiments.catalog`) instead of a code
change, and what lets the CLI (``python -m repro list``) enumerate the
system.

Resolution is strict in both directions:

* registering a name twice raises :class:`RegistryCollisionError`
  naming the existing entry — silent shadowing would make the meaning
  of a spec depend on import order;
* looking up an unknown name raises :class:`UnknownNameError` listing
  every registered entry (with close-match suggestions), so a typo in
  a spec file fails with the menu, not a bare ``KeyError``.

Registries populate lazily: each one knows the modules whose import
registers its entries, and imports them on first use.  Plain
``SOLVERS.get("dp_sgd")`` therefore works without the caller having
imported :mod:`repro.baselines` first, and no import cycles arise
(this module imports nothing from the package at import time).
"""

from __future__ import annotations

import difflib
import importlib
from typing import Callable, Dict, Iterator, Optional, Sequence, Tuple


class RegistryError(Exception):
    """Base class for registry failures."""


class RegistryCollisionError(RegistryError):
    """A name was registered twice in the same registry."""


class UnknownNameError(RegistryError, KeyError):
    """A lookup named no registered entry.

    Subclasses ``KeyError`` so code treating a registry as a mapping
    keeps working, but ``str()`` renders the helpful message (plain
    ``KeyError`` quotes its first argument).
    """

    def __str__(self) -> str:  # noqa: D105 (KeyError repr-quotes args)
        return self.args[0]


class Registry:
    """A named mapping from string keys to registered objects.

    Parameters
    ----------
    kind:
        Human-readable singular noun for error messages ("solver",
        "loss", ...).
    populate:
        Module names whose import registers this registry's built-in
        entries; imported once, on the first lookup or enumeration.
    """

    def __init__(self, kind: str, populate: Sequence[str] = ()):
        self.kind = kind
        self._entries: Dict[str, object] = {}
        self._populate_modules = tuple(populate)
        self._populated = not populate

    # -- registration -------------------------------------------------------

    def register(self, name: str, obj: Optional[object] = None):
        """Register ``obj`` under ``name``; usable as a decorator.

        ``@REG.register("name")`` above a function/class registers it
        and returns it unchanged; ``REG.register("name", obj)``
        registers an existing object.
        """
        if not isinstance(name, str) or not name:
            raise TypeError(f"{self.kind} name must be a non-empty string, "
                            f"got {name!r}")

        def _add(target: object) -> object:
            existing = self._entries.get(name)
            if existing is not None and existing is not target:
                raise RegistryCollisionError(
                    f"{self.kind} {name!r} is already registered "
                    f"(existing entry: {_describe(existing)}); pick a "
                    f"different name or remove the old registration")
            self._entries[name] = target
            return target

        if obj is None:
            return _add
        return _add(obj)

    # -- lookup -------------------------------------------------------------

    def _ensure_populated(self) -> None:
        if self._populated:
            return
        self._populated = True  # set first: the imports re-enter register()
        try:
            for module in self._populate_modules:
                importlib.import_module(module)
        except BaseException:
            # Leave the registry retryable: a half-populated menu after
            # a failed import would turn every later lookup into a
            # misleading UnknownNameError that masks the real problem.
            self._populated = False
            raise

    def get(self, name: str) -> object:
        """The entry registered under ``name``.

        Raises :class:`UnknownNameError` listing every available name —
        plus close matches for likely typos — when ``name`` is unknown.
        """
        self._ensure_populated()
        try:
            return self._entries[name]
        except KeyError:
            pass
        message = f"unknown {self.kind} {name!r}; available: " \
                  f"{', '.join(self.names()) or '(none registered)'}"
        suggestions = difflib.get_close_matches(str(name), self.names(), n=3)
        if suggestions:
            message += f". Did you mean: {', '.join(suggestions)}?"
        raise UnknownNameError(message)

    def names(self) -> Tuple[str, ...]:
        """All registered names, sorted."""
        self._ensure_populated()
        return tuple(sorted(self._entries))

    def items(self) -> Tuple[Tuple[str, object], ...]:
        """``(name, entry)`` pairs, sorted by name."""
        self._ensure_populated()
        return tuple((name, self._entries[name]) for name in self.names())

    def __contains__(self, name: object) -> bool:
        """Whether ``name`` is registered."""
        self._ensure_populated()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        """Iterate over registered names in sorted order."""
        return iter(self.names())

    def __len__(self) -> int:
        """Number of registered entries."""
        self._ensure_populated()
        return len(self._entries)

    def __repr__(self) -> str:
        """Stable repr naming the kind and the entry count."""
        state = (f"{len(self._entries)} entries" if self._populated
                 else "unpopulated")
        return f"Registry({self.kind!r}, {state})"


def _describe(obj: object) -> str:
    """A short, address-free description of a registered object."""
    name = getattr(obj, "__qualname__", None) or getattr(obj, "__name__", None)
    if name:
        return f"{getattr(obj, '__module__', '?')}.{name}"
    return type(obj).__name__


# ---------------------------------------------------------------------------
# The package's registries.  Each names the modules that register its
# built-in entries; `Registry` imports them lazily on first use.
# ---------------------------------------------------------------------------

#: Solver adapters: ``fit(data, rng, **kwargs) -> w`` (a parameter vector).
SOLVERS = Registry("solver", populate=(
    "repro.core.heavy_tailed_dp_fw",
    "repro.core.private_lasso",
    "repro.core.sparse_linear_regression",
    "repro.core.sparse_optimization",
    "repro.baselines.frank_wolfe",
    "repro.baselines.dp_fw_regular",
    "repro.baselines.dp_sgd",
    "repro.baselines.iht",
    "repro.baselines.gradient_descent",
))

#: Loss factories: ``factory(**kwargs) -> Loss`` instance.
LOSSES = Registry("loss", populate=(
    "repro.losses.squared",
    "repro.losses.logistic",
    "repro.losses.huber",
    "repro.losses.robust_regression",
    "repro.losses.regularized",
))

#: Samplers: ``sampler(rng, shape, **params) -> ndarray`` (heavy-tailed laws).
DISTRIBUTIONS = Registry("distribution", populate=(
    "repro.data.distributions",
))

#: Real-like dataset specs (the paper's four UCI stand-ins).
DATASETS = Registry("dataset", populate=(
    "repro.data.real_like",
))

#: Data generators: ``make(rng, **kwargs) -> RegressionData``.
DATA = Registry("data generator", populate=(
    "repro.data.synthetic",
    "repro.data.real_like",
))

#: Robust mean estimator factories: ``factory(**kwargs) -> estimator``.
ESTIMATORS = Registry("estimator", populate=(
    "repro.estimators.catoni",
    "repro.estimators.baseline_means",
    "repro.estimators.geometric_median",
    "repro.estimators.weak_moments",
))

#: Spec metrics: ``metric(w, data) -> float`` on a fitted parameter.
METRICS = Registry("metric", populate=(
    "repro.evaluation.metrics",
))

#: Catalog bench builders: ``build(full=False) -> BenchDef``.
CATALOG = Registry("catalog scenario", populate=(
    "repro.experiments.catalog",
))

#: Every component registry by section name, for `python -m repro list`.
ALL_REGISTRIES: Tuple[Tuple[str, Registry], ...] = (
    ("solvers", SOLVERS),
    ("losses", LOSSES),
    ("distributions", DISTRIBUTIONS),
    ("datasets", DATASETS),
    ("data generators", DATA),
    ("estimators", ESTIMATORS),
    ("metrics", METRICS),
)
