"""Lower-bound machinery: packings, hard instances, the private Fano bound."""

from .hard_instance import (
    HardInstance,
    lower_bound_rate,
    make_hard_family,
    paper_mixing_weight,
    private_fano_bound,
)
from .packing import (
    greedy_packing,
    hamming_distance,
    packing_lower_bound,
    random_sparse_sign_vector,
    verify_packing,
)

__all__ = [
    "HardInstance",
    "greedy_packing",
    "hamming_distance",
    "lower_bound_rate",
    "make_hard_family",
    "packing_lower_bound",
    "paper_mixing_weight",
    "private_fano_bound",
    "random_sparse_sign_vector",
    "verify_packing",
]
