"""Sparse sign-vector packings (Lemma 11 of the paper / Raskutti et al.).

The lower-bound proof needs a subset of

.. math:: H(s) = \\{z \\in \\{-1, 0, +1\\}^d : \\|z\\|_0 = s\\}

whose elements are pairwise at Hamming distance at least ``s/2``, of
cardinality ``exp((s/2) log((d - s)/(s/2)))``.  Lemma 11 proves such a
packing exists; we *construct* one greedily with rejection sampling,
which achieves the required separation and (for the sizes the
experiments use) a cardinality within the guaranteed bound.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from .._validation import check_positive_int
from ..rng import SeedLike, ensure_rng


def hamming_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Number of coordinates where the two sign vectors differ."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError("vectors must have matching shapes")
    return int(np.count_nonzero(a != b))


def packing_lower_bound(dimension: int, sparsity: int) -> float:
    """Lemma 11 cardinality guarantee ``exp((s/2) log((d-s)/(s/2)))``."""
    check_positive_int(dimension, "dimension")
    check_positive_int(sparsity, "sparsity")
    if sparsity >= dimension:
        raise ValueError("need sparsity < dimension")
    return math.exp(sparsity / 2.0 * math.log((dimension - sparsity) / (sparsity / 2.0)))


def random_sparse_sign_vector(dimension: int, sparsity: int,
                              rng: np.random.Generator) -> np.ndarray:
    """Uniform draw from ``H(s)``: random support, random signs."""
    v = np.zeros(dimension, dtype=np.int8)
    support = rng.choice(dimension, size=sparsity, replace=False)
    v[support] = rng.choice(np.array([-1, 1], dtype=np.int8), size=sparsity)
    return v


def greedy_packing(dimension: int, sparsity: int, max_size: int = 64,
                   rng: SeedLike = None, max_rejections: int = 2000
                   ) -> np.ndarray:
    """Greedy construction of a ``>= s/2``-separated subset of ``H(s)``.

    Repeatedly draws uniform elements of ``H(s)`` and keeps those at
    Hamming distance at least ``s/2`` from everything kept so far,
    stopping after ``max_size`` successes or ``max_rejections``
    consecutive failures.

    Returns
    -------
    numpy.ndarray
        ``(n_kept, d)`` int8 matrix of sign vectors; ``n_kept >= 1``.
    """
    check_positive_int(dimension, "dimension")
    check_positive_int(sparsity, "sparsity")
    if sparsity > dimension:
        raise ValueError(f"sparsity {sparsity} exceeds dimension {dimension}")
    rng = ensure_rng(rng)
    required = sparsity / 2.0
    kept: List[np.ndarray] = [random_sparse_sign_vector(dimension, sparsity, rng)]
    rejections = 0
    while len(kept) < max_size and rejections < max_rejections:
        candidate = random_sparse_sign_vector(dimension, sparsity, rng)
        if all(hamming_distance(candidate, v) >= required for v in kept):
            kept.append(candidate)
            rejections = 0
        else:
            rejections += 1
    return np.stack(kept)


def verify_packing(vectors: np.ndarray, sparsity: int) -> bool:
    """Check the two packing invariants: exact sparsity and separation ``>= s/2``."""
    vectors = np.asarray(vectors)
    if vectors.ndim != 2:
        raise ValueError("vectors must be a 2-D array")
    if not np.all(np.count_nonzero(vectors, axis=1) == sparsity):
        return False
    n = vectors.shape[0]
    for i in range(n):
        for j in range(i + 1, n):
            if hamming_distance(vectors[i], vectors[j]) < sparsity / 2.0:
                return False
    return True
