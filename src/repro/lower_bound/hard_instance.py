"""The Theorem 9 hard-instance family and the private-Fano lower bound.

Theorem 9 lower-bounds the (ε, δ)-private minimax risk of sparse mean
estimation over the class ``P^{s*}_d(tau)`` (coordinate second moments
``<= tau``, ``s*``-sparse mean) by

.. math:: \\Omega\\Big(\\frac{\\tau \\min\\{s^* \\log d, \\log(1/\\delta)\\}}
          {n\\varepsilon}\\Big).

The construction mixes a point mass at the origin with point masses at
``sqrt(tau/p) * v / sqrt(2 s*)`` for packing vectors ``v``; Lemma 3
(Barber–Duchi) then converts packing separation into a minimax bound.
This module implements the family as actual samplers (so experiments can
*run* estimators on the hard instances), the bound itself, and the
paper's choice of the mixing weight ``p``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .._validation import check_positive, check_positive_int, check_probability
from ..rng import SeedLike, ensure_rng
from .packing import greedy_packing


@dataclass(frozen=True)
class HardInstance:
    """One member ``(1 - p) * delta_0 + p * delta_{theta_v / p}`` of the family.

    Attributes
    ----------
    spike:
        The point-mass location ``sqrt(tau / p) * v / sqrt(2 s*)``.
    mixing_weight:
        The contamination probability ``p``.
    mean:
        ``p * spike`` — the parameter ``theta_v`` an estimator must find.
    """

    spike: np.ndarray
    mixing_weight: float

    @property
    def mean(self) -> np.ndarray:
        """The distribution's mean ``theta_v = p * spike``."""
        return self.mixing_weight * self.spike

    def sample(self, n_samples: int, rng: SeedLike = None) -> np.ndarray:
        """Draw ``n`` i.i.d. samples: each row is 0 or ``spike``."""
        check_positive_int(n_samples, "n_samples")
        rng = ensure_rng(rng)
        picks = rng.uniform(size=n_samples) < self.mixing_weight
        out = np.zeros((n_samples, self.spike.size))
        out[picks] = self.spike
        return out

    def coordinate_second_moment(self) -> float:
        """``max_j E X_j^2 = p * max_j spike_j^2`` — must be ``<= tau``."""
        return float(self.mixing_weight * np.max(self.spike**2))


def paper_mixing_weight(n_samples: int, epsilon: float, delta: float,
                        dimension: int, sparsity: int) -> float:
    """The ``p`` of the Theorem 9 proof.

    .. math:: p = \\frac{1}{n\\varepsilon}\\min\\Big\\{
              \\frac{s}{2}\\log\\frac{d-s}{s/2} - \\varepsilon,\\;
              \\log\\frac{1 - e^{-\\varepsilon}}{4\\delta e^{\\varepsilon}}
              \\Big\\}

    clipped into ``(0, 1]`` (the clip only matters for tiny ``n``).
    """
    check_positive_int(n_samples, "n_samples")
    check_positive(epsilon, "epsilon")
    check_positive(delta, "delta")
    check_positive_int(dimension, "dimension")
    check_positive_int(sparsity, "sparsity")
    if sparsity >= dimension:
        raise ValueError("need sparsity < dimension")
    packing_term = sparsity / 2.0 * math.log((dimension - sparsity) / (sparsity / 2.0)) - epsilon
    delta_term = math.log(max((1.0 - math.exp(-epsilon)) / (4.0 * delta * math.exp(epsilon)),
                              1.0 + 1e-12))
    p = min(packing_term, delta_term) / (n_samples * epsilon)
    return float(min(max(p, 1e-12), 1.0))


def make_hard_family(dimension: int, sparsity: int, tau: float,
                     mixing_weight: float, max_size: int = 32,
                     rng: SeedLike = None) -> Tuple[list, np.ndarray]:
    """Build the indexed family ``{P_v}`` over a fresh packing.

    Returns the list of :class:`HardInstance` and the packing matrix.
    Each spike is ``sqrt(tau / p) * v / sqrt(2 s*)`` so every instance
    satisfies the moment constraint ``E X_j^2 <= tau / (2 s*) <= tau``
    and means are pairwise ``>= sqrt(2 p tau)`` apart (the ``rho*`` of
    the proof).
    """
    check_positive(tau, "tau")
    p = check_probability(mixing_weight, "mixing_weight", allow_zero=False)
    rng = ensure_rng(rng)
    packing = greedy_packing(dimension, sparsity, max_size=max_size, rng=rng)
    amplitude = math.sqrt(tau / p) / math.sqrt(2.0 * sparsity)
    instances = [HardInstance(spike=amplitude * v.astype(float), mixing_weight=p)
                 for v in packing]
    return instances, packing


def private_fano_bound(n_samples: int, epsilon: float, delta: float,
                       dimension: int, sparsity: int, tau: float) -> float:
    """Evaluate the Theorem 9 lower bound with its explicit constant.

    The proof shows the minimax risk is at least
    ``Phi(rho*) / 8 = (2 p tau) / 8 = p tau / 4`` with the paper's choice
    of the mixing weight ``p``, which expands to
    ``(tau / (4 n eps)) * min{(s/2) log((d-s)/(s/2)) - eps,
    log((1-e^-eps)/(4 delta e^eps))}``.
    """
    check_positive(tau, "tau")
    p = paper_mixing_weight(n_samples, epsilon, delta, dimension, sparsity)
    return tau * p / 4.0


def lower_bound_rate(n_samples: int, epsilon: float, delta: float,
                     dimension: int, sparsity: int, tau: float) -> float:
    """The headline rate ``tau * min{s* log d, log(1/delta)} / (n eps)``.

    A cleaner (constant-free) version of :func:`private_fano_bound` used
    when comparing the upper-bound algorithms' measured error against
    the information-theoretic floor.
    """
    check_positive(tau, "tau")
    check_positive(epsilon, "epsilon")
    check_positive(delta, "delta")
    numerator = tau * min(sparsity * math.log(dimension), math.log(1.0 / delta))
    return numerator / (n_samples * epsilon)
