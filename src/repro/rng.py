"""Random-number-generator plumbing.

Every stochastic component in the library accepts either a seed, an
existing :class:`numpy.random.Generator`, or ``None``; this module owns
the single normalisation function so the convention is applied uniformly.
No code in the package touches NumPy's legacy global RNG state.
"""

from __future__ import annotations

from typing import Iterator, Union

import numpy as np

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]

#: Root seeds the experiment engine accepts: these are the forms that can
#: be re-stated exactly in a fresh process, which the engine's
#: reproducibility and cache-key guarantees require.  (``None`` and
#: ``Generator`` are deliberately excluded and raise ``TypeError``.)
GridSeed = Union[int, np.random.SeedSequence]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int``, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from one seed.

    Used by the experiment runner so that repeated trials are independent
    yet fully reproducible from a single root seed.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        return [np.random.default_rng(s) for s in seed.bit_generator.seed_seq.spawn(n)]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def rng_stream(seed: SeedLike) -> Iterator[np.random.Generator]:
    """Yield an unbounded stream of independent generators from one seed."""
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    while True:
        (child,) = seq.spawn(1)
        yield np.random.default_rng(child)


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a fresh 63-bit integer seed from ``rng``.

    Handy when an algorithm needs to hand a child component a plain seed
    (for instance, to log it) while keeping the parent stream intact.
    """
    return int(rng.integers(0, 2**63 - 1))
