"""Scenario dataclasses behind every figure/ablation/extension bench.

Each class below is a frozen :class:`repro.evaluation.Scenario`
dataclass implementing the engine's point protocol

``scenario(series_value, sweep_value, rng) -> float``

with the experiment's remaining configuration (distributions, fixed
sizes, solver knobs) carried as dataclass fields.  As module-level
dataclasses they pickle by field (the process executor fans grids out
for real) and fingerprint by field + ``__call__`` bytecode (editing a
panel's code invalidates exactly its cached cells; see
``docs/engine.md``).

These classes used to live in ``benchmarks/_scenarios.py``; they moved
into the package so the named catalog (:mod:`repro.experiments.catalog`)
and the CLI (``python -m repro``) can address them without the bench
harness on ``sys.path``.  ``benchmarks/_scenarios.py`` remains as a
re-exporting shim.

Grouping: one class per experiment *family*, with a ``sweep`` field
selecting which variable the x-axis drives, so e.g. Figures 5 and 6
differ only in their ``features`` field and panels (a)/(b) of one
figure differ only in ``sweep``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro import (
    BiweightLoss,
    DistributionSpec,
    HeavyTailedDPFW,
    HeavyTailedPrivateLasso,
    HeavyTailedSparseLinearRegression,
    HeavyTailedSparseOptimizer,
    L1Ball,
    L2Regularized,
    LogisticLoss,
    SquaredLoss,
    l1_ball_truth,
    load_real_like,
    make_linear_data,
    make_logistic_data,
    sparse_truth,
)
from repro.baselines import DPSGD, FrankWolfe, RegularDPFrankWolfe
from repro.core import classic_fw_steps, dense_laplace_release, peeling
from repro.core.batched import (
    batch_fit_lasso,
    fast_fit_dpfw,
    fast_full_batch_fw,
)
from repro.estimators import CatoniEstimator, optimal_scale
from repro.evaluation import Scenario, batch_method
from repro.geometry import project_l1_ball
from repro.privacy import ExponentialMechanism

#: Stateless loss singletons shared by every scenario (as the benches'
#: module-level ``LOSS`` constants always were).
SQUARED = SquaredLoss()
LOGISTIC = LogisticLoss()


def _resolve_sparse_axes(scenario, x):
    """Pin two of (n, s*, ε) and let ``scenario.sweep`` drive the third.

    Shared by the sparse panels so the pinning semantics cannot drift
    between the linear and logistic families.
    """
    n, s_star, eps = scenario.n_fixed, scenario.s_fixed, scenario.eps_fixed
    if scenario.sweep == "epsilon":
        eps = x
    elif scenario.sweep == "n":
        n = x
    else:  # "s_star" (sweep fields are validated in __post_init__)
        s_star = x
    return n, s_star, eps


def _check_choice(scenario, field: str, allowed: tuple) -> None:
    """Fail fast on a mistyped mode field.

    The axis/solver dispatches below use ``if/elif/else`` chains; without
    this check a typo like ``sweep="eps"`` would silently take the last
    branch and emit a plausible-looking but wrong panel.
    """
    value = getattr(scenario, field)
    if value not in allowed:
        raise ValueError(
            f"{type(scenario).__name__}.{field} must be one of {allowed}, "
            f"got {value!r}")


def _l1_linear_data(n, d, features, noise, rng):
    """A linear dataset with an ℓ1-ball ``w*`` (Figures 1, 5, 6 recipe)."""
    return make_linear_data(n, l1_ball_truth(d, rng), features, noise,
                            rng=rng)


def _squared_excess(w, data):
    """Excess empirical squared risk against the planted ``w*``."""
    return (SQUARED.value(w, data.features, data.labels)
            - SQUARED.value(data.w_star, data.features, data.labels))


def _fit_l1_private(solver, data, eps, tau, delta, rng):
    """The private ℓ1-ball fit a panel compares: DP-FW or private Lasso."""
    if solver == "dpfw":
        model = HeavyTailedDPFW(SQUARED, L1Ball(data.dimension), epsilon=eps,
                                tau=tau, schedule_mode="theory")
    else:
        model = HeavyTailedPrivateLasso(L1Ball(data.dimension), epsilon=eps,
                                        delta=delta)
    return model.fit(data.features, data.labels, rng=rng).w


def _batch_fit_l1_private(solver, datas, eps, tau, delta, rngs):
    """Batched counterpart of :func:`_fit_l1_private` over a cell's trials.

    Same solver construction, same per-trial Generator consumption, same
    bits (see :mod:`repro.core.batched`): the lasso family stacks all
    trials into one Gram-form Frank–Wolfe loop, the DP-FW family runs
    the per-trial fast path.
    """
    d = datas[0].dimension
    if solver == "dpfw":
        model = HeavyTailedDPFW(SQUARED, L1Ball(d), epsilon=eps, tau=tau,
                                schedule_mode="theory")
        return [fast_fit_dpfw(model, data.features, data.labels, rng)
                for data, rng in zip(datas, rngs)]
    model = HeavyTailedPrivateLasso(L1Ball(d), epsilon=eps, delta=delta)
    return batch_fit_lasso(model, [(data.features, data.labels)
                                   for data in datas], rngs)


# ---------------------------------------------------------------------------
# Figures 1, 5, 6 — linear regression on the ℓ1 ball.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class L1LinearPanel(Scenario):
    """Panels (a)/(b) of Figures 1, 5, 6: excess risk per dimension.

    ``__call__(d, x, rng)``: the series value ``d`` is the dimension,
    the sweep value ``x`` is ``epsilon`` (``sweep="epsilon"``, ``n``
    pinned to ``n_fixed``) or ``n`` (``sweep="n"``, ``epsilon`` pinned
    to ``eps_fixed``); ``rng`` drives data generation and the private
    fit.  Returns the excess empirical squared risk against the planted
    ``w*``.
    """

    solver: str = "dpfw"  # "dpfw" (Fig 1) | "lasso" (Figs 5, 6)
    features: DistributionSpec = None  # type: ignore[assignment]
    noise: DistributionSpec = None  # type: ignore[assignment]
    sweep: str = "epsilon"  # "epsilon" | "n"
    n_fixed: int = 0
    eps_fixed: float = 1.0
    tau: float = 5.0
    delta: float = 1e-5

    def __post_init__(self):
        """Reject mistyped mode fields at construction time."""
        _check_choice(self, "solver", ("dpfw", "lasso"))
        _check_choice(self, "sweep", ("epsilon", "n"))

    def __call__(self, d, x, rng):
        """One trial of one cell; see the class docstring for the axes."""
        n, eps = ((self.n_fixed, x) if self.sweep == "epsilon"
                  else (x, self.eps_fixed))
        data = _l1_linear_data(n, d, self.features, self.noise, rng)
        w = _fit_l1_private(self.solver, data, eps, self.tau, self.delta, rng)
        return _squared_excess(w, data)

    @batch_method
    def batch_point(self, d, x, rngs):
        """Whole-cell fast path; bit-identical to per-trial ``__call__``."""
        n, eps = ((self.n_fixed, x) if self.sweep == "epsilon"
                  else (x, self.eps_fixed))
        datas = [_l1_linear_data(n, d, self.features, self.noise, rng)
                 for rng in rngs]
        ws = _batch_fit_l1_private(self.solver, datas, eps, self.tau,
                                   self.delta, rngs)
        return [_squared_excess(w, data) for w, data in zip(ws, datas)]


@dataclass(frozen=True)
class L1PrivateVsNonprivatePanel(Scenario):
    """Panel (c) of Figures 1, 5, 6: private vs non-private risk vs n.

    ``__call__(kind, n, rng)``: the series value ``kind`` is
    ``"private(eps=1)"`` (the figure's private solver at ε = 1) or any
    other label for the non-private Frank–Wolfe reference; the sweep
    value is the sample count ``n``.  Returns the excess empirical
    squared risk at the fixed dimension ``d_fixed``.
    """

    solver: str = "dpfw"
    features: DistributionSpec = None  # type: ignore[assignment]
    noise: DistributionSpec = None  # type: ignore[assignment]
    d_fixed: int = 0
    tau: float = 5.0
    delta: float = 1e-5
    fw_iterations: int = 60

    def __post_init__(self):
        """Reject mistyped mode fields at construction time."""
        _check_choice(self, "solver", ("dpfw", "lasso"))

    def __call__(self, kind, n, rng):
        """One trial of one cell; see the class docstring for the axes."""
        data = _l1_linear_data(n, self.d_fixed, self.features, self.noise,
                               rng)
        if kind == "private(eps=1)":
            w = _fit_l1_private(self.solver, data, 1.0, self.tau, self.delta,
                                rng)
        else:
            w = FrankWolfe(SQUARED, L1Ball(self.d_fixed),
                           n_iterations=self.fw_iterations).fit(
                data.features, data.labels)
        return _squared_excess(w, data)

    @batch_method
    def batch_point(self, kind, n, rngs):
        """Whole-cell fast path; bit-identical to per-trial ``__call__``."""
        if kind != "private(eps=1)":
            return [float(self(kind, n, rng)) for rng in rngs]
        datas = [_l1_linear_data(n, self.d_fixed, self.features, self.noise,
                                 rng) for rng in rngs]
        ws = _batch_fit_l1_private(self.solver, datas, 1.0, self.tau,
                                   self.delta, rngs)
        return [_squared_excess(w, data) for w, data in zip(ws, datas)]


# ---------------------------------------------------------------------------
# Figure 2 — logistic regression on the ℓ1 ball.
# ---------------------------------------------------------------------------

def _logistic_l1_data(n, d, features, rng):
    """Noiseless sign-label logistic data with an ℓ1-ball ``w*``."""
    w_star = l1_ball_truth(d, rng)
    return make_logistic_data(n, w_star, features, None, rng=rng)


def _logistic_excess(w, data, reference_iterations):
    """Excess vs the ball-constrained empirical optimum.

    The planted ``w*`` is NOT the logistic-risk minimiser over the ball
    (with separable sign labels the risk keeps falling toward the
    boundary), so the reference is computed by non-private Frank-Wolfe,
    exactly as the paper does for its real-data experiments.
    """
    w_opt = FrankWolfe(LOGISTIC, L1Ball(data.dimension),
                       n_iterations=reference_iterations).fit(
        data.features, data.labels)
    return (LOGISTIC.value(w, data.features, data.labels)
            - LOGISTIC.value(w_opt, data.features, data.labels))


@dataclass(frozen=True)
class LogisticDPFWPanel(Scenario):
    """Panels (a)/(b) of Figure 2: excess logistic risk per dimension.

    ``__call__(d, x, rng)``: series value ``d`` is the dimension, sweep
    value ``x`` is ``epsilon`` or ``n`` depending on ``sweep`` (the
    other axis pinned to ``n_fixed``/``eps_fixed``).  Returns the
    excess logistic risk against an 80-step non-private Frank–Wolfe
    reference.
    """

    features: DistributionSpec = None  # type: ignore[assignment]
    sweep: str = "epsilon"
    n_fixed: int = 0
    eps_fixed: float = 1.0
    tau: float = 3.0
    reference_iterations: int = 80

    def __post_init__(self):
        """Reject mistyped mode fields at construction time."""
        _check_choice(self, "sweep", ("epsilon", "n"))

    def __call__(self, d, x, rng):
        """One trial of one cell; see the class docstring for the axes."""
        n, eps = ((self.n_fixed, x) if self.sweep == "epsilon"
                  else (x, self.eps_fixed))
        data = _logistic_l1_data(n, d, self.features, rng)
        solver = HeavyTailedDPFW(LOGISTIC, L1Ball(data.dimension),
                                 epsilon=eps, tau=self.tau,
                                 schedule_mode="theory")
        w = solver.fit(data.features, data.labels, rng=rng).w
        return _logistic_excess(w, data, self.reference_iterations)


@dataclass(frozen=True)
class LogisticPrivateVsNonprivatePanel(Scenario):
    """Panel (c) of Figure 2: private vs non-private logistic risk vs n.

    ``__call__(kind, n, rng)``: series value ``kind`` selects the
    ε = 1 private fit (``"private(eps=1)"``) or the 60-step non-private
    Frank–Wolfe; sweep value is ``n``.  Returns the excess logistic
    risk at dimension ``d_fixed``.
    """

    features: DistributionSpec = None  # type: ignore[assignment]
    d_fixed: int = 0
    tau: float = 3.0
    fw_iterations: int = 60
    reference_iterations: int = 80

    def __call__(self, kind, n, rng):
        """One trial of one cell; see the class docstring for the axes."""
        data = _logistic_l1_data(n, self.d_fixed, self.features, rng)
        if kind == "private(eps=1)":
            solver = HeavyTailedDPFW(LOGISTIC, L1Ball(data.dimension),
                                     epsilon=1.0, tau=self.tau,
                                     schedule_mode="theory")
            w = solver.fit(data.features, data.labels, rng=rng).w
        else:
            w = FrankWolfe(LOGISTIC, L1Ball(self.d_fixed),
                           n_iterations=self.fw_iterations).fit(
                data.features, data.labels)
        return _logistic_excess(w, data, self.reference_iterations)


# ---------------------------------------------------------------------------
# Figures 3, 4 — "real" data (synthetic stand-ins), per-ε curves.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RealDataPanel(Scenario):
    """Figures 3 and 4: excess risk vs n on a real-like dataset.

    ``__call__(eps, n, rng)``: the series value is the privacy budget
    ``eps`` (one curve per ε), the sweep value is the subsampled row
    count ``n``.  Returns the private fit's risk minus the best risk
    along a non-private Frank–Wolfe path (the running best is the
    honest optimum proxy: on the heavy-tailed stand-ins a single
    outlier row can make the *final* FW iterate overshoot).
    """

    dataset: str = ""
    loss: str = "squared"  # "squared" (Fig 3) | "logistic" (Fig 4)
    tau: float = 10.0
    fw_iterations: int = 120

    def __post_init__(self):
        """Reject mistyped mode fields at construction time."""
        _check_choice(self, "loss", ("squared", "logistic"))

    def __call__(self, eps, n, rng):
        """One trial of one cell; see the class docstring for the axes."""
        loss = SQUARED if self.loss == "squared" else LOGISTIC
        data = load_real_like(self.dataset, rng=rng, n_samples=n)
        ball = L1Ball(data.dimension)
        fw = FrankWolfe(loss, ball, n_iterations=self.fw_iterations,
                        record_history=True)
        fw.fit(data.features, data.labels)
        opt_risk = min(fw.risks_)
        solver = HeavyTailedDPFW(loss, ball, epsilon=eps, tau=self.tau,
                                 schedule_mode="theory")
        w_priv = solver.fit(data.features, data.labels, rng=rng).w
        return loss.value(w_priv, data.features, data.labels) - opt_risk


# ---------------------------------------------------------------------------
# Figures 7-9 — sparse linear regression (Algorithm 3).
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SparseLinearPanel(Scenario):
    """Panels (a)/(b)/(c) of Figures 7-9: sparse linear error per d.

    ``__call__(d, x, rng)``: series value ``d`` is the ambient
    dimension; the sweep value ``x`` is ``epsilon``, ``n``, or ``s*``
    according to ``sweep``, with the other two pinned to ``n_fixed`` /
    ``s_fixed`` / ``eps_fixed``.  Returns the excess empirical squared
    risk (``metric="excess"``) or the parameter error ``||w - w*||_2``
    (``metric="param_error"`` — the honest choice when the label noise
    has no finite variance, as in Figure 8).
    """

    features: DistributionSpec = None  # type: ignore[assignment]
    noise: DistributionSpec = None  # type: ignore[assignment]
    sweep: str = "epsilon"  # "epsilon" | "n" | "s_star"
    metric: str = "excess"  # "excess" | "param_error"
    n_fixed: int = 0
    s_fixed: int = 0
    eps_fixed: float = 1.0
    delta: float = 1e-5

    def __post_init__(self):
        """Reject mistyped mode fields at construction time."""
        _check_choice(self, "sweep", ("epsilon", "n", "s_star"))
        _check_choice(self, "metric", ("excess", "param_error"))

    def __call__(self, d, x, rng):
        """One trial of one cell; see the class docstring for the axes."""
        n, s_star, eps = _resolve_sparse_axes(self, x)
        w_star = sparse_truth(d, s_star, rng, norm_bound=0.5)
        data = make_linear_data(n, w_star, self.features, self.noise, rng=rng)
        solver = HeavyTailedSparseLinearRegression(
            sparsity=s_star, epsilon=eps, delta=self.delta)
        w = solver.fit(data.features, data.labels, rng=rng).w
        if self.metric == "param_error":
            return float(np.linalg.norm(w - data.w_star))
        return _squared_excess(w, data)


# ---------------------------------------------------------------------------
# Figures 10, 11 — sparse regularised logistic regression (Algorithm 5).
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SparseLogisticPanel(Scenario):
    """Panels (a)/(b)/(c) of Figures 10-11: sparse logistic risk per d.

    ``__call__(d, x, rng)``: series value ``d`` is the ambient
    dimension; the sweep value is ``epsilon``, ``n``, or ``s*``
    according to ``sweep`` (others pinned, as in
    :class:`SparseLinearPanel`).  Returns the excess ℓ2-regularised
    logistic risk against the planted ``w*``.
    """

    features: DistributionSpec = None  # type: ignore[assignment]
    noise: DistributionSpec = None  # type: ignore[assignment]
    sweep: str = "epsilon"
    tau: float = 6.0
    l2_penalty: float = 0.01
    n_fixed: int = 0
    s_fixed: int = 0
    eps_fixed: float = 1.0
    delta: float = 1e-5

    def __post_init__(self):
        """Reject mistyped mode fields at construction time."""
        _check_choice(self, "sweep", ("epsilon", "n", "s_star"))

    def __call__(self, d, x, rng):
        """One trial of one cell; see the class docstring for the axes."""
        n, s_star, eps = _resolve_sparse_axes(self, x)
        w_star = sparse_truth(d, s_star, rng, norm_bound=0.5)
        data = make_logistic_data(n, w_star, self.features, self.noise,
                                  rng=rng)
        loss = L2Regularized(LogisticLoss(), self.l2_penalty)
        solver = HeavyTailedSparseOptimizer(loss, sparsity=s_star,
                                            epsilon=eps, delta=self.delta,
                                            tau=self.tau)
        w = solver.fit(data.features, data.labels, rng=rng).w
        return (loss.value(w, data.features, data.labels)
                - loss.value(data.w_star, data.features, data.labels))


# ---------------------------------------------------------------------------
# Ablations.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CatoniVsClippingAblation(Scenario):
    """Ablation: smoothed Catoni DP-FW vs clipped baselines.

    ``__call__(method, n, rng)``: series value ``method`` is
    ``"catoni-dpfw"`` (Algorithm 1), ``"clipped-dpfw"`` (regular DP-FW
    with gradient clipping), or ``"dp-sgd"``; sweep value is ``n``.
    Returns the excess empirical squared risk at dimension ``d``.
    """

    features: DistributionSpec = None  # type: ignore[assignment]
    noise: DistributionSpec = None  # type: ignore[assignment]
    d: int = 0
    delta: float = 1e-5

    def __call__(self, method, n, rng):
        """One trial of one cell; see the class docstring for the axes."""
        data = _l1_linear_data(n, self.d, self.features, self.noise, rng)
        if method == "catoni-dpfw":
            w = HeavyTailedDPFW(SQUARED, L1Ball(self.d), epsilon=1.0,
                                tau=5.0).fit(
                data.features, data.labels, rng=rng).w
        elif method == "clipped-dpfw":
            w = RegularDPFrankWolfe(SQUARED, L1Ball(self.d), epsilon=1.0,
                                    delta=self.delta, lipschitz_bound=5.0,
                                    n_iterations=20).fit(
                data.features, data.labels, rng=rng).w
        else:  # dp-sgd
            w = DPSGD(SQUARED, epsilon=1.0, delta=self.delta, clip_norm=5.0,
                      learning_rate=0.05, n_iterations=30,
                      projection=lambda v: project_l1_ball(v, 1.0)).fit(
                data.features, data.labels, rng=rng).w
        return _squared_excess(w, data)

    @batch_method
    def batch_point(self, method, n, rngs):
        """Whole-cell fast path; bit-identical to per-trial ``__call__``."""
        if method != "catoni-dpfw":
            return [float(self(method, n, rng)) for rng in rngs]
        solver = HeavyTailedDPFW(SQUARED, L1Ball(self.d), epsilon=1.0,
                                 tau=5.0)
        values = []
        for rng in rngs:
            data = _l1_linear_data(n, self.d, self.features, self.noise, rng)
            w = fast_fit_dpfw(solver, data.features, data.labels, rng)
            values.append(_squared_excess(w, data))
        return values


@dataclass(frozen=True)
class PeelingVsDenseAblation(Scenario):
    """Ablation: Peeling (Algorithm 4) vs dense Laplace release.

    ``__call__(method, d, rng)``: series value ``method`` is
    ``"peeling"`` or any other label for the dense release; sweep value
    is the ambient dimension ``d``.  Returns the squared ℓ2 error of
    the released sparse mean on a contaminated Gaussian population with
    ``s`` planted coordinates and ``n`` samples.
    """

    n: int = 0
    s: int = 0

    def __call__(self, method, d, rng):
        """One trial of one cell; see the class docstring for the axes."""
        mean = np.zeros(d)
        support = rng.choice(d, size=self.s, replace=False)
        mean[support] = rng.choice([-0.5, 0.5], size=self.s)
        x = rng.normal(loc=mean, scale=1.0, size=(self.n, d))
        # heavy-tailed contamination
        mask = rng.uniform(size=self.n) < 0.01
        x[mask] *= 50.0
        est = CatoniEstimator(scale=optimal_scale(self.n, 2.0, 0.05))
        robust = est.estimate_columns(x)
        sens = est.sensitivity(self.n)
        if method == "peeling":
            out = peeling(robust, self.s, 1.0, 1e-5, sens, rng=rng).vector
        else:
            out = dense_laplace_release(robust, self.s, 1.0, 1e-5, sens,
                                        rng=rng).vector
        return float(np.sum((out - mean) ** 2))


@dataclass(frozen=True)
class ScaleParameterAblation(Scenario):
    """Ablation: the Catoni scale ``s`` trade-off of Theorem 2.

    ``__call__(_, multiplier, rng)``: the single series value is
    ignored (one curve); the sweep value multiplies the theory-optimal
    Catoni scale ``theory_scale``.  Returns the excess empirical
    squared risk of DP-FW run at the rescaled truncation.
    """

    features: DistributionSpec = None  # type: ignore[assignment]
    noise: DistributionSpec = None  # type: ignore[assignment]
    d: int = 0
    n: int = 0
    theory_scale: float = 1.0

    def __call__(self, _, multiplier, rng):
        """One trial of one cell; see the class docstring for the axes."""
        data = _l1_linear_data(self.n, self.d, self.features, self.noise,
                               rng)
        solver = HeavyTailedDPFW(SQUARED, L1Ball(self.d), epsilon=1.0,
                                 tau=5.0,
                                 scale=self.theory_scale * multiplier)
        res = solver.fit(data.features, data.labels, rng=rng)
        return _squared_excess(res.w, data)

    @batch_method
    def batch_point(self, _, multiplier, rngs):
        """Whole-cell fast path; bit-identical to per-trial ``__call__``."""
        solver = HeavyTailedDPFW(SQUARED, L1Ball(self.d), epsilon=1.0,
                                 tau=5.0,
                                 scale=self.theory_scale * multiplier)
        values = []
        for rng in rngs:
            data = _l1_linear_data(self.n, self.d, self.features, self.noise,
                                   rng)
            w = fast_fit_dpfw(solver, data.features, data.labels, rng)
            values.append(_squared_excess(w, data))
        return values


@dataclass(frozen=True)
class TruncationThresholdAblation(Scenario):
    """Ablation: Algorithm 2's shrinkage threshold K (Theorem 5).

    ``__call__(_, multiplier, rng)``: the single series value is
    ignored; the sweep value multiplies the theory threshold
    ``theory_threshold``.  Returns the excess empirical squared risk of
    the private Lasso run at the rescaled threshold.
    """

    features: DistributionSpec = None  # type: ignore[assignment]
    noise: DistributionSpec = None  # type: ignore[assignment]
    d: int = 0
    n: int = 0
    theory_threshold: float = 1.0
    delta: float = 1e-5

    def __call__(self, _, multiplier, rng):
        """One trial of one cell; see the class docstring for the axes."""
        data = _l1_linear_data(self.n, self.d, self.features, self.noise,
                               rng)
        solver = HeavyTailedPrivateLasso(
            L1Ball(self.d), epsilon=1.0, delta=self.delta,
            threshold=self.theory_threshold * multiplier)
        res = solver.fit(data.features, data.labels, rng=rng)
        return _squared_excess(res.w, data)

    @batch_method
    def batch_point(self, _, multiplier, rngs):
        """Whole-cell fast path; bit-identical to per-trial ``__call__``."""
        solver = HeavyTailedPrivateLasso(
            L1Ball(self.d), epsilon=1.0, delta=self.delta,
            threshold=self.theory_threshold * multiplier)
        datas = [_l1_linear_data(self.n, self.d, self.features, self.noise,
                                 rng) for rng in rngs]
        ws = batch_fit_lasso(solver, [(data.features, data.labels)
                                      for data in datas], rngs)
        return [_squared_excess(w, data) for w, data in zip(ws, datas)]


def _composed_catoni_dpfw(data, epsilon, d, delta, rng):
    """Full-batch Catoni DP-FW under advanced composition (ε, δ)-DP."""
    n = data.n_samples
    solver = HeavyTailedDPFW(SQUARED, L1Ball(d), epsilon=epsilon, tau=5.0)
    schedule = solver.resolve_schedule(n)
    T = schedule.n_iterations
    catoni = CatoniEstimator(scale=schedule.scale, beta=schedule.beta)
    ball = L1Ball(d)
    eps_step = epsilon / (2.0 * math.sqrt(2.0 * T * math.log(1.0 / delta)))
    sensitivity = ball.l1_diameter() * catoni.sensitivity(n)
    mechanism = ExponentialMechanism(epsilon=eps_step,
                                     sensitivity=sensitivity)
    steps = classic_fw_steps(T)
    w = ball.initial_point()
    for t in range(T):
        grads = SQUARED.per_sample_gradients(w, data.features, data.labels)
        g_tilde = catoni.estimate_columns(grads)
        index = mechanism.select(ball.vertex_scores(g_tilde), rng=rng)
        w = (1.0 - steps[t]) * w + steps[t] * ball.vertex(index)
    return w


def _batch_composed_catoni_dpfw(data, epsilon, d, delta, rng):
    """Fast replica of :func:`_composed_catoni_dpfw`, same draws and bits.

    Identical schedule/estimator/budget arithmetic; the per-iteration
    loop runs through :func:`repro.core.batched.fast_full_batch_fw`.
    """
    n = data.n_samples
    solver = HeavyTailedDPFW(SQUARED, L1Ball(d), epsilon=epsilon, tau=5.0)
    schedule = solver.resolve_schedule(n)
    T = schedule.n_iterations
    catoni = CatoniEstimator(scale=schedule.scale, beta=schedule.beta)
    ball = L1Ball(d)
    eps_step = epsilon / (2.0 * math.sqrt(2.0 * T * math.log(1.0 / delta)))
    sensitivity = ball.l1_diameter() * catoni.sensitivity(n)
    return fast_full_batch_fw(SQUARED, ball, data.features, data.labels,
                              catoni, eps_step, sensitivity,
                              classic_fw_steps(T), rng)


@dataclass(frozen=True)
class SplitVsComposedAblation(Scenario):
    """Ablation: Algorithm 1's data splitting vs full-batch composition.

    ``__call__(method, n, rng)``: series value ``method`` is
    ``"split (paper, eps-DP)"`` (disjoint per-iteration chunks, pure
    ε-DP) or any other label for the full-batch advanced-composition
    variant; sweep value is ``n``.  Returns the excess empirical
    squared risk at dimension ``d``.
    """

    features: DistributionSpec = None  # type: ignore[assignment]
    noise: DistributionSpec = None  # type: ignore[assignment]
    d: int = 0
    delta: float = 1e-5

    def __call__(self, method, n, rng):
        """One trial of one cell; see the class docstring for the axes."""
        data = _l1_linear_data(n, self.d, self.features, self.noise, rng)
        if method == "split (paper, eps-DP)":
            w = HeavyTailedDPFW(SQUARED, L1Ball(self.d), epsilon=1.0,
                                tau=5.0).fit(
                data.features, data.labels, rng=rng).w
        else:
            w = _composed_catoni_dpfw(data, 1.0, self.d, self.delta, rng)
        return _squared_excess(w, data)

    @batch_method
    def batch_point(self, method, n, rngs):
        """Whole-cell fast path; bit-identical to per-trial ``__call__``."""
        split = method == "split (paper, eps-DP)"
        solver = (HeavyTailedDPFW(SQUARED, L1Ball(self.d), epsilon=1.0,
                                  tau=5.0) if split else None)
        values = []
        for rng in rngs:
            data = _l1_linear_data(n, self.d, self.features, self.noise, rng)
            if split:
                w = fast_fit_dpfw(solver, data.features, data.labels, rng)
            else:
                w = _batch_composed_catoni_dpfw(data, 1.0, self.d,
                                                self.delta, rng)
            values.append(_squared_excess(w, data))
        return values


# ---------------------------------------------------------------------------
# Extensions.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RobustRegressionExtension(Scenario):
    """Extension (Theorem 3): DP-FW with the non-convex biweight loss.

    ``__call__(loss_name, x, rng)``: series value ``loss_name`` is
    ``"biweight"`` or any other label for the squared-loss reference;
    the sweep value is ``n`` (``sweep="n"``) or ``epsilon``
    (``sweep="epsilon"``, ``n`` pinned to ``n_fixed``).  Returns the
    parameter error ``||w - w*||_2`` under heavy symmetric noise.
    """

    features: DistributionSpec = None  # type: ignore[assignment]
    noise: DistributionSpec = None  # type: ignore[assignment]
    d: int = 0
    sweep: str = "n"  # "n" | "epsilon"
    n_fixed: int = 0
    eps_fixed: float = 1.0
    tau: float = 3.0
    biweight_c: float = 2.0

    def __post_init__(self):
        """Reject mistyped mode fields at construction time."""
        _check_choice(self, "sweep", ("n", "epsilon"))

    def __call__(self, loss_name, x, rng):
        """One trial of one cell; see the class docstring for the axes."""
        n, eps = ((x, self.eps_fixed) if self.sweep == "n"
                  else (self.n_fixed, x))
        data = _l1_linear_data(n, self.d, self.features, self.noise, rng)
        loss = (BiweightLoss(c=self.biweight_c)
                if loss_name == "biweight" else SquaredLoss())
        solver = HeavyTailedDPFW(loss, L1Ball(self.d), epsilon=eps,
                                 tau=self.tau)
        res = solver.fit(data.features, data.labels, rng=rng)
        return float(np.linalg.norm(res.w - data.w_star))

    @batch_method
    def batch_point(self, loss_name, x, rngs):
        """Whole-cell fast path; bit-identical to per-trial ``__call__``."""
        n, eps = ((x, self.eps_fixed) if self.sweep == "n"
                  else (self.n_fixed, x))
        loss = (BiweightLoss(c=self.biweight_c)
                if loss_name == "biweight" else SquaredLoss())
        solver = HeavyTailedDPFW(loss, L1Ball(self.d), epsilon=eps,
                                 tau=self.tau)
        values = []
        for rng in rngs:
            data = _l1_linear_data(n, self.d, self.features, self.noise, rng)
            w = fast_fit_dpfw(solver, data.features, data.labels, rng)
            values.append(float(np.linalg.norm(w - data.w_star)))
        return values


@dataclass(frozen=True)
class WeakMomentsExtension(Scenario):
    """Extension: the conclusion's (1+v)-th moment open problem.

    ``__call__(engine, n, rng)``: series value ``engine`` is
    ``"truncated(v=0.4)"`` (shrink-then-average gradients for the
    weak-moment regime) or any other label for the paper's smoothed
    Catoni estimator; sweep value is ``n``.  Returns the ℓ1 parameter
    error on infinite-variance Pareto features.
    """

    features: DistributionSpec = None  # type: ignore[assignment]
    noise: DistributionSpec = None  # type: ignore[assignment]
    d: int = 0
    tau: float = 3.0
    moment_order: float = 1.4

    def __call__(self, engine, n, rng):
        """One trial of one cell; see the class docstring for the axes."""
        data = _l1_linear_data(n, self.d, self.features, self.noise, rng)
        if engine == "truncated(v=0.4)":
            solver = HeavyTailedDPFW(SQUARED, L1Ball(self.d), epsilon=1.0,
                                     tau=self.tau,
                                     gradient_estimator="truncated",
                                     moment_order=self.moment_order)
        else:
            solver = HeavyTailedDPFW(SQUARED, L1Ball(self.d), epsilon=1.0,
                                     tau=self.tau)
        res = solver.fit(data.features, data.labels, rng=rng)
        return float(np.linalg.norm(res.w - data.w_star, ord=1))

    @batch_method
    def batch_point(self, engine, n, rngs):
        """Whole-cell fast path; bit-identical to per-trial ``__call__``."""
        if engine == "truncated(v=0.4)":
            solver = HeavyTailedDPFW(SQUARED, L1Ball(self.d), epsilon=1.0,
                                     tau=self.tau,
                                     gradient_estimator="truncated",
                                     moment_order=self.moment_order)
        else:
            solver = HeavyTailedDPFW(SQUARED, L1Ball(self.d), epsilon=1.0,
                                     tau=self.tau)
        values = []
        for rng in rngs:
            data = _l1_linear_data(n, self.d, self.features, self.noise, rng)
            w = fast_fit_dpfw(solver, data.features, data.labels, rng)
            values.append(float(np.linalg.norm(w - data.w_star, ord=1)))
        return values


__all__ = [
    "CatoniVsClippingAblation",
    "DistributionSpec",
    "L1LinearPanel",
    "L1PrivateVsNonprivatePanel",
    "LOGISTIC",
    "LogisticDPFWPanel",
    "LogisticPrivateVsNonprivatePanel",
    "PeelingVsDenseAblation",
    "RealDataPanel",
    "RobustRegressionExtension",
    "SQUARED",
    "ScaleParameterAblation",
    "SparseLinearPanel",
    "SparseLogisticPanel",
    "SplitVsComposedAblation",
    "TruncationThresholdAblation",
    "WeakMomentsExtension",
    "_batch_composed_catoni_dpfw",
    "_batch_fit_l1_private",
    "_check_choice",
    "_composed_catoni_dpfw",
    "_fit_l1_private",
    "_l1_linear_data",
    "_logistic_excess",
    "_logistic_l1_data",
    "_resolve_sparse_axes",
    "_squared_excess",
]
