"""Named, addressable experiments: panel scenarios and the bench catalog.

* :mod:`repro.experiments.panels` — the frozen scenario dataclasses the
  figure/ablation/extension benches run (picklable, code-fingerprinted).
* :mod:`repro.experiments.catalog` — every bench registered by name as
  a :class:`~repro.experiments.catalog.BenchDef` (its panels, grids,
  seeds, trial counts and table titles), at laptop or paper scale.

``python -m repro list`` enumerates the catalog; ``python -m repro run
<name>`` reproduces a bench's committed results table through it.
"""

from .catalog import (
    BenchDef,
    PanelDef,
    bench,
    bench_names,
    bench_recorder,
    claimed_digests,
)

__all__ = [
    "BenchDef",
    "PanelDef",
    "bench",
    "bench_names",
    "bench_recorder",
    "claimed_digests",
]
