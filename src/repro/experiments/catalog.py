"""The named catalog of every figure, ablation and extension bench.

Each entry registers, under the bench's canonical name (``"fig05_
lasso_lognormal"``, ``"ablation_peeling_vs_dense"``, ...), a builder
``build(full=False) -> BenchDef`` describing the bench as *data*: its
panels' point scenarios, grid values, seeds, trial counts, table titles
and the results-file stem.  The benches under ``benchmarks/`` and the
CLI (``python -m repro run <name>``) both consume these definitions, so
there is exactly one source of truth for what each experiment is — a
bench run and a CLI run of the same name produce bit-identical tables.

``full=False`` is the laptop scale every committed table under
``benchmarks/results/`` was produced at; ``full=True`` is the paper
scale (``REPRO_BENCH_FULL=1``).  Seeds, titles and grids reproduce the
historical bench constants exactly — changing any entry changes the
corresponding committed table and should be done deliberately, together
with it.

:func:`claimed_digests` enumerates the cache digests of every cell any
catalog grid (at either scale) can produce; ``python -m repro cache
prune`` deletes everything else from a cache directory, bounding cache
growth across fingerprint turnover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..core import HeavyTailedDPFW, HeavyTailedPrivateLasso
from ..data import DistributionSpec
from ..evaluation import Scenario, build_jobs, point_fingerprint, run_grid
from ..geometry import L1Ball
from ..losses import SquaredLoss
from ..registry import CATALOG
from .panels import (
    CatoniVsClippingAblation,
    L1LinearPanel,
    L1PrivateVsNonprivatePanel,
    LogisticDPFWPanel,
    LogisticPrivateVsNonprivatePanel,
    PeelingVsDenseAblation,
    RealDataPanel,
    RobustRegressionExtension,
    ScaleParameterAblation,
    SparseLinearPanel,
    SparseLogisticPanel,
    SplitVsComposedAblation,
    TruncationThresholdAblation,
    WeakMomentsExtension,
)


def default_trials(full: bool) -> int:
    """Trials per grid cell: the paper uses >= 20, the laptop scale 3."""
    return 10 if full else 3


@dataclass(frozen=True)
class PanelDef:
    """One (series × sweep × trial) grid of a bench, fully specified.

    The grid axes are named ``"x"`` / ``"series"`` when jobs are built
    (the engine's historical axis names — they enter every cell seed,
    so they are part of the reproducibility contract); ``x_name`` is
    the human-readable x-axis label the table prints.
    """

    point: Scenario
    title: str
    x_name: str
    sweep_values: Tuple[object, ...]
    series_values: Tuple[object, ...]
    seed: int
    n_trials: int

    def run(self, *, executor="serial", cache=None, n_trials=None,
            max_workers=None, chunksize: int = 1, recorder=None,
            flight=None) -> Dict[object, List[float]]:
        """Evaluate the panel's grid; returns ``series -> mean curve``.

        ``n_trials`` overrides the panel's trial count (changing the
        statistics *and* the cache digests); executor/cache knobs are
        forwarded to :func:`repro.evaluation.run_grid` unchanged, as is
        ``flight`` (a :class:`repro.evaluation.SingleFlight` coalescing
        concurrent computations of the same cells — the serving tier's
        single-flight guarantee).

        ``recorder`` (a :class:`repro.results.RunRecorder`) captures
        the panel's full provenance — grid axes, seed, trial count,
        point fingerprint, per-cell job digests and stats — via the
        engine's ``on_cell`` hook.  Both the pytest benches and
        ``python -m repro run`` record through this one method, so a
        bench run and a CLI run of the same name produce identical
        records.
        """
        trials = self.n_trials if n_trials is None else n_trials
        cells, on_cell = [], None
        if recorder is not None:
            from ..results import cell_capture
            cells, on_cell = cell_capture()
        result = run_grid(self.point, "x", list(self.sweep_values),
                          "series", list(self.series_values),
                          n_trials=trials, seed=self.seed, executor=executor,
                          max_workers=max_workers, chunksize=chunksize,
                          cache=cache, flight=flight, on_cell=on_cell)
        if recorder is not None:
            recorder.add_panel(
                title=self.title, x_name=self.x_name, sweep_name="x",
                series_name="series", sweep_values=self.sweep_values,
                series_values=self.series_values, seed=self.seed,
                n_trials=trials,
                point_fingerprint=point_fingerprint(self.point), cells=cells)
        return {series: [stat.mean for stat in result.series[series]]
                for series in self.series_values}

    def jobs(self, n_trials=None):
        """The panel's :class:`~repro.evaluation.TrialJob` s (no execution)."""
        trials = self.n_trials if n_trials is None else n_trials
        return build_jobs("x", list(self.sweep_values),
                          "series", list(self.series_values), trials,
                          self.seed, code_token=point_fingerprint(self.point))


@dataclass(frozen=True)
class BenchDef:
    """A named bench: the ordered panels behind one results table."""

    name: str
    result_stem: str
    panels: Tuple[PanelDef, ...]


def bench(name: str, full: bool = False) -> BenchDef:
    """Build the named catalog bench at laptop (default) or paper scale."""
    return CATALOG.get(name)(full=full)


def bench_recorder(definition: BenchDef, *, executor: str = "serial",
                   full: bool = False):
    """A :class:`repro.results.RunRecorder` labelled for one bench run.

    Hand it to each panel's :meth:`PanelDef.run` and ``finalize()``
    after the last panel; the pytest benches and ``python -m repro run``
    both build their records through this helper, so the two paths
    cannot label records differently.
    """
    from ..results import RunRecorder
    return RunRecorder(kind="bench", name=definition.name,
                       result_stem=definition.result_stem,
                       executor=executor, full=full)


def bench_names() -> Tuple[str, ...]:
    """All catalog bench names, sorted."""
    return CATALOG.names()


def claimed_digests(scales: Iterable[bool] = (False, True)) -> set:
    """Cache digests every catalog grid claims, at the given scales.

    A cell file whose digest is in this set belongs to a current
    experiment (default trial counts); anything else in a cache
    directory is an orphan — produced by edited code, a removed
    scenario, or ad-hoc runs — and safe to prune.
    """
    claimed: set = set()
    for name in bench_names():
        for full in scales:
            for panel in bench(name, full=full).panels:
                claimed.update(job.digest for job in panel.jobs())
    return claimed


# ---------------------------------------------------------------------------
# Figures 1, 5, 6 — ℓ1-ball linear regression (DP-FW / private Lasso).
# ---------------------------------------------------------------------------

#: The paper's ε grid, shared by most panels.
_EPS_SWEEP = (0.5, 1.0, 2.0, 4.0)


def _l1_linear_bench(name: str, stem: str, solver: str, features, noise,
                     d_series, n_fixed, n_sweep, d_fixed, seed: int,
                     titles: Tuple[str, str, str], full: bool) -> BenchDef:
    """The shared three-panel layout of Figures 1, 5 and 6."""
    trials = default_trials(full)
    point_a = L1LinearPanel(solver=solver, features=features, noise=noise,
                            sweep="epsilon", n_fixed=n_fixed)
    point_b = L1LinearPanel(solver=solver, features=features, noise=noise,
                            sweep="n", eps_fixed=1.0)
    point_c = L1PrivateVsNonprivatePanel(solver=solver, features=features,
                                         noise=noise, d_fixed=d_fixed)
    return BenchDef(name=name, result_stem=stem, panels=(
        PanelDef(point_a, titles[0], "epsilon", _EPS_SWEEP,
                 tuple(d_series), seed, trials),
        PanelDef(point_b, titles[1], "n", tuple(n_sweep),
                 tuple(d_series), seed + 1, trials),
        PanelDef(point_c, titles[2], "n", tuple(n_sweep),
                 ("private(eps=1)", "non-private"), seed + 2, trials),
    ))


@CATALOG.register("fig01_dpfw_linear")
def _fig01(full: bool = False) -> BenchDef:
    """Figure 1 — Algorithm 1, linear regression, log-normal features."""
    features = DistributionSpec("lognormal", {"sigma": 0.6})
    noise = DistributionSpec("gaussian", {"scale": 0.1})
    d_series = (200, 400, 800) if full else (20, 80)
    n_fixed = 10_000 if full else 3000
    n_sweep = (10_000, 30_000, 90_000) if full else (2000, 4000, 8000)
    d_fixed = 400 if full else 40
    return _l1_linear_bench(
        "fig01_dpfw_linear", "fig01", "dpfw", features, noise, d_series,
        n_fixed, n_sweep, d_fixed, 10,
        (f"Figure 1(a): excess risk vs epsilon (n={n_fixed}, linear, "
         "lognormal x)",
         "Figure 1(b): excess risk vs n (eps=1)",
         f"Figure 1(c): private vs non-private (d={d_fixed})"), full)


@CATALOG.register("fig05_lasso_lognormal")
def _fig05(full: bool = False) -> BenchDef:
    """Figure 5 — Algorithm 2 (private Lasso), log-normal features."""
    features = DistributionSpec("lognormal", {"sigma": 0.6})
    noise = DistributionSpec("gaussian", {"scale": 0.1})
    d_series = (100, 200, 400) if full else (20, 80)
    n_fixed = 10_000 if full else 4000
    n_sweep = (10_000, 30_000, 90_000) if full else (4000, 10_000, 24_000)
    d_fixed = 200 if full else 40
    return _l1_linear_bench(
        "fig05_lasso_lognormal", "fig05", "lasso", features, noise, d_series,
        n_fixed, n_sweep, d_fixed, 50,
        (f"Figure 5(a): LASSO excess risk vs eps (n={n_fixed})",
         "Figure 5(b): LASSO excess risk vs n (eps=1)",
         f"Figure 5(c): private vs non-private (d={d_fixed})"), full)


@CATALOG.register("fig06_lasso_student_t")
def _fig06(full: bool = False) -> BenchDef:
    """Figure 6 — Algorithm 2 (private Lasso), Student-t features."""
    features = DistributionSpec("student_t", {"df": 10.0})
    noise = DistributionSpec("gaussian", {"scale": 0.1})
    d_series = (100, 200, 400) if full else (20, 80)
    n_fixed = 100_000 if full else 4000
    n_sweep = (20_000, 60_000, 180_000) if full else (4000, 10_000, 24_000)
    d_fixed = 200 if full else 40
    return _l1_linear_bench(
        "fig06_lasso_student_t", "fig06", "lasso", features, noise, d_series,
        n_fixed, n_sweep, d_fixed, 60,
        ("Figure 6(a): LASSO (t-dist) excess risk vs eps",
         "Figure 6(b): LASSO (t-dist) excess risk vs n (eps=1)",
         f"Figure 6(c): private vs non-private (d={d_fixed})"), full)


# ---------------------------------------------------------------------------
# Figure 2 — ℓ1-ball logistic regression.
# ---------------------------------------------------------------------------

@CATALOG.register("fig02_dpfw_logistic")
def _fig02(full: bool = False) -> BenchDef:
    """Figure 2 — Algorithm 1, logistic regression, log-normal features."""
    features = DistributionSpec("lognormal", {"sigma": 0.6})
    d_series = (200, 400, 800) if full else (20, 80)
    n_fixed = 10_000 if full else 3000
    # Wider eps range + extra trials: with noiseless sign labels the
    # logistic excess is small and noisy, so the trend needs more span.
    eps_sweep = (0.25, 1.0, 4.0, 16.0)
    n_sweep = (10_000, 30_000, 90_000) if full else (2000, 4000, 8000)
    d_fixed = 400 if full else 40
    trials = default_trials(full)
    point_a = LogisticDPFWPanel(features=features, sweep="epsilon",
                                n_fixed=n_fixed)
    point_b = LogisticDPFWPanel(features=features, sweep="n", eps_fixed=1.0)
    point_c = LogisticPrivateVsNonprivatePanel(features=features,
                                               d_fixed=d_fixed)
    return BenchDef(name="fig02_dpfw_logistic", result_stem="fig02", panels=(
        PanelDef(point_a,
                 f"Figure 2(a): excess logistic risk vs epsilon (n={n_fixed})",
                 "epsilon", eps_sweep, d_series, 20, 5),
        # Panel (b) is essentially flat at bench-scale n; extra trials
        # tame a ~1.4x seed-luck swing (see the bench's shape asserts).
        PanelDef(point_b, "Figure 2(b): excess logistic risk vs n (eps=1)",
                 "n", n_sweep, d_series, 21, max(trials, 6)),
        PanelDef(point_c, f"Figure 2(c): private vs non-private (d={d_fixed})",
                 "n", n_sweep, ("private(eps=1)", "non-private"), 22, trials),
    ))


# ---------------------------------------------------------------------------
# Figures 3, 4 — "real" data (synthetic stand-ins), per-ε curves.
# ---------------------------------------------------------------------------

def _real_data_bench(name: str, stem: str, figure: str, loss: str,
                     datasets: Tuple[str, ...], seed_base: int,
                     full: bool) -> BenchDef:
    """Figures 3/4: one panel per dataset, curves per ε, sweep over n."""
    n_sweep = (20_000, 40_000, 60_000) if full else (1500, 3000, 6000)
    eps_series = (0.5, 1.0, 2.0)
    trials = default_trials(full)
    risk = "excess risk" if loss == "squared" else "excess logistic risk"
    panels = []
    for dataset in datasets:
        point = RealDataPanel(dataset=dataset, loss=loss, tau=10.0)
        title = (f"Figure {figure} ({dataset}): {risk} vs n per eps"
                 if loss == "squared"
                 else f"Figure {figure} ({dataset}): {risk} vs n")
        panels.append(PanelDef(
            point, title, "n", n_sweep, eps_series,
            seed_base + sum(ord(c) for c in dataset) % 7, trials))
    return BenchDef(name=name, result_stem=stem, panels=tuple(panels))


@CATALOG.register("fig03_dpfw_real_linear")
def _fig03(full: bool = False) -> BenchDef:
    """Figure 3 — Algorithm 1 on Blog/Twitter stand-ins, squared loss."""
    return _real_data_bench("fig03_dpfw_real_linear", "fig03", "3",
                            "squared", ("blog", "twitter"), 30, full)


@CATALOG.register("fig04_dpfw_real_logistic")
def _fig04(full: bool = False) -> BenchDef:
    """Figure 4 — Algorithm 1 on Winnipeg/Year stand-ins, logistic loss."""
    return _real_data_bench("fig04_dpfw_real_logistic", "fig04", "4",
                            "logistic", ("winnipeg", "year_prediction"), 40,
                            full)


# ---------------------------------------------------------------------------
# Figures 7-11 — the sparse-learning figures (Alg 3 linear, Alg 5 logistic).
# ---------------------------------------------------------------------------

def _sparse_grids(full: bool):
    """The grid constants every sparse figure shares."""
    d_series = (500, 1000, 2000) if full else (50, 150)
    s_star_sweep = (10, 20, 40) if full else (2, 5, 10)
    return d_series, _EPS_SWEEP, s_star_sweep


def _sparse_linear_bench(name: str, stem: str, features, noise, seed: int,
                         full: bool, metric: str = "excess") -> BenchDef:
    """Figures 7-9: the three Algorithm 3 panels for one noise law."""
    d_series, eps_sweep, s_star_sweep = _sparse_grids(full)
    n_fixed = 50_000 if full else 16_000
    n_sweep = (20_000, 50_000, 100_000) if full else (8000, 16_000, 32_000)
    s_fixed = 20 if full else 5
    trials = default_trials(full)
    point_a = SparseLinearPanel(features=features, noise=noise,
                                sweep="epsilon", metric=metric,
                                n_fixed=n_fixed, s_fixed=s_fixed)
    point_b = SparseLinearPanel(features=features, noise=noise, sweep="n",
                                metric=metric, s_fixed=s_fixed, eps_fixed=1.0)
    point_c = SparseLinearPanel(features=features, noise=noise,
                                sweep="s_star", metric=metric,
                                n_fixed=n_fixed, eps_fixed=1.0)
    return BenchDef(name=name, result_stem=stem, panels=(
        PanelDef(point_a, f"{stem}(a): excess risk vs eps "
                 f"(n={n_fixed}, s*={s_fixed})", "epsilon", eps_sweep,
                 d_series, seed, trials),
        PanelDef(point_b, f"{stem}(b): excess risk vs n (eps=1)", "n",
                 n_sweep, d_series, seed + 1, trials),
        PanelDef(point_c, f"{stem}(c): excess risk vs s* (eps=1)", "s*",
                 s_star_sweep, d_series, seed + 2, trials),
    ))


def _sparse_logistic_bench(name: str, stem: str, features, noise, seed: int,
                           tau: float, full: bool,
                           l2_penalty: float = 0.01) -> BenchDef:
    """Figures 10-11: the three Algorithm 5 panels for one data law."""
    d_series, eps_sweep, s_star_sweep = _sparse_grids(full)
    n_fixed = 8000 if full else 6000
    n_sweep = (8000, 16_000, 32_000) if full else (4000, 8000, 16_000)
    s_fixed = 20 if full else 5
    trials = default_trials(full)
    common = dict(features=features, noise=noise, tau=tau,
                  l2_penalty=l2_penalty)
    point_a = SparseLogisticPanel(sweep="epsilon", n_fixed=n_fixed,
                                  s_fixed=s_fixed, **common)
    point_b = SparseLogisticPanel(sweep="n", s_fixed=s_fixed, eps_fixed=1.0,
                                  **common)
    point_c = SparseLogisticPanel(sweep="s_star", n_fixed=n_fixed,
                                  eps_fixed=1.0, **common)
    return BenchDef(name=name, result_stem=stem, panels=(
        PanelDef(point_a, f"{stem}(a): excess risk vs eps "
                 f"(n={n_fixed}, s*={s_fixed})", "epsilon", eps_sweep,
                 d_series, seed, trials),
        PanelDef(point_b, f"{stem}(b): excess risk vs n (eps=1)", "n",
                 n_sweep, d_series, seed + 1, trials),
        PanelDef(point_c, f"{stem}(c): excess risk vs s* (eps=1)", "s*",
                 s_star_sweep, d_series, seed + 2, trials),
    ))


@CATALOG.register("fig07_sparse_lognormal_noise")
def _fig07(full: bool = False) -> BenchDef:
    """Figure 7 — Algorithm 3, Gaussian features, log-normal noise."""
    return _sparse_linear_bench(
        "fig07_sparse_lognormal_noise", "fig07",
        DistributionSpec("gaussian", {"scale": 2.24}),  # N(0, 5): var 5
        DistributionSpec("lognormal", {"sigma": 0.5}), 70, full)


@CATALOG.register("fig08_sparse_loglogistic_noise")
def _fig08(full: bool = False) -> BenchDef:
    """Figure 8 — Algorithm 3, log-logistic c=0.1 noise (no finite mean).

    The excess empirical risk is meaningless under infinite-mean noise,
    so this figure reports the parameter error ``||w - w*||_2``.
    """
    return _sparse_linear_bench(
        "fig08_sparse_loglogistic_noise", "fig08",
        DistributionSpec("gaussian", {"scale": 2.24}),
        DistributionSpec("log_logistic", {"c": 0.1}), 80, full,
        metric="param_error")


@CATALOG.register("fig09_sparse_loggamma_noise")
def _fig09(full: bool = False) -> BenchDef:
    """Figure 9 — Algorithm 3, Gaussian features, log-gamma noise."""
    return _sparse_linear_bench(
        "fig09_sparse_loggamma_noise", "fig09",
        DistributionSpec("gaussian", {"scale": 2.24}),
        DistributionSpec("log_gamma", {"c": 0.5}), 90, full)


@CATALOG.register("fig10_sparse_logistic_gaussian")
def _fig10(full: bool = False) -> BenchDef:
    """Figure 10 — Algorithm 5, Gaussian features, logistic latent noise."""
    return _sparse_logistic_bench(
        "fig10_sparse_logistic_gaussian", "fig10",
        DistributionSpec("gaussian", {"scale": 2.24}),
        DistributionSpec("logistic", {"scale": 0.5}), 100, tau=6.0,
        full=full)


@CATALOG.register("fig11_sparse_logistic_laplace")
def _fig11(full: bool = False) -> BenchDef:
    """Figure 11 — Algorithm 5, Laplace features, log-gamma latent noise."""
    return _sparse_logistic_bench(
        "fig11_sparse_logistic_laplace", "fig11",
        DistributionSpec("laplace", {"scale": 5.0}),
        DistributionSpec("log_gamma", {"c": 0.5}), 110, tau=30.0, full=full)


# ---------------------------------------------------------------------------
# Ablations.
# ---------------------------------------------------------------------------

@CATALOG.register("ablation_catoni_vs_clipping")
def _ablation_catoni_vs_clipping(full: bool = False) -> BenchDef:
    """Ablation — smoothed Catoni DP-FW vs clipped DP-FW and DP-SGD."""
    features = DistributionSpec("lognormal", {"sigma": 0.8})
    noise = DistributionSpec("gaussian", {"scale": 0.1})
    n_sweep = (20_000, 60_000) if full else (4000, 12_000)
    point = CatoniVsClippingAblation(features=features, noise=noise, d=60,
                                     delta=1e-5)
    return BenchDef(
        name="ablation_catoni_vs_clipping",
        result_stem="ablation_catoni_vs_clipping",
        panels=(PanelDef(
            point,
            "Ablation: Catoni DP-FW vs clipped baselines (excess risk)",
            "n", n_sweep, ("catoni-dpfw", "clipped-dpfw", "dp-sgd"), 200,
            default_trials(full)),))


@CATALOG.register("ablation_peeling_vs_dense")
def _ablation_peeling_vs_dense(full: bool = False) -> BenchDef:
    """Ablation — Peeling (Algorithm 4) vs dense Laplace release."""
    n = 20_000 if full else 5000
    d_sweep = (100, 400, 1600) if full else (50, 200, 800)
    point = PeelingVsDenseAblation(n=n, s=5)
    return BenchDef(
        name="ablation_peeling_vs_dense", result_stem="ablation_peeling",
        panels=(PanelDef(
            point,
            "Ablation: sparse mean sq. error, Peeling vs dense release",
            "d", d_sweep, ("peeling", "dense-laplace"), 220,
            default_trials(full)),))


@CATALOG.register("ablation_scale_parameter")
def _ablation_scale_parameter(full: bool = False) -> BenchDef:
    """Ablation — the Catoni scale trade-off of Theorem 2."""
    features = DistributionSpec("lognormal", {"sigma": 0.6})
    noise = DistributionSpec("gaussian", {"scale": 0.1})
    d = 40
    n = 20_000 if full else 8000
    theory_scale = HeavyTailedDPFW(SquaredLoss(), L1Ball(d), epsilon=1.0,
                                   tau=5.0).resolve_schedule(n).scale
    point = ScaleParameterAblation(features=features, noise=noise, d=d, n=n,
                                   theory_scale=theory_scale)
    return BenchDef(
        name="ablation_scale_parameter", result_stem="ablation_scale",
        panels=(PanelDef(
            point,
            f"Ablation: excess risk vs scale multiplier "
            f"(theory s = {theory_scale:.2f})",
            "s_multiplier", (0.02, 0.2, 1.0, 5.0, 50.0), ("excess_risk",),
            210, default_trials(full)),))


@CATALOG.register("ablation_split_vs_composed")
def _ablation_split_vs_composed(full: bool = False) -> BenchDef:
    """Ablation — Algorithm 1's data splitting vs full-batch composition."""
    features = DistributionSpec("lognormal", {"sigma": 0.6})
    noise = DistributionSpec("gaussian", {"scale": 0.1})
    n_sweep = (20_000, 60_000) if full else (4000, 12_000)
    point = SplitVsComposedAblation(features=features, noise=noise, d=40,
                                    delta=1e-5)
    return BenchDef(
        name="ablation_split_vs_composed", result_stem="ablation_split",
        panels=(PanelDef(
            point,
            "Ablation: data splitting vs advanced composition (excess risk)",
            "n", n_sweep,
            ("split (paper, eps-DP)", "composed ((eps,delta)-DP)"), 230,
            default_trials(full)),))


@CATALOG.register("ablation_truncation_threshold")
def _ablation_truncation_threshold(full: bool = False) -> BenchDef:
    """Ablation — Algorithm 2's shrinkage threshold K (Theorem 5)."""
    features = DistributionSpec("lognormal", {"sigma": 0.6})
    noise = DistributionSpec("gaussian", {"scale": 0.1})
    d = 40
    n = 30_000 if full else 12_000
    k_theory = HeavyTailedPrivateLasso(L1Ball(d), epsilon=1.0,
                                       delta=1e-5).resolve_schedule(n).threshold
    point = TruncationThresholdAblation(features=features, noise=noise, d=d,
                                        n=n, theory_threshold=k_theory)
    return BenchDef(
        name="ablation_truncation_threshold",
        result_stem="ablation_threshold",
        panels=(PanelDef(
            point,
            f"Ablation: LASSO excess risk vs K multiplier "
            f"(theory K = {k_theory:.2f})",
            "K_multiplier", (0.05, 0.3, 1.0, 3.0, 20.0), ("excess_risk",),
            240, default_trials(full)),))


# ---------------------------------------------------------------------------
# Extensions.
# ---------------------------------------------------------------------------

@CATALOG.register("ext_robust_regression")
def _ext_robust_regression(full: bool = False) -> BenchDef:
    """Extension — Theorem 3: DP-FW with the non-convex biweight loss."""
    features = DistributionSpec("lognormal", {"sigma": 0.6})
    noise = DistributionSpec("student_t", {"df": 3.0})
    n_sweep = (20_000, 60_000) if full else (4000, 16_000)
    trials = default_trials(full)
    point_n = RobustRegressionExtension(features=features, noise=noise, d=40,
                                        sweep="n", eps_fixed=1.0)
    point_eps = RobustRegressionExtension(features=features, noise=noise,
                                          d=40, sweep="epsilon",
                                          n_fixed=n_sweep[0])
    return BenchDef(
        name="ext_robust_regression", result_stem="ext_robust_regression",
        panels=(
            PanelDef(point_n,
                     "Extension (Thm 3): parameter error vs n, biweight vs "
                     "squared loss under t(3) noise",
                     "n", n_sweep, ("biweight", "squared"), 300, trials),
            PanelDef(point_eps,
                     "Extension (Thm 3): parameter error vs eps "
                     "(biweight loss)",
                     "epsilon", _EPS_SWEEP, ("biweight",), 301, trials),
        ))


@CATALOG.register("ext_weak_moments")
def _ext_weak_moments(full: bool = False) -> BenchDef:
    """Extension — the conclusion's (1+v)-th moment open problem."""
    features = DistributionSpec("pareto", {"tail_index": 1.45})
    noise = DistributionSpec("gaussian", {"scale": 0.1})
    n_sweep = (20_000, 80_000) if full else (5000, 20_000)
    point = WeakMomentsExtension(features=features, noise=noise, d=30,
                                 moment_order=1.4)
    return BenchDef(
        name="ext_weak_moments", result_stem="ext_weak_moments",
        panels=(PanelDef(
            point,
            "Extension: l1 parameter error under infinite-variance "
            "features (Pareto 1.45)",
            "n", n_sweep, ("truncated(v=0.4)", "catoni"), 310,
            default_trials(full)),))
