"""Result objects returned by the core private optimizers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..privacy.accountant import PrivacyAccountant
from ..privacy.budget import PrivacyBudget


@dataclass
class FitResult:
    """The output of one private optimization run.

    Attributes
    ----------
    w:
        The final iterate (the private output ``w_T``).
    n_iterations:
        Number of optimization rounds actually executed.
    accountant:
        Ledger of every mechanism invocation during the run; its total is
        the budget actually consumed under basic composition, while
        ``advertised_budget`` is the end-to-end guarantee claimed by the
        algorithm's analysis (they differ when advanced composition is
        used).
    advertised_budget:
        The ``(epsilon, delta)`` guarantee of the run.
    iterates:
        The iterate path ``[w_0, ..., w_T]`` when history recording was
        requested, else the empty list.
    risks:
        Per-iteration training risk when history recording was requested.
    metadata:
        Algorithm-specific diagnostics (chosen schedule, scale, threshold,
        selected vertices, ...).
    """

    w: np.ndarray
    n_iterations: int
    accountant: PrivacyAccountant
    advertised_budget: PrivacyBudget
    iterates: List[np.ndarray] = field(default_factory=list)
    risks: List[float] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def privacy_spent(self) -> Optional[PrivacyBudget]:
        """Total ledger charge (basic composition over recorded entries)."""
        return self.accountant.total

    def risk_trace(self) -> np.ndarray:
        """Risks as an array (empty when history was not recorded)."""
        return np.asarray(self.risks, dtype=float)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FitResult(n_iterations={self.n_iterations}, "
            f"advertised={self.advertised_budget}, "
            f"||w||_1={float(np.abs(self.w).sum()):.4g})"
        )
