"""Algorithm 2 — Heavy-tailed Private LASSO.

An (ε, δ)-DP Frank–Wolfe method for the squared loss over the ℓ1 ball
under bounded *fourth* moments (Assumption 3):

1. every data entry is shrunken at threshold ``K``:
   ``x̃ = sign(x) min(|x|, K)`` (after which the loss is ℓ1-Lipschitz
   with constant ``O(K^2)``);
2. ``T`` Frank–Wolfe iterations each run the exponential mechanism over
   the vertex set with score ``-<v, g̃(w, D̃)>``, sensitivity
   ``8 ||W||_1 K^2 / n`` and per-iteration budget
   ``eps / (2 sqrt(2 T log(1/delta)))``;
3. the advanced composition theorem (Lemma 2) makes the whole run
   (ε, δ)-DP — the full dataset is reused every iteration, unlike
   Algorithm 1.

Theorem 5: with ``K = (n eps)^{1/4} / T^{1/8}`` the excess population
risk is ``~O((sqrt(log 1/delta) log(dn/zeta))^{4/5} / (n eps)^{2/5})``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from .._validation import check_dataset, check_positive, check_vector
from ..estimators.truncation import shrink_dataset
from ..geometry.polytope import Polytope
from ..losses.squared import SquaredLoss
from ..privacy.accountant import PrivacyAccountant
from ..privacy.budget import PrivacyBudget
from ..privacy.mechanisms import ExponentialMechanism
from ..rng import SeedLike, ensure_rng
from .hyperparams import LassoSchedule, classic_fw_steps, lasso_schedule
from .result import FitResult


@dataclass
class HeavyTailedPrivateLasso:
    """(ε, δ)-DP Frank–Wolfe for LASSO with entry-wise shrunken data.

    Parameters
    ----------
    polytope:
        The ℓ1-ball constraint (any vertex polytope is accepted; the
        paper's analysis is for the ℓ1 ball).
    epsilon, delta:
        End-to-end privacy budget.
    n_iterations, threshold:
        ``T`` and the shrinkage level ``K``; ``None`` selects them from
        :func:`~repro.core.hyperparams.lasso_schedule`.
    schedule_mode:
        ``"paper"`` (Section 6.2 ``T = (n eps)^{2/5}``) or ``"theory"``.
    """

    polytope: Polytope
    epsilon: float
    delta: float
    n_iterations: Optional[int] = None
    threshold: Optional[float] = None
    failure_probability: float = 0.05
    schedule_mode: str = "paper"
    step_sizes: Optional[Sequence[float]] = None
    record_history: bool = False

    def __post_init__(self) -> None:
        check_positive(self.epsilon, "epsilon")
        check_positive(self.delta, "delta")
        self._loss = SquaredLoss()

    def resolve_schedule(self, n_samples: int) -> LassoSchedule:
        """The ``(T, K)`` pair this configuration will run with."""
        schedule = lasso_schedule(
            n_samples=n_samples, epsilon=self.epsilon, delta=self.delta,
            dimension=self.polytope.dimension,
            failure_probability=self.failure_probability, mode=self.schedule_mode,
        )
        T = self.n_iterations if self.n_iterations is not None else schedule.n_iterations
        T = max(1, int(T))
        K = self.threshold if self.threshold is not None else schedule.threshold
        return LassoSchedule(n_iterations=T, threshold=float(K))

    def per_iteration_epsilon(self, n_iterations: int) -> float:
        """The paper's per-step budget ``eps / (2 sqrt(2 T log(1/delta)))``."""
        return self.epsilon / (2.0 * math.sqrt(2.0 * n_iterations * math.log(1.0 / self.delta)))

    def fit(self, X: np.ndarray, y: np.ndarray, w0: Optional[np.ndarray] = None,
            rng: SeedLike = None,
            callback: Optional[Callable[[int, np.ndarray], None]] = None,
            ) -> FitResult:
        """Run Algorithm 2 on the dataset ``(X, y)``."""
        X, y = check_dataset(X, y)
        n, d = X.shape
        if d != self.polytope.dimension:
            raise ValueError(
                f"data dimension {d} does not match polytope dimension "
                f"{self.polytope.dimension}"
            )
        rng = ensure_rng(rng)
        schedule = self.resolve_schedule(n)
        T, K = schedule.n_iterations, schedule.threshold
        steps = list(self.step_sizes) if self.step_sizes is not None else classic_fw_steps(T)
        if len(steps) < T:
            raise ValueError(f"need {T} step sizes, got {len(steps)}")

        X_shrunk, y_shrunk = shrink_dataset(X, y, K)
        diameter = self.polytope.l1_diameter()
        # Sensitivity of u(D, v) from the Theorem 4 proof: 8 ||W||_1 K^2 / n
        # (with ||W||_1 = 2 for the unit l1 ball the paper's constant).
        sensitivity = 4.0 * diameter * K**2 / n
        eps_step = self.per_iteration_epsilon(T)
        mechanism = ExponentialMechanism(epsilon=eps_step, sensitivity=sensitivity)

        accountant = PrivacyAccountant()
        accountant.spend(PrivacyBudget(self.epsilon, self.delta), "exponential",
                         note=f"advanced composition over {T} iterations "
                              f"at eps'={eps_step:.4g}")

        w = (self.polytope.initial_point() if w0 is None
             else check_vector(w0, "w0", dim=d).copy())
        iterates: List[np.ndarray] = [w.copy()] if self.record_history else []
        risks: List[float] = [self._loss.value(w, X, y)] if self.record_history else []
        selected_vertices: List[int] = []

        for t in range(T):
            residual = X_shrunk @ w - y_shrunk
            g_tilde = 2.0 * (X_shrunk.T @ residual) / n
            scores = self.polytope.vertex_scores(g_tilde)
            vertex_index = mechanism.select(scores, rng=rng)
            vertex = self.polytope.vertex(vertex_index)
            selected_vertices.append(vertex_index)
            w = (1.0 - steps[t]) * w + steps[t] * vertex
            if self.record_history:
                iterates.append(w.copy())
                risks.append(self._loss.value(w, X, y))
            if callback is not None:
                callback(t, w)

        return FitResult(
            w=w, n_iterations=T, accountant=accountant,
            advertised_budget=PrivacyBudget(self.epsilon, self.delta),
            iterates=iterates, risks=risks,
            metadata={
                "algorithm": "heavy_tailed_private_lasso",
                "threshold": K,
                "per_iteration_epsilon": eps_step,
                "selected_vertices": selected_vertices,
                "schedule_mode": self.schedule_mode,
            },
        )


from ..geometry.polytope import L1Ball
from ..registry import SOLVERS


@SOLVERS.register("private_lasso")
def _fit_private_lasso(data, rng: SeedLike = None, *, epsilon: float = 1.0,
                       delta: float = 1e-5,
                       n_iterations: Optional[int] = None,
                       threshold: Optional[float] = None,
                       schedule_mode: str = "paper",
                       l1_radius: float = 1.0) -> np.ndarray:
    """Registry adapter: Algorithm 2 on the ℓ1 ball, returning ``w``."""
    solver = HeavyTailedPrivateLasso(
        L1Ball(data.dimension, radius=l1_radius), epsilon=epsilon,
        delta=delta, n_iterations=n_iterations, threshold=threshold,
        schedule_mode=schedule_mode)
    return solver.fit(data.features, data.labels, rng=rng).w
