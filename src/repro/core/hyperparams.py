"""Theory-driven hyper-parameter schedules.

The paper's theorems prescribe the iteration counts, truncation scales
and thresholds as explicit functions of ``(n, epsilon, d, ...)``; its
experimental section (6.2) uses slightly simplified versions of the same
schedules.  Both variants are implemented here so the core algorithms,
the benches and the ablations all draw parameters from one place.

Every function returns a small frozen dataclass so results are
self-documenting in experiment metadata.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._validation import check_positive, check_positive_int, check_probability
from ..estimators.truncation import lasso_threshold, sparse_regression_threshold


def _clamp_iterations(T: float, n_samples: int, minimum: int = 1) -> int:
    """Round ``T`` and keep at least one sample per split chunk."""
    T_int = max(minimum, int(T))
    return max(minimum, min(T_int, n_samples))


@dataclass(frozen=True)
class DPFWSchedule:
    """Parameters for Algorithm 1 (Heavy-tailed DP-FW, Theorem 2)."""

    n_iterations: int
    scale: float
    beta: float
    chunk_size: int


def dpfw_schedule(n_samples: int, epsilon: float, dimension: int,
                  n_vertices: int, tau: float = 1.0, smoothness: float = 1.0,
                  beta: float = 1.0, failure_probability: float = 0.05,
                  mode: str = "theory") -> DPFWSchedule:
    """Theorem 2 / Section 6.2 schedule for Algorithm 1.

    ``mode="theory"`` uses ``T = (n eps alpha^2 / (tau log(|V| d / zeta)))^{1/3}``
    and ``s = sqrt(n eps tau / (T log(|V| d T / zeta)))``.

    ``mode="paper"`` uses the experimental section's simpler
    ``T = floor((n eps)^{1/3})`` with the same theory-driven ``s`` (the
    paper's listed ``s = floor(n eps)`` reads as a typo — it would blow
    the exponential-mechanism noise up by a factor of ``T`` and
    contradicts Theorem 2's ``s = O(sqrt(n eps tau / (T log ...)))``; we
    keep the theorem's scale).
    """
    check_positive_int(n_samples, "n_samples")
    check_positive(epsilon, "epsilon")
    check_positive_int(dimension, "dimension")
    check_positive_int(n_vertices, "n_vertices")
    check_positive(tau, "tau")
    check_positive(smoothness, "smoothness")
    check_positive(beta, "beta")
    zeta = check_probability(failure_probability, "failure_probability",
                             allow_zero=False, allow_one=False)
    n_eps = n_samples * epsilon
    log_term = math.log(max(n_vertices * dimension / zeta, math.e))
    if mode == "paper":
        T = _clamp_iterations(n_eps ** (1.0 / 3.0), n_samples)
    elif mode == "theory":
        T = _clamp_iterations((n_eps * smoothness**2 / (tau * log_term)) ** (1.0 / 3.0),
                              n_samples)
    else:
        raise ValueError(f"mode must be 'theory' or 'paper', got {mode!r}")
    log_term_T = math.log(max(n_vertices * dimension * T / zeta, math.e))
    scale = math.sqrt(n_eps * tau / (T * log_term_T))
    return DPFWSchedule(n_iterations=T, scale=scale, beta=beta,
                        chunk_size=n_samples // T)


@dataclass(frozen=True)
class LassoSchedule:
    """Parameters for Algorithm 2 (Heavy-tailed Private LASSO, Theorem 5)."""

    n_iterations: int
    threshold: float


def lasso_schedule(n_samples: int, epsilon: float, delta: float,
                   dimension: int, smoothness: float = 1.0,
                   failure_probability: float = 0.05,
                   mode: str = "paper") -> LassoSchedule:
    """Theorem 5 / Section 6.2 schedule for Algorithm 2.

    ``mode="paper"``: ``T = (n eps)^{2/5}`` (Section 6.2).
    ``mode="theory"``: Theorem 5's
    ``T = (sqrt(n eps) * gamma / (sqrt(log 1/delta) * log(d/zeta)))^{4/5}``.
    Both use ``K = (n eps)^{1/4} / T^{1/8}``.
    """
    check_positive_int(n_samples, "n_samples")
    check_positive(epsilon, "epsilon")
    check_positive(delta, "delta")
    check_positive_int(dimension, "dimension")
    zeta = check_probability(failure_probability, "failure_probability",
                             allow_zero=False, allow_one=False)
    n_eps = n_samples * epsilon
    if mode == "paper":
        T = _clamp_iterations(n_eps ** 0.4, n_samples)
    elif mode == "theory":
        log_delta = math.sqrt(math.log(1.0 / delta))
        log_d = math.log(max(dimension / zeta, math.e))
        T = _clamp_iterations((math.sqrt(n_eps) * smoothness / (log_delta * log_d)) ** 0.8,
                              n_samples)
    else:
        raise ValueError(f"mode must be 'theory' or 'paper', got {mode!r}")
    return LassoSchedule(n_iterations=T, threshold=lasso_threshold(n_samples, epsilon, T))


@dataclass(frozen=True)
class SparseLinearSchedule:
    """Parameters for Algorithm 3 (Theorem 7 / Section 6.2)."""

    n_iterations: int
    selection_size: int
    threshold: float
    step_size: float
    chunk_size: int


def sparse_linear_schedule(n_samples: int, epsilon: float, sparsity: int,
                           expansion: int = 2, step_size: float = 0.5,
                           mode: str = "paper") -> SparseLinearSchedule:
    """Algorithm 3 schedule: ``s = c*s*``, ``T = floor(log n)``,
    ``K = (n eps / (s T))^{1/4}``, ``eta = 0.5`` (Section 6.2).

    ``mode="theory"`` differs only in that callers supply the condition
    number through ``expansion ~ (gamma/mu)^2`` — the theorem's
    ``s >= 72 (gamma/mu)^2 s*`` — and the step ``eta0 = 2/(3 gamma)`` is
    applied by the solver (which knows ``gamma``).
    """
    check_positive_int(n_samples, "n_samples")
    check_positive(epsilon, "epsilon")
    check_positive_int(sparsity, "sparsity")
    check_positive_int(expansion, "expansion")
    check_positive(step_size, "step_size")
    if mode not in ("paper", "theory"):
        raise ValueError(f"mode must be 'theory' or 'paper', got {mode!r}")
    T = _clamp_iterations(math.log(max(n_samples, 3)), n_samples)
    s = expansion * sparsity
    K = sparse_regression_threshold(n_samples, epsilon, s, T)
    return SparseLinearSchedule(n_iterations=T, selection_size=s, threshold=K,
                                step_size=step_size, chunk_size=n_samples // T)


@dataclass(frozen=True)
class SparseOptimizationSchedule:
    """Parameters for Algorithm 5 (Theorem 8 / Section 6.2)."""

    n_iterations: int
    selection_size: int
    scale: float
    beta: float
    step_size: float
    chunk_size: int


def sparse_optimization_schedule(n_samples: int, epsilon: float, sparsity: int,
                                 dimension: int, tau: float = 1.0,
                                 expansion: int = 2, beta: float = 1.0,
                                 step_size: float = 0.5,
                                 failure_probability: float = 0.05,
                                 ) -> SparseOptimizationSchedule:
    """Algorithm 5 schedule: ``s = 2 s*``, ``T = floor(log n)`` and the
    Theorem 8 Catoni scale.

    Theorem 8 sets the robust-estimation scale
    ``k = (n^2 eps^2 tau^2 / ((s T)^2 log(T s / zeta)))^{1/4}`` (from the
    bias/variance/noise balance in its proof); Section 6.2's ``k = c2 n
    eps`` reads as shorthand for a tuned constant — we expose the
    theorem's balanced value, which reduces to ``~sqrt(n eps tau / (sT))``
    up to logs.
    """
    check_positive_int(n_samples, "n_samples")
    check_positive(epsilon, "epsilon")
    check_positive_int(sparsity, "sparsity")
    check_positive_int(dimension, "dimension")
    check_positive(tau, "tau")
    check_positive_int(expansion, "expansion")
    check_positive(beta, "beta")
    check_positive(step_size, "step_size")
    zeta = check_probability(failure_probability, "failure_probability",
                             allow_zero=False, allow_one=False)
    T = _clamp_iterations(math.log(max(n_samples, 3)), n_samples)
    s = expansion * sparsity
    log_term = math.log(max(T * s / zeta, math.e))
    k = (n_samples**2 * epsilon**2 * tau**2 / ((s * T) ** 2 * log_term)) ** 0.25
    return SparseOptimizationSchedule(n_iterations=T, selection_size=s, scale=k,
                                      beta=beta, step_size=step_size,
                                      chunk_size=n_samples // T)


def classic_fw_steps(n_iterations: int) -> list[float]:
    """The Frank–Wolfe step sequence ``eta_{t-1} = 2 / (t + 2)``.

    The indexing matches the paper: iteration ``t`` (1-based) uses
    ``eta_{t-1} = 2/(t+2)``, i.e. the first update uses ``2/3``.
    """
    check_positive_int(n_iterations, "n_iterations")
    return [2.0 / (t + 2.0) for t in range(1, n_iterations + 1)]
