"""Algorithm 1 — Heavy-tailed DP-FW (the paper's primary contribution).

An ε-DP Frank–Wolfe method over a polytope ``W = conv(V)`` for losses
whose *gradient coordinates* have bounded second moments (Assumption 1)
but may be unbounded pointwise:

1. the dataset is split into ``T`` disjoint chunks (one per iteration) —
   this is the device that makes the privacy proof go through without
   advanced composition (pure ε-DP via parallel composition);
2. at iteration ``t``, each coordinate of the population gradient is
   estimated from the chunk's per-sample gradients by the smoothed
   Catoni estimator (eqs. 2–5), whose per-sample influence is bounded by
   ``2√2·s/3`` — hence the whole estimate has ℓ∞ sensitivity
   ``4√2·s/(3m)``;
3. a Frank–Wolfe vertex is selected by the exponential mechanism with
   score ``u(D_t, v) = -<v, g̃>`` and sensitivity
   ``||W||_1 · 4√2·s/(3m)``;
4. the iterate moves toward the selected vertex with the classic step
   ``eta_{t-1} = 2/(t+2)``.

Theorem 2: with the theory schedule the excess population risk is
``~O(||W||_1 (alpha tau log(n|V|d/zeta))^{1/3} / (n eps)^{1/3})`` with
probability ``1 - zeta``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from .._validation import check_dataset, check_positive, check_vector
from ..estimators.catoni import CatoniEstimator
from ..estimators.weak_moments import (
    TruncatedMeanEstimator,
    optimal_truncation_threshold,
)
from ..geometry.polytope import Polytope
from ..losses.base import Loss
from ..privacy.accountant import PrivacyAccountant
from ..privacy.budget import PrivacyBudget
from ..privacy.mechanisms import ExponentialMechanism
from ..rng import SeedLike, ensure_rng
from .hyperparams import DPFWSchedule, classic_fw_steps, dpfw_schedule
from .result import FitResult


@dataclass
class HeavyTailedDPFW:
    """ε-DP Frank–Wolfe for heavy-tailed gradients over a polytope.

    Parameters
    ----------
    loss:
        Any :class:`~repro.losses.base.Loss`; Assumption 1 asks its
        population risk to be smooth with coordinate-wise bounded
        gradient second moments.
    polytope:
        The constraint set ``W`` as a vertex polytope (its ℓ1 diameter
        enters the exponential-mechanism sensitivity).
    epsilon:
        Pure-DP privacy parameter of the whole run.
    n_iterations, scale:
        ``T`` and the Catoni scale ``s``.  ``None`` selects them from
        :func:`~repro.core.hyperparams.dpfw_schedule` at fit time.
    tau:
        Assumed bound on the gradient coordinate second moments, used
        only by the automatic schedule.
    beta:
        Smoothing-noise inverse variance (the paper uses ``O(1)``).
    schedule_mode:
        ``"theory"`` (Theorem 2 constants) or ``"paper"`` (Section 6.2).
    step_sizes:
        Optional explicit Frank–Wolfe steps; default ``2/(t+2)``.
    gradient_estimator:
        ``"catoni"`` (the paper's smoothed estimator, needs bounded
        *second* moments) or ``"truncated"`` (shrink-then-average, the
        conclusion's weak-moment extension — works whenever the
        ``moment_order``-th moment is bounded, ``moment_order in (1, 2]``).
    moment_order:
        Only for ``gradient_estimator="truncated"``: the assumed moment
        ``1 + v``; the automatic threshold is
        ``(m eps tau)^{1/(1+v)}`` per chunk.
    record_history:
        When true, store iterates and per-iteration training risk in the
        result (costs one full-data risk evaluation per iteration).
    """

    loss: Loss
    polytope: Polytope
    epsilon: float
    n_iterations: Optional[int] = None
    scale: Optional[float] = None
    tau: float = 1.0
    beta: float = 1.0
    failure_probability: float = 0.05
    schedule_mode: str = "theory"
    step_sizes: Optional[Sequence[float]] = None
    gradient_estimator: str = "catoni"
    moment_order: float = 2.0
    record_history: bool = False

    def __post_init__(self) -> None:
        check_positive(self.epsilon, "epsilon")
        if self.gradient_estimator not in ("catoni", "truncated"):
            raise ValueError(
                "gradient_estimator must be 'catoni' or 'truncated', got "
                f"{self.gradient_estimator!r}"
            )

    def resolve_schedule(self, n_samples: int) -> DPFWSchedule:
        """The ``(T, s)`` pair this configuration will run with."""
        schedule = dpfw_schedule(
            n_samples=n_samples, epsilon=self.epsilon,
            dimension=self.polytope.dimension,
            n_vertices=self.polytope.n_vertices, tau=self.tau,
            beta=self.beta, failure_probability=self.failure_probability,
            mode=self.schedule_mode,
        )
        T = self.n_iterations if self.n_iterations is not None else schedule.n_iterations
        T = max(1, min(int(T), n_samples))
        s = self.scale if self.scale is not None else schedule.scale
        return DPFWSchedule(n_iterations=T, scale=float(s), beta=self.beta,
                            chunk_size=n_samples // T)

    def fit(self, X: np.ndarray, y: np.ndarray, w0: Optional[np.ndarray] = None,
            rng: SeedLike = None,
            callback: Optional[Callable[[int, np.ndarray], None]] = None,
            ) -> FitResult:
        """Run Algorithm 1 on the dataset ``(X, y)``.

        Parameters
        ----------
        w0:
            Feasible starting point; defaults to
            ``polytope.initial_point()``.
        callback:
            Optional ``callback(t, w_t)`` invoked after every iteration.
        """
        X, y = check_dataset(X, y)
        n, d = X.shape
        if d != self.polytope.dimension:
            raise ValueError(
                f"data dimension {d} does not match polytope dimension "
                f"{self.polytope.dimension}"
            )
        rng = ensure_rng(rng)
        schedule = self.resolve_schedule(n)
        T = schedule.n_iterations
        steps = list(self.step_sizes) if self.step_sizes is not None else classic_fw_steps(T)
        if len(steps) < T:
            raise ValueError(f"need {T} step sizes, got {len(steps)}")

        w = (self.polytope.initial_point() if w0 is None
             else check_vector(w0, "w0", dim=d).copy())
        if self.gradient_estimator == "catoni":
            estimator = CatoniEstimator(scale=schedule.scale, beta=schedule.beta)
        else:
            threshold = (self.scale if self.scale is not None
                         else optimal_truncation_threshold(
                             max(schedule.chunk_size, 1), self.epsilon,
                             self.moment_order, self.tau))
            estimator = TruncatedMeanEstimator(threshold=threshold)
        diameter = self.polytope.l1_diameter()
        accountant = PrivacyAccountant()
        # Disjoint chunks => parallel composition: the whole run is eps-DP.
        accountant.spend(PrivacyBudget(self.epsilon, 0.0), "exponential",
                         note=f"{T} iterations on disjoint chunks (parallel composition)")

        chunk_indices = np.array_split(rng.permutation(n), T)
        iterates: List[np.ndarray] = [w.copy()] if self.record_history else []
        risks: List[float] = [self.loss.value(w, X, y)] if self.record_history else []
        selected_vertices: List[int] = []

        for t in range(T):
            idx = chunk_indices[t]
            m = idx.size
            grads = self.loss.per_sample_gradients(w, X[idx], y[idx])
            g_tilde = estimator.estimate_columns(grads)
            sensitivity = diameter * estimator.sensitivity(m)
            mechanism = ExponentialMechanism(epsilon=self.epsilon,
                                             sensitivity=sensitivity)
            scores = self.polytope.vertex_scores(g_tilde)
            vertex_index = mechanism.select(scores, rng=rng)
            vertex = self.polytope.vertex(vertex_index)
            selected_vertices.append(vertex_index)
            w = (1.0 - steps[t]) * w + steps[t] * vertex
            if self.record_history:
                iterates.append(w.copy())
                risks.append(self.loss.value(w, X, y))
            if callback is not None:
                callback(t, w)

        return FitResult(
            w=w, n_iterations=T, accountant=accountant,
            advertised_budget=PrivacyBudget(self.epsilon, 0.0),
            iterates=iterates, risks=risks,
            metadata={
                "algorithm": "heavy_tailed_dp_fw",
                "gradient_estimator": self.gradient_estimator,
                "scale": schedule.scale,
                "beta": schedule.beta,
                "chunk_size": schedule.chunk_size,
                "selected_vertices": selected_vertices,
                "schedule_mode": self.schedule_mode,
            },
        )


from ..geometry.polytope import L1Ball
from ..losses.base import resolve_loss
from ..registry import SOLVERS


@SOLVERS.register("heavy_tailed_dp_fw")
def _fit_heavy_tailed_dp_fw(data, rng: SeedLike = None, *, loss="squared",
                            epsilon: float = 1.0, tau: float = 5.0,
                            schedule_mode: str = "theory",
                            n_iterations: Optional[int] = None,
                            scale: Optional[float] = None, beta: float = 1.0,
                            gradient_estimator: str = "catoni",
                            moment_order: float = 2.0,
                            l1_radius: float = 1.0) -> np.ndarray:
    """Registry adapter: Algorithm 1 on the ℓ1 ball, returning ``w``.

    ``loss`` is a registered loss name (or mapping / instance, see
    :func:`repro.losses.resolve_loss`); the constraint dimension comes
    from the data.  Remaining keywords mirror
    :class:`HeavyTailedDPFW`'s fields.
    """
    solver = HeavyTailedDPFW(
        resolve_loss(loss), L1Ball(data.dimension, radius=l1_radius),
        epsilon=epsilon, tau=tau, schedule_mode=schedule_mode,
        n_iterations=n_iterations, scale=scale, beta=beta,
        gradient_estimator=gradient_estimator, moment_order=moment_order)
    return solver.fit(data.features, data.labels, rng=rng).w
