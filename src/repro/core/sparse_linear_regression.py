"""Algorithm 3 — Heavy-tailed Private Sparse Linear Regression.

An (ε, δ)-DP iterative-hard-thresholding method for the sparse linear
model ``y = <w*, x> + iota`` under bounded fourth moments (Assumption 3):

1. every data entry is shrunken at threshold ``K`` (Fan et al.);
2. the shrunken data is split into ``T`` disjoint chunks;
3. iteration ``t`` takes a gradient step on its chunk,

   .. math:: w^{t+0.5} = w^t - \\frac{\\eta_0}{m}
             \\sum_{(\\tilde x, \\tilde y) \\in \\tilde D_t}
             \\tilde x (\\langle\\tilde x, w^t\\rangle - \\tilde y),

   privately selects and releases the top-``s`` coordinates via Peeling
   (Algorithm 4) with ℓ∞ sensitivity ``2 K^2 eta_0 (sqrt(s)+1)/m``, and
   projects back onto the unit ℓ2 ball.

Disjoint chunks give (ε, δ)-DP for the whole run by parallel
composition (Theorem 6).  Theorem 7: with ``T = O(log n)``,
``K = (n eps / (s T))^{1/4}`` and ``s = O((gamma/mu)^2 s*)`` the excess
risk is ``~O(s*^2 log^2 d / (n eps))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from .._validation import (
    check_dataset,
    check_positive,
    check_positive_int,
    check_vector,
)
from ..estimators.truncation import shrink_dataset
from ..geometry.projections import hard_threshold, project_l2_ball
from ..losses.curvature import gram_top_eigenvalue
from ..losses.squared import SquaredLoss
from ..privacy.accountant import PrivacyAccountant
from ..privacy.budget import PrivacyBudget
from ..rng import SeedLike, ensure_rng
from .hyperparams import SparseLinearSchedule, sparse_linear_schedule
from .peeling import peeling
from .result import FitResult


@dataclass
class HeavyTailedSparseLinearRegression:
    """(ε, δ)-DP truncated IHT for sparse linear regression (Algorithm 3).

    Parameters
    ----------
    sparsity:
        The target sparsity ``s*`` of the underlying parameter.
    epsilon, delta:
        End-to-end privacy budget.
    selection_size:
        The working sparsity ``s >= s*`` kept by Peeling; the theory
        wants ``s = O((gamma/mu)^2 s*)``.  ``None`` uses
        ``expansion * sparsity``.
    expansion:
        Multiplier used when ``selection_size`` is ``None``
        (Section 6.2 uses small integer multiples of ``s*``).
    n_iterations, threshold, step_size:
        ``T``, ``K`` and the *relative* step ``eta``; ``None`` entries
        are resolved from
        :func:`~repro.core.hyperparams.sparse_linear_schedule`
        (``T = floor(log n)``, ``K = (n eps/(s T))^{1/4}``,
        ``eta = 0.5``).  The actual gradient step is the paper's
        ``eta_0 = eta / gamma`` with ``gamma`` the smoothness constant.
    curvature:
        The smoothness constant ``gamma = lambda_max(E x x^T)``.
        ``None`` estimates it from the shrunken training data (as the
        paper's experiments implicitly do); pass a public value for
        strict end-to-end DP.
    project_radius:
        Radius of the ℓ2-ball projection ``Pi_W`` (the paper uses the
        unit ball and assumes ``||w*||_2 <= 1/2``).
    """

    sparsity: int
    epsilon: float
    delta: float
    selection_size: Optional[int] = None
    expansion: int = 2
    n_iterations: Optional[int] = None
    threshold: Optional[float] = None
    step_size: Optional[float] = None
    curvature: Optional[float] = None
    project_radius: float = 1.0
    record_history: bool = False

    def __post_init__(self) -> None:
        check_positive_int(self.sparsity, "sparsity")
        check_positive(self.epsilon, "epsilon")
        check_positive(self.delta, "delta")
        check_positive(self.project_radius, "project_radius")
        self._loss = SquaredLoss()

    def resolve_schedule(self, n_samples: int) -> SparseLinearSchedule:
        """The ``(T, s, K, eta_0)`` this configuration will run with."""
        base = sparse_linear_schedule(
            n_samples=n_samples, epsilon=self.epsilon, sparsity=self.sparsity,
            expansion=self.expansion,
            step_size=self.step_size if self.step_size is not None else 0.5,
        )
        T = self.n_iterations if self.n_iterations is not None else base.n_iterations
        T = max(1, min(int(T), n_samples))
        s = (self.selection_size if self.selection_size is not None
             else base.selection_size)
        s = check_positive_int(s, "selection_size")
        K = self.threshold if self.threshold is not None else base.threshold
        eta = self.step_size if self.step_size is not None else base.step_size
        return SparseLinearSchedule(n_iterations=T, selection_size=s,
                                    threshold=float(K), step_size=float(eta),
                                    chunk_size=n_samples // T)

    def fit(self, X: np.ndarray, y: np.ndarray, w0: Optional[np.ndarray] = None,
            rng: SeedLike = None,
            callback: Optional[Callable[[int, np.ndarray], None]] = None,
            ) -> FitResult:
        """Run Algorithm 3 on the dataset ``(X, y)``.

        ``w0`` must be ``selection_size``-sparse and inside the ℓ2 ball;
        ``None`` starts from the origin (which is both).
        """
        X, y = check_dataset(X, y)
        n, d = X.shape
        rng = ensure_rng(rng)
        schedule = self.resolve_schedule(n)
        T, s, K, eta = (schedule.n_iterations, schedule.selection_size,
                        schedule.threshold, schedule.step_size)
        if s > d:
            raise ValueError(f"selection_size {s} exceeds dimension {d}")

        X_shrunk, y_shrunk = shrink_dataset(X, y, K)
        gamma = (self.curvature if self.curvature is not None
                 else gram_top_eigenvalue(X_shrunk, factor=1.0))
        eta0 = eta / gamma
        w = np.zeros(d) if w0 is None else check_vector(w0, "w0", dim=d).copy()
        w = project_l2_ball(hard_threshold(w, s), self.project_radius)

        accountant = PrivacyAccountant()
        accountant.spend(PrivacyBudget(self.epsilon, self.delta), "peeling",
                         note=f"{T} Peeling calls on disjoint chunks "
                              f"(parallel composition)")

        chunk_indices = np.array_split(rng.permutation(n), T)
        iterates: List[np.ndarray] = [w.copy()] if self.record_history else []
        risks: List[float] = [self._loss.value(w, X, y)] if self.record_history else []
        supports: List[np.ndarray] = []

        for t in range(T):
            idx = chunk_indices[t]
            m = idx.size
            Xt, yt = X_shrunk[idx], y_shrunk[idx]
            residual = Xt @ w - yt
            gradient = Xt.T @ residual / m  # paper's update (no factor 2)
            w_half = w - eta0 * gradient
            # l_inf sensitivity of w_half from the Theorem 6 proof:
            # 2 K^2 eta0 (sqrt(s) + 1) / m.
            noise_scale = 2.0 * K**2 * eta0 * (math.sqrt(s) + 1.0) / m
            peeled = peeling(w_half, sparsity=s, epsilon=self.epsilon,
                             delta=self.delta, noise_scale=noise_scale, rng=rng)
            supports.append(peeled.support)
            w = project_l2_ball(peeled.vector, self.project_radius)
            if self.record_history:
                iterates.append(w.copy())
                risks.append(self._loss.value(w, X, y))
            if callback is not None:
                callback(t, w)

        return FitResult(
            w=w, n_iterations=T, accountant=accountant,
            advertised_budget=PrivacyBudget(self.epsilon, self.delta),
            iterates=iterates, risks=risks,
            metadata={
                "algorithm": "heavy_tailed_sparse_linear_regression",
                "threshold": K,
                "selection_size": s,
                "step_size": eta0,
                "curvature": gamma,
                "supports": supports,
            },
        )


from ..registry import SOLVERS


@SOLVERS.register("sparse_linear_regression")
def _fit_sparse_linear_regression(data, rng: SeedLike = None, *,
                                  sparsity: int, epsilon: float = 1.0,
                                  delta: float = 1e-5,
                                  selection_size: Optional[int] = None,
                                  expansion: int = 2,
                                  n_iterations: Optional[int] = None,
                                  threshold: Optional[float] = None
                                  ) -> np.ndarray:
    """Registry adapter: Algorithm 3 (DP truncated IHT), returning ``w``."""
    solver = HeavyTailedSparseLinearRegression(
        sparsity=sparsity, epsilon=epsilon, delta=delta,
        selection_size=selection_size, expansion=expansion,
        n_iterations=n_iterations, threshold=threshold)
    return solver.fit(data.features, data.labels, rng=rng).w
