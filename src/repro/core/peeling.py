"""Algorithm 4 — Peeling (Cai, Wang, Zhang 2019).

(ε, δ)-DP selection and release of the top-``s`` magnitude coordinates of
a data-dependent vector ``v`` with ℓ∞ sensitivity ``lambda``:

1. ``s`` rounds of report-noisy-max over ``|v_j|`` with i.i.d. Laplace
   noise of scale ``2 * lambda * sqrt(3 s log(1/delta)) / epsilon`` per
   coordinate, peeling off one index per round;
2. release ``v_S + w̃_S`` where ``w̃`` is a fresh Laplace vector at the
   same scale restricted to the selected support ``S``.

Lemma 10 of the paper (Lemma 3.3 in Cai-Wang-Zhang): if
``||v(D) - v(D')||_inf <= lambda`` for all neighbouring datasets, the
procedure is (ε, δ)-DP.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .._validation import check_positive, check_positive_int, check_vector
from ..privacy.accountant import PrivacyAccountant
from ..privacy.budget import PrivacyBudget
from ..rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class PeelingResult:
    """Output of one Peeling invocation.

    Attributes
    ----------
    vector:
        The released ``s``-sparse noisy vector ``v_S + w̃_S``.
    support:
        The selected indices, in peel order (first = noisiest argmax).
    noise_scale:
        The per-coordinate Laplace scale actually used.
    """

    vector: np.ndarray
    support: np.ndarray
    noise_scale: float


def peeling_laplace_scale(sparsity: int, epsilon: float, delta: float,
                          noise_scale: float) -> float:
    """The Laplace scale of Algorithm 4: ``2 * lambda * sqrt(3 s log(1/delta)) / eps``."""
    check_positive_int(sparsity, "sparsity")
    check_positive(epsilon, "epsilon")
    check_positive(delta, "delta")
    check_positive(noise_scale, "noise_scale")
    return 2.0 * noise_scale * math.sqrt(3.0 * sparsity * math.log(1.0 / delta)) / epsilon


def peeling(v: np.ndarray, sparsity: int, epsilon: float, delta: float,
            noise_scale: float, rng: SeedLike = None,
            accountant: Optional[PrivacyAccountant] = None) -> PeelingResult:
    """Run Algorithm 4 on the vector ``v``.

    Parameters
    ----------
    v:
        The data-dependent vector (e.g. a gradient-descent iterate).
    sparsity:
        Number of coordinates ``s`` to select.
    epsilon, delta:
        Privacy budget of the whole invocation.
    noise_scale:
        The ℓ∞ sensitivity ``lambda`` of ``v`` to one sample change.
    accountant:
        Optional ledger; charged ``(epsilon, delta)`` once.

    Returns
    -------
    PeelingResult
    """
    v = check_vector(v, "v")
    s = check_positive_int(sparsity, "sparsity")
    if s > v.size:
        raise ValueError(f"sparsity {s} exceeds vector length {v.size}")
    rng = ensure_rng(rng)
    lap_scale = peeling_laplace_scale(s, epsilon, delta, noise_scale)

    magnitudes = np.abs(v)
    selected: List[int] = []
    available = np.ones(v.size, dtype=bool)
    for _ in range(s):
        noisy = magnitudes + rng.laplace(scale=lap_scale, size=v.size)
        noisy[~available] = -np.inf
        j = int(np.argmax(noisy))
        selected.append(j)
        available[j] = False

    release_noise = rng.laplace(scale=lap_scale, size=v.size)
    out = np.zeros_like(v)
    support = np.array(selected, dtype=int)
    out[support] = v[support] + release_noise[support]

    if accountant is not None:
        accountant.spend(PrivacyBudget(epsilon, delta), "peeling",
                         note=f"top-{s} selection + release")
    return PeelingResult(vector=out, support=support, noise_scale=lap_scale)


def dense_laplace_release(v: np.ndarray, sparsity: int, epsilon: float,
                          delta: float, noise_scale: float,
                          rng: SeedLike = None,
                          accountant: Optional[PrivacyAccountant] = None,
                          ) -> PeelingResult:
    """Ablation comparator: noise *all* ``d`` coordinates, then hard-threshold.

    The naive alternative to Peeling — add Laplace noise calibrated to
    the ℓ1 sensitivity ``d * lambda`` to the whole vector (pure
    ``epsilon``-DP, so strictly stronger), then keep the top ``s`` noisy
    entries.  Its error scales with ``d`` instead of ``s log d``, which
    is the gap the Peeling ablation bench measures.
    """
    from ..geometry.projections import hard_threshold, support as support_of

    v = check_vector(v, "v")
    s = check_positive_int(sparsity, "sparsity")
    check_positive(noise_scale, "noise_scale")
    rng = ensure_rng(rng)
    lap_scale = v.size * noise_scale / epsilon
    noisy = v + rng.laplace(scale=lap_scale, size=v.size)
    out = hard_threshold(noisy, s)
    if accountant is not None:
        accountant.spend(PrivacyBudget(epsilon, 0.0), "laplace-dense",
                         note=f"dense release + top-{s}")
    return PeelingResult(vector=out, support=support_of(out), noise_scale=lap_scale)
