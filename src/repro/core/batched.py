"""Trial-batched, bit-identical fast paths for the hot solver families.

The engine's batched-trials protocol (``Scenario.batch_point``, see
docs/engine.md "Batched trials") lets a scenario execute a whole grid
cell — ``K`` trials — in one call.  This module provides the solver-side
machinery those ``batch_point`` implementations are built from:

* :func:`select_from_logits` / :func:`softmax_rows` — an exact replica
  of :meth:`repro.privacy.mechanisms.ExponentialMechanism.select`
  (softmax sampler) built from numpy primitives whose outputs are
  bit-identical to the scipy/``Generator.choice`` originals, including
  the Generator's stream state: ``logsumexp`` is replaced by the
  equivalent ``m + log(sum(exp(x - m)))`` and ``rng.choice(n, p)`` by
  the same CDF inversion it performs internally (one ``rng.random()``
  draw, ``searchsorted`` right).

* :func:`batch_fit_lasso` — Algorithm 2 (:class:`HeavyTailedPrivateLasso`)
  for ``K`` same-shaped datasets at once.  The per-iteration gradient
  ``2 (X̃ᵀ(X̃ w − ỹ)) / n`` is rewritten in Gram form
  ``2 (G w − c) / n`` with ``G = X̃ᵀX̃`` and ``c = X̃ᵀỹ`` precomputed
  once per trial, so the ``T``-step Frank–Wolfe loop runs on stacked
  ``(K, d, d)`` tensors instead of re-streaming the ``(n, d)`` data
  matrix twice per iteration.  Per-trial randomness (one exponential-
  mechanism draw per iteration) stays scalar and consumes each trial's
  Generator in exactly the scalar order.

* :func:`fast_fit_dpfw` / :func:`fast_full_batch_fw` — Algorithm 1
  (:class:`HeavyTailedDPFW`) and its advanced-composition full-batch
  variant with identical arithmetic but without the per-iteration
  validation re-scans, mechanism construction, and accounting
  bookkeeping of the reference implementation.

The bit-identity argument for the Gram rewrite: the gradient enters the
result only through the exponential mechanism's *discrete* vertex
selection (the iterate update uses the selected vertex, never the
gradient itself), and the selection is a CDF inversion whose outcome
changes only if an ulp-level perturbation crosses the trial's uniform
draw — a measure-zero boundary the committed benches never sit on.  The
property tests in ``tests/test_batched.py`` and the golden-run gates
(``tests/test_diff.py``, CI's ``diff-gate`` and ``perf`` jobs) enforce
exact equality end to end.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..estimators.catoni import CatoniEstimator
from ..estimators.weak_moments import (
    TruncatedMeanEstimator,
    optimal_truncation_threshold,
)
from ..losses.base import MarginLoss
from .hyperparams import classic_fw_steps


def _require_finite_logits(logits: np.ndarray) -> None:
    """Replicate the mechanism's refusal to sample from broken logits."""
    if not np.all(np.isfinite(logits)):
        raise ValueError(
            "scores must be finite and their logits representable; "
            "got non-finite entries after scaling by eps/(2*sensitivity)")


def select_from_logits(logits: np.ndarray, rng: np.random.Generator) -> int:
    """Exponential-mechanism softmax draw from precomputed logits.

    Bit-identical to ``ExponentialMechanism.select`` for
    ``logits = scores * (epsilon / (2 * sensitivity))``: the same
    probabilities (numpy log-sum-exp replica of scipy's), the same
    defensive renormalisation, and the same single uniform draw inverted
    through the cumulative distribution — ``Generator.choice(n, p=...)``
    performs exactly this inversion internally, so the selected index
    *and* the Generator's subsequent stream state match the original.
    """
    _require_finite_logits(logits)
    m = logits.max()
    probs = np.exp(logits - (m + np.log(np.sum(np.exp(logits - m)))))
    probs = probs / probs.sum()
    cdf = probs.cumsum()
    cdf /= cdf[-1]
    return int(cdf.searchsorted(rng.random(), side="right"))


def softmax_rows(logits: np.ndarray) -> np.ndarray:
    """Row-wise exponential-mechanism probabilities for stacked trials.

    Each row reproduces ``ExponentialMechanism.probabilities`` (plus the
    sampler's renormalisation) bit-for-bit: the axis-wise max, exp, sum
    and divide perform the same per-row reductions the scalar path does
    on one contiguous vector.
    """
    m = logits.max(axis=1)
    lse = m + np.log(np.sum(np.exp(logits - m[:, None]), axis=1))
    probs = np.exp(logits - lse[:, None])
    return probs / probs.sum(axis=1, keepdims=True)


def _draw_row(probs_row: np.ndarray, rng: np.random.Generator) -> int:
    """One CDF-inversion draw from a probability row (stream-identical)."""
    cdf = probs_row.cumsum()
    cdf /= cdf[-1]
    return int(cdf.searchsorted(rng.random(), side="right"))


def shrink_inplace(values: np.ndarray, threshold: float) -> np.ndarray:
    """``sign(v) * min(|v|, K)`` with preallocated buffers, bit-identical.

    The same elementwise operations as
    :func:`repro.estimators.truncation.shrink` but composed through
    ``out=`` buffers, so the batched data-preparation loop allocates two
    temporaries instead of four per trial.
    """
    v = np.asarray(values, dtype=float)
    mag = np.abs(v)
    np.minimum(mag, threshold, out=mag)
    np.multiply(np.sign(v), mag, out=mag)
    return mag


def batch_fit_lasso(solver, datasets: Sequence[Tuple[np.ndarray, np.ndarray]],
                    rngs: Sequence[np.random.Generator]) -> List[np.ndarray]:
    """Fit Algorithm 2 on ``K`` datasets with one stacked Frank–Wolfe loop.

    Parameters
    ----------
    solver:
        A configured :class:`~repro.core.private_lasso.HeavyTailedPrivateLasso`
        whose polytope is an :class:`~repro.geometry.polytope.L1Ball`.
    datasets:
        ``K`` pairs ``(X, y)`` of identical shape — the trials of one
        grid cell.
    rngs:
        The trials' Generators, positioned exactly where the scalar path
        would hand them to ``solver.fit`` (i.e. after data generation).

    Returns the ``K`` fitted weight vectors, bit-identical to
    ``[solver.fit(X, y, rng=rng).w for ...]``.  Each Generator is
    consumed with the scalar path's draw sequence: one uniform per
    iteration, nothing else.
    """
    ball = solver.polytope
    d = ball.dimension
    radius = ball.radius
    k_trials = len(datasets)
    n = datasets[0][0].shape[0]
    schedule = solver.resolve_schedule(n)
    T, K = schedule.n_iterations, schedule.threshold
    steps = (list(solver.step_sizes) if solver.step_sizes is not None
             else classic_fw_steps(T))
    if len(steps) < T:
        raise ValueError(f"need {T} step sizes, got {len(steps)}")
    sensitivity = 4.0 * ball.l1_diameter() * K**2 / n
    factor = solver.per_iteration_epsilon(T) / (2.0 * sensitivity)

    gram = np.empty((k_trials, d, d))
    cross = np.empty((k_trials, d))
    for k, (X, y) in enumerate(datasets):
        X_shrunk = shrink_inplace(X, K)
        y_shrunk = shrink_inplace(y, K)
        gram[k] = X_shrunk.T @ X_shrunk
        cross[k] = X_shrunk.T @ y_shrunk

    w = np.zeros((k_trials, d))
    vertex = np.empty((k_trials, d))
    for t in range(T):
        g = 2.0 * (np.matmul(gram, w[..., None])[..., 0] - cross) / n
        logits = np.concatenate([-radius * g, radius * g], axis=1) * factor
        _require_finite_logits(logits)
        probs = softmax_rows(logits)
        vertex[:] = 0.0
        for k in range(k_trials):
            index = _draw_row(probs[k], rngs[k])
            if index < d:
                vertex[k, index] = radius
            else:
                vertex[k, index - d] = -radius
        w = (1.0 - steps[t]) * w + steps[t] * vertex
    return [w[k] for k in range(k_trials)]


def _margin_grads(loss, w, X, y):
    """Per-sample gradients with the validation scans already paid.

    For losses whose ``per_sample_gradients`` is exactly
    :meth:`MarginLoss.per_sample_gradients` this evaluates the same
    ``psi'(X @ w, y)[:, None] * X`` expression without re-validating the
    (already validated) chunk; any override falls back to the loss's own
    method so subclass arithmetic is never second-guessed.
    """
    if type(loss).per_sample_gradients is MarginLoss.per_sample_gradients:
        slopes = loss.link_derivative(loss.margins(w, X), y)
        return slopes[:, None] * X
    return loss.per_sample_gradients(w, X, y)


def fast_fit_dpfw(solver, X: np.ndarray, y: np.ndarray,
                  rng: np.random.Generator) -> np.ndarray:
    """Algorithm 1 with reference arithmetic and no bookkeeping.

    Bit-identical to ``solver.fit(X, y, rng=rng).w`` for a
    :class:`~repro.core.heavy_tailed_dp_fw.HeavyTailedDPFW` built with
    the default softmax mechanism: the chunk permutation, the per-chunk
    estimator call, the per-iteration sensitivity, the selection logits
    and the single uniform draw per iteration are computed by the same
    expressions in the same order.  What is skipped — full-data
    finiteness re-scans, per-iteration mechanism/accountant
    construction, ``FitResult`` assembly — never touches a value or a
    random draw.
    """
    n = X.shape[0]
    schedule = solver.resolve_schedule(n)
    T = schedule.n_iterations
    steps = (list(solver.step_sizes) if solver.step_sizes is not None
             else classic_fw_steps(T))
    if len(steps) < T:
        raise ValueError(f"need {T} step sizes, got {len(steps)}")
    ball = solver.polytope
    w = ball.initial_point()
    if solver.gradient_estimator == "catoni":
        estimator = CatoniEstimator(scale=schedule.scale, beta=schedule.beta)
    else:
        threshold = (solver.scale if solver.scale is not None
                     else optimal_truncation_threshold(
                         max(schedule.chunk_size, 1), solver.epsilon,
                         solver.moment_order, solver.tau))
        estimator = TruncatedMeanEstimator(threshold=threshold)
    diameter = ball.l1_diameter()
    chunk_indices = np.array_split(rng.permutation(n), T)
    for t in range(T):
        idx = chunk_indices[t]
        grads = _margin_grads(solver.loss, w, X[idx], y[idx])
        g_tilde = estimator.estimate_columns(grads)
        sensitivity = diameter * estimator.sensitivity(idx.size)
        with np.errstate(over="ignore"):
            logits = ball.vertex_scores(g_tilde) * (
                solver.epsilon / (2.0 * sensitivity))
        index = select_from_logits(logits, rng)
        w = (1.0 - steps[t]) * w + steps[t] * ball.vertex(index)
    return w


def fast_full_batch_fw(loss, ball, X: np.ndarray, y: np.ndarray,
                       estimator, eps_step: float, sensitivity: float,
                       steps: Sequence[float],
                       rng: np.random.Generator) -> np.ndarray:
    """Full-batch robust Frank–Wolfe with a fixed per-step budget.

    The advanced-composition variant used by the split-vs-composed
    ablation: every iteration re-estimates the gradient on the *whole*
    dataset and selects a vertex at budget ``eps_step``.  Bit-identical
    to the reference loop (same estimator call, same logits, same single
    uniform per iteration) minus its per-iteration validation re-scans.
    """
    w = ball.initial_point()
    factor = eps_step / (2.0 * sensitivity)
    for t in range(len(steps)):
        grads = _margin_grads(loss, w, X, y)
        g_tilde = estimator.estimate_columns(grads)
        with np.errstate(over="ignore"):
            logits = ball.vertex_scores(g_tilde) * factor
        index = select_from_logits(logits, rng)
        w = (1.0 - steps[t]) * w + steps[t] * ball.vertex(index)
    return w
