"""Algorithm 5 — Heavy-tailed Private Sparse Optimization.

An (ε, δ)-DP IHT-style method for general smooth / restricted-strongly-
convex losses over the sparsity constraint ``||w||_0 <= s*``
(Assumption 4).  Unlike Algorithm 3 it does not shrink the *data* —
for non-linear losses that would distort the objective — but instead
estimates each gradient coordinate with the smoothed Catoni estimator
(the Algorithm 1 machinery, at scale ``k``):

1. the data is split into ``T`` disjoint chunks;
2. iteration ``t`` forms the robust gradient estimate
   ``g̃(w_t, D_t)`` coordinate-wise from per-sample gradients,
   takes a step ``w^{t+0.5} = w^t - eta * g̃`` and privately selects /
   releases the top-``s`` coordinates via Peeling with ℓ∞ sensitivity
   ``4 sqrt(2) eta k / (3 m)``.

Theorem 8: with ``T = O((gamma_r/mu_r) log n)``, ``s = O((gamma_r/mu_r)^2 s*)``
and the balanced Catoni scale the excess risk is
``~O(tau s*^{3/2} log d sqrt(log 1/delta) / (n eps))``, near-optimal up
to ``sqrt(s*)`` against the Theorem 9 lower bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from .._validation import (
    check_dataset,
    check_positive,
    check_positive_int,
    check_vector,
)
from ..estimators.catoni import CatoniEstimator
from ..geometry.projections import hard_threshold
from ..losses.base import Loss
from ..losses.curvature import estimate_curvature
from ..privacy.accountant import PrivacyAccountant
from ..privacy.budget import PrivacyBudget
from ..rng import SeedLike, ensure_rng
from .hyperparams import SparseOptimizationSchedule, sparse_optimization_schedule
from .peeling import peeling
from .result import FitResult


@dataclass
class HeavyTailedSparseOptimizer:
    """(ε, δ)-DP robust IHT over the ℓ0 ball (Algorithm 5).

    Parameters
    ----------
    loss:
        Any :class:`~repro.losses.base.Loss` satisfying Assumption 4
        (RSC/RSS with coordinate-wise bounded gradient moments) — e.g.
        an ℓ2-regularised logistic loss.
    sparsity:
        The target sparsity ``s*``.
    epsilon, delta:
        End-to-end privacy budget.
    selection_size:
        Working sparsity ``s``; ``None`` uses ``expansion * sparsity``
        (Section 6.2 uses ``s = 2 s*``).
    scale:
        Catoni scale ``k``; ``None`` uses the Theorem 8 balance.
    tau:
        Assumed gradient coordinate second-moment bound (only used by
        the automatic scale).
    step_size:
        The *relative* step ``eta``; the actual gradient step is
        ``eta / gamma_r`` (the theorem's ``2/(3 gamma_r)`` corresponds
        to ``eta = 2/3``).
    curvature:
        The RSS constant ``gamma_r``.  ``None`` estimates it by power
        iteration on finite-difference Hessian-vector products at the
        starting point (a data-dependent hyper-parameter choice, as in
        the paper's experiments); pass a public value for strict
        end-to-end DP.
    """

    loss: Loss
    sparsity: int
    epsilon: float
    delta: float
    selection_size: Optional[int] = None
    expansion: int = 2
    n_iterations: Optional[int] = None
    scale: Optional[float] = None
    tau: float = 1.0
    beta: float = 1.0
    step_size: float = 0.5
    curvature: Optional[float] = None
    failure_probability: float = 0.05
    record_history: bool = False

    def __post_init__(self) -> None:
        check_positive_int(self.sparsity, "sparsity")
        check_positive(self.epsilon, "epsilon")
        check_positive(self.delta, "delta")
        check_positive(self.step_size, "step_size")

    def resolve_schedule(self, n_samples: int,
                         dimension: int) -> SparseOptimizationSchedule:
        """The ``(T, s, k, eta)`` this configuration will run with."""
        base = sparse_optimization_schedule(
            n_samples=n_samples, epsilon=self.epsilon, sparsity=self.sparsity,
            dimension=dimension, tau=self.tau, expansion=self.expansion,
            beta=self.beta, step_size=self.step_size,
            failure_probability=self.failure_probability,
        )
        T = self.n_iterations if self.n_iterations is not None else base.n_iterations
        T = max(1, min(int(T), n_samples))
        s = (self.selection_size if self.selection_size is not None
             else base.selection_size)
        s = check_positive_int(s, "selection_size")
        k = self.scale if self.scale is not None else base.scale
        return SparseOptimizationSchedule(
            n_iterations=T, selection_size=s, scale=float(k), beta=self.beta,
            step_size=self.step_size, chunk_size=n_samples // T,
        )

    def fit(self, X: np.ndarray, y: np.ndarray, w0: Optional[np.ndarray] = None,
            rng: SeedLike = None,
            callback: Optional[Callable[[int, np.ndarray], None]] = None,
            ) -> FitResult:
        """Run Algorithm 5 on the dataset ``(X, y)``."""
        X, y = check_dataset(X, y)
        n, d = X.shape
        rng = ensure_rng(rng)
        schedule = self.resolve_schedule(n, d)
        T, s, k, eta = (schedule.n_iterations, schedule.selection_size,
                        schedule.scale, schedule.step_size)
        if s > d:
            raise ValueError(f"selection_size {s} exceeds dimension {d}")

        w = np.zeros(d) if w0 is None else check_vector(w0, "w0", dim=d).copy()
        w = hard_threshold(w, s)
        gamma = (self.curvature if self.curvature is not None
                 else estimate_curvature(self.loss, X, y, w, rng=rng))
        eta = eta / gamma
        catoni = CatoniEstimator(scale=k, beta=schedule.beta)

        accountant = PrivacyAccountant()
        accountant.spend(PrivacyBudget(self.epsilon, self.delta), "peeling",
                         note=f"{T} Peeling calls on disjoint chunks "
                              f"(parallel composition)")

        chunk_indices = np.array_split(rng.permutation(n), T)
        iterates: List[np.ndarray] = [w.copy()] if self.record_history else []
        risks: List[float] = [self.loss.value(w, X, y)] if self.record_history else []
        supports: List[np.ndarray] = []

        for t in range(T):
            idx = chunk_indices[t]
            m = idx.size
            grads = self.loss.per_sample_gradients(w, X[idx], y[idx])
            g_tilde = catoni.estimate_columns(grads)
            w_half = w - eta * g_tilde
            # l_inf sensitivity from the Theorem 8 proof:
            # ||w_half - w_half'||_inf <= eta * 4 sqrt(2) k / (3 m).
            noise_scale = 4.0 * math.sqrt(2.0) * eta * k / (3.0 * m)
            peeled = peeling(w_half, sparsity=s, epsilon=self.epsilon,
                             delta=self.delta, noise_scale=noise_scale, rng=rng)
            supports.append(peeled.support)
            w = peeled.vector
            if self.record_history:
                iterates.append(w.copy())
                risks.append(self.loss.value(w, X, y))
            if callback is not None:
                callback(t, w)

        return FitResult(
            w=w, n_iterations=T, accountant=accountant,
            advertised_budget=PrivacyBudget(self.epsilon, self.delta),
            iterates=iterates, risks=risks,
            metadata={
                "algorithm": "heavy_tailed_sparse_optimizer",
                "scale": k,
                "selection_size": s,
                "step_size": eta,
                "curvature": gamma,
                "supports": supports,
            },
        )


from ..losses.base import resolve_loss
from ..registry import SOLVERS


@SOLVERS.register("sparse_optimizer")
def _fit_sparse_optimizer(data, rng: SeedLike = None, *, loss, sparsity: int,
                          epsilon: float = 1.0, delta: float = 1e-5,
                          tau: float = 1.0,
                          selection_size: Optional[int] = None,
                          expansion: int = 2,
                          scale: Optional[float] = None) -> np.ndarray:
    """Registry adapter: Algorithm 5 (DP robust IHT), returning ``w``."""
    solver = HeavyTailedSparseOptimizer(
        resolve_loss(loss), sparsity=sparsity, epsilon=epsilon, delta=delta,
        tau=tau, selection_size=selection_size, expansion=expansion,
        scale=scale)
    return solver.fit(data.features, data.labels, rng=rng).w
