"""The paper's algorithms: DP-FW, private LASSO, DP-IHT, Peeling.

* :class:`HeavyTailedDPFW` — Algorithm 1 (ε-DP Frank–Wolfe with Catoni
  gradient estimates over a polytope; Theorems 1–3).
* :class:`HeavyTailedPrivateLasso` — Algorithm 2 ((ε,δ)-DP Frank–Wolfe
  on shrunken data; Theorems 4–5).
* :class:`HeavyTailedSparseLinearRegression` — Algorithm 3 ((ε,δ)-DP
  truncated IHT; Theorems 6–7).
* :func:`peeling` — Algorithm 4 (private top-``s`` selection).
* :class:`HeavyTailedSparseOptimizer` — Algorithm 5 ((ε,δ)-DP robust IHT
  over the ℓ0 ball; Theorem 8).
"""

from .heavy_tailed_dp_fw import HeavyTailedDPFW
from .hyperparams import (
    DPFWSchedule,
    LassoSchedule,
    SparseLinearSchedule,
    SparseOptimizationSchedule,
    classic_fw_steps,
    dpfw_schedule,
    lasso_schedule,
    sparse_linear_schedule,
    sparse_optimization_schedule,
)
from .peeling import PeelingResult, dense_laplace_release, peeling, peeling_laplace_scale
from .private_lasso import HeavyTailedPrivateLasso
from .result import FitResult
from .sparse_linear_regression import HeavyTailedSparseLinearRegression
from .sparse_optimization import HeavyTailedSparseOptimizer

__all__ = [
    "DPFWSchedule",
    "FitResult",
    "HeavyTailedDPFW",
    "HeavyTailedPrivateLasso",
    "HeavyTailedSparseLinearRegression",
    "HeavyTailedSparseOptimizer",
    "LassoSchedule",
    "PeelingResult",
    "SparseLinearSchedule",
    "SparseOptimizationSchedule",
    "classic_fw_steps",
    "dense_laplace_release",
    "dpfw_schedule",
    "lasso_schedule",
    "peeling",
    "peeling_laplace_scale",
    "sparse_linear_schedule",
    "sparse_optimization_schedule",
]
