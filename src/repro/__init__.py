"""repro — High Dimensional Differentially Private Stochastic Optimization
with Heavy-tailed Data.

A from-scratch reproduction of Hu, Ni, Xiao and Wang (arXiv:2107.11136):
differentially private stochastic convex optimization when the dimension
exceeds the sample size and the data (hence the gradients) are
heavy-tailed.

The package is organised as the paper is:

* :mod:`repro.core` — Algorithms 1-5 (Heavy-tailed DP-FW, Private LASSO,
  Private Sparse Linear Regression, Peeling, Private Sparse Optimization);
* :mod:`repro.estimators` — the smoothed Catoni robust mean estimator
  (eqs. 1-5) and the shrinkage pre-processing;
* :mod:`repro.privacy` — mechanisms, budgets, composition, accounting;
* :mod:`repro.geometry` — polytopes, linear oracles and projections;
* :mod:`repro.losses` — squared / logistic / biweight / Huber losses;
* :mod:`repro.data` — the Section 6 heavy-tailed data generators;
* :mod:`repro.baselines` — non-private FW/IHT and regular-data DP methods;
* :mod:`repro.lower_bound` — the Theorem 9 hard instances and Fano bound;
* :mod:`repro.evaluation` — the repeated-trial experiment harness.

Quick start::

    import numpy as np
    from repro import (
        HeavyTailedDPFW, L1Ball, SquaredLoss, DistributionSpec,
        make_linear_data, l1_ball_truth,
    )

    rng = np.random.default_rng(0)
    w_star = l1_ball_truth(dimension=50, rng=rng)
    data = make_linear_data(
        5000, w_star, DistributionSpec("lognormal", {"sigma": 0.6}),
        DistributionSpec("gaussian", {"scale": 0.1}), rng=rng,
    )
    solver = HeavyTailedDPFW(SquaredLoss(), L1Ball(50), epsilon=1.0)
    result = solver.fit(data.features, data.labels, rng=rng)
"""

from .core import (
    FitResult,
    HeavyTailedDPFW,
    HeavyTailedPrivateLasso,
    HeavyTailedSparseLinearRegression,
    HeavyTailedSparseOptimizer,
    peeling,
)
from .data import (
    DistributionSpec,
    RegressionData,
    l1_ball_truth,
    load_real_like,
    make_linear_data,
    make_logistic_data,
    sparse_truth,
)
from .estimators import CatoniEstimator, shrink
from .geometry import L1Ball, Polytope, Simplex
from .losses import (
    BiweightLoss,
    HuberLoss,
    L2Regularized,
    LogisticLoss,
    SquaredLoss,
)
from .privacy import PrivacyAccountant, PrivacyBudget

__version__ = "1.0.0"

__all__ = [
    "BiweightLoss",
    "CatoniEstimator",
    "DistributionSpec",
    "FitResult",
    "HeavyTailedDPFW",
    "HeavyTailedPrivateLasso",
    "HeavyTailedSparseLinearRegression",
    "HeavyTailedSparseOptimizer",
    "HuberLoss",
    "L1Ball",
    "L2Regularized",
    "LogisticLoss",
    "Polytope",
    "PrivacyAccountant",
    "PrivacyBudget",
    "RegressionData",
    "Simplex",
    "SquaredLoss",
    "l1_ball_truth",
    "load_real_like",
    "make_linear_data",
    "make_logistic_data",
    "peeling",
    "shrink",
    "sparse_truth",
    "__version__",
]
