"""ℓ2-regularised loss wrapper.

Section 5.2 of the paper notes that Assumption 4 (restricted strong
convexity + bounded per-coordinate gradient moments) is satisfied by the
``ℓ2``-regularised generalised linear loss

.. math:: L_D(w) = E[\\ell(y\\langle w, x\\rangle)] + \\frac\\lambda2 \\|w\\|_2^2

when ``|ell'|, |ell''| = O(1)`` (e.g. the logistic loss).  This wrapper
adds the ridge term to any base :class:`~repro.losses.base.Loss`,
propagating it into per-sample values and gradients so Algorithm 5's
robust gradient estimator sees the regularised per-sample gradients.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_non_negative
from .base import Loss


class L2Regularized(Loss):
    """``base_loss + (lam / 2) ||w||_2^2``.

    The ridge term is deterministic in the data, so it changes neither
    the sensitivity of any data-dependent quantity nor the privacy
    analysis; it only makes the objective strongly convex.
    """

    def __init__(self, base: Loss, lam: float):
        self.base = base
        self.lam = check_non_negative(lam, "lam")
        self.name = f"{base.name}+l2({self.lam:g})"

    def _penalty(self, w: np.ndarray) -> float:
        w = np.asarray(w, dtype=float)
        return 0.5 * self.lam * float(w @ w)

    def per_sample_values(self, w, X, y) -> np.ndarray:
        return self.base.per_sample_values(w, X, y) + self._penalty(w)

    def per_sample_gradients(self, w, X, y) -> np.ndarray:
        grads = self.base.per_sample_gradients(w, X, y)
        return grads + self.lam * np.asarray(w, dtype=float)[None, :]

    def value(self, w, X, y) -> float:
        return self.base.value(w, X, y) + self._penalty(w)

    def gradient(self, w, X, y) -> np.ndarray:
        return self.base.gradient(w, X, y) + self.lam * np.asarray(w, dtype=float)


from ..registry import LOSSES


@LOSSES.register("l2_regularized")
def _make_l2_regularized(base="logistic", penalty: float = 0.01,
                         **base_kwargs) -> "L2Regularized":
    """Registry factory: wrap a registered base loss with an ℓ2 penalty."""
    from .base import resolve_loss
    return L2Regularized(resolve_loss(base, **base_kwargs), penalty)
