"""The loss-function protocol shared by every optimizer in the library.

A :class:`Loss` exposes the empirical risk and its gradient at three
granularities:

* :meth:`Loss.value` — the mean loss over a batch (the empirical risk
  ``\\hat L(w, D)`` of Definition 4);
* :meth:`Loss.gradient` — the mean gradient (what non-private solvers
  consume);
* :meth:`Loss.per_sample_gradients` — the ``(n, d)`` matrix of
  per-sample gradients (what the Catoni coordinate-wise estimator in
  Algorithms 1 and 5 consumes — it needs the raw per-sample values, not
  their average).

Generalised-linear losses (everything in the paper) factor through the
margin ``z_i = <x_i, w>``; :class:`MarginLoss` implements the batching
once, so concrete losses only provide the scalar link ``psi`` and its
derivative.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .._validation import check_dataset, check_vector


class Loss(ABC):
    """Abstract empirical-risk interface.

    All methods take ``(w, X, y)`` with ``X`` of shape ``(n, d)`` and
    ``y`` of shape ``(n,)`` and never mutate their arguments.
    """

    #: Human-readable name used in experiment reports.
    name: str = "loss"

    @abstractmethod
    def per_sample_values(self, w: np.ndarray, X: np.ndarray,
                          y: np.ndarray) -> np.ndarray:
        """Vector of ``ell(w, z_i)`` values, shape ``(n,)``."""

    @abstractmethod
    def per_sample_gradients(self, w: np.ndarray, X: np.ndarray,
                             y: np.ndarray) -> np.ndarray:
        """Matrix of per-sample gradients ``grad ell(w, z_i)``, shape ``(n, d)``."""

    def value(self, w: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        """Mean loss over the batch (the empirical risk)."""
        return float(np.mean(self.per_sample_values(w, X, y)))

    def gradient(self, w: np.ndarray, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Mean gradient over the batch."""
        return np.mean(self.per_sample_gradients(w, X, y), axis=0)

    def excess_risk(self, w: np.ndarray, w_star: np.ndarray,
                    X: np.ndarray, y: np.ndarray) -> float:
        """``L(w) - L(w*)`` on the given (evaluation) batch."""
        return self.value(w, X, y) - self.value(w_star, X, y)


class MarginLoss(Loss):
    """A loss of the form ``ell(w, (x, y)) = psi(<x, w>, y)``.

    Subclasses implement the scalar :meth:`link` and its derivative
    :meth:`link_derivative` in the margin ``z = <x, w>``; this base class
    provides the vectorised batch plumbing, including

    .. math:: \\nabla \\ell(w, (x, y)) = \\psi'(\\langle x, w\\rangle, y)\\, x

    which is what the per-coordinate robust gradient estimator consumes.
    """

    @abstractmethod
    def link(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Scalar loss as a function of the margin ``z`` and label ``y``."""

    @abstractmethod
    def link_derivative(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Derivative of :meth:`link` in ``z``."""

    def margins(self, w: np.ndarray, X: np.ndarray) -> np.ndarray:
        """The margins ``X @ w``."""
        return np.asarray(X, dtype=float) @ np.asarray(w, dtype=float)

    def per_sample_values(self, w: np.ndarray, X: np.ndarray,
                          y: np.ndarray) -> np.ndarray:
        X, y = check_dataset(X, y, self.name)
        w = check_vector(w, "w", dim=X.shape[1])
        return self.link(self.margins(w, X), y)

    def per_sample_gradients(self, w: np.ndarray, X: np.ndarray,
                             y: np.ndarray) -> np.ndarray:
        X, y = check_dataset(X, y, self.name)
        w = check_vector(w, "w", dim=X.shape[1])
        slopes = self.link_derivative(self.margins(w, X), y)
        return slopes[:, None] * X

    def gradient(self, w: np.ndarray, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        # X^T slopes / n avoids materialising the (n, d) per-sample matrix.
        X, y = check_dataset(X, y, self.name)
        w = check_vector(w, "w", dim=X.shape[1])
        slopes = self.link_derivative(self.margins(w, X), y)
        return X.T @ slopes / X.shape[0]


def finite_difference_gradient(loss: Loss, w: np.ndarray, X: np.ndarray,
                               y: np.ndarray, step: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``loss.value`` — a testing oracle.

    The ``2d`` perturbed weight vectors are built in one shot from a
    batched perturbation matrix (``w ± step * I``) and the differences
    are reduced as whole arrays; only the ``loss.value`` evaluations
    remain a loop, deliberately — batching them would turn each
    per-vector gemv into one gemm, whose columns are not bit-identical
    to the gemv results, and a *testing oracle* must not drift from the
    per-coordinate definition it checks against.
    """
    w = np.asarray(w, dtype=float)
    bumps = step * np.eye(w.size)
    values_plus = np.array([loss.value(row, X, y) for row in w + bumps])
    values_minus = np.array([loss.value(row, X, y) for row in w - bumps])
    return (values_plus - values_minus) / (2 * step)


def resolve_loss(spec, **kwargs) -> Loss:
    """A :class:`Loss` from a registered name, a mapping, or an instance.

    ``spec`` may be a ready :class:`Loss` (returned unchanged; extra
    ``kwargs`` are rejected), a registered loss name (``"squared"``,
    ``"l2_regularized"``, ...) whose factory is called with ``kwargs``,
    or a mapping with a ``"name"`` key and the factory's keyword
    arguments — the form TOML specs naturally produce.  Unknown names
    raise :class:`repro.registry.UnknownNameError` listing the menu.
    """
    from ..registry import LOSSES
    if isinstance(spec, Loss):
        if kwargs:
            raise TypeError(f"cannot apply kwargs {sorted(kwargs)} to an "
                            f"already-built loss {spec!r}")
        return spec
    if isinstance(spec, str):
        return LOSSES.get(spec)(**kwargs)
    try:
        params = dict(spec)
    except TypeError:
        raise TypeError(f"loss spec must be a Loss, a registered name, or a "
                        f"mapping with a 'name' key, got {spec!r}") from None
    try:
        name = params.pop("name")
    except KeyError:
        raise TypeError(f"loss mapping {spec!r} is missing its 'name' key") from None
    return LOSSES.get(name)(**params, **kwargs)
