"""Huber loss — a convex robust-regression comparator.

Not used by the paper's theorems directly, but a natural additional
example of a smooth loss whose gradient has bounded coordinate second
moments under heavy-tailed designs; the examples and ablations use it to
show the library's API is loss-agnostic.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive
from .base import MarginLoss


class HuberLoss(MarginLoss):
    """Huber loss on the residual ``<x, w> - y``.

    ``t^2 / 2`` for ``|t| <= delta`` and ``delta(|t| - delta/2)`` beyond.
    The derivative is the clipped residual, so ``|psi'| <= delta``.
    """

    name = "huber"

    def __init__(self, delta: float = 1.0):
        self.delta = check_positive(delta, "delta")

    def link(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        t = np.asarray(z, dtype=float) - np.asarray(y, dtype=float)
        abs_t = np.abs(t)
        quadratic = 0.5 * t**2
        linear = self.delta * (abs_t - 0.5 * self.delta)
        return np.where(abs_t <= self.delta, quadratic, linear)

    def link_derivative(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        t = np.asarray(z, dtype=float) - np.asarray(y, dtype=float)
        return np.clip(t, -self.delta, self.delta)


from ..registry import LOSSES

LOSSES.register("huber", HuberLoss)
