"""Tukey biweight robust-regression loss (paper Assumption 2 / Theorem 3).

The paper's non-convex example is robust regression with the biweight
loss

.. math:: \\psi(t) = \\frac{c^2}{6}\\begin{cases}
          1 - (1 - (t/c)^2)^3 & |t| \\le c \\\\
          1 & |t| > c,
          \\end{cases}

applied to the residual ``t = <x, w> - y``.  Its derivative
``psi'(t) = t (1 - (t/c)^2)^2`` (for ``|t| <= c``, zero outside) is odd
and bounded, which is exactly what Assumption 2 requires: Theorem 3 shows
Heavy-tailed DP-FW still attains ``~O(1/(n eps)^{1/4})`` for this
non-convex objective.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive
from .base import MarginLoss


class BiweightLoss(MarginLoss):
    """Tukey's biweight loss on the residual ``<x, w> - y``.

    Parameters
    ----------
    c:
        The redescending threshold; residuals beyond ``c`` contribute a
        constant loss and a zero gradient.
    """

    name = "biweight"

    def __init__(self, c: float = 1.0):
        self.c = check_positive(c, "c")

    def psi(self, t: np.ndarray) -> np.ndarray:
        """The scalar biweight loss of the footnote in Section 4."""
        t = np.asarray(t, dtype=float)
        ratio_sq = np.minimum((t / self.c) ** 2, 1.0)
        return self.c**2 / 6.0 * (1.0 - (1.0 - ratio_sq) ** 3)

    def psi_derivative(self, t: np.ndarray) -> np.ndarray:
        """``psi'(t) = t (1 - (t/c)^2)^2`` inside ``[-c, c]``, zero outside."""
        t = np.asarray(t, dtype=float)
        inside = np.abs(t) <= self.c
        slope = t * (1.0 - (t / self.c) ** 2) ** 2
        return np.where(inside, slope, 0.0)

    def link(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.psi(np.asarray(z, dtype=float) - np.asarray(y, dtype=float))

    def link_derivative(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.psi_derivative(np.asarray(z, dtype=float) - np.asarray(y, dtype=float))

    def derivative_bound(self) -> float:
        """``C_psi``: a bound on ``|psi'|`` (attained at ``t = c/sqrt(5)``)."""
        t_star = self.c / np.sqrt(5.0)
        return float(t_star * (1.0 - 0.2) ** 2)


from ..registry import LOSSES

LOSSES.register("biweight", BiweightLoss)
