"""Logistic loss with ±1 labels.

``ell(w, (x, y)) = log(1 + exp(-y <x, w>))`` — the classification loss
of the paper's Figure 2/4/10/11 experiments.  The implementation uses
the numerically stable ``log1p(exp(-|m|)) + max(-m, 0)`` form so that
extreme heavy-tailed margins never overflow.
"""

from __future__ import annotations

import numpy as np

from .base import MarginLoss


def sigmoid(t: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid ``1 / (1 + exp(-t))``."""
    t = np.asarray(t, dtype=float)
    out = np.empty_like(t)
    positive = t >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-t[positive]))
    exp_t = np.exp(t[~positive])
    out[~positive] = exp_t / (1.0 + exp_t)
    return out


class LogisticLoss(MarginLoss):
    """``log(1 + exp(-y * margin))`` for labels in ``{-1, +1}``.

    ``|psi'| <= 1`` and ``psi'' <= 1/4``, so with coordinate-wise bounded
    second moments the loss satisfies the paper's Assumption 4 (it is the
    canonical example given after the assumption).
    """

    name = "logistic"

    def _check_labels(self, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y, dtype=float)
        if not np.all(np.isin(y, (-1.0, 1.0))):
            raise ValueError("logistic loss requires labels in {-1, +1}")
        return y

    def link(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        margin = np.asarray(z, dtype=float) * self._check_labels(y)
        # log(1 + exp(-m)) computed stably for both signs of m.
        return np.log1p(np.exp(-np.abs(margin))) + np.maximum(-margin, 0.0)

    def link_derivative(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        y = self._check_labels(y)
        margin = np.asarray(z, dtype=float) * y
        return -y * sigmoid(-margin)

    def smoothness(self, X: np.ndarray) -> float:
        """Empirical smoothness bound ``lambda_max(X^T X / n) / 4``."""
        X = np.asarray(X, dtype=float)
        second_moment = X.T @ X / X.shape[0]
        return 0.25 * float(np.linalg.eigvalsh(second_moment)[-1])


from ..registry import LOSSES

LOSSES.register("logistic", LogisticLoss)
