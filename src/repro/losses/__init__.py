"""Loss-function substrate: the losses the paper evaluates.

Squared loss (LASSO, Algorithms 2/3), logistic loss (Figures 2/4/10/11),
the Tukey biweight robust-regression loss (Assumption 2 / Theorem 3),
a Huber comparator, and an ℓ2-regularisation wrapper (the GLM family of
Section 5.2).
"""

from .base import Loss, MarginLoss, finite_difference_gradient, resolve_loss
from .curvature import estimate_curvature, gram_top_eigenvalue
from .huber import HuberLoss
from .logistic import LogisticLoss, sigmoid
from .regularized import L2Regularized
from .robust_regression import BiweightLoss
from .squared import SquaredLoss

__all__ = [
    "BiweightLoss",
    "HuberLoss",
    "L2Regularized",
    "LogisticLoss",
    "Loss",
    "MarginLoss",
    "SquaredLoss",
    "estimate_curvature",
    "finite_difference_gradient",
    "gram_top_eigenvalue",
    "resolve_loss",
    "sigmoid",
]
